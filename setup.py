"""Legacy setup shim: the workspace is offline (no `wheel` package), so
editable installs must go through `setup.py develop` rather than PEP 660.
All real metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
