#!/usr/bin/env python
"""Old-vs-new engine benchmark harness → ``BENCH_core.json``.

Times the incremental delta-propagation engine (PR 1) against the frozen
seed implementations in :mod:`naive_engine` on chain / ring / grid /
sparse-random topologies across several algebras, and the ring-buffer
``delta_run`` against the unbounded-history seed run.  Finite algebras
additionally get a **vectorized** column (PR 2): the int-encoded numpy
engine of :mod:`repro.core.vectorized`, timed against both baselines on
the same cases — and a **parallel worker-scaling** column (PR 3): the
shared-memory column-sharded pool of :mod:`repro.core.parallel` timed
against the vectorized engine at several worker counts on n ≥ 400
finite cases (on single-core runners the scaling sweep is skipped
cleanly and only engine agreement is recorded).  PR 4 adds a
**batched-grid** column — the n=100 hop-count absolute-convergence
grid (≥ 16 trials) run as one ``(B, n, n)`` tensor workload
(:class:`repro.core.vectorized.BatchedVectorizedEngine`) vs the
per-trial vectorized loop, every trial cross-checked — and a
**windowed-IPC** column recording how many δ schedule steps one
parallel worker command carries at the default window.  PR 6 adds a
**remote** column: the TCP-sharded coordinator of
:mod:`repro.core.remote` run against 2 loopback worker subprocesses,
cross-checked bit-for-bit against the vectorized engine and audited
for wire efficiency — bytes/round, commands/round, and the
compression ratio of the delta-encoded quantized column updates vs a
naive full-column transfer (the committed gnp-400 headline must stay
≥ :data:`REMOTE_COMPRESSION_FLOOR`).  Every
comparison also verifies that all engines reach fixed points that are
``equal`` under the algebra — a benchmark row that disagrees is
reported and fails the harness.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # seconds

The committed ``BENCH_core.json`` is produced by a full run.  A
``--quick`` run additionally **regresses against the committed
baseline** instead of leaving the comparison to eyeballs: it fails when
the baseline's finite-headline vectorized speedup is below the
acceptance floor, when the baseline recorded any engine disagreement, or
when the current quick run shows the vectorized engine disagreeing or
catastrophically regressing on its own finite case.  Tier-1 tests
exercise only the ``scale="smoke"`` path (see
``tests/core/test_benchmark_harness.py`` and the ``perfbench`` marker in
``pytest.ini``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

if __name__ == "__main__":   # allow running without installing the package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.algebras import (
    BGPLiteAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
import os

from repro.session import EngineSpec, RoutingSession
from repro.core import (
    BatchedVectorizedEngine,
    FixedDelaySchedule,
    ParallelVectorizedEngine,
    RandomSchedule,
    RoutingState,
    SynchronousSchedule,
    VectorizedEngine,
    delta_run_vectorized,
    iterate_sigma_parallel,
    iterate_sigma_vectorized,
    random_state,
    schedule_zoo,
    supports_parallel,
    supports_remote,
    supports_vectorized,
)
from repro.core.remote import RemoteVectorizedEngine
from repro.topologies import (
    bgp_policy_factory,
    erdos_renyi,
    grid,
    line,
    ring,
    uniform_weight_factory,
)

import naive_engine


def _spin(seconds: float) -> int:
    """Busy-loop for ``seconds`` of wall clock (parallelism probe work)."""
    t0 = time.perf_counter()
    n = 0
    while time.perf_counter() - t0 < seconds:
        n += 1
    return n


_USABLE_CPUS: Optional[int] = None


def usable_cpus() -> int:
    """Parallelism actually available to this process, measured.

    ``os.cpu_count()`` (and sched_getaffinity) report the *visible* CPU
    mask, which containers routinely clamp to 1 while the hypervisor
    still schedules several vCPUs — exactly the environment where the
    parallel column would otherwise be skipped despite real speedup
    being available.  So when the reported count is low, probe
    empirically: run 4 concurrent busy loops on a pre-warmed process
    pool and compare wall time against serial burn time.  Cached after
    the first call (~1 s); any probe failure falls back to the
    reported count, so a genuinely single-core runner still skips the
    scaling sweep cleanly.
    """
    global _USABLE_CPUS
    if _USABLE_CPUS is not None:
        return _USABLE_CPUS
    reported = os.cpu_count() or 1
    width = 4
    if reported >= width:
        _USABLE_CPUS = reported
        return reported
    try:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        spin = 0.25
        with ctx.Pool(width) as pool:
            pool.map(_spin, [0.02] * width)      # warm the pool first
            t0 = time.perf_counter()
            pool.map(_spin, [spin] * width)
            wall = time.perf_counter() - t0
        measured = int(round(spin * width / wall))
        _USABLE_CPUS = max(reported, min(width, measured))
    except Exception:                            # pragma: no cover
        _USABLE_CPUS = reported
    return _USABLE_CPUS


def sigma_kernel_ceiling(net, repeats: int = 3) -> Optional[float]:
    """Measured hardware ceiling for parallelising the σ kernel on
    ``net``: serial wall time over a naive fork-level column split.

    The σ gather/min-reduce is memory-bound, so hosts that schedule 4
    CPU-bound processes perfectly can still cap gather scaling near 1×
    (shared memory bandwidth).  The parallel engine cannot be expected
    to beat what the hardware gives *any* process-level split of the
    identical kernel, so the regression gate holds it to this measured
    ceiling when the ceiling is below the aspirational 2× floor.
    Returns ``None`` when the probe cannot run (no fork); callers then
    fall back to CPU-count-based arming.
    """
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        return None                      # pragma: no cover - non-posix
    eng = VectorizedEngine(net)
    C = eng.encode_state(RoutingState.identity(net.algebra, net.n))
    import numpy as np

    def run_cols(lo, hi):
        cols = np.arange(lo, hi)
        for _ in range(repeats):
            eng._sigma_codes(C, cols)

    t0 = time.perf_counter()
    run_cols(0, net.n)
    serial = time.perf_counter() - t0
    width = min(4, max(2, usable_cpus()))
    bounds = [round(net.n * i / width) for i in range(width + 1)]
    ctx = mp.get_context("fork")
    procs = [ctx.Process(target=run_cols, args=(lo, hi))
             for lo, hi in zip(bounds, bounds[1:])]
    t0 = time.perf_counter()
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    wall = time.perf_counter() - t0
    return round(serial / wall, 2) if wall > 0 else None


def parallel_floor(meta: Dict) -> (Optional[float], str):
    """The speedup floor the parallel headline is held to, given the
    baseline host's measured capabilities (shared by the --quick gate
    and the committed-baseline test).

    * multi-core host whose σ-kernel ceiling reaches the aspirational
      2× → the full :data:`PARALLEL_HEADLINE_FLOOR`;
    * host whose memory system caps kernel scaling below 2× → 80% of
      the measured ceiling (the engine must deliver most of what the
      hardware allows);
    * effectively single-core host → no floor (scaling unmeasurable).
    """
    cpus = meta.get("usable_cpus", meta.get("cpu_count", 1))
    if cpus < PARALLEL_MIN_BASELINE_CPUS:
        # the headline points are >= 4-worker runs: on fewer CPUs they
        # measure oversubscription, so no floor (of either kind) applies
        return None, (f"host has {cpus} usable CPU(s) "
                      f"(< {PARALLEL_MIN_BASELINE_CPUS})")
    ceiling = meta.get("sigma_kernel_ceiling")
    if ceiling is None or ceiling >= PARALLEL_HEADLINE_FLOOR:
        return PARALLEL_HEADLINE_FLOOR, "full acceptance floor"
    return (round(0.8 * ceiling, 2),
            f"memory-bound σ kernel: measured ceiling {ceiling}x < "
            f"{PARALLEL_HEADLINE_FLOOR}x")


def _time(fn: Callable, repeats: int):
    """Return (best wall-clock seconds, last result) over ``repeats``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# ----------------------------------------------------------------------
# Case tables: (label, network builder) per scale.
# ----------------------------------------------------------------------


def _sigma_cases(scale: str) -> List[Dict]:
    sp = ShortestPathsAlgebra()
    hop = HopCountAlgebra(64)
    widest = WidestPathsAlgebra()

    def w(alg, hi=20):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return [
            dict(label="chain-12/shortest-paths",
                 net=line(sp, 12, w(sp), seed=1)),
            dict(label="gnp-12/hop-count", headline_finite=True,
                 net=erdos_renyi(hop, 12, 0.25, w(hop, 4), seed=2)),
        ]
    if scale == "quick":
        bgp = BGPLiteAlgebra(n_nodes=12)
        return [
            dict(label="chain-40/shortest-paths",
                 net=line(sp, 40, w(sp), seed=1)),
            dict(label="ring-40/hop-count",
                 net=ring(hop, 40, w(hop, 4), seed=2)),
            # quick-scale guard for the vectorized-vs-incremental ratio
            dict(label="gnp-40/hop-count", headline_finite=True,
                 net=erdos_renyi(hop, 40, 0.25, w(hop, 4), seed=8)),
            dict(label="grid-6x6/shortest-paths",
                 net=grid(sp, 6, 6, w(sp), seed=3)),
            dict(label="gnp-40/shortest-paths",
                 net=erdos_renyi(sp, 40, 0.06, w(sp), seed=4)),
            dict(label="gnp-12/bgplite",
                 net=erdos_renyi(bgp, 12, 0.3,
                                 bgp_policy_factory(bgp, allow_reject=False),
                                 seed=5)),
        ]
    bgp = BGPLiteAlgebra(n_nodes=24)
    return [
        dict(label="chain-100/shortest-paths",
             net=line(sp, 100, w(sp), seed=1)),
        dict(label="ring-100/hop-count",
             net=ring(hop, 100, w(hop, 4), seed=2)),
        dict(label="grid-10x10/shortest-paths",
             net=grid(sp, 10, 10, w(sp), seed=3)),
        # the PR 1 headline acceptance case: n=100 sparse random topology
        dict(label="gnp-100/shortest-paths", headline=True,
             net=erdos_renyi(sp, 100, 0.03, w(sp), seed=4)),
        # the PR 2 headline acceptance case: n=100 finite algebra — the
        # vectorized engine must beat the incremental one here
        dict(label="gnp-100/hop-count", headline_finite=True,
             net=erdos_renyi(hop, 100, 0.25, w(hop, 4), seed=8)),
        dict(label="gnp-100/widest-paths",
             net=erdos_renyi(widest, 100, 0.03, w(widest), seed=6)),
        dict(label="gnp-24/bgplite",
             net=erdos_renyi(bgp, 24, 0.15,
                             bgp_policy_factory(bgp, allow_reject=False),
                             seed=7)),
    ]


def _parallel_cases(scale: str) -> List[Dict]:
    """Worker-scaling column: parallel vs vectorized on finite algebras.

    The naive/incremental baselines are deliberately absent here — at
    these sizes they would dominate the harness runtime without adding
    information; the vectorized engine is the yardstick the parallel
    engine must beat (ISSUE 3 headline: ≥ 2× with ≥ 4 workers on an
    n ≥ 400 finite case).
    """
    hop = HopCountAlgebra(64)

    def w(alg, hi=4):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return []                        # tier-1 smoke stays pool-free
    if scale == "quick":
        return [
            # correctness guard at a size quick can afford; no perf
            # floor is attached at this scale (IPC dominates small n)
            dict(label="gnp-120/hop-count", workers=(2,),
                 net=erdos_renyi(hop, 120, 0.12, w(hop), seed=21)),
        ]
    return [
        # the ISSUE 3 headline acceptance case
        dict(label="gnp-400/hop-count", headline_parallel=True,
             workers=(1, 2, 4),
             net=erdos_renyi(hop, 400, 0.08, w(hop), seed=22)),
        dict(label="gnp-200/hop-count", workers=(2, 4),
             net=erdos_renyi(hop, 200, 0.15, w(hop), seed=23)),
    ]


def _remote_cases(scale: str) -> List[Dict]:
    """Remote column: TCP loopback worker shards vs the vectorized
    engine, plus the wire-efficiency audit (bytes/round, compression).

    No speedup floor is attached — two loopback subprocesses on one
    host measure protocol overhead, not distribution; the claims this
    column carries are bit-identity and wire efficiency.  The headline
    gnp-400 case must keep the delta-encoded format at least
    :data:`REMOTE_COMPRESSION_FLOOR` times smaller than a naive
    full-column transfer.
    """
    hop = HopCountAlgebra(64)

    def w(alg, hi=4):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return []                        # tier-1 smoke stays socket-free
    if scale == "quick":
        return [
            dict(label="gnp-120/hop-count", workers=2,
                 net=erdos_renyi(hop, 120, 0.12, w(hop), seed=21),
                 delta_steps=400),
        ]
    return [
        # the PR 6 headline acceptance case: same topology as the
        # parallel headline, shipped over TCP
        dict(label="gnp-400/hop-count", headline_remote=True, workers=2,
             net=erdos_renyi(hop, 400, 0.08, w(hop), seed=22),
             delta_steps=800),
        dict(label="gnp-200/hop-count", workers=2,
             net=erdos_renyi(hop, 200, 0.15, w(hop), seed=23),
             delta_steps=600),
    ]


def bench_remote_case(case: Dict, repeats: int) -> Dict:
    """Loopback remote run for one finite case: bit-identity vs the
    vectorized engine plus the wire audit.

    Warm-vs-warm as everywhere else: the worker pool is spawned and the
    tables shipped before the timed region, so ``remote_s`` measures
    steady-state rounds (framing + delta-encoded updates over loopback
    TCP), not process spawn or the one-time topology load.  The wire
    stats recorded are from a single representative run (they are
    deterministic per run, unlike the timings).
    """
    import random as _random

    net = case["net"]
    alg = net.algebra
    start = RoutingState.identity(alg, net.n)
    arcs = sum(1 for _ in net.present_edges())

    vec_eng = VectorizedEngine(net)
    iterate_sigma_vectorized(net, start, engine=vec_eng)
    vec_s, vec_res = _time(
        lambda: iterate_sigma_vectorized(net, start, engine=vec_eng),
        repeats)

    row = dict(
        case=case["label"],
        headline_remote=bool(case.get("headline_remote")),
        n=net.n,
        arcs=arcs,
        workers=case["workers"],
        algebra=alg.name,
        rounds=vec_res.rounds,
        vectorized_s=round(vec_s, 6),
    )
    if not supports_remote(alg):         # pragma: no cover - finite cases
        row["skipped"] = "remote engine unsupported for this algebra"
        row["fixed_points_equal"] = True
        return row
    try:
        eng = RemoteVectorizedEngine(net, workers=case["workers"])
    except Exception as exc:             # pragma: no cover - no loopback
        row["skipped"] = f"loopback workers unavailable: {exc}"
        row["fixed_points_equal"] = True
        return row
    try:
        eng.iterate(start)               # spawn pool + ship tables (warm)
        rem_s, rem_res = _time(lambda: eng.iterate(start), repeats)
        sigma_wire = eng.wire_stats.copy()

        sched = RandomSchedule(net.n, seed=17, activation_prob=0.3,
                               max_delay=5)
        dstart = random_state(alg, net.n, _random.Random(1))
        rem_delta = eng.delta(sched, dstart,
                              max_steps=case["delta_steps"])
        delta_wire = eng.wire_stats.copy()
        ipc_commands, ipc_steps = eng.delta_ipc_commands, eng.delta_ipc_steps
    finally:
        eng.close()
    ref_delta = delta_run_vectorized(net, sched, dstart,
                                     max_steps=case["delta_steps"],
                                     engine=vec_eng)

    equal = (rem_res.converged == vec_res.converged and
             rem_res.rounds == vec_res.rounds and
             rem_res.state.equals(vec_res.state, alg) and
             rem_delta.converged == ref_delta.converged and
             rem_delta.converged_at == ref_delta.converged_at and
             rem_delta.state.equals(ref_delta.state, alg))

    # the ceiling the CI smoke gate holds future runs of this exact
    # case to: the delta-encoded updates must stay well under a naive
    # full-column transfer — the full acceptance floor on the headline,
    # the generous quick floor on small cases where sparse-change
    # encoding has less to work with
    floor = (REMOTE_COMPRESSION_FLOOR if case.get("headline_remote")
             else QUICK_REMOTE_COMPRESSION_FLOOR)
    naive_per_round = (sigma_wire.naive_bytes / sigma_wire.rounds
                       if sigma_wire.rounds else 0.0)
    row.update(
        remote_s=round(rem_s, 6),
        vs_vectorized=round(vec_s / rem_s, 2) if rem_s > 0 else None,
        sigma_wire=sigma_wire.as_dict(),
        delta_wire=delta_wire.as_dict(),
        delta_ipc_commands=ipc_commands,
        delta_ipc_steps=ipc_steps,
        compression_ratio=round(sigma_wire.compression_ratio, 2),
        bytes_per_round=round(sigma_wire.bytes_per_round, 1),
        bytes_per_round_ceiling=round(naive_per_round / floor, 1),
        fixed_points_equal=equal,
    )
    return row


def _service_cases(scale: str) -> List[Dict]:
    """Service column (PR 7): the routing daemon under concurrent
    asyncio clients, cold (all cache misses) vs warm (fixed-point
    cache hits).

    The claim this column carries is the tentpole acceptance: repeated
    queries against a warm session must be served from the fixed-point
    cache ≥ :data:`SERVICE_CACHE_FLOOR` times faster (client-observed
    p50) than cold computes, at a reported cache hit ratio, with zero
    server-side errors — plus bit-identity of the served fixed point
    against a direct :class:`~repro.session.RoutingSession` run.
    """
    if scale == "smoke":
        return []                        # tier-1 smoke stays socket-free
    if scale == "quick":
        return [
            dict(label="service-24c/gnp-64/hop-count", scale="quick",
                 algebra="hop-count", topology="random", n=64, seed=5),
        ]
    return [
        # the PR 7 headline acceptance case: hundreds of concurrent
        # asyncio clients against one warm session
        dict(label="service-200c/gnp-96/hop-count", headline_service=True,
             scale="full", algebra="hop-count", topology="random", n=96,
             seed=5),
    ]


def bench_service_case(case: Dict) -> Dict:
    """One cold/warm load-test run (see ``benchmarks/load_test.py``)
    plus the bit-identity cross-check of the served fixed point."""
    try:
        import load_test as _load_test
    except ImportError:                  # imported as a module, not __main__
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import load_test as _load_test
    from repro.service.daemon import _build_network
    from repro.service.protocol import start_state, state_digest

    result = _load_test.run_load_test(
        case["scale"], algebra=case["algebra"], topology=case["topology"],
        seed=case["seed"], n=case["n"])
    # the warm phase queries start_seed=0; a direct session run on an
    # identically-built network must reproduce the served digest
    network, _factory = _build_network(
        case["algebra"], case["topology"], case["n"], case["seed"])
    with RoutingSession(network) as session:
        direct = session.sigma(start_state(network, 0))
    row = dict(case=case["label"],
               headline_service=bool(case.get("headline_service")))
    row.update(result)
    row["fixed_points_equal"] = (
        result["warm_digest"] == state_digest(direct.state))
    return row


def _scenario_cases(scale: str) -> List[Dict]:
    """Scenarios column (PR 10): the (topology × event × algebra)
    reconfiguration survey over the committed corpus.

    The claim this column carries is the scenario tentpole acceptance:
    the whole grid runs offline from committed fixtures with **zero
    failed cells**, and — with the oracle on — every cell's batched
    grid results are bit-identical to a per-trial session replay on an
    independently built network.
    """
    if scale == "smoke":
        return []                        # tier-1 smoke stays survey-free
    if scale == "quick":
        return [
            dict(label="scenarios-2x2x2/corpus", scale="quick",
                 topologies=["corpus:cesnet", "corpus:janet"],
                 events=["link-flap", "del-best-route"],
                 algebras=None, trials=2, seed=0),
        ]
    return [
        # the PR 10 headline acceptance grid: every registry topology ×
        # all five events × both finite algebras, oracle-checked
        dict(label="scenarios-10x5x2/full-grid", headline_scenarios=True,
             scale="full", topologies=None, events=None, algebras=None,
             trials=4, seed=0),
    ]


def bench_scenario_case(case: Dict) -> Dict:
    """One oracle-checked survey grid (see ``repro.scenarios.survey``)."""
    from repro.scenarios import run_survey

    report = run_survey(
        topologies=case["topologies"], events=case["events"],
        algebras=case["algebras"], seed=case["seed"],
        trials=case["trials"], oracle=True)
    failed = report.failed
    churn = sum(c.total_churn for c in report.cells if c.ok)
    return dict(
        case=case["label"],
        headline_scenarios=bool(case.get("headline_scenarios")),
        cells=len(report.cells),
        failed_cells=len(failed),
        failures=[f"{c.topology}×{c.event}×{c.algebra}: {c.error}"
                  for c in failed[:5]],
        oracle_checked=sum(1 for c in report.cells if c.oracle_checked),
        total_churn=churn,
        elapsed_s=round(report.elapsed_s, 3),
        # acceptance: zero failed cells and every checked cell's
        # batched grid bit-identical to the per-trial session replay
        fixed_points_equal=(not failed and all(
            c.oracle_ok for c in report.cells if c.oracle_checked)))


def _fault_cases(scale: str) -> List[Dict]:
    """Faults column (PR 8): time-to-heal after a worker kill.

    The claim this column carries is the self-healing tentpole: a
    killed loopback worker mid-run is respawned, the interrupted run
    resumes, and the fixed point stays bit-identical to the fault-free
    run — with the heal fast (tens of ms, recorded as p50/p99 over
    repeated kill cycles from ``DegradedEvent.heal_ms``).
    """
    hop = HopCountAlgebra(64)

    def w(alg, hi=4):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return []                        # tier-1 smoke stays socket-free
    if scale == "quick":
        return [
            dict(label="heal-kill/gnp-120/hop-count", workers=2, kills=3,
                 net=erdos_renyi(hop, 120, 0.12, w(hop), seed=21)),
        ]
    return [
        dict(label="heal-kill/gnp-200/hop-count", headline_faults=True,
             workers=2, kills=8,
             net=erdos_renyi(hop, 200, 0.15, w(hop), seed=23)),
    ]


def bench_fault_case(case: Dict) -> Dict:
    """Repeated kill → heal → re-run cycles against one loopback pool.

    Each cycle kills one worker process, re-runs the σ fixed point
    (the supervisor detects the dead shard, respawns the pool, resumes
    from its barrier snapshot) and asserts bit-identity against the
    vectorized reference.  ``heal_ms`` aggregates the supervisor's own
    per-event heal timings.
    """
    net = case["net"]
    alg = net.algebra
    start = RoutingState.identity(alg, net.n)
    ref = iterate_sigma_vectorized(net, start)
    row = dict(case=case["label"],
               headline_faults=bool(case.get("headline_faults")),
               n=net.n, workers=case["workers"], kills=case["kills"])
    try:
        eng = RemoteVectorizedEngine(net, workers=case["workers"],
                                     socket_timeout=10.0)
    except Exception as exc:             # pragma: no cover - no loopback
        row["skipped"] = f"loopback workers unavailable: {exc}"
        row["fixed_points_equal"] = True
        return row
    heal_ms: List[float] = []
    codes: List[str] = []
    equal = True
    try:
        eng.iterate(start)               # spawn pool + ship tables (warm)
        for k in range(case["kills"]):
            victim = eng._res.procs[k % len(eng._res.procs)]
            victim.kill()
            victim.join(timeout=30)
            res = eng.iterate(start)
            equal = equal and (res.converged == ref.converged and
                               res.rounds == ref.rounds and
                               res.state.equals(ref.state, alg))
            heal_ms.extend(ev.heal_ms for ev in eng.degraded
                           if ev.heal_ms is not None)
            codes.extend(ev.code for ev in eng.degraded)
    finally:
        eng.close()
    from repro.service.protocol import percentile
    row.update(
        heals=len(heal_ms),
        degraded_codes=sorted(set(codes)),
        heal_ms={"p50": round(percentile(heal_ms, 50.0), 3),
                 "p99": round(percentile(heal_ms, 99.0), 3),
                 "count": len(heal_ms)},
        healed_every_kill=(len(heal_ms) >= case["kills"] and
                           set(codes) == {"worker-respawned"}),
        fixed_points_equal=equal,
    )
    return row


def _dense_schedules(n: int):
    """High-activation-rate schedule panel for the batched-grid column.

    The communication-amortisation case the batched engine exists for:
    every-step (or near-every-step) activations whose per-trial Python
    loop cost is pure interpreter overhead.  The sparse adversarial
    schedule is measured separately in the zoo row — its near-empty
    steps cost both execution shapes the same, so it dilutes rather
    than informs the headline.
    """
    return [
        SynchronousSchedule(n),
        FixedDelaySchedule(n, delay=2),
        RandomSchedule(n, seed=0, activation_prob=0.4, max_delay=4),
        RandomSchedule(n, seed=1, activation_prob=0.8, max_delay=7),
    ]


def _batched_cases(scale: str) -> List[Dict]:
    """Batched-grid column: the absolute-convergence grid as one tensor
    workload vs the per-trial vectorized loop (both warm, same shared
    serial engine for the loop — the production ``engine="vectorized"``
    experiment path)."""
    hop = HopCountAlgebra(64)

    def w(alg, hi=4):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return []                        # tier-1 smoke stays tiny
    if scale == "quick":
        return [
            # correctness guard at a size quick can afford; only a
            # catastrophic floor applies at this scale
            dict(label="gnp-40/hop-count/grid-8", n_starts=2,
                 net=erdos_renyi(hop, 40, 0.25, w(hop), seed=31),
                 schedules=_dense_schedules, max_steps=1000),
        ]
    return [
        # the ISSUE 4 headline acceptance case: >= 16 trials, dense
        # schedules, n=100 hop-count
        dict(label="gnp-100/hop-count/dense-grid-16",
             headline_batched=True, n_starts=4,
             net=erdos_renyi(hop, 100, 0.25, w(hop), seed=8),
             schedules=_dense_schedules, max_steps=2000),
        # the full paper-faithful zoo (incl. the sparse adversarial
        # schedule whose near-empty tail steps cost both shapes the
        # same) — recorded for honesty, no floor attached
        dict(label="gnp-100/hop-count/zoo-grid-22", n_starts=2,
             net=erdos_renyi(hop, 100, 0.25, w(hop), seed=8),
             schedules=lambda n: schedule_zoo(n), max_steps=2000),
    ]


def _delta_cases(scale: str) -> List[Dict]:
    sp = ShortestPathsAlgebra()
    hop = HopCountAlgebra(64)

    def w(alg, hi=20):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return [
            dict(label="gnp-10/shortest-paths/random-sched",
                 net=erdos_renyi(sp, 10, 0.3, w(sp), seed=11),
                 schedule=lambda n: RandomSchedule(n, seed=3, max_delay=4),
                 max_steps=300),
        ]
    if scale == "quick":
        return [
            dict(label="gnp-16/shortest-paths/random-sched",
                 net=erdos_renyi(sp, 16, 0.2, w(sp), seed=11),
                 schedule=lambda n: RandomSchedule(n, seed=3, max_delay=5),
                 max_steps=600),
            dict(label="ring-12/hop-count/fixed-delay",
                 net=ring(hop, 12, w(hop, 4), seed=12),
                 schedule=lambda n: FixedDelaySchedule(n, delay=4),
                 max_steps=400),
        ]
    return [
        dict(label="gnp-30/shortest-paths/random-sched",
             net=erdos_renyi(sp, 30, 0.12, w(sp), seed=11),
             schedule=lambda n: RandomSchedule(n, seed=3, max_delay=5),
             max_steps=1200),
        dict(label="ring-20/hop-count/fixed-delay",
             net=ring(hop, 20, w(hop, 4), seed=12),
             schedule=lambda n: FixedDelaySchedule(n, delay=4),
             max_steps=800),
        dict(label="gnp-30/shortest-paths/fixed-delay",
             net=erdos_renyi(sp, 30, 0.12, w(sp), seed=13),
             schedule=lambda n: FixedDelaySchedule(n, delay=6),
             max_steps=1200),
    ]


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------


def bench_sigma_case(case: Dict, repeats: int) -> Dict:
    net = case["net"]
    alg = net.algebra
    start = RoutingState.identity(alg, net.n)
    arcs = sum(1 for _ in net.present_edges())

    naive_s, naive_res = _time(
        lambda: naive_engine.iterate_sigma_naive(net, start), repeats)
    # timed through the public facade: the committed baselines gate
    # "no regression from the session layer" directly
    with RoutingSession(net, EngineSpec("incremental")) as ses:
        inc_s, inc_res = _time(lambda: ses.sigma(start).result, repeats)

    equal = (naive_res.converged == inc_res.converged and
             naive_res.rounds == inc_res.rounds and
             naive_res.state.equals(inc_res.state, alg))

    vec_s = vec_speedup = vec_vs_inc = None
    if supports_vectorized(alg):
        with RoutingSession(net, EngineSpec("vectorized")) as ses:
            vec_s, vec_res = _time(lambda: ses.sigma(start).result, repeats)
        equal = (equal and
                 vec_res.converged == inc_res.converged and
                 vec_res.rounds == inc_res.rounds and
                 vec_res.state.equals(inc_res.state, alg))
        if vec_s > 0:
            vec_speedup = round(naive_s / vec_s, 2)
            vec_vs_inc = round(inc_s / vec_s, 2)
        vec_s = round(vec_s, 6)
    return dict(
        case=case["label"],
        headline=bool(case.get("headline")),
        headline_finite=bool(case.get("headline_finite")),
        n=net.n,
        arcs=arcs,
        algebra=alg.name,
        converged=inc_res.converged,
        rounds=inc_res.rounds,
        naive_s=round(naive_s, 6),
        incremental_s=round(inc_s, 6),
        speedup=round(naive_s / inc_s, 2) if inc_s > 0 else None,
        vectorized_s=vec_s,
        vectorized_speedup=vec_speedup,
        vectorized_vs_incremental=vec_vs_inc,
        fixed_points_equal=equal,
    )


def bench_delta_case(case: Dict, repeats: int) -> Dict:
    net = case["net"]
    alg = net.algebra
    sched = case["schedule"](net.n)
    start = RoutingState.identity(alg, net.n)
    max_steps = case["max_steps"]

    naive_s, naive_res = _time(
        lambda: naive_engine.delta_run_naive(net, sched, start,
                                             max_steps=max_steps), repeats)
    with RoutingSession(net, EngineSpec("incremental")) as ses:
        bounded_s, bounded_res = _time(
            lambda: ses.delta(sched, start, max_steps=max_steps).result,
            repeats)

    equal = (naive_res.converged == bounded_res.converged and
             naive_res.state.equals(bounded_res.state, alg))

    vec_s = vec_speedup = None
    if supports_vectorized(alg):
        with RoutingSession(net, EngineSpec("vectorized")) as ses:
            vec_s, vec_res = _time(
                lambda: ses.delta(sched, start,
                                  max_steps=max_steps).result, repeats)
        equal = (equal and
                 vec_res.converged == bounded_res.converged and
                 vec_res.state.equals(bounded_res.state, alg))
        if vec_s > 0:
            vec_speedup = round(naive_s / vec_s, 2)
        vec_s = round(vec_s, 6)
    mrb = sched.max_read_back() or 1
    return dict(
        case=case["label"],
        n=net.n,
        algebra=alg.name,
        schedule=repr(sched),
        converged=bounded_res.converged,
        steps=bounded_res.steps,
        naive_s=round(naive_s, 6),
        bounded_s=round(bounded_s, 6),
        speedup=round(naive_s / bounded_s, 2) if bounded_s > 0 else None,
        vectorized_s=vec_s,
        vectorized_speedup=vec_speedup,
        max_read_back=mrb,
        naive_history_retained=naive_res.history_retained,
        bounded_history_retained=bounded_res.history_retained,
        memory_bounded=bounded_res.history_retained <= mrb + 2,
        fixed_points_equal=equal,
    )


def bench_parallel_case(case: Dict, repeats: int) -> Dict:
    """Vectorized-vs-parallel worker scaling for one finite case.

    Pools are prebuilt and reused across timing repeats, so the numbers
    measure steady-state rounds (the deployment shape: one long-lived
    pool serving many iterations), not process spawn.  On hosts that
    cannot demonstrate fan-out (single core) the timing sweep is
    skipped cleanly, but engine agreement is still verified with a
    2-worker pool so the committed report always carries correctness
    evidence for the parallel engine.
    """
    net = case["net"]
    alg = net.algebra
    start = RoutingState.identity(alg, net.n)
    arcs = sum(1 for _ in net.present_edges())
    cpus = usable_cpus()

    # warm-vs-warm: prebuild (and warm) the vectorized engine so the
    # baseline measures steady-state rounds, exactly like the pool side
    # below — timing engine construction/encoding on one side only
    # would bias the ratio
    vec_eng = VectorizedEngine(net)
    iterate_sigma_vectorized(net, start, engine=vec_eng)
    vec_s, vec_res = _time(
        lambda: iterate_sigma_vectorized(net, start, engine=vec_eng),
        repeats)

    def check(res):
        return (res.converged == vec_res.converged and
                res.rounds == vec_res.rounds and
                res.state.equals(vec_res.state, alg))

    row = dict(
        case=case["label"],
        headline_parallel=bool(case.get("headline_parallel")),
        n=net.n,
        arcs=arcs,
        algebra=alg.name,
        rounds=vec_res.rounds,
        vectorized_s=round(vec_s, 6),
    )
    if not supports_parallel(alg):       # pragma: no cover - finite cases
        row["skipped"] = "parallel engine unsupported on this host"
        row["fixed_points_equal"] = True
        return row

    if cpus < 2:
        # single-core runner: a timing sweep would only measure
        # oversubscription; verify agreement and skip the scaling claim
        with ParallelVectorizedEngine(net, workers=2) as eng:
            res = iterate_sigma_parallel(net, start, engine=eng)
        row["skipped"] = (f"single-core host (usable_cpus()={cpus}): "
                          "worker scaling not measurable")
        row["fixed_points_equal"] = check(res)
        return row

    scaling = []
    equal = True
    best = None
    for workers in case["workers"]:
        if workers <= 1:
            # the 1-worker point of the scaling curve *is* the serial
            # vectorized engine (the selector falls back to it)
            scaling.append(dict(workers=1, parallel_s=round(vec_s, 6),
                                vs_vectorized=1.0))
            continue
        with ParallelVectorizedEngine(net, workers=workers) as eng:
            # warm-up: the pool starts lazily on first use — spawn the
            # workers and publish the tables outside the timed region,
            # as the docstring's steady-state claim requires
            iterate_sigma_parallel(net, start, engine=eng)
            par_s, par_res = _time(
                lambda: iterate_sigma_parallel(net, start, engine=eng),
                repeats)
        equal = equal and check(par_res)
        ratio = round(vec_s / par_s, 2) if par_s > 0 else None
        if ratio is not None:
            best = ratio if best is None else max(best, ratio)
        scaling.append(dict(workers=workers,
                            parallel_s=round(par_s, 6),
                            vs_vectorized=ratio))
    row["scaling"] = scaling
    row["best_vs_vectorized"] = best
    row["fixed_points_equal"] = equal
    return row


def bench_batched_case(case: Dict, repeats: int) -> Dict:
    """Batched grid vs per-trial vectorized loop for one trial grid.

    Warm-vs-warm: the loop reuses one prebuilt serial engine across
    trials (exactly the ``absolute_convergence_experiment``
    ``engine="vectorized"`` path), the batched engine is prebuilt and
    warmed the same way, and both execute the identical (schedule ×
    start) trials to identical results — every trial's convergence
    step and fixed point is cross-checked between the two shapes.
    """
    import random as _random

    net = case["net"]
    alg = net.algebra
    n = net.n
    rng = _random.Random(0)
    starts = [RoutingState.identity(alg, n)]
    starts += [random_state(alg, n, rng)
               for _ in range(case["n_starts"] - 1)]
    schedules = case["schedules"](n)
    trials = [(sched, start) for start in starts for sched in schedules]
    max_steps = case["max_steps"]

    vec_eng = VectorizedEngine(net)

    def loop():
        return [delta_run_vectorized(net, sched, start,
                                     max_steps=max_steps, engine=vec_eng)
                for (sched, start) in trials]

    loop()                               # warm tables/encodings
    loop_s, loop_res = _time(loop, repeats)

    bat_eng = BatchedVectorizedEngine(net)
    bat_eng.delta_grid(trials, max_steps=max_steps)   # warm
    bat_s, bat_res = _time(
        lambda: bat_eng.delta_grid(trials, max_steps=max_steps), repeats)

    equal = all(
        a.converged == b.converged and a.converged_at == b.converged_at
        and a.state.equals(b.state, alg)
        for a, b in zip(loop_res, bat_res))
    return dict(
        case=case["label"],
        headline_batched=bool(case.get("headline_batched")),
        n=n,
        trials=len(trials),
        algebra=alg.name,
        all_converged=all(r.converged for r in bat_res),
        loop_s=round(loop_s, 6),
        batched_s=round(bat_s, 6),
        batched_vs_loop=round(loop_s / bat_s, 2) if bat_s > 0 else None,
        fixed_points_equal=equal,
    )


def bench_windowed_ipc(scale: str) -> Optional[Dict]:
    """Windowed parallel δ: IPC commands per schedule step at the
    default window (16) — the ROADMAP "Parallel δ batching" closure.

    The ratio is a protocol property, not a hardware one, so it is
    measured whenever a 2-worker pool can run at all (single-CPU hosts
    included) and gated at ≥ 8× on runs long enough to amortise.
    """
    hop = HopCountAlgebra(64)
    if scale == "smoke" or not supports_parallel(hop):
        return None
    import random as _random

    n = 60 if scale == "quick" else 120
    net = erdos_renyi(hop, n, 0.15, uniform_weight_factory(hop, 1, 4),
                      seed=41)
    # a garbage start and sparse activations keep the run past the
    # 4-window amortisation threshold the gate requires
    start = random_state(hop, n, _random.Random(1))
    sched = RandomSchedule(n, seed=17, activation_prob=0.1, max_delay=8)
    with ParallelVectorizedEngine(net, workers=2) as eng:
        res = eng.delta(sched, start, max_steps=800)
        serial = delta_run_vectorized(net, sched, start, max_steps=800)
        commands, steps = eng.delta_ipc_commands, eng.delta_ipc_steps
    from repro.core import DELTA_WINDOW

    return dict(
        case=f"gnp-{n}/hop-count/windowed-delta",
        window=DELTA_WINDOW,
        delta_steps=steps,
        ipc_commands=commands,
        steps_per_command=round(steps / commands, 2) if commands else None,
        fixed_points_equal=(res.converged == serial.converged
                            and res.converged_at == serial.converged_at
                            and res.state.equals(serial.state, net.algebra)),
    )


def run_suite(scale: str = "full", repeats: Optional[int] = None) -> Dict:
    """Run every case at ``scale`` ∈ {smoke, quick, full}; return the report."""
    if scale not in ("smoke", "quick", "full"):
        raise ValueError(f"unknown scale {scale!r}")
    if repeats is None:
        repeats = 2 if scale == "full" else 1
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    parallel_cases = _parallel_cases(scale)
    report = {
        "meta": {
            "scale": scale,
            "repeats": repeats,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
            # the empirical probes only run when the scale has a
            # parallel column (smoke stays probe- and pool-free)
            "usable_cpus": usable_cpus() if parallel_cases
            else (os.cpu_count() or 1),
            "sigma_kernel_ceiling": (
                sigma_kernel_ceiling(parallel_cases[0]["net"])
                if parallel_cases and usable_cpus() >= 2 else None),
            "engine": "incremental (PR 1) + vectorized finite-algebra "
                      "(PR 2) + shared-memory parallel (PR 3) + batched "
                      "multi-trial grid (PR 4) + TCP-sharded remote "
                      "(PR 6) + routing service daemon (PR 7) + "
                      "scenario reconfiguration harness (PR 10)",
            "baseline": "frozen seed engine (benchmarks/naive_engine.py)",
        },
        "sigma": [bench_sigma_case(c, repeats) for c in _sigma_cases(scale)],
        "delta": [bench_delta_case(c, repeats) for c in _delta_cases(scale)],
        "parallel": [bench_parallel_case(c, repeats)
                     for c in parallel_cases],
        "batched": [bench_batched_case(c, repeats)
                    for c in _batched_cases(scale)],
        "remote": [bench_remote_case(c, repeats)
                   for c in _remote_cases(scale)],
        "service": [bench_service_case(c) for c in _service_cases(scale)],
        "faults": [bench_fault_case(c) for c in _fault_cases(scale)],
        "scenarios": [bench_scenario_case(c)
                      for c in _scenario_cases(scale)],
    }
    ipc = bench_windowed_ipc(scale)
    report["windowed_ipc"] = [ipc] if ipc else []
    rows = (report["sigma"] + report["delta"] + report["parallel"] +
            report["batched"] + report["remote"] + report["service"] +
            report["faults"] + report["scenarios"] +
            report["windowed_ipc"])
    report["meta"]["all_fixed_points_equal"] = all(
        r["fixed_points_equal"] for r in rows)
    return report


def _fmt_speedup(speedup) -> str:
    # speedup is None when the new-engine timing underflowed the clock
    return f"{speedup:>7.1f}x" if speedup is not None else f"{'—':>8}"


def _fmt_seconds(value) -> str:
    return f"{value:>10.4f}" if value is not None else f"{'—':>10}"


def _print_report(report: Dict) -> None:
    print(f"engine benchmark — scale={report['meta']['scale']} "
          f"(best of {report['meta']['repeats']})")
    print(f"{'case':<40} {'rounds':>6} {'old (s)':>10} {'new (s)':>10} "
          f"{'vec (s)':>10} {'speedup':>8} {'vec/inc':>8}  ok")
    for r in report["sigma"]:
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = ("*" if r["headline"] else
                "†" if r.get("headline_finite") else " ")
        print(f"{r['case']:<39}{star} {r['rounds']:>6} {r['naive_s']:>10.4f} "
              f"{r['incremental_s']:>10.4f} {_fmt_seconds(r['vectorized_s'])} "
              f"{_fmt_speedup(r['speedup'])} "
              f"{_fmt_speedup(r.get('vectorized_vs_incremental'))}  {mark}")
    for r in report["delta"]:
        mark = "✓" if r["fixed_points_equal"] and r["memory_bounded"] else "✗"
        print(f"{r['case']:<40} {r['steps']:>6} {r['naive_s']:>10.4f} "
              f"{r['bounded_s']:>10.4f} {_fmt_seconds(r['vectorized_s'])} "
              f"{_fmt_speedup(r['speedup'])} {'':>8}  {mark} "
              f"(history {r['naive_history_retained']} → "
              f"{r['bounded_history_retained']}, bound "
              f"{r['max_read_back'] + 2})")
    for r in report["parallel"]:
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = "‡" if r.get("headline_parallel") else " "
        if r.get("skipped"):
            print(f"{r['case']:<39}{star} parallel scaling skipped: "
                  f"{r['skipped']} (agreement {mark})")
            continue
        curve = "  ".join(
            f"{p['workers']}w {_fmt_speedup(p['vs_vectorized']).strip()}"
            for p in r["scaling"])
        print(f"{r['case']:<39}{star} {r['rounds']:>6} "
              f"{_fmt_seconds(r['vectorized_s'])} (vec)  {curve}  {mark}")
    for r in report.get("batched", []):
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = "§" if r.get("headline_batched") else " "
        print(f"{r['case']:<39}{star} {r['trials']:>3} trials "
              f"{_fmt_seconds(r['loop_s'])} (loop) "
              f"{_fmt_seconds(r['batched_s'])} (batched) "
              f"{_fmt_speedup(r['batched_vs_loop'])}  {mark}")
    for r in report.get("remote", []):
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = "¶" if r.get("headline_remote") else " "
        if r.get("skipped"):
            print(f"{r['case']:<39}{star} remote column skipped: "
                  f"{r['skipped']} (agreement {mark})")
            continue
        print(f"{r['case']:<39}{star} {r['rounds']:>6} "
              f"{_fmt_seconds(r['vectorized_s'])} (vec) "
              f"{_fmt_seconds(r['remote_s'])} ({r['workers']}w tcp)  "
              f"{r['bytes_per_round']:.0f} B/round "
              f"(ceiling {r['bytes_per_round_ceiling']:.0f}), "
              f"compression {r['compression_ratio']}x  {mark}")
    for r in report.get("service", []):
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = "∥" if r.get("headline_service") else " "
        print(f"{r['case']:<39}{star} {r['clients']:>4} clients  "
              f"cold p50 {r['cold_ms']['p50']:>8.2f} ms  "
              f"warm p50 {r['warm_ms']['p50']:>7.3f} ms  "
              f"{_fmt_speedup(r['cache_hit_speedup'])} "
              f"(hit ratio {r['cache_hit_ratio']}, "
              f"{r['server_errors']} errors)  {mark}")
    for r in report.get("faults", []):
        mark = ("✓" if r["fixed_points_equal"] and
                r.get("healed_every_kill") else "✗ MISMATCH")
        star = "☠" if r.get("headline_faults") else " "
        if r.get("skipped"):
            print(f"{r['case']:<39}{star} faults column skipped: "
                  f"{r['skipped']} (agreement {mark})")
            continue
        print(f"{r['case']:<39}{star} {r['kills']:>3} kills  "
              f"{r['heals']:>3} heals  "
              f"time-to-heal p50 {r['heal_ms']['p50']:>7.1f} ms  "
              f"p99 {r['heal_ms']['p99']:>7.1f} ms  {mark}")
    for r in report.get("scenarios", []):
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = "⟲" if r.get("headline_scenarios") else " "
        print(f"{r['case']:<39}{star} {r['cells']:>4} cells  "
              f"{r['failed_cells']} failed  "
              f"{r['oracle_checked']} oracle-checked  "
              f"churn {r['total_churn']}  "
              f"{r['elapsed_s']:>7.2f}s  {mark}")
    for r in report.get("windowed_ipc", []):
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        print(f"{r['case']:<40} {r['delta_steps']:>4} δ steps in "
              f"{r['ipc_commands']:>3} IPC commands "
              f"({r['steps_per_command']}x amortised, window="
              f"{r['window']})  {mark}")
    print("  * = PR 1 headline (n=100 sparse random)   "
          "† = PR 2 finite headline (vectorized vs incremental)   "
          "‡ = PR 3 parallel headline (n≥400, workers vs vectorized)   "
          "§ = PR 4 batched-grid headline (tensor grid vs per-trial loop)   "
          "¶ = PR 6 remote headline (wire compression vs naive transfer)   "
          "∥ = PR 7 service headline (warm-cache hits vs cold computes)   "
          "☠ = PR 8 faults headline (time-to-heal after a worker kill)   "
          "⟲ = PR 10 scenarios headline (oracle-checked reconfiguration "
          "survey grid)")


# ----------------------------------------------------------------------
# Baseline regression (the --quick gate)
# ----------------------------------------------------------------------

#: acceptance floor for the committed full run: the n=100 finite
#: headline must show the vectorized engine ≥ 3× the incremental one.
HEADLINE_VEC_FLOOR = 3.0
#: guard for the quick-scale finite case in the *current* run: generous
#: (timing noise, tiny cases), catches only catastrophic regressions.
QUICK_VEC_FLOOR = 0.8
#: acceptance floor for the committed parallel headline (n ≥ 400,
#: ≥ 4 workers vs the vectorized engine) — only enforceable when the
#: committed baseline was produced on a multi-core host.
PARALLEL_HEADLINE_FLOOR = 2.0
#: a baseline recorded on fewer CPUs than this cannot carry the
#: parallel scaling claim; the gate skips the floor check cleanly.
PARALLEL_MIN_BASELINE_CPUS = 4
#: catastrophic-only floor for the *current* quick run's parallel rows:
#: small quick-scale cases are IPC-dominated and noisy, so only a
#: several-fold slowdown (an actual engine regression, not scheduling
#: jitter) fails the gate.
QUICK_PARALLEL_FLOOR = 0.25
#: acceptance floor for the committed batched-grid headline: the n=100
#: hop-count dense grid (>= 16 trials) must run >= 3x faster batched
#: than through the per-trial vectorized loop.
BATCHED_HEADLINE_FLOOR = 3.0
#: catastrophic-only floor for the current quick run's batched row.
QUICK_BATCHED_FLOOR = 0.5
#: windowed parallel δ must amortise at least this many schedule steps
#: per IPC command at the default window (16) on an amortisable run.
WINDOWED_IPC_FLOOR = 8.0
#: acceptance floor for the committed remote headline (gnp-400
#: hop-count): the delta-encoded quantized σ updates must be at least
#: this many times smaller than a naive full-column transfer.
REMOTE_COMPRESSION_FLOOR = 4.0
#: generous floor for small quick-scale remote cases, where a single
#: round touches most columns and sparse-change encoding has less to
#: exploit; catches only a broken codec, not small-n geometry.
QUICK_REMOTE_COMPRESSION_FLOOR = 2.0

#: acceptance floor for the committed full run: the 200-client service
#: headline must serve repeated queries from the warm fixed-point
#: cache at least 5x faster (client-observed p50) than cold computes.
SERVICE_CACHE_FLOOR = 5.0

#: catastrophic floor for the current quick run's smaller fleet — a
#: cache hit that is not clearly cheaper than a fixed-point compute
#: means the cache (or the event loop) is broken, not merely noisy.
QUICK_SERVICE_CACHE_FLOOR = 2.0

#: ceiling on the committed faults headline's p99 time-to-heal after a
#: worker kill: respawning two loopback workers and re-shipping the
#: tables is tens of ms; a heal slower than this means the supervisor
#: is thrashing (retry storms, leaked pools), not recovering.
FAULT_HEAL_P99_CEILING_MS = 5000.0


def regress_against_baseline(report: Dict, baseline_path: Path) -> List[str]:
    """Compare a quick run against the committed full-run baseline.

    Returns a list of human-readable problems (empty = pass).  The
    committed numbers carry the acceptance claims, so they are checked
    structurally; the current run is checked for correctness on every
    row and for a catastrophic vectorized slowdown on its finite
    headline case.
    """
    problems: List[str] = []
    if not baseline_path.exists():
        return [f"no committed baseline at {baseline_path}; "
                "run the full suite first"]
    baseline = json.loads(baseline_path.read_text())

    if not baseline.get("meta", {}).get("all_fixed_points_equal"):
        problems.append("baseline records an engine disagreement")
    base_sigma = baseline.get("sigma", [])
    vec_rows = [r for r in base_sigma
                if r.get("vectorized_vs_incremental") is not None]
    if not vec_rows:
        problems.append("baseline has no vectorized column; "
                        "re-run the full suite")
    for r in base_sigma:
        if r.get("headline_finite"):
            ratio = r.get("vectorized_vs_incremental") or 0.0
            if ratio < HEADLINE_VEC_FLOOR:
                problems.append(
                    f"baseline {r['case']}: vectorized only {ratio}x over "
                    f"incremental (< {HEADLINE_VEC_FLOOR}x acceptance floor)")

    # -- parallel column (PR 3) -----------------------------------------
    base_parallel = baseline.get("parallel", [])
    base_meta = baseline.get("meta", {})
    if not base_parallel:
        problems.append("baseline has no parallel column; "
                        "re-run the full suite")
    else:
        floor, reason = parallel_floor(base_meta)
        if floor is None:
            print(f"  (parallel scaling floor not enforced: {reason})")
        else:
            print(f"  (parallel scaling floor {floor}x — {reason})")
            for r in base_parallel:
                if not r.get("headline_parallel") or r.get("skipped"):
                    continue
                points = [p for p in r.get("scaling", [])
                          if p["workers"] >= 4 and p["vs_vectorized"]]
                best = max((p["vs_vectorized"] for p in points), default=0.0)
                if best < floor:
                    problems.append(
                        f"baseline {r['case']}: parallel only {best}x over "
                        f"vectorized with >= 4 workers (< {floor}x floor)")
    for r in base_parallel:
        if not r.get("fixed_points_equal", True):
            problems.append(
                f"baseline {r['case']}: parallel engine disagreement")

    # -- batched column (PR 4) ------------------------------------------
    base_batched = baseline.get("batched", [])
    if not base_batched:
        problems.append("baseline has no batched column; "
                        "re-run the full suite")
    for r in base_batched:
        if not r.get("fixed_points_equal", True):
            problems.append(
                f"baseline {r['case']}: batched engine disagreement")
        if r.get("headline_batched"):
            ratio = r.get("batched_vs_loop") or 0.0
            if r.get("trials", 0) < 16:
                problems.append(
                    f"baseline {r['case']}: batched headline has only "
                    f"{r.get('trials')} trials (< 16)")
            if ratio < BATCHED_HEADLINE_FLOOR:
                problems.append(
                    f"baseline {r['case']}: batched only {ratio}x over the "
                    f"per-trial loop (< {BATCHED_HEADLINE_FLOOR}x "
                    "acceptance floor)")
    for r in baseline.get("windowed_ipc", []):
        ratio = r.get("steps_per_command") or 0.0
        if r.get("delta_steps", 0) >= 4 * r.get("window", 16) and \
                ratio < WINDOWED_IPC_FLOOR:
            problems.append(
                f"baseline {r['case']}: windowed δ amortises only "
                f"{ratio} steps/command (< {WINDOWED_IPC_FLOOR})")

    # -- remote column (PR 6) -------------------------------------------
    base_remote = baseline.get("remote", [])
    if not base_remote:
        problems.append("baseline has no remote column; "
                        "re-run the full suite")
    for r in base_remote:
        if not r.get("fixed_points_equal", True):
            problems.append(
                f"baseline {r['case']}: remote engine disagreement")
        if r.get("headline_remote") and not r.get("skipped"):
            ratio = r.get("compression_ratio") or 0.0
            if ratio < REMOTE_COMPRESSION_FLOOR:
                problems.append(
                    f"baseline {r['case']}: remote updates only {ratio}x "
                    f"smaller than naive full-column transfer "
                    f"(< {REMOTE_COMPRESSION_FLOOR}x acceptance floor)")

    # -- service column (PR 7) ------------------------------------------
    base_service = baseline.get("service", [])
    if not base_service:
        problems.append("baseline has no service column; "
                        "re-run the full suite")
    for r in base_service:
        if not r.get("fixed_points_equal", True):
            problems.append(
                f"baseline {r['case']}: served fixed point disagrees "
                "with a direct session run")
        if r.get("server_errors"):
            problems.append(
                f"baseline {r['case']}: daemon reported "
                f"{r['server_errors']} request errors under load")
        if r.get("headline_service"):
            ratio = r.get("cache_hit_speedup") or 0.0
            if ratio < SERVICE_CACHE_FLOOR:
                problems.append(
                    f"baseline {r['case']}: warm-cache queries only "
                    f"{ratio}x faster than cold computes "
                    f"(< {SERVICE_CACHE_FLOOR}x acceptance floor)")
            if r.get("clients", 0) < 100:
                problems.append(
                    f"baseline {r['case']}: service headline ran only "
                    f"{r.get('clients')} concurrent clients (< 100)")

    # -- scenarios column (PR 10) ---------------------------------------
    base_scenarios = baseline.get("scenarios", [])
    if not base_scenarios:
        problems.append("baseline has no scenarios column; "
                        "re-run the full suite")
    for r in base_scenarios:
        if r.get("failed_cells"):
            problems.append(
                f"baseline {r['case']}: {r['failed_cells']} failed "
                f"survey cells (first: {(r.get('failures') or ['?'])[0]})")
        if not r.get("fixed_points_equal", True):
            problems.append(
                f"baseline {r['case']}: batched survey grids disagree "
                "with per-trial session replay")
        if r.get("headline_scenarios") and \
                r.get("oracle_checked", 0) < 48:
            problems.append(
                f"baseline {r['case']}: headline grid oracle-checked "
                f"only {r.get('oracle_checked')} cells "
                "(< the 6×4×2 acceptance floor)")

    # -- faults column (PR 8) -------------------------------------------
    base_faults = baseline.get("faults", [])
    if not base_faults:
        problems.append("baseline has no faults column; "
                        "re-run the full suite")
    for r in base_faults:
        if r.get("skipped"):
            continue
        if not r.get("fixed_points_equal", True):
            problems.append(
                f"baseline {r['case']}: healed runs disagree with the "
                "fault-free fixed point")
        if not r.get("healed_every_kill", True):
            problems.append(
                f"baseline {r['case']}: only {r.get('heals')} heals for "
                f"{r.get('kills')} worker kills")
        if r.get("headline_faults"):
            p99 = (r.get("heal_ms") or {}).get("p99", 0.0)
            if p99 > FAULT_HEAL_P99_CEILING_MS:
                problems.append(
                    f"baseline {r['case']}: p99 time-to-heal {p99} ms "
                    f"(> {FAULT_HEAL_P99_CEILING_MS} ms ceiling)")

    for r in (report["sigma"] + report["delta"] + report["parallel"] +
              report.get("batched", []) + report.get("remote", []) +
              report.get("service", []) + report.get("faults", []) +
              report.get("scenarios", []) +
              report.get("windowed_ipc", [])):
        if not r["fixed_points_equal"]:
            problems.append(f"current run: engines disagree on {r['case']}")
    for r in report.get("scenarios", []):
        if r.get("failed_cells"):
            problems.append(
                f"current run: {r['failed_cells']} failed survey cells "
                f"on {r['case']} "
                f"(first: {(r.get('failures') or ['?'])[0]})")
    for r in report.get("faults", []):
        if not r.get("skipped") and not r.get("healed_every_kill", True):
            problems.append(
                f"current run: {r['case']} recorded only "
                f"{r.get('heals')} heals for {r.get('kills')} kills")
    for r in report.get("batched", []):
        ratio = r.get("batched_vs_loop")
        if ratio is not None and ratio < QUICK_BATCHED_FLOOR:
            problems.append(
                f"current run: batched engine collapsed to {ratio}x over "
                f"the per-trial loop on {r['case']} "
                f"(< {QUICK_BATCHED_FLOOR}x)")
    for r in report.get("windowed_ipc", []):
        ratio = r.get("steps_per_command") or 0.0
        if r.get("delta_steps", 0) >= 4 * r.get("window", 16) and \
                ratio < WINDOWED_IPC_FLOOR:
            problems.append(
                f"current run: windowed δ amortises only {ratio} "
                f"steps/command on {r['case']} (< {WINDOWED_IPC_FLOOR})")
    for r in report.get("remote", []):
        if r.get("skipped"):
            continue
        bpr = r.get("bytes_per_round")
        ceiling = r.get("bytes_per_round_ceiling")
        if bpr is not None and ceiling and bpr > ceiling:
            problems.append(
                f"current run: remote σ traffic on {r['case']} is "
                f"{bpr} B/round, over the {ceiling} B/round ceiling "
                "(delta-encoded updates no longer compress)")
    for r in report.get("service", []):
        ratio = r.get("cache_hit_speedup")
        if ratio is not None and ratio < QUICK_SERVICE_CACHE_FLOOR:
            problems.append(
                f"current run: service warm-cache hits collapsed to "
                f"{ratio}x over cold computes on {r['case']} "
                f"(< {QUICK_SERVICE_CACHE_FLOOR}x)")
        if r.get("server_errors"):
            problems.append(
                f"current run: daemon reported {r['server_errors']} "
                f"request errors on {r['case']}")
    for r in report["parallel"]:
        if r.get("skipped"):
            continue
        best = r.get("best_vs_vectorized")
        if best is not None and best < QUICK_PARALLEL_FLOOR:
            problems.append(
                f"current run: parallel engine collapsed to {best}x over "
                f"vectorized on {r['case']} (< {QUICK_PARALLEL_FLOOR}x)")
    for r in report["sigma"]:
        if r.get("headline_finite"):
            ratio = r.get("vectorized_vs_incremental")
            if ratio is None:
                problems.append(
                    f"current run: {r['case']} lost its vectorized column")
            elif ratio < QUICK_VEC_FLOOR:
                problems.append(
                    f"current run: vectorized regressed to {ratio}x over "
                    f"incremental on {r['case']} (< {QUICK_VEC_FLOOR}x)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cases; finishes in seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny cases for CI smoke testing")
    def positive_int(value):
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    parser.add_argument("--repeats", type=positive_int, default=None,
                        help="timing repeats per case (best is kept)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here "
                             "(default: BENCH_core.json for full runs)")
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "quick" if args.quick else "full"
    report = run_suite(scale, repeats=args.repeats)
    _print_report(report)

    baseline = Path(__file__).resolve().parent.parent / "BENCH_core.json"
    ok = report["meta"]["all_fixed_points_equal"]
    if scale == "quick":
        problems = regress_against_baseline(report, baseline)
        if problems:
            print("\nbaseline regression FAILED:")
            for p in problems:
                print(f"  - {p}")
            ok = False
        else:
            print(f"\nbaseline regression vs {baseline.name}: ok")

    out = args.out
    if out is None and scale == "full":
        out = baseline
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
        print(f"wrote {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
