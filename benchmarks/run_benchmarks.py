#!/usr/bin/env python
"""Old-vs-new engine benchmark harness → ``BENCH_core.json``.

Times the incremental delta-propagation engine (PR 1) against the frozen
seed implementations in :mod:`naive_engine` on chain / ring / grid /
sparse-random topologies across several algebras, and the ring-buffer
``delta_run`` against the unbounded-history seed run.  Finite algebras
additionally get a **vectorized** column (PR 2): the int-encoded numpy
engine of :mod:`repro.core.vectorized`, timed against both baselines on
the same cases.  Every comparison also verifies that all engines reach
fixed points that are ``equal`` under the algebra — a benchmark row that
disagrees is reported and fails the harness.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # seconds

The committed ``BENCH_core.json`` is produced by a full run.  A
``--quick`` run additionally **regresses against the committed
baseline** instead of leaving the comparison to eyeballs: it fails when
the baseline's finite-headline vectorized speedup is below the
acceptance floor, when the baseline recorded any engine disagreement, or
when the current quick run shows the vectorized engine disagreeing or
catastrophically regressing on its own finite case.  Tier-1 tests
exercise only the ``scale="smoke"`` path (see
``tests/core/test_benchmark_harness.py`` and the ``perfbench`` marker in
``pytest.ini``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

if __name__ == "__main__":   # allow running without installing the package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.algebras import (
    BGPLiteAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.core import (
    FixedDelaySchedule,
    RandomSchedule,
    RoutingState,
    delta_run,
    iterate_sigma,
    supports_vectorized,
)
from repro.topologies import (
    bgp_policy_factory,
    erdos_renyi,
    grid,
    line,
    ring,
    uniform_weight_factory,
)

import naive_engine


def _time(fn: Callable, repeats: int):
    """Return (best wall-clock seconds, last result) over ``repeats``."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


# ----------------------------------------------------------------------
# Case tables: (label, network builder) per scale.
# ----------------------------------------------------------------------


def _sigma_cases(scale: str) -> List[Dict]:
    sp = ShortestPathsAlgebra()
    hop = HopCountAlgebra(64)
    widest = WidestPathsAlgebra()

    def w(alg, hi=20):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return [
            dict(label="chain-12/shortest-paths",
                 net=line(sp, 12, w(sp), seed=1)),
            dict(label="gnp-12/hop-count", headline_finite=True,
                 net=erdos_renyi(hop, 12, 0.25, w(hop, 4), seed=2)),
        ]
    if scale == "quick":
        bgp = BGPLiteAlgebra(n_nodes=12)
        return [
            dict(label="chain-40/shortest-paths",
                 net=line(sp, 40, w(sp), seed=1)),
            dict(label="ring-40/hop-count",
                 net=ring(hop, 40, w(hop, 4), seed=2)),
            # quick-scale guard for the vectorized-vs-incremental ratio
            dict(label="gnp-40/hop-count", headline_finite=True,
                 net=erdos_renyi(hop, 40, 0.25, w(hop, 4), seed=8)),
            dict(label="grid-6x6/shortest-paths",
                 net=grid(sp, 6, 6, w(sp), seed=3)),
            dict(label="gnp-40/shortest-paths",
                 net=erdos_renyi(sp, 40, 0.06, w(sp), seed=4)),
            dict(label="gnp-12/bgplite",
                 net=erdos_renyi(bgp, 12, 0.3,
                                 bgp_policy_factory(bgp, allow_reject=False),
                                 seed=5)),
        ]
    bgp = BGPLiteAlgebra(n_nodes=24)
    return [
        dict(label="chain-100/shortest-paths",
             net=line(sp, 100, w(sp), seed=1)),
        dict(label="ring-100/hop-count",
             net=ring(hop, 100, w(hop, 4), seed=2)),
        dict(label="grid-10x10/shortest-paths",
             net=grid(sp, 10, 10, w(sp), seed=3)),
        # the PR 1 headline acceptance case: n=100 sparse random topology
        dict(label="gnp-100/shortest-paths", headline=True,
             net=erdos_renyi(sp, 100, 0.03, w(sp), seed=4)),
        # the PR 2 headline acceptance case: n=100 finite algebra — the
        # vectorized engine must beat the incremental one here
        dict(label="gnp-100/hop-count", headline_finite=True,
             net=erdos_renyi(hop, 100, 0.25, w(hop, 4), seed=8)),
        dict(label="gnp-100/widest-paths",
             net=erdos_renyi(widest, 100, 0.03, w(widest), seed=6)),
        dict(label="gnp-24/bgplite",
             net=erdos_renyi(bgp, 24, 0.15,
                             bgp_policy_factory(bgp, allow_reject=False),
                             seed=7)),
    ]


def _delta_cases(scale: str) -> List[Dict]:
    sp = ShortestPathsAlgebra()
    hop = HopCountAlgebra(64)

    def w(alg, hi=20):
        return uniform_weight_factory(alg, 1, hi)

    if scale == "smoke":
        return [
            dict(label="gnp-10/shortest-paths/random-sched",
                 net=erdos_renyi(sp, 10, 0.3, w(sp), seed=11),
                 schedule=lambda n: RandomSchedule(n, seed=3, max_delay=4),
                 max_steps=300),
        ]
    if scale == "quick":
        return [
            dict(label="gnp-16/shortest-paths/random-sched",
                 net=erdos_renyi(sp, 16, 0.2, w(sp), seed=11),
                 schedule=lambda n: RandomSchedule(n, seed=3, max_delay=5),
                 max_steps=600),
            dict(label="ring-12/hop-count/fixed-delay",
                 net=ring(hop, 12, w(hop, 4), seed=12),
                 schedule=lambda n: FixedDelaySchedule(n, delay=4),
                 max_steps=400),
        ]
    return [
        dict(label="gnp-30/shortest-paths/random-sched",
             net=erdos_renyi(sp, 30, 0.12, w(sp), seed=11),
             schedule=lambda n: RandomSchedule(n, seed=3, max_delay=5),
             max_steps=1200),
        dict(label="ring-20/hop-count/fixed-delay",
             net=ring(hop, 20, w(hop, 4), seed=12),
             schedule=lambda n: FixedDelaySchedule(n, delay=4),
             max_steps=800),
        dict(label="gnp-30/shortest-paths/fixed-delay",
             net=erdos_renyi(sp, 30, 0.12, w(sp), seed=13),
             schedule=lambda n: FixedDelaySchedule(n, delay=6),
             max_steps=1200),
    ]


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------


def bench_sigma_case(case: Dict, repeats: int) -> Dict:
    net = case["net"]
    alg = net.algebra
    start = RoutingState.identity(alg, net.n)
    arcs = sum(1 for _ in net.present_edges())

    naive_s, naive_res = _time(
        lambda: naive_engine.iterate_sigma_naive(net, start), repeats)
    inc_s, inc_res = _time(
        lambda: iterate_sigma(net, start, engine="incremental"), repeats)

    equal = (naive_res.converged == inc_res.converged and
             naive_res.rounds == inc_res.rounds and
             naive_res.state.equals(inc_res.state, alg))

    vec_s = vec_speedup = vec_vs_inc = None
    if supports_vectorized(alg):
        vec_s, vec_res = _time(
            lambda: iterate_sigma(net, start, engine="vectorized"), repeats)
        equal = (equal and
                 vec_res.converged == inc_res.converged and
                 vec_res.rounds == inc_res.rounds and
                 vec_res.state.equals(inc_res.state, alg))
        if vec_s > 0:
            vec_speedup = round(naive_s / vec_s, 2)
            vec_vs_inc = round(inc_s / vec_s, 2)
        vec_s = round(vec_s, 6)
    return dict(
        case=case["label"],
        headline=bool(case.get("headline")),
        headline_finite=bool(case.get("headline_finite")),
        n=net.n,
        arcs=arcs,
        algebra=alg.name,
        converged=inc_res.converged,
        rounds=inc_res.rounds,
        naive_s=round(naive_s, 6),
        incremental_s=round(inc_s, 6),
        speedup=round(naive_s / inc_s, 2) if inc_s > 0 else None,
        vectorized_s=vec_s,
        vectorized_speedup=vec_speedup,
        vectorized_vs_incremental=vec_vs_inc,
        fixed_points_equal=equal,
    )


def bench_delta_case(case: Dict, repeats: int) -> Dict:
    net = case["net"]
    alg = net.algebra
    sched = case["schedule"](net.n)
    start = RoutingState.identity(alg, net.n)
    max_steps = case["max_steps"]

    naive_s, naive_res = _time(
        lambda: naive_engine.delta_run_naive(net, sched, start,
                                             max_steps=max_steps), repeats)
    bounded_s, bounded_res = _time(
        lambda: delta_run(net, sched, start, max_steps=max_steps), repeats)

    equal = (naive_res.converged == bounded_res.converged and
             naive_res.state.equals(bounded_res.state, alg))

    vec_s = vec_speedup = None
    if supports_vectorized(alg):
        vec_s, vec_res = _time(
            lambda: delta_run(net, sched, start, max_steps=max_steps,
                              engine="vectorized"), repeats)
        equal = (equal and
                 vec_res.converged == bounded_res.converged and
                 vec_res.state.equals(bounded_res.state, alg))
        if vec_s > 0:
            vec_speedup = round(naive_s / vec_s, 2)
        vec_s = round(vec_s, 6)
    mrb = sched.max_read_back() or 1
    return dict(
        case=case["label"],
        n=net.n,
        algebra=alg.name,
        schedule=repr(sched),
        converged=bounded_res.converged,
        steps=bounded_res.steps,
        naive_s=round(naive_s, 6),
        bounded_s=round(bounded_s, 6),
        speedup=round(naive_s / bounded_s, 2) if bounded_s > 0 else None,
        vectorized_s=vec_s,
        vectorized_speedup=vec_speedup,
        max_read_back=mrb,
        naive_history_retained=naive_res.history_retained,
        bounded_history_retained=bounded_res.history_retained,
        memory_bounded=bounded_res.history_retained <= mrb + 2,
        fixed_points_equal=equal,
    )


def run_suite(scale: str = "full", repeats: Optional[int] = None) -> Dict:
    """Run every case at ``scale`` ∈ {smoke, quick, full}; return the report."""
    if scale not in ("smoke", "quick", "full"):
        raise ValueError(f"unknown scale {scale!r}")
    if repeats is None:
        repeats = 2 if scale == "full" else 1
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    report = {
        "meta": {
            "scale": scale,
            "repeats": repeats,
            "python": platform.python_version(),
            "engine": "incremental (PR 1) + vectorized finite-algebra "
                      "(PR 2)",
            "baseline": "frozen seed engine (benchmarks/naive_engine.py)",
        },
        "sigma": [bench_sigma_case(c, repeats) for c in _sigma_cases(scale)],
        "delta": [bench_delta_case(c, repeats) for c in _delta_cases(scale)],
    }
    rows = report["sigma"] + report["delta"]
    report["meta"]["all_fixed_points_equal"] = all(
        r["fixed_points_equal"] for r in rows)
    return report


def _fmt_speedup(speedup) -> str:
    # speedup is None when the new-engine timing underflowed the clock
    return f"{speedup:>7.1f}x" if speedup is not None else f"{'—':>8}"


def _fmt_seconds(value) -> str:
    return f"{value:>10.4f}" if value is not None else f"{'—':>10}"


def _print_report(report: Dict) -> None:
    print(f"engine benchmark — scale={report['meta']['scale']} "
          f"(best of {report['meta']['repeats']})")
    print(f"{'case':<40} {'rounds':>6} {'old (s)':>10} {'new (s)':>10} "
          f"{'vec (s)':>10} {'speedup':>8} {'vec/inc':>8}  ok")
    for r in report["sigma"]:
        mark = "✓" if r["fixed_points_equal"] else "✗ MISMATCH"
        star = ("*" if r["headline"] else
                "†" if r.get("headline_finite") else " ")
        print(f"{r['case']:<39}{star} {r['rounds']:>6} {r['naive_s']:>10.4f} "
              f"{r['incremental_s']:>10.4f} {_fmt_seconds(r['vectorized_s'])} "
              f"{_fmt_speedup(r['speedup'])} "
              f"{_fmt_speedup(r.get('vectorized_vs_incremental'))}  {mark}")
    for r in report["delta"]:
        mark = "✓" if r["fixed_points_equal"] and r["memory_bounded"] else "✗"
        print(f"{r['case']:<40} {r['steps']:>6} {r['naive_s']:>10.4f} "
              f"{r['bounded_s']:>10.4f} {_fmt_seconds(r['vectorized_s'])} "
              f"{_fmt_speedup(r['speedup'])} {'':>8}  {mark} "
              f"(history {r['naive_history_retained']} → "
              f"{r['bounded_history_retained']}, bound "
              f"{r['max_read_back'] + 2})")
    print("  * = PR 1 headline (n=100 sparse random)   "
          "† = PR 2 finite headline (vectorized vs incremental)")


# ----------------------------------------------------------------------
# Baseline regression (the --quick gate)
# ----------------------------------------------------------------------

#: acceptance floor for the committed full run: the n=100 finite
#: headline must show the vectorized engine ≥ 3× the incremental one.
HEADLINE_VEC_FLOOR = 3.0
#: guard for the quick-scale finite case in the *current* run: generous
#: (timing noise, tiny cases), catches only catastrophic regressions.
QUICK_VEC_FLOOR = 0.8


def regress_against_baseline(report: Dict, baseline_path: Path) -> List[str]:
    """Compare a quick run against the committed full-run baseline.

    Returns a list of human-readable problems (empty = pass).  The
    committed numbers carry the acceptance claims, so they are checked
    structurally; the current run is checked for correctness on every
    row and for a catastrophic vectorized slowdown on its finite
    headline case.
    """
    problems: List[str] = []
    if not baseline_path.exists():
        return [f"no committed baseline at {baseline_path}; "
                "run the full suite first"]
    baseline = json.loads(baseline_path.read_text())

    if not baseline.get("meta", {}).get("all_fixed_points_equal"):
        problems.append("baseline records an engine disagreement")
    base_sigma = baseline.get("sigma", [])
    vec_rows = [r for r in base_sigma
                if r.get("vectorized_vs_incremental") is not None]
    if not vec_rows:
        problems.append("baseline has no vectorized column; "
                        "re-run the full suite")
    for r in base_sigma:
        if r.get("headline_finite"):
            ratio = r.get("vectorized_vs_incremental") or 0.0
            if ratio < HEADLINE_VEC_FLOOR:
                problems.append(
                    f"baseline {r['case']}: vectorized only {ratio}x over "
                    f"incremental (< {HEADLINE_VEC_FLOOR}x acceptance floor)")

    for r in report["sigma"] + report["delta"]:
        if not r["fixed_points_equal"]:
            problems.append(f"current run: engines disagree on {r['case']}")
    for r in report["sigma"]:
        if r.get("headline_finite"):
            ratio = r.get("vectorized_vs_incremental")
            if ratio is None:
                problems.append(
                    f"current run: {r['case']} lost its vectorized column")
            elif ratio < QUICK_VEC_FLOOR:
                problems.append(
                    f"current run: vectorized regressed to {ratio}x over "
                    f"incremental on {r['case']} (< {QUICK_VEC_FLOOR}x)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cases; finishes in seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny cases for CI smoke testing")
    def positive_int(value):
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    parser.add_argument("--repeats", type=positive_int, default=None,
                        help="timing repeats per case (best is kept)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report here "
                             "(default: BENCH_core.json for full runs)")
    args = parser.parse_args(argv)

    scale = "smoke" if args.smoke else "quick" if args.quick else "full"
    report = run_suite(scale, repeats=args.repeats)
    _print_report(report)

    baseline = Path(__file__).resolve().parent.parent / "BENCH_core.json"
    ok = report["meta"]["all_fixed_points_equal"]
    if scale == "quick":
        problems = regress_against_baseline(report, baseline)
        if problems:
            print("\nbaseline regression FAILED:")
            for p in problems:
                print(f"  - {p}")
            ok = False
        else:
            print(f"\nbaseline regression vs {baseline.name}: ok")

    out = args.out
    if out is None and scale == "full":
        out = baseline
    if out is not None:
        out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
        print(f"wrote {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
