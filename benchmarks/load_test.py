#!/usr/bin/env python
"""Concurrent load test for the routing service daemon.

Fans hundreds of :class:`~repro.service.client.AsyncServiceClient`
connections at one daemon and measures what the service tentpole
claims:

* **cold phase** — every request is a distinct query (unique start
  seed), so each one pays a full fixed-point compute: the cache-miss
  latency distribution;
* **warm phase** — every client repeats one identical query, so after
  a single compute the whole fleet is served from the fixed-point
  cache: the cache-hit latency distribution.

Reported: p50/p99 per phase (client-observed round-trip), the
warm-over-cold speedup (acceptance: ≥ 5× on the committed full-run
headline), and the server's own cache hit ratio from the ``stats``
verb.  ``run_load_test()`` is importable — ``run_benchmarks.py``
records its output as the ``service`` column of ``BENCH_core.json``
and the ``--quick`` gate regresses against it.

Usage::

    PYTHONPATH=src python benchmarks/load_test.py            # in-process
    PYTHONPATH=src python benchmarks/load_test.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/load_test.py \
        --connect 127.0.0.1:7432 --shutdown    # against a live daemon
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple

if __name__ == "__main__":   # allow running without installing the package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import (
    AsyncServiceClient,
    ERR_DRAINING,
    RoutingServiceDaemon,
    ServiceError,
)
from repro.service.protocol import percentile

#: per-scale sizing: (clients, queries per client per phase, n)
SCALES = {
    "smoke": (8, 3, 24),
    "quick": (24, 4, 64),
    "full": (200, 4, 96),
}


async def _phase(clients: List[AsyncServiceClient], sid: str,
                 queries: int, *, distinct: bool,
                 drain_seen: Optional[asyncio.Event] = None
                 ) -> Tuple[list, list, int, int]:
    """One load phase; returns (latencies_ms, digests, failures,
    drained).

    ``distinct=True`` gives every request its own start seed (all
    cache misses); ``distinct=False`` has the whole fleet repeat one
    identical query (cache hits after the first compute).  A request
    that still fails after the client's own retry budget counts as one
    *client failure* — the chaos soak's acceptance is zero of them.

    With ``drain_seen`` (the ``--expect-drain`` mode) the daemon is
    expected to enter a graceful SIGTERM drain mid-run: a typed
    ``draining`` error is the *correct* outcome for that client (it
    stops cleanly, counted in ``drained``), and once any client has
    seen the drain, connection teardowns are part of the same shutdown
    — only errors *before* the drain was observed count as failures.
    """
    async def worker(idx: int, client: AsyncServiceClient):
        lat, digs, failed, drained = [], [], 0, 0
        for q in range(queries):
            seed = (1 + idx * queries + q) if distinct else 0
            t0 = perf_counter()
            try:
                reply = await client.sigma(sid, start_seed=seed)
            except ServiceError as exc:
                if drain_seen is not None and (
                        exc.code == ERR_DRAINING or drain_seen.is_set()):
                    drain_seen.set()
                    drained += 1
                    break                # the daemon is going away
                failed += 1
                continue
            except (asyncio.TimeoutError, ConnectionError, OSError):
                if drain_seen is not None and drain_seen.is_set():
                    drained += 1
                    break
                failed += 1
                continue
            lat.append((perf_counter() - t0) * 1e3)
            digs.append(reply["digest"])
        return lat, digs, failed, drained

    results = await asyncio.gather(*[
        worker(i, c) for i, c in enumerate(clients)])
    latencies = [ms for lat, _, _, _ in results for ms in lat]
    digests = [d for _, digs, _, _ in results for d in digs]
    failures = sum(f for _, _, f, _ in results)
    drained = sum(d for _, _, _, d in results)
    return latencies, digests, failures, drained


def _dist(ms: list) -> Dict:
    if not ms:
        return {"p50": None, "p99": None, "count": 0}
    return {"p50": round(percentile(ms, 50.0), 3),
            "p99": round(percentile(ms, 99.0), 3),
            "count": len(ms)}


async def _run(clients_n: int, queries: int, n: int, *,
               algebra: str, topology: str, seed: int,
               host: Optional[str], port: Optional[int],
               shutdown: bool, retries: int = 0,
               request_timeout: Optional[float] = None,
               expect_drain: bool = False) -> Dict:
    daemon = None
    if host is None:
        daemon = RoutingServiceDaemon(host="127.0.0.1", port=0,
                                      cache_entries=8192)
        await daemon.start()
        host, port = daemon.host, daemon.port

    drain_seen = asyncio.Event() if expect_drain else None
    clients = await asyncio.gather(*[
        AsyncServiceClient.connect(host, port, retries=retries,
                                   request_timeout=request_timeout)
        for _ in range(clients_n)])
    try:
        loads = await asyncio.gather(*[
            c.load(algebra, n=n, topology=topology, seed=seed)
            for c in clients])
        sid = loads[0]["session"]
        assert all(r["session"] == sid for r in loads), \
            "identical loads must share one warm session"

        cold_ms, _, cold_failed, cold_drained = await _phase(
            clients, sid, queries, distinct=True, drain_seen=drain_seen)
        warm_ms, warm_digests, warm_failed, warm_drained = await _phase(
            clients, sid, queries, distinct=False, drain_seen=drain_seen)
        assert len(set(warm_digests)) <= 1, \
            "warm phase produced inconsistent fixed points"

        drained = cold_drained + warm_drained
        stats = None
        if not drained:                  # the daemon is still there
            stats = await clients[0].stats()
            if shutdown:
                await clients[0].shutdown()
    finally:
        await asyncio.gather(*[c.close() for c in clients])
        if daemon is not None:
            await daemon.stop()

    cold, warm = _dist(cold_ms), _dist(warm_ms)
    row = {
        "clients": clients_n,
        "queries_per_phase": len(cold_ms),
        "algebra": algebra,
        "topology": topology,
        "n": n,
        "warm_digest": warm_digests[0] if warm_digests else None,
        "cold_ms": cold,
        "warm_ms": warm,
        "cache_hit_speedup": (round(cold["p50"] / warm["p50"], 2)
                              if cold["p50"] and warm["p50"] else None),
        "retries": retries,
        "client_failures": cold_failed + warm_failed,
        "drained": drained,
    }
    if stats is not None:
        row.update({
            "cache_hit_ratio": round(stats["cache"]["hit_ratio"], 4),
            "server_requests": stats["requests"],
            "server_errors": stats["errors"],
            "server_shed": stats.get("shed", 0),
            "server_p99_ms": round(stats["latency_ms"]["p99"], 3),
        })
    else:
        row.update({"cache_hit_ratio": None, "server_requests": None,
                    "server_errors": 0, "server_shed": 0,
                    "server_p99_ms": None})
    return row


def run_load_test(scale: str = "quick", *, algebra: str = "hop-count",
                  topology: str = "random", seed: int = 5,
                  host: Optional[str] = None, port: Optional[int] = None,
                  clients: Optional[int] = None,
                  queries: Optional[int] = None, n: Optional[int] = None,
                  shutdown: bool = False, retries: int = 0,
                  request_timeout: Optional[float] = None,
                  expect_drain: bool = False) -> Dict:
    """Run the cold/warm load experiment; returns the result row.

    Without ``host`` the daemon runs in-process on an ephemeral port
    (hermetic — what the benchmark harness records); with ``host`` the
    fleet targets a live daemon (the CI smoke job's mode).
    ``retries > 0`` arms each client's jittered-backoff retry (plus a
    per-request read timeout) so the fleet rides out ``busy`` sheds
    and injected frame drops — the chaos soak's mode.
    ``expect_drain`` tolerates a graceful SIGTERM drain mid-run: typed
    ``draining`` refusals (and the connection teardowns that follow
    them) are counted in the row's ``drained`` field, not as failures
    — the CI drain-under-load row's mode.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}")
    d_clients, d_queries, d_n = SCALES[scale]
    if retries > 0 and request_timeout is None:
        request_timeout = 10.0
    return asyncio.run(_run(
        clients or d_clients, queries or d_queries, n or d_n,
        algebra=algebra, topology=topology, seed=seed,
        host=host, port=port, shutdown=shutdown, retries=retries,
        request_timeout=request_timeout, expect_drain=expect_drain))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (few clients, small topology)")
    parser.add_argument("--full", action="store_true",
                        help="the committed headline size (200 clients)")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per client per phase")
    parser.add_argument("--n", type=int, default=None,
                        help="topology size")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="target a live daemon instead of an "
                             "in-process one")
    parser.add_argument("--shutdown", action="store_true",
                        help="send the shutdown verb when done (used by "
                             "the CI smoke job to assert clean exit)")
    parser.add_argument("--retries", type=int, default=0,
                        help="per-client retry budget for busy sheds and "
                             "lost frames (0 = fail fast); arms a "
                             "per-request read timeout too")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="per-request read timeout in seconds "
                             "(default 10 when --retries > 0)")
    parser.add_argument("--expect-drain", action="store_true",
                        help="the daemon is expected to SIGTERM-drain "
                             "mid-run: typed 'draining' refusals count "
                             "as clean outcomes, and the run fails "
                             "unless the drain was actually observed "
                             "with zero other client failures")
    parser.add_argument("--json", action="store_true",
                        help="print the raw result row as JSON")
    args = parser.parse_args(argv)

    host = port = None
    if args.connect:
        host, _, port_s = args.connect.rpartition(":")
        port = int(port_s)
    scale = "smoke" if args.smoke else "full" if args.full else "quick"
    row = run_load_test(scale, host=host, port=port,
                        clients=args.clients, queries=args.queries,
                        n=args.n, shutdown=args.shutdown,
                        retries=args.retries,
                        request_timeout=args.request_timeout,
                        expect_drain=args.expect_drain)
    if args.json:
        print(json.dumps(row, indent=2))
    else:
        print(f"service load test — {row['clients']} clients, "
              f"n={row['n']} {row['algebra']}/{row['topology']}")
        print(f"  cold (all misses): p50 {row['cold_ms']['p50']} ms, "
              f"p99 {row['cold_ms']['p99']} ms "
              f"({row['cold_ms']['count']} requests)")
        print(f"  warm (cache hits): p50 {row['warm_ms']['p50']} ms, "
              f"p99 {row['warm_ms']['p99']} ms "
              f"({row['warm_ms']['count']} requests)")
        print(f"  cache-hit speedup: {row['cache_hit_speedup']}x, "
              f"server hit ratio {row['cache_hit_ratio']}, "
              f"{row['server_errors']} errors, "
              f"{row['server_shed']} shed, "
              f"{row['client_failures']} client failures, "
              f"{row['drained']} drained cleanly")
    if args.expect_drain:
        # the drain row's acceptance: the SIGTERM actually landed
        # (someone saw the typed refusal) and nobody failed hard
        return 0 if row["drained"] > 0 and \
            row["client_failures"] == 0 else 1
    # with retries armed, sheds/drops are expected server-side events;
    # the acceptance is that no client request *ultimately* failed
    if args.retries > 0:
        return 0 if row["client_failures"] == 0 else 1
    return 0 if row["server_errors"] == 0 and \
        row["client_failures"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
