"""Experiment F1 — Figure 1's implication chain, validated arrow by arrow.

    strictly increasing algebra
      ⇒ (c) ultrametric conditions      [this paper]
      ⇒ (b) ACO conditions              [Gurney]
      ⇒ (a) absolute convergence        [Üresin & Dubois]

Arrow (c) is checked by constructing the Section 4/5 ultrametrics and
testing Theorem 4's preconditions on sampled states; arrows (b)+(a) are
checked operationally: δ runs from many states under many schedules all
reach one fixed point.  A non-increasing control shows the chain's
entrance refusing.

Paper artefact: Figure 1.
"""

import random

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.algebras import bad_gadget
from repro.analysis import run_absolute_convergence
from repro.core import (
    DistanceVectorUltrametric,
    PathVectorUltrametric,
    RoutingState,
    enumerate_consistent_routes,
    random_state,
    theorem4_preconditions,
)
from repro.verification import verify_network
from tests.conftest import bgp_net, finite_net, hop_net, shortest_pv_net


CASES = [
    ("hop-count ring (DV)", lambda: hop_net(4, bound=8), "dv"),
    ("finite-chain ring (DV)", lambda: finite_net(4, levels=6, seed=1), "dv"),
    ("shortest-pv ring (PV)", lambda: shortest_pv_net(4, seed=2), "pv"),
    ("bgp-lite ring (PV)", lambda: bgp_net(4, seed=3), "pv"),
]


def run_chain(build, kind, seed):
    net = build()
    rng = random.Random(seed)
    report = verify_network(net, samples=30)
    states = [RoutingState.identity(net.algebra, net.n)]
    states += [random_state(net.algebra, net.n, rng) for _ in range(5)]
    if kind == "dv":
        metric = DistanceVectorUltrametric(net.algebra)
        routes = list(net.algebra.routes())
    else:
        metric = PathVectorUltrametric(net)
        routes = enumerate_consistent_routes(net.algebra, net)
    checks = theorem4_preconditions(metric, net, states, routes)
    conv = run_absolute_convergence(net, n_starts=3, seed=seed,
                                    max_steps=2500)
    return report, checks, conv


@pytest.mark.benchmark(group="figure1")
@pytest.mark.parametrize("name,build,kind", CASES,
                         ids=[c[0].split()[0] for c in CASES])
def test_figure1_chain(benchmark, name, build, kind):
    report, checks, conv = benchmark.pedantic(
        run_chain, args=(build, kind, 11), rounds=1, iterations=1)

    increasing = report.is_strictly_increasing or \
        (kind == "pv" and report.is_increasing)
    lines = [
        f"{name}",
        f"  hypothesis   : increasing{' (strict)' if kind == 'dv' else ''} "
        f"= {check_mark(increasing)}",
    ]
    for c in checks:
        lines.append(f"  arrow (c)    : {c.name:<45s} {check_mark(c.holds)} "
                     f"({c.cases} cases)")
    lines.append(f"  arrows (b,a) : absolute convergence over {conv.runs} "
                 f"(state × schedule) runs = {check_mark(conv.absolute)}")
    emit("F1 / Figure 1 — the implication chain", lines)

    assert increasing
    assert all(c.holds for c in checks)
    assert conv.absolute


@pytest.mark.benchmark(group="figure1")
def test_figure1_chain_refuses_non_increasing(benchmark):
    """Control: BAD GADGET fails the hypothesis, and indeed the orbit
    contraction fails and δ oscillates — no arrow fires vacuously."""
    from repro.core import check_strictly_contracting_on_orbits

    def run():
        net = bad_gadget()
        report = verify_network(net, samples=40)
        # any height assignment over the gadget's candidate routes
        from repro.algebras import spp_fixed_point_candidates

        carrier = spp_fixed_point_candidates(net) + [net.algebra.trivial]
        metric = DistanceVectorUltrametric(net.algebra, carrier=carrier)
        # take states from the oscillation's own trajectory: along a
        # limit cycle D(X, σX) is periodic, so it cannot be strictly
        # decreasing (a strictly decreasing ℕ-chain must terminate) —
        # some trajectory state is a guaranteed counterexample.
        from repro.core import iterate_sigma

        traj = iterate_sigma(net, RoutingState.identity(net.algebra, net.n),
                             max_rounds=12, keep_trajectory=True).trajectory
        orbit = check_strictly_contracting_on_orbits(metric, net, traj)
        conv = run_absolute_convergence(net, n_starts=2, seed=5,
                                        max_steps=300)
        return report, orbit, conv

    report, orbit, conv = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("F1 / Figure 1 — non-increasing control (BAD GADGET)", [
        f"hypothesis (increasing): {check_mark(report.is_increasing)}",
        f"σ strictly contracting on orbits: {check_mark(orbit.holds)}",
        f"absolute convergence: {check_mark(conv.absolute)} "
        f"({conv.runs - len(conv.convergence_steps)} runs diverged)",
    ])
    assert not report.is_increasing
    assert not orbit.holds
    assert not conv.absolute
