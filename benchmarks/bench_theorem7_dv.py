"""Experiment TH7 — Theorem 7: distance-vector absolute convergence.

Finite + strictly increasing ⇒ δ converges from *every* state under
*every* admissible schedule to *one* fixed point.  The experiment grid:

* algebras: RIP hop-count (with conditional route maps!), random finite
  chains, quantised reliability;
* topologies: ring, star, random;
* 20 starting states × the full schedule zoo per cell.

Controls drop finiteness (count-to-infinity) and strictness (plateau
ghost routes) and watch the conclusion fail.

Paper artefact: Theorem 7 + Section 4.2 practical implications.
"""

import random

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.algebras import (
    ConditionalHopEdge,
    FiniteLevelAlgebra,
    HopCountAlgebra,
    QuantisedReliabilityAlgebra,
)
from repro.analysis import run_absolute_convergence
from repro.core import Network
from repro.topologies import erdos_renyi, ring, star, uniform_weight_factory


def policy_rich_hop_ring(n, seed):
    alg = HopCountAlgebra(16)
    rng = random.Random(seed)
    net = Network(alg, n, name=f"rip-routemaps-{n}")
    for i in range(n):
        for j in ((i + 1) % n, (i - 1) % n):
            net.set_edge(i, j, ConditionalHopEdge.random(rng, 16))
    return net


def finite_random(n, seed):
    alg = FiniteLevelAlgebra(8)
    rng = random.Random(seed)
    net = erdos_renyi(alg, n, 0.5,
                      lambda r, _i, _j: alg.random_strict_edge(r), seed=seed)
    return net


def quantised_star(n, seed):
    alg = QuantisedReliabilityAlgebra(quantum=8)
    return star(alg, n, lambda r, _i, _j: alg.sample_edge_function(r),
                seed=seed)


GRID = [
    ("RIP + route maps / ring", policy_rich_hop_ring, 5),
    ("finite chain / random", finite_random, 6),
    ("quantised reliability / star", quantised_star, 5),
]


@pytest.mark.benchmark(group="theorem7")
@pytest.mark.parametrize("name,build,n", GRID,
                         ids=[g[0].split(" /")[0].replace(" ", "-")
                              for g in GRID])
def test_theorem7_absolute_convergence(benchmark, name, build, n):
    def run():
        net = build(n, seed=21)
        return run_absolute_convergence(net, n_starts=20, seed=22,
                                        max_steps=3000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("TH7 / Theorem 7 — " + name, [
        f"runs (states × schedules): {report.runs}",
        f"all converged: {check_mark(report.all_converged)}",
        f"distinct fixed points: {len(report.distinct_fixed_points)}",
        f"steps to converge: mean {report.mean_steps:.1f}, "
        f"worst {report.max_steps}",
        f"ABSOLUTE CONVERGENCE: {check_mark(report.absolute)}",
    ])
    assert report.absolute


@pytest.mark.benchmark(group="theorem7")
def test_theorem7_control_drop_finiteness(benchmark):
    """Strictly increasing, infinite carrier: count-to-infinity."""
    from repro.core import SynchronousSchedule, delta_run
    from repro.topologies import count_to_infinity

    def run():
        net, stale = count_to_infinity()
        return delta_run(net, SynchronousSchedule(net.n), stale,
                         max_steps=300)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("TH7 control — drop finiteness (shortest paths, stale state)", [
        f"converged within 300 steps: {check_mark(res.converged)}",
        f"node 1's distance to dead destination: {res.state.get(1, 0)} "
        "and climbing",
    ])
    assert not res.converged


@pytest.mark.benchmark(group="theorem7")
def test_theorem7_control_drop_strictness(benchmark):
    """Increasing-but-not-strict plateau: ghost routes persist, and the
    reached fixed point depends on the starting state."""
    from repro.core import RoutingState, SynchronousSchedule, delta_run

    def run():
        alg = FiniteLevelAlgebra(4)
        net = Network(alg, 3, name="plateau")
        plateau = alg.table_edge([2, 3, 2, 3, 4])
        net.set_edge(0, 1, plateau)
        net.set_edge(1, 0, plateau)
        outcomes = []
        for v in (2, 3):
            start = RoutingState([[0, 2, v], [2, 0, v], [4, 4, 0]])
            res = delta_run(net, SynchronousSchedule(3), start,
                            max_steps=300)
            outcomes.append((v, res.converged, res.state.get(0, 2)))
        return alg, outcomes

    alg, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [fmt_row(("start ghost value", "converged", "final (0→2)"),
                     (18, 10, 12))]
    for (v, conv, final) in outcomes:
        lines.append(fmt_row((v, check_mark(conv), final), (18, 10, 12)))
    lines.append("different starts → different fixed points "
                 "(absolute convergence fails)")
    emit("TH7 control — drop strictness (plateau tables)", lines)
    finals = {final for (_v, _c, final) in outcomes}
    assert len(finals) == 2
