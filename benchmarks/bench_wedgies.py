"""Experiment W — BGP wedgies eliminated (Section 1's headline claim).

"First, we show that the conditions are sufficient to guarantee that
the protocols will converge to a unique solution from any state.  This
eliminates the possibility of BGP wedgies."

Regenerated here as a stable-state census:

* DISAGREE           → 2 stable states (the wedgie), both reachable;
* BAD GADGET         → 0 stable states (oscillation);
* GOOD GADGET        → 1 (conditions sufficient, not necessary);
* increasing repair  → 1, reached from everywhere;
* RFC 4264 backup scenario in safe BGPLite → 1, policy intent honoured.
"""

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.algebras import (
    bad_gadget,
    disagree,
    good_gadget,
    increasing_disagree,
    spp_fixed_point_candidates,
)
from repro.analysis import (
    enumerate_fixed_points,
    multistart_fixed_points,
    sync_oscillates,
)
from repro.core import synchronous_fixed_point
from repro.topologies import BACKUP_COMMUNITY, wedgie_bgplite

GADGETS = [
    ("DISAGREE", disagree, 2),
    ("BAD GADGET", bad_gadget, 0),
    ("GOOD GADGET", good_gadget, 1),
    ("DISAGREE (increasing)", increasing_disagree, 1),
]


@pytest.mark.benchmark(group="wedgies")
def test_wedgie_census(benchmark):
    def run():
        rows = []
        for (name, build, expected) in GADGETS:
            net = build()
            census = enumerate_fixed_points(
                net, candidates={0: spp_fixed_point_candidates(net)},
                dests=[0])
            report = multistart_fixed_points(net, n_starts=8, seed=3,
                                             max_steps=600)
            rows.append((name, expected, census.per_destination[0],
                         len(report.fixed_points), report.diverged,
                         sync_oscillates(net)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (22, 9, 9, 11, 9, 11)
    lines = [fmt_row(("gadget", "expected", "stable", "reachable",
                      "diverged", "oscillates"), widths)]
    for (name, exp, stable, reach, div, osc) in rows:
        lines.append(fmt_row((name, exp, stable, reach, div,
                              check_mark(osc)), widths))
    emit("W — stable-state census (wedgies & oscillation)", lines)

    for (name, exp, stable, reach, _div, _osc) in rows:
        assert stable == exp, name
        assert reach <= max(stable, 1)
    # DISAGREE really wedges: both states reachable
    assert rows[0][3] == 2
    # the increasing repair reaches its unique state in every run
    assert rows[3][3] == 1 and rows[3][4] == 0
    # BAD GADGET oscillates
    assert rows[1][5]


@pytest.mark.benchmark(group="wedgies")
def test_rfc4264_backup_scenario_is_wedgie_free(benchmark):
    """The operational wedgie story, in the safe policy language:
    primary wins, backup takes over on failure, and restoration returns
    the network to the original state (no hysteresis)."""
    from repro.core import iterate_sigma

    def run():
        net, alg = wedgie_bgplite()
        before = synchronous_fixed_point(net)
        primary_route = before.get(1, 0)
        saved = (net.edge(2, 0), net.edge(0, 2))
        net.remove_edge(2, 0)
        net.remove_edge(0, 2)
        during = iterate_sigma(net, before).state
        backup_route = during.get(2, 0)
        net.set_edge(2, 0, saved[0])
        net.set_edge(0, 2, saved[1])
        after = iterate_sigma(net, during).state
        report = multistart_fixed_points(net, n_starts=6, seed=5,
                                         max_steps=800)
        return alg, primary_route, backup_route, \
            after.equals(before, alg), len(report.fixed_points)

    alg, primary, backup, restored, n_fp = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit("W — RFC 4264 backup links in safe BGPLite", [
        f"steady state, node 1 → 0: {primary}",
        f"  (backup community present: "
        f"{BACKUP_COMMUNITY in primary.communities})",
        f"primary failed, node 2 → 0: {backup}",
        f"  (backup community present: "
        f"{BACKUP_COMMUNITY in backup.communities})",
        f"primary restored → original state recovered: "
        f"{check_mark(restored)}  (a wedgie would stay on the backup)",
        f"reachable stable states: {n_fp}",
    ])
    assert BACKUP_COMMUNITY not in primary.communities
    assert BACKUP_COMMUNITY in backup.communities
    assert restored
    assert n_fp == 1
