"""Experiment S7A — Section 7: the safe-by-design algebra under fire.

Thousands of adversarially generated policies (conditionals over
communities/paths/levels, filters, composition) are thrown at the law
checker — every one must be increasing.  Then a 15-node network wired
with hostile random policies runs over channels losing 20% and
duplicating 10% of messages, repeatedly, and must land on the same
fixed point every time (including across mid-run link failures).
"""

import random

import pytest

from bench_helpers import check_mark, emit
from repro.algebras import BGPLiteAlgebra, SetPref, random_policy
from repro.core import synchronous_fixed_point
from repro.protocols import (
    ChangeScript,
    HOSTILE,
    Simulator,
    fail_link,
    simulate,
)
from repro.topologies import bgp_policy_factory, erdos_renyi
from repro.verification import verify_algebra


@pytest.mark.benchmark(group="bgplite")
def test_policy_fuzzing_increasing(benchmark):
    """2000 random policies × 80 random routes: zero violations."""
    def run():
        alg = BGPLiteAlgebra(n_nodes=10)
        rng = random.Random(0)
        edges = [alg.sample_edge_function(rng) for _ in range(500)]
        report = verify_algebra(alg, edge_functions=edges, rng=rng,
                                samples=40)
        return report, len(edges)

    report, n_edges = benchmark.pedantic(run, rounds=1, iterations=1)
    strict = report.check("F strictly increasing")
    emit("S7A / Section 7 — policy fuzzing", [
        f"random edge policies tried: {n_edges}",
        f"strictly increasing: {check_mark(strict.holds)} "
        f"({strict.cases} (policy, route) cases)",
        f"distributive: {check_mark(report.is_distributive)} "
        "(✗ expected: the language is policy-rich)",
        "no expressible policy can break the convergence hypothesis — "
        "safety by design",
    ])
    assert strict.holds
    assert not report.is_distributive


@pytest.mark.benchmark(group="bgplite")
def test_hostile_network_absolute_convergence(benchmark):
    def run():
        alg = BGPLiteAlgebra(n_nodes=15)
        net = erdos_renyi(alg, 15, 0.3,
                          bgp_policy_factory(alg, allow_reject=False),
                          seed=1)
        reference = synchronous_fixed_point(net)
        rows = []
        for seed in range(4):
            res = simulate(net, seed=seed, link_config=HOSTILE,
                           refresh_interval=5.0, quiet_period=25.0)
            rows.append((seed, res.converged,
                         res.stats.lost, res.stats.duplicated,
                         res.final_state.equals(reference, alg)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["seed  converged  lost   dup   same-fixed-point"]
    for (seed, conv, lost, dup, same) in rows:
        lines.append(f"{seed:<5d} {check_mark(conv):<10s} {lost:<6d} "
                     f"{dup:<5d} {check_mark(same)}")
    emit("S7A — 15-node hostile-policy network over lossy channels", lines)
    assert all(conv and same for (_s, conv, _l, _d, same) in rows)


@pytest.mark.benchmark(group="bgplite")
def test_failure_recovery_is_deterministic(benchmark):
    def run():
        alg = BGPLiteAlgebra(n_nodes=12)
        net = erdos_renyi(alg, 12, 0.35,
                          bgp_policy_factory(alg, allow_reject=False),
                          seed=2)
        # fail a link mid-run under hostile channels, twice with
        # different timing seeds: outcomes must agree exactly
        (i, j) = next(iter(net.present_edges()))
        finals = []
        for seed in (10, 11):
            working = net.copy()
            sim = Simulator(working, seed=seed, link_config=HOSTILE,
                            refresh_interval=5.0, quiet_period=25.0)
            script = ChangeScript(sim, fail_link(i, j, time=40.0))
            res = script.run(max_time=4000.0)
            finals.append((res.converged, res.final_state, working))
        return alg, finals

    alg, finals = benchmark.pedantic(run, rounds=1, iterations=1)
    (c1, s1, n1), (c2, s2, _n2) = finals
    same = s1.equals(s2, alg)
    post_fp = synchronous_fixed_point(n1)
    emit("S7A — deterministic recovery after mid-run link failure", [
        f"two hostile runs with different timing: converged "
        f"{check_mark(c1)} / {check_mark(c2)}",
        f"identical final states: {check_mark(same)}",
        f"equal to the post-failure σ fixed point: "
        f"{check_mark(s1.equals(post_fp, alg))}",
    ])
    assert c1 and c2 and same
    assert s1.equals(post_fp, alg)


@pytest.mark.benchmark(group="bgplite")
def test_unsafe_extension_caught(benchmark):
    """One SetPref policy (real BGP) and the checker refuses the
    increasing law — the Section 8.2 hidden-information problem."""
    def run():
        alg = BGPLiteAlgebra(n_nodes=6)
        rng = random.Random(3)
        unsafe = alg.edge(2, 1, SetPref(0))
        safe = [alg.sample_edge_function(rng) for _ in range(20)]
        return verify_algebra(alg, edge_functions=safe + [unsafe],
                              rng=rng, samples=60)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    inc = report.check("F increasing")
    emit("S7A — the unsafe SetPref control", [
        f"increasing: {check_mark(inc.holds)}",
        f"counterexample: {inc.counterexample}",
    ])
    assert not inc.holds
