"""Benchmark-suite configuration.

Benchmarks *print* the tables/figures they regenerate (that is their
point), so pytest's output capture is disabled around every benchmark
test — the experiment blocks land on the terminal (and in
``bench_output.txt`` when the run is tee'd) right next to the timing
table.
"""

import sys

import pytest

# make `import bench_helpers` and `from tests.conftest import ...` work
# regardless of how pytest was invoked (bare `pytest` does not put the
# repo root on sys.path; `python -m pytest` does)
_here = __import__("pathlib").Path(__file__).parent
sys.path.insert(0, str(_here))
sys.path.insert(0, str(_here.parent))


@pytest.fixture(autouse=True)
def live_experiment_output(capsys):
    """Give bench_helpers.emit() access to capture suspension so the
    experiment blocks reach the terminal on passing tests too."""
    import bench_helpers

    bench_helpers.set_capsys(capsys)
    yield
    bench_helpers.set_capsys(None)
