"""Experiment AS — Section 3: robustness across message pathologies.

The δ model allows delay, loss, reordering and duplication.  This bench
sweeps each pathology's intensity on the event-driven simulator and
shows (a) the invariant — the same fixed point is reached every time —
and (b) the cost curve — convergence time and message count grow with
hostility, which is the price of the weak model, not of correctness.
"""

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.core import synchronous_fixed_point
from repro.protocols import LinkConfig, simulate
from tests.conftest import bgp_net, hop_net


@pytest.mark.benchmark(group="async")
def test_loss_sweep(benchmark):
    def run():
        net = hop_net(6)
        alg = net.algebra
        reference = synchronous_fixed_point(net)
        rows = []
        for loss in (0.0, 0.1, 0.2, 0.3, 0.4):
            cfg = LinkConfig(min_delay=0.2, max_delay=2.0, loss=loss)
            res = simulate(net, seed=int(loss * 100),
                           link_config=cfg, refresh_interval=4.0,
                           quiet_period=20.0)
            rows.append((loss, res.converged,
                         res.final_state.equals(reference, alg),
                         res.convergence_time, res.stats.sent))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (7, 10, 9, 11, 8)
    lines = [fmt_row(("loss", "converged", "same-fp", "conv-time",
                      "msgs"), widths)]
    for (loss, conv, same, t, sent) in rows:
        lines.append(fmt_row((f"{loss:.0%}", check_mark(conv),
                              check_mark(same), f"{t:.1f}", sent), widths))
    emit("AS / §3 — loss-rate sweep (hop count, ring)", lines)
    assert all(conv and same for (_l, conv, same, _t, _s) in rows)
    # losing messages costs time: the hostile end is slower than clean
    assert rows[-1][3] >= rows[0][3]


@pytest.mark.benchmark(group="async")
def test_duplication_sweep(benchmark):
    def run():
        net = bgp_net(5, seed=6)
        alg = net.algebra
        reference = synchronous_fixed_point(net)
        rows = []
        for dup in (0.0, 0.2, 0.5, 1.0):
            cfg = LinkConfig(min_delay=0.2, max_delay=2.0, duplicate=dup)
            res = simulate(net, seed=int(dup * 10) + 3, link_config=cfg,
                           refresh_interval=5.0, quiet_period=20.0)
            rows.append((dup, res.converged,
                         res.final_state.equals(reference, alg),
                         res.stats.duplicated))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (7, 10, 9, 12)
    lines = [fmt_row(("dup", "converged", "same-fp", "extra msgs"),
                     widths)]
    for (dup, conv, same, extra) in rows:
        lines.append(fmt_row((f"{dup:.0%}", check_mark(conv),
                              check_mark(same), extra), widths))
    emit("AS / §3 — duplication sweep (BGPLite, ring)", lines)
    assert all(conv and same for (_d, conv, same, _e) in rows)


@pytest.mark.benchmark(group="async")
def test_reordering_sweep(benchmark):
    """Widen the delay jitter window (the reordering knob) and compare
    FIFO against free-for-all delivery: classical proofs assume FIFO,
    Theorem 7 does not need it — outcomes match exactly."""
    def run():
        net = hop_net(6)
        alg = net.algebra
        reference = synchronous_fixed_point(net)
        rows = []
        for window in (1.0, 4.0, 10.0):
            for fifo in (True, False):
                cfg = LinkConfig(min_delay=0.1, max_delay=window,
                                 fifo=fifo)
                res = simulate(net, seed=int(window) * 2 + fifo,
                               link_config=cfg, refresh_interval=5.0,
                               quiet_period=20.0)
                rows.append((window, fifo, res.converged,
                             res.final_state.equals(reference, alg)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (14, 6, 10, 9)
    lines = [fmt_row(("jitter window", "fifo", "converged", "same-fp"),
                     widths)]
    for (w, fifo, conv, same) in rows:
        lines.append(fmt_row((w, check_mark(fifo), check_mark(conv),
                              check_mark(same)), widths))
    emit("AS / §3 — reordering sweep: FIFO vs unordered delivery", lines)
    assert all(conv and same for (_w, _f, conv, same) in rows)


@pytest.mark.benchmark(group="async")
def test_abstract_schedule_zoo(benchmark):
    """The same invariant at the δ level across qualitatively different
    admissible schedules, including the adversarially stale one."""
    from repro.core import RoutingState, delta_run, schedule_zoo

    def run():
        net = hop_net(5)
        alg = net.algebra
        reference = synchronous_fixed_point(net)
        rows = []
        for sched in schedule_zoo(5, seeds=(0, 1)):
            res = delta_run(net, sched,
                            RoutingState.filled(7, 5), max_steps=3000)
            rows.append((repr(sched), res.converged,
                         res.state.equals(reference, alg),
                         res.converged_at))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{check_mark(conv)} {check_mark(same)} "
             f"steps={at!s:<6} {name}"
             for (name, conv, same, at) in rows]
    emit("AS / §3 — abstract schedule zoo (δ level)", lines)
    assert all(conv and same for (_n, conv, same, _a) in rows)
