"""Experiment T1 — Table 1 regenerated as a live property matrix.

For every algebra shipped with the library, run the executable law
checkers and print the paper's property table: the required laws (which
every algebra must pass) and the optional increasing / strictly
increasing / distributive columns (which differentiate the classical,
policy-rich and broken regimes).

Paper artefact: Table 1 (property definitions) + the classifications
asserted throughout Sections 1–2.
"""

import random

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.algebras import (
    AddPaths,
    BGPLiteAlgebra,
    GaoRexfordAlgebra,
    HopCountAlgebra,
    LongestPathsAlgebra,
    MostReliableAlgebra,
    QuantisedReliabilityAlgebra,
    ShortestPathsAlgebra,
    StratifiedAlgebra,
    WidestPathsAlgebra,
    disagree,
)
from repro.verification import verify_algebra

ALGEBRAS = [
    ("shortest-paths", lambda: ShortestPathsAlgebra(), True, True, True),
    ("longest-paths", lambda: LongestPathsAlgebra(), False, False, None),
    ("widest-paths", lambda: WidestPathsAlgebra(), True, False, True),
    ("most-reliable", lambda: MostReliableAlgebra(), True, True, True),
    ("hop-count (RIP)", lambda: HopCountAlgebra(16), True, True, None),
    ("quantised-reliability", lambda: QuantisedReliabilityAlgebra(8),
     True, True, None),
    ("stratified", lambda: StratifiedAlgebra(), True, True, False),
    ("add-paths(shortest)", lambda: AddPaths(ShortestPathsAlgebra(), 6),
     True, True, None),
    ("bgp-lite (§7)", lambda: BGPLiteAlgebra(n_nodes=6), True, True, False),
    ("gao-rexford", lambda: GaoRexfordAlgebra(n_nodes=6), True, True, None),
    ("SPP DISAGREE", lambda: disagree().algebra, False, False, None),
]


def run_matrix():
    rng = random.Random(0)
    rows = []
    for (name, build, *_expect) in ALGEBRAS:
        report = verify_algebra(build(), rng=rng, samples=40)
        rows.append((name, report))
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_property_matrix(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    widths = (24, 9, 11, 7, 13)
    lines = [fmt_row(("algebra", "required", "increasing", "strict",
                      "distributive"), widths)]
    for (name, rep) in rows:
        lines.append(fmt_row((
            name,
            check_mark(rep.is_routing_algebra),
            check_mark(rep.is_increasing),
            check_mark(rep.is_strictly_increasing),
            check_mark(rep.is_distributive),
        ), widths))
    emit("T1 / Table 1 — algebraic property matrix", lines)

    # shape assertions: the classifications the paper relies on
    by_name = {name: rep for (name, rep) in rows}
    for (name, _build, incr, strict, distr) in ALGEBRAS:
        rep = by_name[name]
        assert rep.is_routing_algebra, f"{name}: required laws fail"
        assert rep.is_increasing == incr, name
        assert rep.is_strictly_increasing == strict, name
        if distr is not None:
            assert rep.is_distributive == distr, name
