"""Experiment T2 — Table 2's four simple algebras solving path problems.

Each row of Table 2 is run on random connected graphs: the algebra's
laws are checked, the synchronous iteration is driven to a fixed point,
and the fixed point is validated against an independent computation
(networkx shortest/widest paths) — the algebra really "solves" its
path problem, as the table claims.

Paper artefact: Table 2 (a few very simple routing algebras).
"""

import math
import random

import networkx as nx
import pytest

from bench_helpers import emit, fmt_row
from repro.algebras import (
    MostReliableAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.core import iterate_sigma, RoutingState
from repro.topologies import erdos_renyi, uniform_weight_factory


def networkx_graph(net, weight_of):
    g = nx.DiGraph()
    g.add_nodes_from(range(net.n))
    for (i, j) in net.present_edges():
        g.add_edge(j, i, w=weight_of(net.edge(i, j)))   # j -> i direction
    return g


def run_shortest(n, seed):
    alg = ShortestPathsAlgebra()
    net = erdos_renyi(alg, n, 0.4, uniform_weight_factory(alg, 1, 9),
                      seed=seed)
    res = iterate_sigma(net, RoutingState.identity(alg, n))
    assert res.converged
    g = networkx_graph(net, lambda e: e.weight)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            expected = nx.shortest_path_length(g, j, i, weight="w")
            assert res.state.get(i, j) == expected, (i, j)
    return res.rounds


def run_widest(n, seed):
    alg = WidestPathsAlgebra()
    net = erdos_renyi(alg, n, 0.4, uniform_weight_factory(alg, 1, 9),
                      seed=seed)
    res = iterate_sigma(net, RoutingState.identity(alg, n))
    assert res.converged
    # independent max-min via brute-force over networkx simple paths
    g = networkx_graph(net, lambda e: e.capacity)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            best = max(
                (min(g[u][v]["w"] for u, v in zip(p, p[1:]))
                 for p in nx.all_simple_paths(g, j, i)),
                default=0)
            assert res.state.get(i, j) == best, (i, j)
    return res.rounds


def run_most_reliable(n, seed):
    alg = MostReliableAlgebra(sample_grid=10)
    rng = random.Random(seed)
    net = erdos_renyi(alg, n, 0.4,
                      lambda r, _i, _j: alg.edge(r.randint(5, 9) / 10),
                      seed=seed)
    res = iterate_sigma(net, RoutingState.identity(alg, n))
    assert res.converged
    g = networkx_graph(net, lambda e: e.reliability)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            best = max(
                (math.prod(g[u][v]["w"] for u, v in zip(p, p[1:]))
                 for p in nx.all_simple_paths(g, j, i)),
                default=0.0)
            assert abs(res.state.get(i, j) - best) < 1e-9, (i, j)
    return res.rounds


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("name,runner,sizes", [
    ("shortest paths (ℕ∞, min, F+)", run_shortest, (6, 10, 14)),
    ("widest paths (ℕ∞, max, Fmin)", run_widest, (6, 8)),
    ("most reliable ([0,1], max, F×)", run_most_reliable, (6, 8)),
], ids=["shortest", "widest", "most-reliable"])
def test_table2_row(benchmark, name, runner, sizes):
    def run_all():
        return {n: runner(n, seed=n) for n in sizes}

    rounds = benchmark.pedantic(run_all, rounds=1, iterations=1)
    widths = (34, 6, 8)
    lines = [fmt_row(("algebra", "n", "rounds"), widths)]
    for n, r in rounds.items():
        lines.append(fmt_row((name, n, r), widths))
    lines.append("fixed points validated against independent "
                 "networkx computations ✓")
    emit("T2 / Table 2 — simple algebras solve their path problems", lines)


@pytest.mark.benchmark(group="table2")
def test_table2_longest_paths_is_the_broken_row(benchmark):
    """Longest paths satisfies the required laws but is non-increasing;
    its 'answer' on any cyclic topology is the useless all-∞̄... all-0̄
    state — Table 2 lists it as a structure, not as a working protocol."""
    from repro.algebras import LongestPathsAlgebra
    from repro.core import Network

    def run():
        alg = LongestPathsAlgebra()
        net = Network(alg, 3)
        for (i, j) in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            net.set_edge(i, j, alg.edge(2))
        res = iterate_sigma(net, RoutingState.identity(alg, 3))
        return alg, res

    alg, res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.converged
    off_diag = [r for (i, j, r) in res.state.entries() if i != j]
    emit("T2 / Table 2 — longest paths (the non-increasing row)",
         [f"converged: {res.converged}; "
          f"all off-diagonal entries = {off_diag[0]} (numeric ∞ = the "
          "trivial route leaked everywhere: structurally legal, useless)"])
    assert all(r == alg.trivial for r in off_diag)
