"""Experiment R — Section 8.1: convergence-rate families.

The paper states (citing its companion work [5]) that distributive
algebras converge in O(n) synchronous rounds while non-distributive
increasing algebras need O(n²) in the worst case, the bound being
tight for some algebra/network family.

We measure three families and fit growth exponents:

* distributive control — shortest paths on a line: Θ(n) rounds;
* preference cascade — an increasing SPP family whose rounds track n
  with a super-diameter constant;
* path hunting — exploration cliques after destination withdrawal:
  rounds Θ(n) but total route churn Θ(n²) (the quadratic blow-up shows
  up in work, matching BGP path-exploration practice).

Every measured round count is also checked against the *certified*
bound from the ultrametric proof (rounds ≤ d_max).
"""

import pytest

from bench_helpers import emit, fmt_row
from repro.algebras import HopCountAlgebra
from repro.analysis import measure_sync, pv_bounds, rate_sweep
from repro.core import iterate_sigma, synchronous_fixed_point
from repro.topologies import (
    exploration_clique,
    line,
    preference_cascade,
    uniform_weight_factory,
)


def hop_line(n):
    alg = HopCountAlgebra(2 * n)
    return line(alg, n, uniform_weight_factory(alg, 1, 1))


@pytest.mark.benchmark(group="rate")
def test_rate_distributive_control(benchmark):
    sweep = benchmark.pedantic(
        rate_sweep, args=("hop-line", hop_line, [4, 8, 16, 24]),
        rounds=1, iterations=1)
    emit("R / §8.1 — distributive control (shortest paths on a line)",
         sweep.table().splitlines())
    assert 0.8 <= sweep.exponent <= 1.2


@pytest.mark.benchmark(group="rate")
def test_rate_preference_cascade(benchmark):
    sweep = benchmark.pedantic(
        rate_sweep, args=("cascade", preference_cascade, [4, 8, 16, 24]),
        rounds=1, iterations=1)
    emit("R / §8.1 — increasing non-distributive cascade",
         sweep.table().splitlines())
    # rounds track n (information crosses the whole line serially)
    assert sweep.exponent >= 0.8
    rounds = [p.rounds for p in sweep.points]
    assert rounds == sorted(rounds)


@pytest.mark.benchmark(group="rate")
def test_rate_path_hunting_churn_quadratic(benchmark):
    """Withdraw the destination from a clique and count *route changes*
    during re-convergence: the measured churn grows ≈ n² even though
    rounds stay ≈ n — the quadratic cost the rate discussion targets."""
    import numpy as np

    def run():
        rows = []
        for n in (4, 5, 6, 7):
            net = exploration_clique(n)
            fp = synchronous_fixed_point(net)
            for i in range(1, n):
                net.remove_edge(i, 0)
                net.remove_edge(0, i)
            res = iterate_sigma(net, fp, max_rounds=500,
                                keep_trajectory=True)
            churn = 0
            for prev, cur in zip(res.trajectory, res.trajectory[1:]):
                for a in range(n):
                    for b in range(n):
                        if not net.algebra.equal(prev.get(a, b),
                                                 cur.get(a, b)):
                            churn += 1
            rows.append((n, res.rounds, churn))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (6, 8, 8)
    lines = [fmt_row(("n", "rounds", "churn"), widths)]
    lines += [fmt_row(r, widths) for r in rows]
    import numpy as np

    ns = [r[0] for r in rows]
    churn = [r[2] for r in rows]
    slope, _ = np.polyfit(np.log(ns), np.log(churn), 1)
    lines.append(f"churn growth exponent: {slope:.2f} "
                 "(≈ 2 ⇒ quadratic work, the §8.1 regime)")
    emit("R / §8.1 — path hunting after withdrawal (clique)", lines)
    assert slope > 1.3


@pytest.mark.benchmark(group="rate")
def test_measured_rounds_respect_certified_bounds(benchmark):
    """The ultrametric proof certifies rounds ≤ d_max; check it on the
    cascade family (the loose-but-sound bound of Lemma 2)."""
    def run():
        rows = []
        for n in (4, 6, 8):
            net = preference_cascade(n)
            m = measure_sync(net)
            bound = pv_bounds(net).sync_round_bound
            rows.append((n, m.rounds, bound))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (6, 8, 18)
    lines = [fmt_row(("n", "rounds", "certified bound"), widths)]
    lines += [fmt_row(r, widths) for r in rows]
    emit("R / §8.1 — measured rounds vs certified d_max bound", lines)
    assert all(r <= b for (_n, r, b) in rows)
