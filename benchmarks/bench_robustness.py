"""Experiment ROB — failure-injection sweeps (the Section 3.2 promise,
operationalised).

For every link of a policy-rich network: fail it mid-run, measure
re-convergence, and check the reached state is the post-failure
topology's *unique* fixed point (determinism = no wedgie after any
failure).  Then partitioning failures: routes must be withdrawn
cleanly, never counted to infinity.
"""

import pytest

from bench_helpers import check_mark, emit
from repro.analysis import failure_sweep, partition_probe, \
    random_multi_failure_sweep
from repro.protocols import HOSTILE
from tests.conftest import bgp_net, hop_net, shortest_pv_net


@pytest.mark.benchmark(group="robustness")
def test_single_link_sweep(benchmark):
    def run():
        net = bgp_net(6, seed=50)
        return failure_sweep(net, seed=50)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ROB — every-link failure sweep (BGPLite ring, n=6)",
         report.table().splitlines() + [
             f"all converged: {check_mark(report.all_converged)}   "
             f"all deterministic: {check_mark(report.all_deterministic)}",
             f"re-convergence: mean {report.mean_reconvergence:.1f}, "
             f"worst {report.worst_reconvergence:.1f}",
         ])
    assert report.all_converged
    assert report.all_deterministic


@pytest.mark.benchmark(group="robustness")
def test_double_failures_under_hostile_channels(benchmark):
    def run():
        net = shortest_pv_net(6, seed=51)
        return random_multi_failure_sweep(net, k=2, trials=4, seed=51,
                                          link_config=HOSTILE)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ROB — double failures + hostile channels (shortest-PV, n=6)", [
        f"trials: {len(report.outcomes)}",
        f"all converged: {check_mark(report.all_converged)}",
        f"all deterministic: {check_mark(report.all_deterministic)}",
        f"worst re-convergence: {report.worst_reconvergence:.1f}",
    ])
    assert report.all_converged
    assert report.all_deterministic


@pytest.mark.benchmark(group="robustness")
def test_partition_withdraws_cleanly(benchmark):
    def run():
        net = shortest_pv_net(5, seed=52)
        return partition_probe(net, [(0, 1), (0, 4)], seed=52)

    outcome, withdrew = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ROB — partitioning failure (isolate node 0)", [
        f"converged: {check_mark(outcome.converged)}",
        f"unreachable pairs after the cut: {outcome.partitioned_pairs}",
        f"clean withdrawal (no ghosts / no count-to-infinity): "
        f"{check_mark(withdrew)}",
    ])
    assert withdrew
    assert outcome.partitioned_pairs == 8
