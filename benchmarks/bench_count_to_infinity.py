"""Experiment C2I — count-to-infinity vs the path-vector repair (Section 5).

Shortest-path DV is strictly increasing but infinite: from a stale
post-failure state its distances climb forever (we measure the climb
rate).  The same scenario under (a) RIP's bounded metric and (b) the
AddPaths lift converges, with the measured round counts matching the
certified bounds (counting-to-B rounds for RIP, ≤ n rounds for PV).
"""

import pytest

from bench_helpers import emit, fmt_row
from repro.algebras import HopCountAlgebra
from repro.core import Network, RoutingState, iterate_sigma
from repro.topologies import count_to_infinity, count_to_infinity_pv


@pytest.mark.benchmark(group="c2i")
def test_plain_dv_counts_to_infinity(benchmark):
    def run():
        net, stale = count_to_infinity()
        res = iterate_sigma(net, stale, max_rounds=60, keep_trajectory=True)
        climb = [s.get(1, 0) for s in res.trajectory]
        return res.converged, climb

    converged, climb = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("C2I — plain shortest-path DV from the stale state", [
        f"converged in 60 rounds: {converged}",
        f"node 1's distance to the dead destination, every 10 rounds: "
        f"{climb[::10]}",
        "distances climb ~1 per round, forever (S = ℕ∞ is infinite; "
        "Theorem 7 inapplicable)",
    ])
    assert not converged
    assert climb[-1] - climb[0] >= 50


@pytest.mark.benchmark(group="c2i")
@pytest.mark.parametrize("bound", [16, 64, 256])
def test_rip_counts_to_its_bound(benchmark, bound):
    """RIP's fix restores finiteness, but convergence-after-failure
    costs Θ(bound) rounds — why RIP's 16 is small and why its
    convergence is still slow."""
    def run():
        alg = HopCountAlgebra(bound)
        net = Network(alg, 3)
        net.set_edge(1, 2, alg.edge(1))
        net.set_edge(2, 1, alg.edge(1))
        stale = RoutingState([[0, alg.invalid, alg.invalid],
                              [1, 0, 1], [2, 1, 0]])
        res = iterate_sigma(net, stale, max_rounds=2 * bound)
        return res

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"C2I — RIP with bound {bound}", [
        f"converged: {res.converged} in {res.rounds} rounds "
        f"(≈ the bound: counting to {bound})",
        f"final route 1 → 0: {res.state.get(1, 0)} (= unreachable)",
    ])
    assert res.converged
    assert bound // 2 <= res.rounds <= bound + 2


@pytest.mark.benchmark(group="c2i")
def test_path_vector_flushes_immediately(benchmark):
    def run():
        net, stale = count_to_infinity_pv()
        return net, iterate_sigma(net, stale, max_rounds=20)

    net, res = benchmark.pedantic(run, rounds=1, iterations=1)
    alg = net.algebra
    emit("C2I — the path-vector repair (Theorem 11)", [
        f"converged: {res.converged} in {res.rounds} rounds "
        f"(certified ≤ n = {net.n})",
        f"final route 1 → 0: {res.state.get(1, 0)}",
        "loop rejection (P3) makes the stale routes inconsistent; the "
        "h_i chain flushes them in ≤ n rounds instead of Θ(bound)",
    ])
    assert res.converged
    assert res.rounds <= net.n
    assert alg.equal(res.state.get(1, 0), alg.invalid)


@pytest.mark.benchmark(group="c2i")
def test_crossover_summary(benchmark):
    """The shape the paper predicts: PV convergence time after failure
    is independent of the metric's range; RIP's grows linearly with it."""
    def run():
        rows = []
        for bound in (8, 32, 128):
            alg = HopCountAlgebra(bound)
            net = Network(alg, 3)
            net.set_edge(1, 2, alg.edge(1))
            net.set_edge(2, 1, alg.edge(1))
            stale = RoutingState([[0, alg.invalid, alg.invalid],
                                  [1, 0, 1], [2, 1, 0]])
            rip_rounds = iterate_sigma(net, stale,
                                       max_rounds=2 * bound).rounds
            pv_net, pv_stale = count_to_infinity_pv()
            pv_rounds = iterate_sigma(pv_net, pv_stale).rounds
            rows.append((bound, rip_rounds, pv_rounds))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (12, 12, 10)
    lines = [fmt_row(("metric range", "RIP rounds", "PV rounds"), widths)]
    lines += [fmt_row(r, widths) for r in rows]
    lines.append("RIP scales with the metric range; PV stays flat ≤ n")
    emit("C2I — crossover: bounded-metric vs path-vector repair", lines)
    rip_rounds = [r[1] for r in rows]
    pv_rounds = [r[2] for r in rows]
    assert rip_rounds == sorted(rip_rounds) and rip_rounds[-1] > rip_rounds[0]
    assert len(set(pv_rounds)) == 1
