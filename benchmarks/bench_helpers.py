"""Shared rendering helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table/figure/claim from the
paper (see the per-experiment index in DESIGN.md) and prints the rows
through :func:`emit` so they appear on the terminal even under pytest's
output capture.  ``EXPERIMENTS.md`` records paper-vs-measured for every
row emitted here.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional, Sequence

#: the active capsys fixture, installed per-test by benchmarks/conftest.py
#: so that emit() can print through pytest's capture suspension
_capsys = None


def set_capsys(capsys) -> None:
    global _capsys
    _capsys = capsys


def emit(title: str, rows: Iterable[str]) -> None:
    """Print an experiment block, bypassing pytest's output capture."""
    rows = list(rows)
    if _capsys is not None:
        with _capsys.disabled():
            _print_block(title, rows)
    else:
        _print_block(title, rows)


def _print_block(title: str, rows: Sequence[str]) -> None:
    print()
    print(f"── {title} " + "─" * max(0, 68 - len(title)))
    for row in rows:
        print(f"  {row}")
    sys.stdout.flush()


def check_mark(flag: bool) -> str:
    return "✓" if flag else "✗"


def fmt_row(cells: Sequence, widths: Sequence[int]) -> str:
    return "  ".join(f"{str(c):<{w}}" for c, w in zip(cells, widths))
