"""Ablation benches — the design choices DESIGN.md calls out, measured.

Three knobs whose values the library picked for a reason:

1. **Path tie-break order** in ``AddPaths`` ⊕ — length-then-lex vs
   pure lex.  Both give total orders (so the Table 1 structural laws
   hold either way), but pure-lex breaks *strict increasingness*:
   extension lengthens a path, and a longer path can be
   lexicographically smaller, making an extension preferred — the
   ablation shows the law checker catching it.
2. **Refresh interval** under loss — the simulator's soft-state
   liveness mechanism.  Too slow and lost messages take long to repair;
   benchmark the convergence-time curve.
3. **δ convergence window** — the detector needs (max β read-back)
   extra quiet steps; halving it below the schedule's ``max_delay``
   risks premature verdicts.  Measured: the chosen window never
   mis-declares, an undersized one can.
"""

import random

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.algebras import AddPaths, ShortestPathsAlgebra
from repro.core import (
    RandomSchedule,
    RoutingState,
    delta_run,
    is_stable,
    synchronous_fixed_point,
)
from repro.protocols import LinkConfig, simulate
from repro.verification import verify_algebra
from tests.conftest import hop_net


class PureLexAddPaths(AddPaths):
    """Ablated AddPaths: tie-break by lexicographic path only."""

    def _path_key(self, path):
        return (tuple(path),)          # drop the length component


@pytest.mark.benchmark(group="ablation")
def test_ablation_path_tiebreak(benchmark):
    def run():
        # the tie-break is load-bearing exactly when the base value can
        # stay EQUAL across an extension — widest paths (min with the
        # capacity) is the canonical case; with shortest paths (w ≥ 1)
        # the value strictly increases and the tie-break never fires.
        from repro.algebras import WidestPathsAlgebra

        rng = random.Random(0)
        base = WidestPathsAlgebra()
        chosen = verify_algebra(AddPaths(base, n_nodes=6), rng=rng,
                                samples=80)
        rng = random.Random(0)
        ablated = verify_algebra(PureLexAddPaths(base, n_nodes=6), rng=rng,
                                 samples=80)
        return chosen, ablated

    chosen, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ABL — path tie-break: length-then-lex (chosen) vs pure lex", [
        "                     required  strictly-increasing",
        f"length-then-lex      {check_mark(chosen.is_routing_algebra)}"
        f"         {check_mark(chosen.is_strictly_increasing)}",
        f"pure lex             {check_mark(ablated.is_routing_algebra)}"
        f"         {check_mark(ablated.is_strictly_increasing)}",
        "pure lex stays a routing algebra but loses strictness: an "
        "extension can be lexicographically preferred — Theorem 11's "
        "hypothesis would silently fail",
    ])
    assert chosen.is_strictly_increasing
    # the structural laws survive the ablation...
    assert ablated.is_routing_algebra
    # ...but the convergence-relevant one does not
    assert not ablated.is_strictly_increasing


@pytest.mark.benchmark(group="ablation")
def test_ablation_refresh_interval(benchmark):
    def run():
        net = hop_net(6)
        alg = net.algebra
        ref = synchronous_fixed_point(net)
        cfg = LinkConfig(min_delay=0.2, max_delay=2.0, loss=0.3)
        rows = []
        for interval in (2.0, 5.0, 10.0, 20.0):
            res = simulate(net, seed=9, link_config=cfg,
                           refresh_interval=interval,
                           quiet_period=4 * interval)
            rows.append((interval, res.converged,
                         res.final_state.equals(ref, alg),
                         res.convergence_time, res.stats.sent))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (10, 10, 9, 11, 8)
    lines = [fmt_row(("refresh", "converged", "same-fp", "conv-time",
                      "msgs"), widths)]
    for r in rows:
        lines.append(fmt_row((r[0], check_mark(r[1]), check_mark(r[2]),
                              f"{r[3]:.1f}", r[4]), widths))
    lines.append("under 30% loss: faster refresh repairs losses sooner "
                 "(lower conv-time) at higher message cost")
    emit("ABL — refresh interval under 30% loss", lines)
    assert all(r[1] and r[2] for r in rows)
    # cost trade-off: the fastest refresh sends the most messages
    assert rows[0][4] >= rows[-1][4]


@pytest.mark.benchmark(group="ablation")
def test_ablation_delta_window(benchmark):
    """The δ convergence detector's quiet window must exceed the
    schedule's maximum read-back; the default (max_delay + 2) is safe,
    a window of 1 can declare victory while stale reads are pending."""
    def run():
        net = hop_net(5)
        alg = net.algebra
        sched = RandomSchedule(5, seed=3, max_delay=6)
        start = RoutingState.filled(7, 5)
        safe = delta_run(net, sched, start, max_steps=3000)
        premature_misjudged = 0
        for seed in range(12):
            s = RandomSchedule(5, seed=seed, max_delay=6)
            res = delta_run(net, s, start, max_steps=3000,
                            stability_window=1)
            # re-run the remaining steps honestly: is the claimed
            # convergence point really the limit?
            honest = delta_run(net, s, start, max_steps=3000)
            if res.converged and honest.converged and \
                    (res.converged_at or 0) < (honest.converged_at or 0):
                premature_misjudged += 1
        return safe, premature_misjudged

    safe, premature = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ABL — δ convergence-detection window", [
        f"default window (max_delay + 2): converged at "
        f"{safe.converged_at} (sound: all pending reads covered)",
        f"window = 1: earlier-than-true convergence claims in "
        f"{premature}/12 schedules "
        "(the stale-read hazard the default window prevents)",
    ])
    assert safe.converged