"""Experiment F2 — Figure 2: the structure of the two ultrametrics.

Figure 2 shows how the distance-vector construction (h → d → D) and the
path-vector construction (h_c/h_i → d_c/d_i → d → D) fit together.
This bench computes every layer on live data and prints the structural
facts the figure encodes:

* DV: 1 = h(∞̄) ≤ h(x) ≤ h(0̄) = H, d bounded by H;
* PV: d restricted to consistent routes *is* d_c (the "=" edges of the
  figure), inconsistent distances sit in the band (H_c, H_c + n + 1],
  strictly above every consistent distance.

Paper artefact: Figure 2 (and the Section 4.1 / 5.2 definitions).
"""

import itertools
import random

import pytest

from bench_helpers import emit
from repro.core import (
    DistanceVectorUltrametric,
    PathVectorUltrametric,
    enumerate_consistent_routes,
    random_state,
    sigma,
)
from tests.conftest import hop_net, shortest_pv_net


@pytest.mark.benchmark(group="figure2")
def test_figure2_dv_structure(benchmark):
    def run():
        net = hop_net(4, bound=8)
        metric = DistanceVectorUltrametric(net.algebra)
        routes = list(net.algebra.routes())
        dists = [metric.distance(x, y)
                 for x, y in itertools.product(routes, repeat=2)]
        return net, metric, routes, dists

    net, metric, routes, dists = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    alg = net.algebra
    emit("F2 / Figure 2 — distance-vector ultrametric (left column)", [
        f"h(∞̄) = {metric.height(alg.invalid)}   "
        f"h(0̄) = H = {metric.height(alg.trivial)}",
        f"max observed d = {max(dists)}  (bound: {metric.bound})",
        f"d(x,x) = 0 everywhere: "
        f"{all(metric.distance(r, r) == 0 for r in routes)}",
        f"D on two random states = "
        f"{metric.state_distance(random_state(alg, 4, random.Random(0)), random_state(alg, 4, random.Random(1)))}",
    ])
    assert metric.height(alg.invalid) == 1
    assert metric.height(alg.trivial) == metric.H
    assert max(dists) <= metric.bound


@pytest.mark.benchmark(group="figure2")
def test_figure2_pv_structure(benchmark):
    def run():
        net = shortest_pv_net(4, seed=3)
        metric = PathVectorUltrametric(net)
        sc = enumerate_consistent_routes(net.algebra, net)
        rng = random.Random(4)
        ghosts = [r for r in
                  (net.algebra.sample_route(rng) for _ in range(60))
                  if not metric.is_consistent(r)][:10]
        return net, metric, sc, ghosts

    net, metric, sc, ghosts = benchmark.pedantic(run, rounds=1, iterations=1)
    alg = net.algebra

    cons_d = [metric.distance(x, y) for x in sc for y in sc
              if not alg.equal(x, y)]
    mixed_d = [metric.distance(x, g) for x in sc[:6] for g in ghosts]
    emit("F2 / Figure 2 — path-vector ultrametric (right column)", [
        f"|S_c| = {len(sc)}   H_c = {metric.H_c}   "
        f"H_i = n + 1 = {metric.H_i}",
        f"consistent distances within [1, H_c]: "
        f"max = {max(cons_d)}",
        f"inconsistent distances within (H_c, H_c + n + 1]: "
        f"min = {min(mixed_d)}, max = {max(mixed_d)}",
        f"every inconsistent disagreement > every consistent one: "
        f"{min(mixed_d) > max(cons_d)}",
        f"D bounded by H_c + (n+1) = {metric.bound}",
    ])
    assert max(cons_d) <= metric.H_c
    assert min(mixed_d) > metric.H_c
    assert max(mixed_d) <= metric.bound


@pytest.mark.benchmark(group="figure2")
def test_figure2_inconsistent_band_shrinks_under_sigma(benchmark):
    """The quantity Figure 2's h_i encodes: each σ application pushes
    the surviving inconsistent routes to longer paths — h_i strictly
    falls until the state is consistent."""
    def run():
        net = shortest_pv_net(5, seed=5)
        metric = PathVectorUltrametric(net)
        rng = random.Random(6)
        X = random_state(net.algebra, 5, rng)
        trail = []
        for _ in range(net.n + 1):
            worst = max((metric.inconsistent_height(r)
                         for (_i, _j, r) in X.entries()
                         if not metric.is_consistent(r)), default=0)
            trail.append(worst)
            X = sigma(net, X)
        return trail

    trail = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("F2 / Figure 2 — max h_i per σ round (0 = fully consistent)",
         [f"rounds: {trail}"])
    # once zero, stays zero; and it reaches zero within n rounds
    assert trail[-1] == 0
    seen_zero = False
    for v in trail:
        if seen_zero:
            assert v == 0
        seen_zero = seen_zero or v == 0
