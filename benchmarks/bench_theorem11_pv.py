"""Experiment TH11 — Theorem 11: path-vector absolute convergence.

Increasing path algebra (infinite carriers welcome) ⇒ absolute
convergence, including from *inconsistent* states manufactured the
honest way: converge, mutate the topology (Section 3.2), and keep the
stale state as the new start.

Paper artefact: Theorem 11 + the Section 5 consistency machinery.
"""

import random

import pytest

from bench_helpers import check_mark, emit
from repro.algebras import AddPaths, ShortestPathsAlgebra, WidestPathsAlgebra
from repro.analysis import run_absolute_convergence
from repro.core import (
    PathVectorUltrametric,
    RandomSchedule,
    RoutingState,
    delta_run,
    iterate_sigma,
)
from repro.topologies import erdos_renyi, lifted_weight_factory
from tests.conftest import bgp_net, shortest_pv_net


def pv_random(n, seed, base_cls=ShortestPathsAlgebra):
    base = base_cls()
    alg = AddPaths(base, n_nodes=n)
    return erdos_renyi(alg, n, 0.5, lifted_weight_factory(alg, 1, 5),
                       seed=seed)


GRID = [
    ("add-paths(shortest) / random", lambda: pv_random(5, 31)),
    ("add-paths(widest) / random",
     lambda: pv_random(5, 32, WidestPathsAlgebra)),
    ("bgp-lite / ring", lambda: bgp_net(5, seed=33)),
]


@pytest.mark.benchmark(group="theorem11")
@pytest.mark.parametrize("name,build", GRID,
                         ids=[g[0].split(" /")[0] for g in GRID])
def test_theorem11_absolute_convergence(benchmark, name, build):
    def run():
        return run_absolute_convergence(build(), n_starts=12, seed=34,
                                        max_steps=3000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("TH11 / Theorem 11 — " + name, [
        f"runs (states × schedules): {report.runs}",
        f"all converged: {check_mark(report.all_converged)}",
        f"distinct fixed points: {len(report.distinct_fixed_points)}",
        f"steps: mean {report.mean_steps:.1f}, worst {report.max_steps}",
        f"ABSOLUTE CONVERGENCE: {check_mark(report.absolute)}",
    ])
    assert report.absolute


@pytest.mark.benchmark(group="theorem11")
def test_theorem11_stale_states_from_real_topology_changes(benchmark):
    """The Section 3.2 protocol: each topology mutation turns the old
    fixed point into an inconsistent start for the new instance."""
    def run():
        net = shortest_pv_net(5, seed=35)
        alg = net.algebra
        base = alg.base
        rng = random.Random(36)
        rows = []
        state = RoutingState.identity(alg, 5)
        for round_idx in range(4):
            state = iterate_sigma(net, state).state
            # mutate: re-weight a random present edge
            edges = list(net.present_edges())
            (i, j) = edges[rng.randrange(len(edges))]
            net.set_edge(i, j, alg.edge(i, j, base.edge(rng.randint(1, 9))))
            metric = PathVectorUltrametric(net)
            stale = sum(1 for (_a, _b, r) in state.entries()
                        if not metric.is_consistent(r))
            res = delta_run(net, RandomSchedule(5, seed=37 + round_idx),
                            state, max_steps=3000)
            ref = iterate_sigma(
                net, RoutingState.identity(alg, 5)).state
            rows.append((round_idx, (i, j), stale, res.converged,
                         res.state.equals(ref, alg)))
            state = res.state
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["round  reweighted  stale-entries  converged  unique-fp"]
    for (k, edge, stale, conv, same) in rows:
        lines.append(f"{k:<6d} {str(edge):<11s} {stale:<14d} "
                     f"{check_mark(conv):<10s} {check_mark(same)}")
    emit("TH11 — re-convergence across live topology changes", lines)
    assert all(conv and same for (_k, _e, _s, conv, same) in rows)
    assert any(stale > 0 for (_k, _e, stale, _c, _s) in rows), \
        "the experiment should actually have produced inconsistent states"


@pytest.mark.benchmark(group="theorem11")
def test_theorem11_flush_bound(benchmark):
    """Inconsistent routes vanish within n synchronous rounds (the h_i
    chain argument) — measured directly."""
    from repro.core import random_state, sigma

    def run():
        worst = 0
        for seed in range(5):
            net = pv_random(5, 40 + seed)
            metric = PathVectorUltrametric(net)
            rng = random.Random(50 + seed)
            X = random_state(net.algebra, 5, rng)
            rounds = 0
            while any(not metric.is_consistent(r)
                      for (_i, _j, r) in X.entries()):
                X = sigma(net, X)
                rounds += 1
                assert rounds <= net.n, "flush exceeded the certified bound"
            worst = max(worst, rounds)
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("TH11 — inconsistency flush bound", [
        f"worst rounds to full consistency over 5 random instances: "
        f"{worst} (certified ≤ n = 5)",
    ])
    assert worst <= 5
