"""Frozen copy of the seed (pre-incremental-engine) σ/δ implementations.

``run_benchmarks.py`` times the live engines against this baseline so
``BENCH_core.json`` records an honest old-vs-new trajectory even after
the live code keeps improving.  Do not "fix" this module: its
inefficiencies (per-call in-neighbour derivation over the sorted edge
set, per-entry β queries, full-matrix equality scans, unbounded δ
history) are the measurement.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.state import Network, RoutingState
from repro.core.schedule import Schedule
from repro.core.synchronous import SyncResult
from repro.core.asynchronous import AsyncResult


def neighbours_in_naive(network: Network, i: int) -> List[int]:
    """Seed behaviour: re-derive in-neighbours by scanning the (sorted)
    full edge set on every call."""
    return [k for (a, k) in sorted(network.adjacency._edges) if a == i]


def equals_naive(a: RoutingState, b: RoutingState, algebra) -> bool:
    """Seed behaviour: genexp over all n² entries, re-resolving
    ``algebra.equal`` per entry."""
    if a.n != b.n:
        return False
    return all(algebra.equal(a.rows[i][j], b.rows[i][j])
               for i in range(a.n) for j in range(a.n))


def sigma_naive(network: Network, state: RoutingState) -> RoutingState:
    """The seed σ: full n² recompute with per-node neighbour re-derivation."""
    alg = network.algebra
    n = network.n
    new_rows = []
    for i in range(n):
        row = []
        in_neighbours = neighbours_in_naive(network, i)
        for j in range(n):
            if i == j:
                row.append(alg.trivial)
                continue
            candidate = alg.best(
                network.edge(i, k)(state.get(k, j)) for k in in_neighbours
            )
            row.append(candidate)
        new_rows.append(row)
    return RoutingState(new_rows)


def iterate_sigma_naive(network: Network, start: RoutingState,
                        max_rounds: int = 10_000) -> SyncResult:
    """The seed fixed-point iteration: σ + full equality scan per round."""
    alg = network.algebra
    current = start
    for k in range(max_rounds):
        nxt = sigma_naive(network, current)
        if equals_naive(nxt, current, alg):
            return SyncResult(True, k, current, None)
        current = nxt
    return SyncResult(False, max_rounds, current, None)


def delta_step_naive(network: Network, schedule: Schedule,
                     history: List[RoutingState], t: int) -> RoutingState:
    """The seed δᵗ: copies inactive rows, queries β per (t, i, k, j)."""
    alg = network.algebra
    n = network.n
    prev = history[t - 1]
    active = schedule.alpha(t)
    rows = []
    for i in range(n):
        if i not in active:
            rows.append(list(prev.rows[i]))
            continue
        row = []
        in_neighbours = neighbours_in_naive(network, i)
        for j in range(n):
            if i == j:
                row.append(alg.trivial)
                continue
            candidates = []
            for k in in_neighbours:
                src_time = schedule.beta(t, i, k)
                candidates.append(network.edge(i, k)(history[src_time].get(k, j)))
            row.append(alg.best(candidates))
        rows.append(row)
    return RoutingState(rows)


def delta_run_naive(network: Network, schedule: Schedule, start: RoutingState,
                    max_steps: int = 2_000,
                    stability_window: Optional[int] = None) -> AsyncResult:
    """The seed δ run: unbounded history list, per-step equality scan."""
    from repro.core.synchronous import is_stable

    if stability_window is None:
        max_delay = getattr(schedule, "max_delay", None) or \
            getattr(schedule, "delay", None) or 1
        stability_window = max_delay + 2

    history: List[RoutingState] = [start]
    alg = network.algebra
    unchanged = 0
    for t in range(1, max_steps + 1):
        nxt = delta_step_naive(network, schedule, history, t)
        history.append(nxt)
        if equals_naive(nxt, history[t - 1], alg):
            unchanged += 1
        else:
            unchanged = 0
        if unchanged >= stability_window and is_stable(network, nxt):
            return AsyncResult(True, t, nxt, t - unchanged, None,
                               history_retained=len(history))
    return AsyncResult(False, max_steps, history[-1], None, None,
                       history_retained=len(history))
