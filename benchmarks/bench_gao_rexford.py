"""Experiment GR — Gao–Rexford inside the strictly increasing framework.

Sobrinho showed (and the paper leans on) that the Gao–Rexford
commercial conditions embed into a strictly increasing algebra.  We
verify the embedding's laws, converge customer/provider hierarchies of
growing size, check valley-freeness of every route in every fixed
point, and demonstrate what GR's own theorem does *not* give: a unique
outcome (point 2 of Section 1.1) — our framework provides it.
"""

import random

import pytest

from bench_helpers import check_mark, emit, fmt_row
from repro.algebras import GaoRexfordAlgebra, GR_INVALID, Rel
from repro.analysis import measure_sync, run_absolute_convergence
from repro.core import RoutingState, iterate_sigma
from repro.topologies import gao_rexford_hierarchy
from repro.verification import verify_algebra


@pytest.mark.benchmark(group="gao-rexford")
def test_embedding_laws(benchmark):
    def run():
        rng = random.Random(0)
        return verify_algebra(GaoRexfordAlgebra(n_nodes=8), rng=rng,
                              samples=80)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("GR — the Sobrinho embedding's law profile", [
        f"routing algebra: {check_mark(report.is_routing_algebra)}",
        f"strictly increasing: "
        f"{check_mark(report.is_strictly_increasing)}",
        "GR's export/preference rules expressed as an algebra satisfy "
        "the Theorem 11 hypotheses — convergence for free",
    ])
    assert report.is_routing_algebra
    assert report.is_strictly_increasing


@pytest.mark.benchmark(group="gao-rexford")
def test_hierarchy_scaling(benchmark):
    def run():
        rows = []
        for (t1, t2, t3) in [(2, 3, 5), (2, 4, 10), (3, 6, 16)]:
            net, rels = gao_rexford_hierarchy(t1, t2, t3, seed=7)
            m = measure_sync(net)
            fp = iterate_sigma(
                net, RoutingState.identity(net.algebra, net.n)).state
            valley_ok = _valley_free(net, rels, fp)
            rows.append((net.n, m.converged, m.rounds, valley_ok))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    widths = (6, 10, 8, 12)
    lines = [fmt_row(("n", "converged", "rounds", "valley-free"), widths)]
    lines += [fmt_row((n, check_mark(c), r, check_mark(v)), widths)
              for (n, c, r, v) in rows]
    emit("GR — customer/provider hierarchies", lines)
    assert all(c and v for (_n, c, _r, v) in rows)


def _valley_free(net, rels, fp):
    alg = net.algebra
    for (_i, _j, r) in fp.entries():
        if r == GR_INVALID or r == alg.trivial:
            continue
        _tag, path = r
        for k in range(1, len(path) - 1):
            down, here, up = path[k - 1], path[k], path[k + 1]
            if rels[(down, here)] != Rel.PROVIDER and \
                    rels[(here, up)] != Rel.CUSTOMER:
                return False
    return True


@pytest.mark.benchmark(group="gao-rexford")
def test_uniqueness_beyond_gao_rexford(benchmark):
    """GR's own theorem achieves points 1 & 4 but not 2 (same final
    state).  The strictly increasing embedding upgrades it: every
    (state, schedule) run lands on one fixed point."""
    def run():
        net, _rels = gao_rexford_hierarchy(2, 3, 6, seed=9)
        return run_absolute_convergence(net, n_starts=8, seed=10,
                                        max_steps=3000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("GR — uniqueness (the point-2 upgrade)", [
        f"runs: {report.runs}",
        f"all converged: {check_mark(report.all_converged)}",
        f"distinct fixed points: {len(report.distinct_fixed_points)}",
        f"absolute convergence: {check_mark(report.absolute)}",
    ])
    assert report.absolute


@pytest.mark.benchmark(group="gao-rexford")
def test_preference_baseline_comparison(benchmark):
    """Baseline: same topology, plain shortest-AS-path preferences (no
    commercial filtering).  Both converge — but GR's policies filter
    valley routes, so its fixed point reaches strictly fewer pairs,
    quantifying the 'policy richness costs optimality' trade-off
    (locally vs globally optimal routes, Section 1)."""
    def run():
        net, rels = gao_rexford_hierarchy(2, 4, 8, seed=11)
        gr_fp = iterate_sigma(
            net, RoutingState.identity(net.algebra, net.n)).state
        gr_reach = sum(1 for (_i, _j, r) in gr_fp.entries()
                       if r != GR_INVALID)

        from repro.algebras import AddPaths, ShortestPathsAlgebra

        base = ShortestPathsAlgebra()
        sp = AddPaths(base, n_nodes=net.n)
        from repro.core import Network

        flat = Network(sp, net.n, name="flat")
        for (i, j) in net.present_edges():
            flat.set_edge(i, j, sp.edge(i, j, base.edge(1)))
        sp_fp = iterate_sigma(
            flat, RoutingState.identity(sp, net.n)).state
        sp_reach = sum(1 for (_i, _j, r) in sp_fp.entries()
                       if not sp.equal(r, sp.invalid))
        # policy cost: GR's filtered choice can only lengthen paths
        stretched = total = 0
        for i in range(net.n):
            for j in range(net.n):
                gr_r, sp_r = gr_fp.get(i, j), sp_fp.get(i, j)
                if i == j or gr_r == GR_INVALID or sp.equal(sp_r, sp.invalid):
                    continue
                total += 1
                if len(gr_r[1]) - 1 > len(sp_r[1]) - 1:
                    stretched += 1
        return net.n, gr_reach, sp_reach, stretched, total

    n, gr_reach, sp_reach, stretched, total = benchmark.pedantic(
        run, rounds=1, iterations=1)
    emit("GR — policy cost vs the unfiltered shortest-path baseline", [
        f"nodes: {n} (pairs incl. self: {n * n})",
        f"reachable pairs: Gao–Rexford {gr_reach}, flat {sp_reach}",
        f"pairs where the GR route is longer than the shortest path: "
        f"{stretched}/{total}",
        "GR trades path optimality for policy compliance — the routes "
        "are *locally* optimal given the valley-free export filters, "
        "not globally optimal (Section 1's 'locally optimal routes')",
    ])
    assert sp_reach >= gr_reach
    assert stretched > 0, \
        "the hierarchy should exhibit at least one policy-stretched path"
