"""Topology generators: shape, symmetry, factory plumbing."""

import pytest

from repro.algebras import (
    AddPaths,
    BGPLiteAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
)
from repro.core import RoutingState, iterate_sigma, synchronous_fixed_point
from repro.topologies import (
    barabasi_albert,
    bgp_policy_factory,
    build_network,
    complete,
    erdos_renyi,
    fat_tree,
    gao_rexford_hierarchy,
    grid,
    lifted_weight_factory,
    line,
    ring,
    star,
    uniform_weight_factory,
)


def hop_factory():
    return uniform_weight_factory(HopCountAlgebra(16), 1, 3)


class TestDeterministicFamilies:
    def test_line_edges(self):
        net = line(HopCountAlgebra(16), 5, hop_factory())
        edges = set(net.present_edges())
        assert (0, 1) in edges and (1, 0) in edges
        assert (4, 3) in edges
        assert (0, 4) not in edges
        assert len(edges) == 2 * 4

    def test_ring_edges(self):
        net = ring(HopCountAlgebra(16), 5, hop_factory())
        edges = set(net.present_edges())
        assert (4, 0) in edges and (0, 4) in edges
        assert len(edges) == 2 * 5

    def test_star_edges(self):
        net = star(HopCountAlgebra(16), 5, hop_factory())
        edges = set(net.present_edges())
        assert all((0, i) in edges and (i, 0) in edges for i in range(1, 5))
        assert (1, 2) not in edges

    def test_complete_edges(self):
        net = complete(HopCountAlgebra(16), 4, hop_factory())
        assert len(set(net.present_edges())) == 4 * 3

    def test_grid_shape(self):
        net = grid(HopCountAlgebra(16), 2, 3, hop_factory())
        assert net.n == 6
        edges = set(net.present_edges())
        assert (0, 1) in edges          # same row
        assert (0, 3) in edges          # same column
        assert (0, 4) not in edges      # diagonal


class TestRandomFamilies:
    def test_erdos_renyi_connected(self):
        net = erdos_renyi(HopCountAlgebra(16), 12, 0.15, hop_factory(),
                          seed=5)
        fp = synchronous_fixed_point(net)
        alg = net.algebra
        # connectivity patch: every pair reachable
        for i in range(12):
            for j in range(12):
                assert fp.get(i, j) != alg.invalid

    def test_erdos_renyi_deterministic_in_seed(self):
        a = erdos_renyi(HopCountAlgebra(16), 10, 0.3, hop_factory(), seed=7)
        b = erdos_renyi(HopCountAlgebra(16), 10, 0.3, hop_factory(), seed=7)
        assert set(a.present_edges()) == set(b.present_edges())

    def test_barabasi_albert_shape(self):
        net = barabasi_albert(HopCountAlgebra(16), 15, 2, hop_factory(),
                              seed=3)
        assert net.n == 15
        assert len(set(net.present_edges())) == 2 * (2 * 13)   # nx BA: m*(n-m) edges


class TestFatTree:
    def test_k4_shape(self):
        net = fat_tree(HopCountAlgebra(16), 4, hop_factory())
        # (k/2)^2 = 4 cores + k pods * k switches = 4 + 16 = 20
        assert net.n == 20

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(HopCountAlgebra(16), 3, hop_factory())

    def test_all_pairs_reachable(self):
        net = fat_tree(HopCountAlgebra(16), 4, hop_factory())
        fp = synchronous_fixed_point(net)
        for i in range(net.n):
            for j in range(net.n):
                assert fp.get(i, j) != net.algebra.invalid


class TestGaoRexfordHierarchy:
    def test_shape_and_convergence(self):
        net, rels = gao_rexford_hierarchy(2, 3, 6, seed=2)
        assert net.n == 11
        res = iterate_sigma(net,
                            RoutingState.identity(net.algebra, net.n))
        assert res.converged

    def test_tier1_full_peer_mesh(self):
        from repro.algebras import Rel

        _net, rels = gao_rexford_hierarchy(3, 2, 2, seed=1)
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert rels[(a, b)] == Rel.PEER

    def test_every_lower_tier_node_has_a_provider(self):
        from repro.algebras import Rel

        _net, rels = gao_rexford_hierarchy(2, 4, 8, seed=3)
        for node in range(2, 14):
            assert any(rel == Rel.PROVIDER and i == node
                       for (i, _j), rel in rels.items())


class TestFactories:
    def test_lifted_factory_builds_path_edges(self):
        base = ShortestPathsAlgebra()
        alg = AddPaths(base, n_nodes=4)
        net = ring(alg, 4, lifted_weight_factory(alg))
        fp = synchronous_fixed_point(net)
        route = fp.get(0, 2)
        assert route[1][-1] == 2 and route[1][0] == 0

    def test_bgp_factory_builds_policies(self):
        alg = BGPLiteAlgebra(n_nodes=4)
        net = ring(alg, 4, bgp_policy_factory(alg, allow_reject=False))
        fp = synchronous_fixed_point(net)
        assert fp.get(0, 1) is not alg.invalid

    def test_build_network_seed_reproducible(self):
        alg = HopCountAlgebra(16)
        arcs = [(0, 1), (1, 0)]
        a = build_network(alg, 2, arcs, uniform_weight_factory(alg, 1, 9),
                          seed=4)
        b = build_network(alg, 2, arcs, uniform_weight_factory(alg, 1, 9),
                          seed=4)
        assert a.edge(0, 1)(0) == b.edge(0, 1)(0)
