"""Topology generators: shape, symmetry, factory plumbing."""

import pytest

from repro.algebras import (
    AddPaths,
    BGPLiteAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
)
from repro.core import RoutingState, iterate_sigma, synchronous_fixed_point
from repro.topologies import (
    barabasi_albert,
    bgp_policy_factory,
    build_network,
    complete,
    erdos_renyi,
    fat_tree,
    gao_rexford_hierarchy,
    grid,
    lifted_weight_factory,
    line,
    ring,
    star,
    uniform_weight_factory,
)


def hop_factory():
    return uniform_weight_factory(HopCountAlgebra(16), 1, 3)


class TestDeterministicFamilies:
    def test_line_edges(self):
        net = line(HopCountAlgebra(16), 5, hop_factory())
        edges = set(net.present_edges())
        assert (0, 1) in edges and (1, 0) in edges
        assert (4, 3) in edges
        assert (0, 4) not in edges
        assert len(edges) == 2 * 4

    def test_ring_edges(self):
        net = ring(HopCountAlgebra(16), 5, hop_factory())
        edges = set(net.present_edges())
        assert (4, 0) in edges and (0, 4) in edges
        assert len(edges) == 2 * 5

    def test_star_edges(self):
        net = star(HopCountAlgebra(16), 5, hop_factory())
        edges = set(net.present_edges())
        assert all((0, i) in edges and (i, 0) in edges for i in range(1, 5))
        assert (1, 2) not in edges

    def test_complete_edges(self):
        net = complete(HopCountAlgebra(16), 4, hop_factory())
        assert len(set(net.present_edges())) == 4 * 3

    def test_grid_shape(self):
        net = grid(HopCountAlgebra(16), 2, 3, hop_factory())
        assert net.n == 6
        edges = set(net.present_edges())
        assert (0, 1) in edges          # same row
        assert (0, 3) in edges          # same column
        assert (0, 4) not in edges      # diagonal


class TestRandomFamilies:
    def test_erdos_renyi_connected(self):
        net = erdos_renyi(HopCountAlgebra(16), 12, 0.15, hop_factory(),
                          seed=5)
        fp = synchronous_fixed_point(net)
        alg = net.algebra
        # connectivity patch: every pair reachable
        for i in range(12):
            for j in range(12):
                assert fp.get(i, j) != alg.invalid

    def test_erdos_renyi_deterministic_in_seed(self):
        a = erdos_renyi(HopCountAlgebra(16), 10, 0.3, hop_factory(), seed=7)
        b = erdos_renyi(HopCountAlgebra(16), 10, 0.3, hop_factory(), seed=7)
        assert set(a.present_edges()) == set(b.present_edges())

    def test_barabasi_albert_shape(self):
        net = barabasi_albert(HopCountAlgebra(16), 15, 2, hop_factory(),
                              seed=3)
        assert net.n == 15
        assert len(set(net.present_edges())) == 2 * (2 * 13)   # nx BA: m*(n-m) edges


class TestFatTree:
    def test_k4_shape(self):
        net = fat_tree(HopCountAlgebra(16), 4, hop_factory())
        # (k/2)^2 = 4 cores + k pods * k switches = 4 + 16 = 20
        assert net.n == 20

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree(HopCountAlgebra(16), 3, hop_factory())

    def test_all_pairs_reachable(self):
        net = fat_tree(HopCountAlgebra(16), 4, hop_factory())
        fp = synchronous_fixed_point(net)
        for i in range(net.n):
            for j in range(net.n):
                assert fp.get(i, j) != net.algebra.invalid


class TestGaoRexfordHierarchy:
    def test_shape_and_convergence(self):
        net, rels = gao_rexford_hierarchy(2, 3, 6, seed=2)
        assert net.n == 11
        res = iterate_sigma(net,
                            RoutingState.identity(net.algebra, net.n))
        assert res.converged

    def test_tier1_full_peer_mesh(self):
        from repro.algebras import Rel

        _net, rels = gao_rexford_hierarchy(3, 2, 2, seed=1)
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert rels[(a, b)] == Rel.PEER

    def test_every_lower_tier_node_has_a_provider(self):
        from repro.algebras import Rel

        _net, rels = gao_rexford_hierarchy(2, 4, 8, seed=3)
        for node in range(2, 14):
            assert any(rel == Rel.PROVIDER and i == node
                       for (i, _j), rel in rels.items())


class TestFactories:
    def test_lifted_factory_builds_path_edges(self):
        base = ShortestPathsAlgebra()
        alg = AddPaths(base, n_nodes=4)
        net = ring(alg, 4, lifted_weight_factory(alg))
        fp = synchronous_fixed_point(net)
        route = fp.get(0, 2)
        assert route[1][-1] == 2 and route[1][0] == 0

    def test_bgp_factory_builds_policies(self):
        alg = BGPLiteAlgebra(n_nodes=4)
        net = ring(alg, 4, bgp_policy_factory(alg, allow_reject=False))
        fp = synchronous_fixed_point(net)
        assert fp.get(0, 1) is not alg.invalid

    def test_build_network_seed_reproducible(self):
        alg = HopCountAlgebra(16)
        arcs = [(0, 1), (1, 0)]
        a = build_network(alg, 2, arcs, uniform_weight_factory(alg, 1, 9),
                          seed=4)
        b = build_network(alg, 2, arcs, uniform_weight_factory(alg, 1, 9),
                          seed=4)
        assert a.edge(0, 1)(0) == b.edge(0, 1)(0)


class TestSeedDeterminism:
    """Same seed ⇒ identical adjacency, within and across processes."""

    CASES = ("erdos_renyi", "barabasi_albert", "gao_rexford_hierarchy")

    # one shared snippet: build the generator's network at a fixed seed
    # and digest its sorted arc list (structure only — edge functions
    # are closures and can't be hashed portably)
    SNIPPET = """
import hashlib
from repro.algebras import HopCountAlgebra
from repro.topologies import (barabasi_albert, erdos_renyi,
                              gao_rexford_hierarchy,
                              uniform_weight_factory)

def build(name):
    alg = HopCountAlgebra(16)
    fac = uniform_weight_factory(alg, 1, 3)
    if name == "erdos_renyi":
        return erdos_renyi(alg, 14, 0.3, fac, seed=11)
    if name == "barabasi_albert":
        return barabasi_albert(alg, 14, 2, fac, seed=11)
    net, _rels = gao_rexford_hierarchy(2, 4, 8, seed=11)
    return net

def digest(name):
    arcs = sorted(build(name).present_edges())
    return hashlib.sha256(repr(arcs).encode()).hexdigest()
"""

    def _local_digest(self, name):
        scope = {}
        exec(self.SNIPPET, scope)
        return scope["digest"](name)

    @pytest.mark.parametrize("name", CASES)
    def test_same_seed_same_adjacency_in_process(self, name):
        assert self._local_digest(name) == self._local_digest(name)

    @pytest.mark.parametrize("name", CASES)
    def test_same_seed_same_adjacency_across_processes(self, name):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c",
             self.SNIPPET + f"\nprint(digest({name!r}))"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip() == self._local_digest(name)


class TestElmokashfiASGraph:
    def test_shape_and_connectivity(self):
        from repro.topologies import elmokashfi_as_graph

        net = elmokashfi_as_graph(HopCountAlgebra(16), 24, hop_factory(),
                                  seed=2)
        assert net.n == 24 and net.name == "elmokashfi-24"
        arcs = set(net.present_edges())
        assert all((k, i) in arcs for (i, k) in arcs)
        fp = synchronous_fixed_point(net)
        for i in range(24):
            for j in range(24):
                assert fp.get(i, j) != net.algebra.invalid

    def test_tier1_clique(self):
        from repro.topologies import elmokashfi_as_graph

        net = elmokashfi_as_graph(HopCountAlgebra(16), 30, hop_factory(),
                                  seed=0)
        arcs = set(net.present_edges())
        # tier-1 core (max(3, 1% of n) = 3 nodes) is a full mesh
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert (a, b) in arcs

    def test_too_small_rejected(self):
        from repro.topologies import elmokashfi_as_graph

        with pytest.raises(ValueError):
            elmokashfi_as_graph(HopCountAlgebra(16), 4, hop_factory())

    def test_deterministic_in_seed(self):
        from repro.topologies import elmokashfi_as_graph

        a = elmokashfi_as_graph(HopCountAlgebra(16), 20, hop_factory(),
                                seed=5)
        b = elmokashfi_as_graph(HopCountAlgebra(16), 20, hop_factory(),
                                seed=5)
        assert set(a.present_edges()) == set(b.present_edges())


class TestRouteReflectorHierarchy:
    def test_shape_and_connectivity(self):
        from repro.topologies import route_reflector_hierarchy

        net = route_reflector_hierarchy(HopCountAlgebra(16), hop_factory(),
                                        n_core=3, n_rr=4,
                                        clients_per_rr=3, seed=1)
        assert net.n == 3 + 4 + 12
        fp = synchronous_fixed_point(net)
        for i in range(net.n):
            for j in range(net.n):
                assert fp.get(i, j) != net.algebra.invalid

    def test_core_full_mesh(self):
        from repro.topologies import route_reflector_hierarchy

        net = route_reflector_hierarchy(HopCountAlgebra(16), hop_factory(),
                                        n_core=4, n_rr=2,
                                        clients_per_rr=2, seed=0)
        arcs = set(net.present_edges())
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert (a, b) in arcs

    def test_ibgp_gao_rexford_converges(self):
        from repro.algebras import Rel
        from repro.topologies import ibgp_gao_rexford

        net, rels = ibgp_gao_rexford(n_core=3, n_rr=3, clients_per_rr=2,
                                     seed=2)
        assert net.n == 3 + 3 + 6
        # cores peer with each other; everything below has a provider
        assert rels[(0, 1)] == Rel.PEER
        for node in range(3, net.n):
            assert any(rel == Rel.PROVIDER and i == node
                       for (i, _j), rel in rels.items())
        res = iterate_sigma(net,
                            RoutingState.identity(net.algebra, net.n))
        assert res.converged
