"""Gadget invariants (the ones not already covered by algebra tests)."""

import pytest

from repro.algebras import INVALID, InComm
from repro.analysis import measure_sync, multistart_fixed_points
from repro.core import RoutingState, iterate_sigma, synchronous_fixed_point
from repro.topologies import (
    BACKUP_COMMUNITY,
    count_to_infinity,
    count_to_infinity_pv,
    exploration_clique,
    preference_cascade,
    wedgie_bgplite,
)


class TestCountToInfinityGadget:
    def test_stale_state_was_a_fixed_point_of_the_old_net(self):
        """The stale state is exactly the pre-failure fixed point: 1
        reached 0 at cost 1, 2 via 1 at cost 2."""
        _net, stale = count_to_infinity()
        assert stale.get(1, 0) == 1
        assert stale.get(2, 0) == 2

    def test_divergence_is_monotone(self):
        net, stale = count_to_infinity()
        res = iterate_sigma(net, stale, max_rounds=30, keep_trajectory=True)
        assert not res.converged
        dists = [s.get(1, 0) for s in res.trajectory]
        assert all(b >= a for a, b in zip(dists, dists[1:]))
        assert dists[-1] > dists[0]

    def test_pv_flushes_in_bounded_rounds(self):
        net, stale = count_to_infinity_pv()
        res = iterate_sigma(net, stale, max_rounds=10)
        assert res.converged
        assert res.rounds <= net.n + 1      # the h_i argument's bound


class TestWedgieBGPLite:
    def test_unique_fixed_point(self):
        net, alg = wedgie_bgplite()
        report = multistart_fixed_points(net, n_starts=5, seed=1,
                                         max_steps=800)
        assert report.converged_runs == report.runs
        assert not report.wedged

    def test_primary_route_wins(self):
        """Policy intent honoured: node 1 avoids the tagged backup path."""
        net, alg = wedgie_bgplite()
        fp = synchronous_fixed_point(net)
        route = fp.get(1, 0)
        assert route is not INVALID
        assert not InComm(BACKUP_COMMUNITY).evaluate(route)

    def test_backup_used_when_primary_fails(self):
        net, alg = wedgie_bgplite()
        net.remove_edge(2, 0)
        net.remove_edge(0, 2)
        fp = synchronous_fixed_point(net)
        route = fp.get(2, 0)     # provider 2 now relies on the backup
        assert route is not INVALID
        assert InComm(BACKUP_COMMUNITY).evaluate(route)

    def test_reconvergence_is_deterministic_after_flap(self):
        """Fail the primary, restore it: the network returns to the
        original state — no wedgie hysteresis (the RFC 4264 pathology
        cannot happen in an increasing algebra)."""
        net, alg = wedgie_bgplite()
        before = synchronous_fixed_point(net)
        saved = (net.edge(2, 0), net.edge(0, 2))
        net.remove_edge(2, 0), net.remove_edge(0, 2)
        during = iterate_sigma(net, before).state
        net.set_edge(2, 0, saved[0]), net.set_edge(0, 2, saved[1])
        after = iterate_sigma(net, during).state
        assert after.equals(before, alg)


class TestRateFamilies:
    def test_preference_cascade_rounds_track_n(self):
        rounds = [measure_sync(preference_cascade(n)).rounds
                  for n in (4, 6, 8, 10)]
        assert rounds == sorted(rounds)
        assert rounds[-1] > rounds[0]

    def test_exploration_clique_converges(self):
        net = exploration_clique(5)
        res = iterate_sigma(net,
                            RoutingState.identity(net.algebra, net.n))
        assert res.converged

    def test_exploration_clique_path_hunting_from_stale_state(self):
        """After the destination disappears, stale paths are explored
        and flushed — rounds grow with n (the path-hunting cost)."""
        rounds = []
        for n in (4, 5, 6):
            net = exploration_clique(n)
            fp = synchronous_fixed_point(net)
            # sever the destination: remove all of 0's adjacencies
            for i in range(1, n):
                net.remove_edge(i, 0)
                net.remove_edge(0, i)
            res = iterate_sigma(net, fp, max_rounds=500)
            assert res.converged
            rounds.append(res.rounds)
        assert rounds == sorted(rounds)
