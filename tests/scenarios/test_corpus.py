"""Corpus loaders: committed fixtures parse, malformed files fail loudly.

The robustness contract: a malformed corpus file raises a typed
:class:`~repro.scenarios.corpus.CorpusFormatError` naming the file and
line — never a bare ``KeyError``/``IndexError`` from parser internals.
"""

import pytest

from repro.algebras import HopCountAlgebra
from repro.core import synchronous_fixed_point
from repro.scenarios import (
    CorpusFormatError,
    corpus_dir,
    list_corpus,
    load_corpus_topology,
    load_topology,
    parse_edge_list,
    parse_graphml,
)
from repro.topologies import uniform_weight_factory


def hop():
    alg = HopCountAlgebra(16)
    return alg, uniform_weight_factory(alg, 1, 3)


class TestCommittedCorpus:
    def test_corpus_is_big_enough_for_the_survey_floor(self):
        assert len(list_corpus()) >= 6

    @pytest.mark.parametrize("name", list_corpus())
    def test_every_fixture_loads_and_is_connected(self, name):
        topo = load_corpus_topology(name)
        assert topo.n >= 2 and topo.edges >= 1
        assert len(topo.node_names) == topo.n
        # every arc is mirrored: the corpus is undirected by contract
        arcs = set(topo.arcs)
        assert all((k, i) in arcs for (i, k) in arcs)
        alg, factory = hop()
        net = topo.build(alg, factory, seed=0)
        assert net.name == f"corpus-{name}"
        fp = synchronous_fixed_point(net)
        for i in range(net.n):
            for j in range(net.n):
                assert fp.get(i, j) != alg.invalid, \
                    f"{name}: {i} cannot reach {j}"

    def test_abilene_keeps_display_names(self):
        topo = load_corpus_topology("abilene")
        assert "Seattle" in topo.node_names
        assert "NewYork" in topo.node_names

    def test_same_fixture_same_arcs(self):
        a = load_corpus_topology("nsfnet")
        b = load_corpus_topology("nsfnet")
        assert a.arcs == b.arcs and a.node_names == b.node_names

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="abilene"):
            load_corpus_topology("no-such-network")


class TestEdgeListRobustness:
    def write(self, tmp_path, text, name="net.edges"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_parses_comments_and_dedupes(self, tmp_path):
        path = self.write(tmp_path, "# header\na b\nb c\na b\nb a\n")
        topo = parse_edge_list(path)
        assert topo.n == 3 and topo.edges == 2
        assert topo.node_names == ("a", "b", "c")

    def test_short_line_names_file_and_line(self, tmp_path):
        path = self.write(tmp_path, "a b\nlonely\n")
        with pytest.raises(CorpusFormatError) as exc:
            parse_edge_list(path)
        assert exc.value.line == 2
        assert str(path) in str(exc.value)

    def test_self_loop_rejected(self, tmp_path):
        path = self.write(tmp_path, "a b\nc c\n")
        with pytest.raises(CorpusFormatError) as exc:
            parse_edge_list(path)
        assert exc.value.line == 2

    def test_empty_file_rejected(self, tmp_path):
        path = self.write(tmp_path, "# only comments\n")
        with pytest.raises(CorpusFormatError):
            parse_edge_list(path)


class TestGraphMLRobustness:
    def write(self, tmp_path, body, name="net.graphml"):
        path = tmp_path / name
        path.write_text(body)
        return path

    def test_edge_to_undeclared_node_names_line(self, tmp_path):
        path = self.write(tmp_path, (
            '<?xml version="1.0"?>\n<graphml>\n'
            '<graph edgedefault="undirected">\n'
            '<node id="a"/>\n<node id="b"/>\n'
            '<edge source="a" target="ghost"/>\n'
            '</graph>\n</graphml>\n'))
        with pytest.raises(CorpusFormatError) as exc:
            parse_graphml(path)
        assert exc.value.line == 6
        assert "ghost" in str(exc.value)

    def test_duplicate_node_id_rejected(self, tmp_path):
        path = self.write(tmp_path, (
            '<graphml><graph edgedefault="undirected">\n'
            '<node id="a"/>\n<node id="a"/>\n'
            '</graph></graphml>\n'))
        with pytest.raises(CorpusFormatError) as exc:
            parse_graphml(path)
        assert exc.value.line == 3

    def test_broken_xml_is_a_corpus_error_not_expat(self, tmp_path):
        path = self.write(tmp_path, "<graphml><graph>\n<node id=\n")
        with pytest.raises(CorpusFormatError) as exc:
            parse_graphml(path)
        assert str(path) in str(exc.value)

    def test_graph_without_edges_rejected(self, tmp_path):
        path = self.write(tmp_path, (
            '<graphml><graph edgedefault="undirected">\n'
            '<node id="a"/><node id="b"/>\n'
            '</graph></graphml>\n'))
        with pytest.raises(CorpusFormatError):
            parse_graphml(path)


class TestLoaderDispatch:
    def test_suffix_dispatch(self, tmp_path):
        edges = tmp_path / "x.txt"
        edges.write_text("a b\nb c\n")
        assert load_topology(edges).n == 3

    def test_unsupported_suffix_is_typed(self, tmp_path):
        weird = tmp_path / "x.dot"
        weird.write_text("graph {}")
        with pytest.raises(CorpusFormatError, match="suffix"):
            load_topology(weird)

    def test_corpus_dir_is_the_committed_package_dir(self):
        assert corpus_dir().is_dir()
        assert (corpus_dir() / "abilene.graphml").exists()
