"""Survey grids: registry resolution, oracle bit-identity, FAIL cells."""

import pytest

from repro.scenarios import (
    DEFAULT_ALGEBRAS,
    DEFAULT_EVENTS,
    build_scenario_network,
    run_cell,
    run_survey,
    scenario_events,
    scenario_topologies,
)


class TestRegistry:
    def test_registry_meets_the_survey_floor(self):
        # acceptance: ≥6 topologies × ≥4 events × ≥2 algebras offline
        assert len(scenario_topologies()) >= 6
        assert len(scenario_events()) >= 4
        assert len(DEFAULT_ALGEBRAS) >= 2

    def test_corpus_entries_are_prefixed(self):
        topologies = scenario_topologies()
        assert "corpus:abilene" in topologies
        assert "elmokashfi-24" in topologies
        assert "route-reflector" in topologies

    def test_build_resolves_names(self):
        net, factory = build_scenario_network("corpus:janet", "hop-count")
        assert net.n >= 2 and callable(factory)

    def test_unknown_names_are_loud(self):
        with pytest.raises(ValueError, match="corpus:abilene"):
            build_scenario_network("nope", "hop-count")
        with pytest.raises(ValueError, match="hop-count"):
            build_scenario_network("corpus:janet", "nope")


class TestRunCell:
    def test_cell_with_oracle_is_bit_identical(self):
        cell = run_cell("corpus:cesnet", "link-flap", "hop-count",
                        seed=0, trials=2, oracle=True)
        assert cell.ok
        assert cell.oracle_checked and cell.oracle_ok
        assert cell.replay_converged and cell.grid_all_converged
        assert cell.phases == 2
        # finite algebra + trial grid: the batched rung takes it
        assert cell.grid_engine == "batched"
        assert cell.distinct_fixed_points == 1

    def test_cell_is_deterministic(self):
        a = run_cell("corpus:janet", "policy-change", "hop-count", seed=3)
        b = run_cell("corpus:janet", "policy-change", "hop-count", seed=3)
        assert (a.total_churn, a.total_rounds) == \
            (b.total_churn, b.total_rounds)


class TestRunSurvey:
    def test_small_grid_zero_failures(self):
        report = run_survey(
            topologies=["corpus:cesnet", "corpus:janet"],
            events=["link-flap", "del-best-route"],
            algebras=list(DEFAULT_ALGEBRAS), seed=0, trials=2,
            oracle=True)
        assert len(report.cells) == 8
        assert report.failed == []
        assert all(c.oracle_checked and c.oracle_ok for c in report.cells)
        table = report.render_table()
        assert "ok*" in table and "failed: 0" in table

    def test_broken_cell_is_recorded_not_raised(self):
        report = run_survey(topologies=["no-such-topology"],
                            events=["link-flap"], algebras=["hop-count"])
        (cell,) = report.cells
        assert not cell.ok and "ValueError" in cell.error
        assert report.failed == [cell]
        assert "FAIL" in report.render_table()

    def test_progress_callback_sees_every_cell(self):
        seen = []
        run_survey(topologies=["corpus:cesnet"], events=["link-flap"],
                   algebras=["hop-count"], trials=1,
                   progress=seen.append)
        assert len(seen) == 1 and seen[0].ok

    def test_defaults_cover_the_full_grid(self):
        # don't run it (tier-1 time); just check the default axes
        assert len(DEFAULT_EVENTS) == 5
        assert set(DEFAULT_ALGEBRAS) == {"hop-count", "stratified-bounded"}
