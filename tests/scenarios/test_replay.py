"""Session replay hook: warm re-convergence over a mutation stream.

The semantic contract: replaying a stream through one warm session
(each σ warm-started from the previous fixed point) lands on exactly
the fixed point a cold solve of the final topology computes — warmth
is a speed-up, never a different answer.
"""

import pytest

from repro.algebras import HopCountAlgebra
from repro.core import synchronous_fixed_point
from repro.scenarios import (
    EVENTS,
    LinkFlap,
    NodeFailure,
    compile_event,
    event_seed,
    replay_events,
)
from repro.session import EngineSpec, RoutingSession
from repro.topologies import ring, uniform_weight_factory


def hop_ring(n=8, seed=0):
    alg = HopCountAlgebra(16)
    factory = uniform_weight_factory(alg, 1, 3)
    return ring(alg, n, factory, seed=seed), factory


class TestReplay:
    def test_report_shape(self):
        net, factory = hop_ring()
        with RoutingSession(net, EngineSpec("auto")) as session:
            report = replay_events(
                session, [LinkFlap(), NodeFailure()], factory, seed=1)
        assert report.steps[0].label == "initial"
        assert [s.label for s in report.steps[1:]] == \
            ["link-down", "link-up", "node-down", "node-up"]
        assert report.phases == 4
        assert report.all_converged
        assert report.total_churn == sum(s.churn for s in report.steps[1:])
        assert report.total_rounds == sum(s.rounds for s in report.steps[1:])

    def test_warm_final_state_equals_cold_solve(self):
        net, factory = hop_ring()
        events = [LinkFlap(), NodeFailure(), LinkFlap()]
        with RoutingSession(net, EngineSpec("auto")) as session:
            report = replay_events(session, events, factory, seed=5)
        # independent rebuild: apply the identical compiled stream cold
        net2, factory2 = hop_ring()
        state = synchronous_fixed_point(net2)
        for idx, name in enumerate(
                ["link-flap", "node-failure", "link-flap"]):
            phases = compile_event(EVENTS[name](), net2, factory2,
                                   event_seed(5, idx), state=state)
            for ph in phases:
                for m in ph.mutations:
                    m.apply(net2)
            state = synchronous_fixed_point(net2)
        assert report.final_state.equals(state, net.algebra)

    def test_literal_phases_are_accepted(self):
        net, factory = hop_ring()
        phases = compile_event(LinkFlap(edge=(0, 1)), net, factory, 0)
        with RoutingSession(net, EngineSpec("auto")) as session:
            report = session.replay(phases)
        assert [s.label for s in report.steps] == \
            ["initial", "link-down", "link-up"]
        assert report.all_converged

    def test_versions_are_monotonic(self):
        net, factory = hop_ring()
        with RoutingSession(net, EngineSpec("auto")) as session:
            report = replay_events(session, [LinkFlap()], factory, seed=0)
        versions = [s.version for s in report.steps]
        assert versions == sorted(versions)
        assert versions[-1] > versions[0]

    def test_final_state_raises_when_not_converged(self):
        net, factory = hop_ring()
        with RoutingSession(net, EngineSpec("auto")) as session:
            report = replay_events(session, [LinkFlap()], factory, seed=0)
        assert report.final_state is report.steps[-1].state
        report.steps[-1].converged = False
        with pytest.raises(ValueError):
            report.final_state
