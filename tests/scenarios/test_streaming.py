"""Streaming transport: scenario events over the service daemon.

The tentpole's transport-equivalence property, end to end: the same
compiled event stream, shipped to a live daemon as ``set_edge`` seeds /
``remove_edge`` verbs, must leave the daemon's served fixed point
bit-identical to the local mirror session after *every* phase — and the
cheap per-destination ``routes`` slices must match too.
"""

import threading

import pytest

from repro.scenarios import (
    LinkFlap,
    LinkWeightChange,
    NodeFailure,
    PolicyChange,
    build_scenario_network,
    load_corpus_topology,
    stream_events,
)
from repro.service import RoutingServiceDaemon, ServiceClient
from repro.session import EngineSpec, RoutingSession


@pytest.fixture()
def daemon():
    d = RoutingServiceDaemon(host="127.0.0.1", port=0, max_sessions=4)
    t = threading.Thread(target=d.run, daemon=True)
    t.start()
    assert d.wait_ready(15), "daemon did not come up"
    yield d
    d.request_shutdown()
    t.join(15)
    assert not t.is_alive(), "daemon did not shut down"


class TestStreaming:
    def test_streamed_scenario_is_bit_identical(self, daemon):
        topo = load_corpus_topology("cesnet")
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=topo.n, topology="corpus:cesnet",
                         seed=0)["session"]
            net, factory = build_scenario_network("corpus:cesnet",
                                                  "hop-count", seed=0)
            events = [LinkFlap(), NodeFailure(), LinkWeightChange(),
                      PolicyChange()]
            with RoutingSession(net, EngineSpec("auto")) as mirror:
                records = stream_events(c, sid, mirror, factory, events,
                                        seed=0, probe_dest=0)
        # 1 initial + 2 + 2 + 1 + 1 event phases
        assert [r["label"] for r in records] == [
            "initial", "link-down", "link-up", "node-down", "node-up",
            "reweigh", "policy-change"]
        for rec in records:
            assert rec["digest_match"], f"σ diverged at {rec['label']}"
            assert rec["routes_match"], f"routes diverged at {rec['label']}"
        versions = [r["version"] for r in records]
        assert versions == sorted(versions)

    def test_probe_dest_is_optional(self, daemon):
        topo = load_corpus_topology("janet")
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=topo.n, topology="corpus:janet",
                         seed=0)["session"]
            net, factory = build_scenario_network("corpus:janet",
                                                  "hop-count", seed=0)
            with RoutingSession(net, EngineSpec("auto")) as mirror:
                records = stream_events(c, sid, mirror, factory,
                                        [LinkFlap()], seed=4)
        assert all(r["digest_match"] for r in records)
        assert all("routes_match" not in r for r in records)
