"""Event grammar: typed events compile to deterministic mutation streams.

The bit-identity anchor: a set-mutation's in-process ``fn`` must equal
what the daemon derives from the same ``edge_seed``
(``factory(random.Random(edge_seed), i, k)``) — that formula is what
makes the two replay transports interchangeable.
"""

import random

import pytest

from repro.algebras import HopCountAlgebra
from repro.core import RoutingState, synchronous_fixed_point
from repro.scenarios import (
    EVENTS,
    DelBestRoute,
    LinkFlap,
    LinkWeightChange,
    Mutation,
    NodeFailure,
    PolicyChange,
    compile_event,
    event_seed,
)
from repro.topologies import ring, uniform_weight_factory


def hop_ring(n=6, seed=0):
    alg = HopCountAlgebra(16)
    factory = uniform_weight_factory(alg, 1, 3)
    return ring(alg, n, factory, seed=seed), factory


def stream(phases):
    """The comparable essence of a compiled event."""
    return [(ph.label, ph.time,
             [(m.op, m.i, m.k, m.edge_seed) for m in ph.mutations])
            for ph in phases]


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(EVENTS))
    def test_same_seed_same_stream(self, name):
        net_a, factory = hop_ring()
        net_b, _ = hop_ring()
        state = synchronous_fixed_point(net_a)
        a = compile_event(EVENTS[name](), net_a, factory, 42, state=state)
        b = compile_event(EVENTS[name](), net_b, factory, 42, state=state)
        assert stream(a) == stream(b)

    def test_different_seeds_differ(self):
        net, factory = hop_ring()
        a = compile_event(LinkFlap(), net, factory, 1)
        b = compile_event(LinkFlap(), net, factory, 2)
        assert stream(a) != stream(b)

    def test_event_seed_derivation_is_stable(self):
        assert event_seed(0, 0) == 0
        assert event_seed(5, 3) == 5 + 7919 * 3

    def test_materialised_fn_matches_daemon_formula(self):
        net, factory = hop_ring()
        phases = compile_event(LinkFlap(), net, factory, 9)
        sets = [m for ph in phases for m in ph.mutations if m.op == "set"]
        assert sets
        for m in sets:
            daemon_fn = factory(random.Random(int(m.edge_seed)), m.i, m.k)
            for route in range(5):
                assert m.fn(route) == daemon_fn(route)


class TestEventShapes:
    def test_link_flap_is_down_then_up_on_one_link(self):
        net, factory = hop_ring()
        down, up = compile_event(LinkFlap(), net, factory, 3)
        assert down.label == "link-down" and up.label == "link-up"
        removed = {(m.i, m.k) for m in down.mutations}
        restored = {(m.i, m.k) for m in up.mutations}
        assert removed == restored and len(removed) == 2
        (i, k) = next(iter(removed))
        assert (k, i) in removed

    def test_pinned_link_flap(self):
        net, factory = hop_ring()
        down, _up = compile_event(LinkFlap(edge=(1, 2)), net, factory, 0)
        assert {(m.i, m.k) for m in down.mutations} == {(1, 2), (2, 1)}

    def test_node_failure_covers_all_incident_arcs(self):
        net, factory = hop_ring(n=5)
        down, up = compile_event(NodeFailure(node=2), net, factory, 0)
        incident = {(m.i, m.k) for m in down.mutations}
        assert incident == {(2, 1), (1, 2), (2, 3), (3, 2)}
        assert {(m.i, m.k) for m in up.mutations} == incident
        assert all(m.op == "set" and m.fn is not None
                   for m in up.mutations)

    def test_weight_change_touches_count_arcs(self):
        net, factory = hop_ring()
        (phase,) = compile_event(LinkWeightChange(count=3), net, factory, 1)
        assert phase.label == "reweigh"
        assert len(phase.mutations) == 3
        assert all(m.op == "set" for m in phase.mutations)

    def test_policy_change_redraws_one_importer(self):
        net, factory = hop_ring()
        (phase,) = compile_event(PolicyChange(node=4), net, factory, 1)
        assert {m.i for m in phase.mutations} == {4}
        # a ring importer has exactly two in-edges
        assert len(phase.mutations) == 2

    def test_del_best_route_removes_a_contributing_arc(self):
        net, factory = hop_ring()
        state = synchronous_fixed_point(net)
        (phase,) = compile_event(DelBestRoute(dest=0), net, factory, 7,
                                 state=state)
        (m,) = phase.mutations
        assert m.op == "remove"
        alg = net.algebra
        best = state.get(m.i, 0)
        assert not alg.equal(best, alg.invalid)
        assert alg.equal(net.edge(m.i, m.k)(state.get(m.k, 0)), best)

    def test_del_best_route_requires_state(self):
        net, factory = hop_ring()
        with pytest.raises(ValueError, match="fixed point"):
            compile_event(DelBestRoute(), net, factory, 0)

    def test_del_best_route_falls_through_empty_destinations(self):
        # a 2-node network where only dest 1 is reachable: the shuffled
        # first choice may be node 0's empty column; the event must
        # fall through to a destination that has a learned route
        alg = HopCountAlgebra(16)
        factory = uniform_weight_factory(alg, 1, 3)
        from repro.topologies import build_network
        net = build_network(alg, 3, [(0, 1), (1, 0), (1, 2), (2, 1)],
                            factory, seed=0)
        state = synchronous_fixed_point(net)
        for seed in range(6):
            (phase,) = compile_event(DelBestRoute(), net, factory, seed,
                                     state=state)
            assert phase.mutations[0].op == "remove"


class TestMutationApply:
    def test_set_without_fn_is_loud(self):
        net, _factory = hop_ring()
        with pytest.raises(ValueError, match="compile_event"):
            Mutation("set", 0, 1, edge_seed=5).apply(net)

    def test_unknown_op_is_loud(self):
        net, _factory = hop_ring()
        with pytest.raises(ValueError, match="unknown mutation op"):
            Mutation("frob", 0, 1).apply(net)

    def test_apply_round_trip_changes_topology(self):
        net, factory = hop_ring()
        v0 = net.adjacency.version
        down, up = compile_event(LinkFlap(edge=(0, 1)), net, factory, 0)
        for m in down.mutations:
            m.apply(net)
        assert (0, 1) not in set(net.present_edges())
        for m in up.mutations:
            m.apply(net)
        assert (0, 1) in set(net.present_edges())
        assert net.adjacency.version > v0
