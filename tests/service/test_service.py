"""Routing-service daemon coverage (the PR's tentpole contract).

What must hold, per ``docs/service.md``:

* **cache discipline** — identical queries hit (O(1)); a mutation bumps
  the topology version and invalidates exactly the affected session's
  entries (hit → mutate → miss → hit), flowing into the incremental
  engine's dirty sets rather than rebuilding the network;
* **serialization** — concurrent clients on one warm session serialize
  safely: one compute, everyone else a cache hit, no torn state;
* **failure semantics** — malformed frames, version-skewed hellos and
  unknown verbs earn *typed* error replies (stable code vocabulary) and
  never kill the server;
* **bit identity** — a sigma report served over TCP equals a direct
  :class:`~repro.session.RoutingSession` run on an identically-built
  network, route for route;
* the ``serve`` CLI announces a parseable endpoint and exits 0 on the
  ``shutdown`` verb.
"""

import asyncio
import json
import re
import socket
import subprocess
import sys
import threading

import pytest

from repro.service import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_HELLO_REQUIRED,
    ERR_INTERNAL,
    ERR_MALFORMED,
    ERR_NO_SESSION,
    ERR_UNKNOWN_VERB,
    ERR_VERSION_SKEW,
    SERVICE_VERSION,
    AsyncServiceClient,
    RoutingServiceDaemon,
    ServiceClient,
    ServiceError,
    state_digest,
)
from repro.service.protocol import percentile, schedule_from_spec
from repro.session import RoutingSession


@pytest.fixture()
def daemon():
    """One daemon on an ephemeral port, driven from a background
    thread, torn down via the thread-safe shutdown trigger."""
    d = RoutingServiceDaemon(host="127.0.0.1", port=0, max_sessions=4)
    t = threading.Thread(target=d.run, daemon=True)
    t.start()
    assert d.wait_ready(15), "daemon did not come up"
    yield d
    d.request_shutdown()
    t.join(15)
    assert not t.is_alive(), "daemon did not shut down"


def _raw_roundtrip(port, frames):
    """Send pre-encoded lines on a fresh socket; return decoded replies
    (stops when the server closes the connection)."""
    replies = []
    with socket.create_connection(("127.0.0.1", port), timeout=15) as sock:
        f = sock.makefile("rb")
        for frame in frames:
            # After a fatal-code reply the server closes while our next
            # frame may still be in flight; the kernel answers with RST,
            # so both the send and the read can raise instead of seeing
            # a clean EOF.  Either way the connection is closed: stop.
            try:
                sock.sendall(frame)
                line = f.readline()
            except ConnectionError:
                break
            if not line:
                break
            replies.append(json.loads(line))
    return replies


def _hello():
    return (json.dumps({"verb": "hello", "v": SERVICE_VERSION}) +
            "\n").encode()


# ----------------------------------------------------------------------
# 1. Cache discipline: hit → mutate → miss → hit
# ----------------------------------------------------------------------


class TestCacheInvalidation:
    def test_hit_mutate_miss_hit(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            load = c.load("hop-count", n=16, topology="ring", seed=2)
            sid = load["session"]
            v0 = load["version"]

            first = c.sigma(sid)
            assert first["cached"] is False
            again = c.sigma(sid)
            assert again["cached"] is True
            assert again["digest"] == first["digest"]

            mut = c.set_edge(sid, 0, 5, edge_seed=9)
            assert mut["version"] > v0          # version moved
            assert mut["invalidated"] >= 1      # old entry dropped

            after = c.sigma(sid)
            assert after["cached"] is False     # precise miss
            assert after["version"] == mut["version"]
            assert after["digest"] != first["digest"]
            warm = c.sigma(sid)
            assert warm["cached"] is True
            assert warm["digest"] == after["digest"]

    def test_mutation_only_touches_its_session(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            a = c.load("hop-count", n=12, topology="ring")["session"]
            b = c.load("shortest", n=12, topology="star")["session"]
            c.sigma(a), c.sigma(b)
            c.remove_edge(a, 0, 1)
            assert c.sigma(a)["cached"] is False   # invalidated
            assert c.sigma(b)["cached"] is True    # untouched

    def test_distinct_params_are_distinct_entries(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=12, topology="ring")["session"]
            ident = c.sigma(sid)
            seeded = c.sigma(sid, start_seed=3)
            assert seeded["cached"] is False
            assert c.sigma(sid, start_seed=3)["cached"] is True
            # both converge to the same σ fixed point (Theorem 7 on
            # this strictly-increasing algebra), from different starts
            assert seeded["digest"] == ident["digest"]

    def test_delta_cache_keys_include_schedule(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=12, topology="ring")["session"]
            r1 = c.delta(sid, schedule={"kind": "random", "seed": 1})
            assert c.delta(sid,
                           schedule={"kind": "random",
                                     "seed": 1})["cached"] is True
            r2 = c.delta(sid, schedule={"kind": "random", "seed": 2})
            assert r2["cached"] is False
            assert r1["converged"] and r2["converged"]


# ----------------------------------------------------------------------
# 2. Concurrent clients on one warm session serialize safely
# ----------------------------------------------------------------------


class TestConcurrency:
    def test_concurrent_identical_queries_one_compute(self, daemon):
        clients = 12

        async def drive():
            conns = await asyncio.gather(*[
                AsyncServiceClient.connect("127.0.0.1", daemon.port)
                for _ in range(clients)])
            try:
                sids = await asyncio.gather(*[
                    c.load("hop-count", n=24, topology="random", seed=4)
                    for c in conns])
                sid = sids[0]["session"]
                assert all(r["session"] == sid for r in sids)
                reports = await asyncio.gather(*[
                    c.sigma(sid) for c in conns])
                return reports
            finally:
                await asyncio.gather(*[c.close() for c in conns])

        reports = asyncio.run(drive())
        digests = {r["digest"] for r in reports}
        assert len(digests) == 1                     # no torn state
        misses = [r for r in reports if not r["cached"]]
        assert len(misses) == 1                      # exactly one compute
        with ServiceClient(port=daemon.port) as c:
            stats = c.stats()
            assert stats["cache"]["hits"] >= clients - 1
            assert stats["cache"]["hit_ratio"] > 0.5
            assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"]

    def test_interleaved_mutations_stay_consistent(self, daemon):
        async def drive():
            reader = await AsyncServiceClient.connect(
                "127.0.0.1", daemon.port)
            writer = await AsyncServiceClient.connect(
                "127.0.0.1", daemon.port)
            try:
                sid = (await reader.load("hop-count", n=16,
                                         topology="ring"))["session"]

                async def mutate():
                    for k in range(4):
                        await writer.set_edge(sid, 0, 4 + k, edge_seed=k)

                async def query():
                    out = []
                    for _ in range(6):
                        out.append(await reader.sigma(sid))
                    return out

                results, _ = await asyncio.gather(query(), mutate())
                return sid, results
            finally:
                await reader.close()
                await writer.close()

        sid, results = asyncio.run(drive())
        # queries serialize with mutations on the session lock: each
        # reply carries the topology version it was computed against,
        # and one connection sees those versions monotonically
        versions = [r["version"] for r in results]
        assert versions == sorted(versions)
        # ...and the final topology's answer is stable and cacheable
        with ServiceClient(port=daemon.port) as c:
            final = c.sigma(sid)
            again = c.sigma(sid)
            assert again["cached"] is True
            assert again["digest"] == final["digest"]


# ----------------------------------------------------------------------
# 3. Failure semantics: typed errors, server survives
# ----------------------------------------------------------------------


class TestFailureSemantics:
    def test_version_skew_typed_error_then_close(self, daemon):
        bad_hello = (json.dumps({"verb": "hello", "v": 999}) +
                     "\n").encode()
        replies = _raw_roundtrip(daemon.port, [bad_hello, _hello()])
        assert len(replies) == 1                  # connection dropped
        err = replies[0]["error"]
        assert err["code"] == ERR_VERSION_SKEW
        assert err["server_version"] == SERVICE_VERSION

    def test_hello_required_first(self, daemon):
        frames = [(json.dumps({"verb": "stats"}) + "\n").encode()]
        replies = _raw_roundtrip(daemon.port, frames)
        assert replies[0]["error"]["code"] == ERR_HELLO_REQUIRED

    def test_malformed_frame_is_rejected_loudly(self, daemon):
        replies = _raw_roundtrip(
            daemon.port, [_hello(), b"this is not json\n"])
        assert replies[0]["ok"] is True
        assert replies[1]["error"]["code"] == ERR_MALFORMED
        replies = _raw_roundtrip(daemon.port, [_hello(), b"[1, 2, 3]\n"])
        assert replies[1]["error"]["code"] == ERR_MALFORMED

    def test_typed_request_errors_keep_connection_open(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            with pytest.raises(ServiceError) as exc:
                c.request({"verb": "warp"})
            assert exc.value.code == ERR_UNKNOWN_VERB
            with pytest.raises(ServiceError) as exc:
                c.sigma("no-such-session")
            assert exc.value.code == ERR_NO_SESSION
            with pytest.raises(ServiceError) as exc:
                c.load("no-such-algebra", n=8)
            assert exc.value.code == ERR_BAD_REQUEST
            with pytest.raises(ServiceError) as exc:
                c.request({"verb": "load", "algebra": "hop-count",
                           "n": "many"})
            assert exc.value.code == ERR_BAD_REQUEST
            sid = c.load("hop-count", n=8, topology="ring")["session"]
            with pytest.raises(ServiceError) as exc:
                c.set_edge(sid, 0, 99)
            assert exc.value.code == ERR_BAD_REQUEST
            with pytest.raises(ServiceError) as exc:
                c.delta(sid, schedule={"kind": "lunar"})
            assert exc.value.code == ERR_BAD_REQUEST
            # ...and the very same connection still serves queries
            assert c.sigma(sid)["converged"] is True

    def test_bad_clients_do_not_kill_the_server(self, daemon):
        for frames in ([b"\x00\xff garbage\n"],
                       [(json.dumps({"verb": "hello", "v": 0}) +
                         "\n").encode()],
                       [b'"just a string"\n']):
            _raw_roundtrip(daemon.port, frames)
        with ServiceClient(port=daemon.port) as c:   # still alive
            sid = c.load("hop-count", n=8, topology="line")["session"]
            assert c.sigma(sid)["converged"] is True


# ----------------------------------------------------------------------
# 4. Bit identity across the service boundary
# ----------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("algebra,topology", [
        ("hop-count", "random"),
        ("shortest", "ring"),
        ("bgplite", "random"),
    ])
    def test_sigma_report_equals_direct_session(self, daemon, algebra,
                                                topology):
        n, seed = 14, 6
        with ServiceClient(port=daemon.port) as c:
            sid = c.load(algebra, n=n, topology=topology,
                         seed=seed)["session"]
            served = c.sigma(sid, start_seed=11, include_state=True)
        from repro.service.daemon import _build_network
        from repro.service.protocol import start_state, state_matrix
        network, _factory = _build_network(algebra, topology, n, seed)
        with RoutingSession(network) as session:
            direct = session.sigma(start_state(network, 11))
        assert served["converged"] == direct.converged
        assert served["rounds"] == direct.rounds
        assert served["digest"] == state_digest(direct.state)
        assert served["state"] == state_matrix(direct.state)

    def test_delta_digest_matches_direct_session(self, daemon):
        n, seed = 12, 3
        spec = {"kind": "random", "seed": 7, "max_delay": 4}
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=n, topology="random",
                         seed=seed)["session"]
            served = c.delta(sid, schedule=spec, max_steps=600)
        from repro.service.daemon import _build_network
        network, _factory = _build_network("hop-count", "random", n, seed)
        with RoutingSession(network) as session:
            direct = session.delta(schedule_from_spec(spec, n),
                                   max_steps=600)
        assert served["converged"] == direct.converged
        assert served["steps"] == direct.steps
        assert served["digest"] == state_digest(direct.state)
        assert (served["schedule_seed_version"] ==
                direct.schedule_seed_version)


class TestRoutesVerb:
    """Per-destination route queries: one row/column of the cached
    fixed point — O(n) on the wire instead of include_state's O(n²)."""

    def test_routes_slice_matches_direct_session(self, daemon):
        n, seed = 12, 4
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=n, topology="random",
                         seed=seed)["session"]
            by_dest = c.routes(sid, dest=3)
            by_node = c.routes(sid, node=5)
        from repro.service.daemon import _build_network
        network, _factory = _build_network("hop-count", "random", n, seed)
        with RoutingSession(network) as session:
            direct = session.sigma()
        assert by_dest["routes"] == [str(r) for r in
                                     direct.state.column(3)]
        assert by_node["routes"] == [str(r) for r in direct.state.row(5)]
        assert by_dest["digest"] == state_digest(direct.state)
        assert by_dest["converged"] and by_dest["dest"] == 3
        assert by_node["node"] == 5 and by_node["dest"] is None

    def test_routes_cache_and_invalidation(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=10, topology="ring")["session"]
            first = c.routes(sid, dest=0)
            assert first["cached"] is False
            assert c.routes(sid, dest=0)["cached"] is True
            # different slice, same fixed point: reply-cache miss, but
            # the shared state cache means no second σ solve is wrong
            # to serve — the digests agree
            other = c.routes(sid, node=2)
            assert other["cached"] is False
            assert other["digest"] == first["digest"]
            c.remove_edge(sid, 0, 1)
            after = c.routes(sid, dest=0)
            assert after["cached"] is False
            assert after["digest"] != first["digest"]

    def test_routes_axis_validation(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=8, topology="ring")["session"]
            with pytest.raises(ServiceError) as neither:
                c.routes(sid)
            assert neither.value.code == ERR_BAD_REQUEST
            with pytest.raises(ServiceError) as both:
                c.request({"verb": "routes", "session": sid,
                           "node": 1, "dest": 2})
            assert both.value.code == ERR_BAD_REQUEST
            with pytest.raises(ServiceError) as oob:
                c.routes(sid, dest=99)
            assert oob.value.code == ERR_BAD_REQUEST
            assert "n=8" in str(oob.value)

    def test_async_client_routes(self, daemon):
        async def go():
            c = await AsyncServiceClient.connect("127.0.0.1", daemon.port)
            try:
                sid = (await c.load("hop-count", n=8,
                                    topology="ring"))["session"]
                return await c.routes(sid, dest=1)
            finally:
                await c.close()
        reply = asyncio.run(go())
        assert reply["ok"] and len(reply["routes"]) == 8


class TestCorpusTopologyLoads:
    def test_load_corpus_topology(self, daemon):
        from repro.scenarios import load_corpus_topology
        topo = load_corpus_topology("janet")
        with ServiceClient(port=daemon.port) as c:
            load = c.load("hop-count", n=topo.n, topology="corpus:janet",
                          seed=0)
            assert c.sigma(load["session"])["converged"] is True

    def test_load_corpus_wrong_n_is_typed(self, daemon):
        from repro.scenarios import load_corpus_topology
        topo = load_corpus_topology("janet")
        with ServiceClient(port=daemon.port) as c:
            with pytest.raises(ServiceError) as exc:
                c.load("hop-count", n=topo.n + 3, topology="corpus:janet")
            assert exc.value.code == ERR_BAD_REQUEST
            assert f"n={topo.n}" in str(exc.value)

    def test_load_unknown_corpus_name_is_typed(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            with pytest.raises(ServiceError) as exc:
                c.load("hop-count", n=9, topology="corpus:ghostnet")
            assert exc.value.code == ERR_BAD_REQUEST


# ----------------------------------------------------------------------
# 5. Registry, stats and the serve CLI
# ----------------------------------------------------------------------


class TestRegistryAndCLI:
    def test_identical_loads_share_a_warm_session(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            first = c.load("hop-count", n=10, topology="ring", seed=1)
            second = c.load("hop-count", n=10, topology="ring", seed=1)
            assert first["session"] == second["session"]
            assert first["reused"] is False and second["reused"] is True

    def test_lru_eviction_closes_oldest(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            sids = [c.load("hop-count", n=8, topology="ring",
                           seed=s)["session"] for s in range(5)]
            assert len(set(sids)) == 5
            stats = c.stats()
            assert len(stats["sessions"]) == 4      # max_sessions=4
            assert stats["evictions"] == 1
            with pytest.raises(ServiceError) as exc:
                c.sigma(sids[0])                    # the evicted one
            assert exc.value.code == ERR_NO_SESSION

    def test_stats_shape(self, daemon):
        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=8, topology="ring")["session"]
            c.sigma(sid), c.sigma(sid)
            stats = c.stats()
        assert stats["v"] == SERVICE_VERSION
        assert stats["requests"] >= 4
        session_row = next(s for s in stats["sessions"]
                           if s["session"] == sid)
        assert session_row["hits"] == 1 and session_row["misses"] == 1
        assert 0.0 < stats["cache"]["hit_ratio"] <= 1.0
        assert stats["latency_ms"]["count"] >= 4

    def test_percentile_nearest_rank(self):
        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_serve_cli_announces_and_shuts_down_cleanly(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE, text=True)
        try:
            line = proc.stdout.readline()
            m = re.search(r"listening on (\S+):(\d+)", line)
            assert m, f"unparseable announce line: {line!r}"
            with ServiceClient(m.group(1), int(m.group(2))) as c:
                sid = c.load("hop-count", n=8, topology="star")["session"]
                assert c.sigma(sid)["converged"] is True
                c.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)


# ----------------------------------------------------------------------
# 6. Backpressure and chaos: busy shed, retry, sanitised internals
# ----------------------------------------------------------------------


@pytest.fixture()
def tiny_daemon():
    """A daemon that admits exactly one query at a time, so the second
    concurrent query deterministically sheds with ``busy``."""
    d = RoutingServiceDaemon(host="127.0.0.1", port=0, max_sessions=4,
                             max_inflight=1)
    t = threading.Thread(target=d.run, daemon=True)
    t.start()
    assert d.wait_ready(15), "daemon did not come up"
    yield d
    d.request_shutdown()
    t.join(15)
    assert not t.is_alive(), "daemon did not shut down"


def _slow_compute(daemon_obj, seconds):
    """Wrap the daemon's σ compute so one admitted query holds its
    inflight slot for a while (runs in the executor: the event loop
    stays free to shed the competitor)."""
    import time as _time
    orig = daemon_obj._compute_sigma

    def slow(entry, start_seed, max_rounds, include_state):
        _time.sleep(seconds)
        return orig(entry, start_seed, max_rounds, include_state)

    daemon_obj._compute_sigma = slow
    return orig


class TestBackpressure:
    def test_second_concurrent_query_sheds_busy(self, tiny_daemon):
        _slow_compute(tiny_daemon, 0.8)

        async def drive():
            a = await AsyncServiceClient.connect("127.0.0.1",
                                                 tiny_daemon.port)
            b = await AsyncServiceClient.connect("127.0.0.1",
                                                 tiny_daemon.port)
            try:
                sid = (await a.load("hop-count", n=8,
                                    topology="ring"))["session"]
                slow_task = asyncio.ensure_future(a.sigma(sid))
                await asyncio.sleep(0.2)   # let the slow one be admitted
                with pytest.raises(ServiceError) as exc:
                    await b.sigma(sid, start_seed=1)
                assert exc.value.code == ERR_BUSY
                assert exc.value.retry_after_ms is not None
                assert 25.0 <= exc.value.retry_after_ms <= 2000.0
                # the shed connection stays open and usable
                stats = await b.stats()
                assert stats["shed"] >= 1
                assert stats["max_inflight"] == 1
                assert (await slow_task)["converged"] is True
            finally:
                await a.close()
                await b.close()

        asyncio.run(drive())

    def test_sync_client_retries_busy_to_success(self, tiny_daemon):
        _slow_compute(tiny_daemon, 0.6)
        with ServiceClient(port=tiny_daemon.port) as setup:
            sid = setup.load("hop-count", n=8,
                             topology="ring")["session"]

        hold = threading.Thread(
            target=lambda: ServiceClient(
                port=tiny_daemon.port).sigma(sid),
            daemon=True)
        hold.start()
        import time as _time
        _time.sleep(0.2)                   # the slot is now occupied
        with ServiceClient(port=tiny_daemon.port, retries=8,
                           backoff_base=0.05) as c:
            reply = c.sigma(sid, start_seed=2)   # busy → backoff → ok
        assert reply["converged"] is True
        hold.join(15)

    def test_async_client_retries_busy_to_success(self, tiny_daemon):
        _slow_compute(tiny_daemon, 0.6)

        async def drive():
            a = await AsyncServiceClient.connect("127.0.0.1",
                                                 tiny_daemon.port)
            b = await AsyncServiceClient.connect(
                "127.0.0.1", tiny_daemon.port, retries=8,
                backoff_base=0.05)
            try:
                sid = (await a.load("hop-count", n=8,
                                    topology="ring"))["session"]
                slow_task = asyncio.ensure_future(a.sigma(sid))
                await asyncio.sleep(0.2)
                reply = await b.sigma(sid, start_seed=2)
                assert reply["converged"] is True
                await slow_task
            finally:
                await a.close()
                await b.close()

        asyncio.run(drive())


class TestInternalErrorSanitised:
    def test_unexpected_failure_is_typed_and_redacted(self, daemon):
        # an arbitrary server-side crash must surface as a typed
        # ``internal`` error carrying a correlation id — never the
        # exception text — and must NOT kill the connection
        secret = "kaboom-secret-detail-7731"

        def boom(req):
            raise RuntimeError(secret)

        with ServiceClient(port=daemon.port) as c:
            sid = c.load("hop-count", n=8, topology="ring")["session"]
            orig = daemon._entry
            daemon._entry = boom
            try:
                with pytest.raises(ServiceError) as exc:
                    c.sigma(sid)
            finally:
                daemon._entry = orig
            assert exc.value.code == ERR_INTERNAL
            cid = exc.value.extra.get("correlation_id")
            assert cid and len(cid) == 12
            assert secret not in str(exc.value)
            assert cid in exc.value.message
            # same connection, next request: served normally
            assert c.sigma(sid)["converged"] is True
