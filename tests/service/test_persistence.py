"""Crash-recoverable service state (this PR's tentpole contract).

What must hold, per ``docs/service.md``:

* **journal discipline** — every admitted ``load`` / ``set_edge`` /
  ``remove_edge`` is length-prefixed, checksummed and journalled before
  its reply; a torn tail (short header, short body, crc mismatch) is
  truncated exactly at the tear and everything before it survives;
* **snapshots** — atomic (temp + rename), checksummed, pruned; restore
  walks newest-first until one validates and replays only the journal
  records beyond it;
* **kill -9 recovery** — a SIGKILLed daemon restarted on the same
  ``--state-dir`` serves identical topology versions, bit-identical
  fixed-point digests, and a warm cache (snapshot-covered queries are
  hits on the very first request);
* **graceful drain** — SIGTERM / ``shutdown`` refuses new work with a
  typed ``draining`` error, finishes admitted inflight requests, and
  clients racing the drain see zero non-typed failures;
* **health** — the lifecycle state (``restoring``/``ready``/
  ``draining``), journal lag and snapshot age are observable in every
  state;
* **per-peer delay faults** — an injected daemon-side ``delay`` stalls
  only the targeted peer's connection, never the event loop (the old
  behaviour froze *every* client for the duration).
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import zlib

import pytest

from repro.service import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    RoutingServiceDaemon,
    ServiceClient,
    ServiceError,
)
from repro.service.persistence import (
    JOURNAL_HEADER,
    SNAPSHOT_FORMAT,
    ServicePersistence,
    cache_key_from_json,
    cache_key_to_json,
)


# ----------------------------------------------------------------------
# 1. Persistence unit layer: journal, torn tails, snapshots
# ----------------------------------------------------------------------


class TestJournal:
    def test_append_restore_roundtrip(self, tmp_path):
        p = ServicePersistence(tmp_path)
        p.append({"verb": "load", "sid": "abc"})
        p.append({"verb": "set_edge", "sid": "abc", "i": 0, "k": 1,
                  "edge_seed": 7, "version": 2})
        p.close()

        q = ServicePersistence(tmp_path)
        data = q.restore()
        assert data["snapshot"] is None and data["torn"] is False
        assert [r["verb"] for r in data["tail"]] == ["load", "set_edge"]
        assert [r["seq"] for r in data["tail"]] == [1, 2]
        # the sequence continues where the journal left off
        assert q.append({"verb": "remove_edge"}) == 3
        q.close()

    def test_torn_tail_truncated_exactly_at_the_tear(self, tmp_path):
        p = ServicePersistence(tmp_path)
        for i in range(3):
            p.append({"verb": "set_edge", "i": i})
        p.close()
        path = tmp_path / "journal.wal"
        blob = path.read_bytes()
        # tear the last record mid-body: its header survives intact
        path.write_bytes(blob[:-3])

        q = ServicePersistence(tmp_path)
        data = q.restore()
        assert data["torn"] is True
        assert [r["i"] for r in data["tail"]] == [0, 1]
        assert q.journal_seq == 2
        q.close()
        # the file was truncated at the tear: a second restore is clean
        r = ServicePersistence(tmp_path)
        again = r.restore()
        assert again["torn"] is False
        assert [rec["i"] for rec in again["tail"]] == [0, 1]
        r.close()

    def test_crc_mismatch_is_a_tear(self, tmp_path):
        p = ServicePersistence(tmp_path)
        p.append({"verb": "load", "sid": "x"})
        p.append({"verb": "set_edge", "i": 5})
        p.close()
        path = tmp_path / "journal.wal"
        blob = bytearray(path.read_bytes())
        blob[-2] ^= 0xFF                 # flip a bit in the last body
        path.write_bytes(bytes(blob))

        q = ServicePersistence(tmp_path)
        data = q.restore()
        assert data["torn"] is True
        assert [r["verb"] for r in data["tail"]] == ["load"]
        q.close()

    def test_record_framing_is_length_prefixed_and_checksummed(self,
                                                               tmp_path):
        p = ServicePersistence(tmp_path)
        p.append({"verb": "load", "sid": "frame-check"})
        p.close()
        blob = (tmp_path / "journal.wal").read_bytes()
        length, crc = JOURNAL_HEADER.unpack_from(blob, 0)
        body = blob[JOURNAL_HEADER.size:JOURNAL_HEADER.size + length]
        assert zlib.crc32(body) == crc
        rec = json.loads(body)
        assert rec["sid"] == "frame-check" and rec["seq"] == 1


class TestSnapshots:
    def test_checksum_mismatch_falls_back_to_older_snapshot(self,
                                                            tmp_path):
        p = ServicePersistence(tmp_path)
        p.append({"verb": "load", "sid": "a"})
        p.snapshot([{"sid": "a", "version": 1}])
        p.append({"verb": "set_edge", "sid": "a"})
        newest = p.snapshot([{"sid": "a", "version": 2}])
        p.close()
        # corrupt the newest snapshot's payload
        text = newest.read_text()
        newest.write_text(text.replace('"version":2', '"version":9'))

        q = ServicePersistence(tmp_path)
        data = q.restore()
        # the corrupted newest is skipped; the older one validates and
        # the journal record beyond it replays
        assert data["snapshot"]["sessions"] == [{"sid": "a", "version": 1}]
        assert [r["verb"] for r in data["tail"]] == ["set_edge"]
        q.close()

    def test_snapshots_are_pruned(self, tmp_path):
        p = ServicePersistence(tmp_path, keep_snapshots=3)
        for i in range(5):
            p.append({"verb": "set_edge", "i": i})
            p.snapshot([])
        files = sorted(f.name for f in tmp_path.glob("snapshot-*.json"))
        assert len(files) == 3
        assert files[-1] == "snapshot-%012d.json" % 5
        p.close()

    def test_unknown_format_is_skipped(self, tmp_path):
        p = ServicePersistence(tmp_path)
        p.append({"verb": "load"})
        path = p.snapshot([])
        payload = json.loads(path.read_text())
        payload["format"] = SNAPSHOT_FORMAT + 1
        path.write_text(json.dumps(payload))
        q = ServicePersistence(tmp_path)
        data = q.restore()
        assert data["snapshot"] is None
        assert len(data["tail"]) == 1    # the journal still restores
        q.close()

    def test_cache_key_json_roundtrip(self):
        key = ("sigma", 3, "hop-count", None, None, 1, True,
               ("max_rounds", 10_000))
        assert cache_key_from_json(cache_key_to_json(key)) == key
        assert cache_key_to_json(key)[-1] == ["max_rounds", 10_000]


# ----------------------------------------------------------------------
# 2. In-process daemon: restart recovery, health, drain
# ----------------------------------------------------------------------


def _run_daemon(**kw):
    d = RoutingServiceDaemon(host="127.0.0.1", port=0, max_sessions=4,
                             **kw)
    t = threading.Thread(target=d.run, daemon=True)
    t.start()
    assert d.wait_ready(15), "daemon did not come up"
    return d, t


def _stop_daemon(d, t):
    d.request_shutdown()
    t.join(15)
    assert not t.is_alive(), "daemon did not shut down"


def _wait_restore(d, timeout=30.0):
    """The socket opens before the restore finishes; wait for ready."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if d._state == "ready":
            return
        time.sleep(0.02)
    raise AssertionError(f"daemon stuck in state {d._state!r}")


class TestRestartRecovery:
    def test_clean_restart_restores_versions_and_cache(self, tmp_path):
        d1, t1 = _run_daemon(state_dir=tmp_path)
        with ServiceClient(port=d1.port) as c:
            sid = c.load("hop-count", n=10, topology="random",
                         seed=3)["session"]
            c.set_edge(sid, 0, 1, edge_seed=7)
            v = c.set_edge(sid, 2, 3, edge_seed=11)["version"]
            first = c.sigma(sid)
            assert first["cached"] is False
        _stop_daemon(d1, t1)             # drain writes a final snapshot

        d2, t2 = _run_daemon(state_dir=tmp_path)
        try:
            _wait_restore(d2)
            with ServiceClient(port=d2.port) as c:
                health = c.health()
                assert health["durable"] is True
                assert health["state"] == "ready"
                # same params -> same sid; version survived the restart
                reply = c.load("hop-count", n=10, topology="random",
                               seed=3)
                assert reply["session"] == sid
                assert reply["version"] == v
                # the cache came back warm: first post-restart query
                # is already a hit, digest bit-identical
                again = c.sigma(sid)
                assert again["cached"] is True
                assert again["digest"] == first["digest"]
        finally:
            _stop_daemon(d2, t2)

    def test_journal_tail_replays_past_the_snapshot(self, tmp_path):
        d1, t1 = _run_daemon(state_dir=tmp_path)
        with ServiceClient(port=d1.port) as c:
            sid = c.load("shortest", n=8, topology="ring",
                         seed=1)["session"]
            c.set_edge(sid, 1, 2, edge_seed=5)
            c.snapshot()                 # snapshot covers one mutation
            c.set_edge(sid, 3, 4, edge_seed=9)
            v = c.remove_edge(sid, 1, 2)["version"]
            digest = c.sigma(sid)["digest"]
        _stop_daemon(d1, t1)
        # the clean drain wrote a final snapshot covering everything;
        # delete it so the restore must fall back to the explicit
        # snapshot and replay the two tail mutations from the journal
        newest = sorted(tmp_path.glob("snapshot-*.json"))[-1]
        newest.unlink()

        d2, t2 = _run_daemon(state_dir=tmp_path)
        try:
            with ServiceClient(port=d2.port) as c:
                reply = c.load("shortest", n=8, topology="ring",
                               seed=1)
                assert reply["session"] == sid
                assert reply["version"] == v
                assert c.sigma(sid)["digest"] == digest
        finally:
            _stop_daemon(d2, t2)


class TestHealth:
    def test_health_without_state_dir(self):
        d, t = _run_daemon()
        try:
            with ServiceClient(port=d.port) as c:
                health = c.health()
                assert health["state"] == "ready"
                assert health["durable"] is False
                assert "journal_seq" not in health
                # snapshot verb needs a state dir: typed rejection
                with pytest.raises(ServiceError) as exc:
                    c.snapshot()
                assert exc.value.code == ERR_BAD_REQUEST
        finally:
            _stop_daemon(d, t)

    def test_health_reports_journal_lag_and_snapshot_age(self, tmp_path):
        d, t = _run_daemon(state_dir=tmp_path)
        try:
            with ServiceClient(port=d.port) as c:
                sid = c.load("hop-count", n=8)["session"]
                c.set_edge(sid, 0, 1, edge_seed=3)
                health = c.health()
                assert health["durable"] is True
                assert health["journal_seq"] >= 2   # load + mutation
                assert health["journal_lag"] >= 2
                c.snapshot()
                health = c.health()
                assert health["journal_lag"] == 0
                assert health["snapshot_seq"] == health["journal_seq"]
                assert health["last_snapshot_age_s"] is not None
                assert c.stats()["state"] == "ready"
        finally:
            _stop_daemon(d, t)


class TestGracefulDrain:
    def test_draining_error_is_typed_with_retry_hint(self, tmp_path):
        d, t = _run_daemon(state_dir=tmp_path, drain_deadline=10.0)
        with ServiceClient(port=d.port) as c:
            sid = c.load("hop-count", n=8)["session"]
            c.sigma(sid)

            # pin one admitted op open so the drain cannot finish while
            # we probe, then flip to draining on the loop thread: new
            # work must earn the typed error, not a hang or a close
            def hold():
                d._active_ops += 1
                d._begin_drain()
            d._loop.call_soon_threadsafe(hold)
            deadline = time.monotonic() + 5.0
            code = None
            while time.monotonic() < deadline:
                try:
                    c.sigma(sid, start_seed=99)
                except ServiceError as exc:
                    code = exc.code
                    assert exc.retry_after_ms is not None
                    break
                time.sleep(0.01)
            assert code == ERR_DRAINING
            assert d._state == "draining"
        # release the pinned op: the drain completes and the loop exits
        d._loop.call_soon_threadsafe(
            lambda: setattr(d, "_active_ops", d._active_ops - 1))
        t.join(15)
        assert not t.is_alive()

    def test_drain_under_load_zero_client_failures(self, tmp_path):
        d, t = _run_daemon(state_dir=tmp_path, drain_deadline=10.0)
        with ServiceClient(port=d.port) as c:
            sid = c.load("hop-count", n=10)["session"]
            c.sigma(sid)
        drain_signalled = threading.Event()
        failures, drained, served = [], [], [0]
        lock = threading.Lock()

        def client_loop(worker):
            try:
                with ServiceClient(port=d.port, timeout=15,
                                   retries=3) as c:
                    for q in range(2000):
                        try:
                            c.sigma(sid, start_seed=(worker * 977 + q) % 5)
                            with lock:
                                served[0] += 1
                        except ServiceError as exc:
                            if exc.code == ERR_DRAINING:
                                drained.append(worker)
                                return
                            raise
            except Exception as exc:
                if drain_signalled.is_set():
                    # the daemon finished draining between requests:
                    # a closed connection after the signal is drain
                    drained.append(worker)
                else:
                    failures.append((worker, repr(exc)))

        threads = [threading.Thread(target=client_loop, args=(i,))
                   for i in range(8)]
        for th in threads:
            th.start()
        time.sleep(0.4)                  # let the load ramp up
        drain_signalled.set()
        d.request_shutdown()
        for th in threads:
            th.join(30)
        t.join(30)
        assert failures == [], f"clients failed before drain: {failures}"
        assert served[0] > 0
        assert not t.is_alive()


# ----------------------------------------------------------------------
# 3. kill -9 + restart: the subprocess crash-recovery matrix
# ----------------------------------------------------------------------


def _spawn_serve(state_dir, *extra):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--state-dir", str(state_dir), *extra],
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    m = re.search(r"listening on (\S+):(\d+)", line)
    assert m, f"unparseable announce line: {line!r}"
    return proc, m.group(1), int(m.group(2))


def _wait_ready(host, port, timeout=30.0):
    """Poll ``health`` until the daemon reports ``ready`` (it serves
    ``hello``/``health`` while still ``restoring``)."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(host, port, timeout=5) as c:
                last = c.health()
                if last["state"] == "ready":
                    return last
        except (OSError, ServiceError):
            pass
        time.sleep(0.05)
    raise AssertionError(f"daemon never became ready (last: {last})")


def _kill9(proc):
    proc.stdout.close()
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=15)


class TestKill9Recovery:
    def test_sigkill_recovers_warm_cache_and_versions(self, tmp_path):
        proc, host, port = _spawn_serve(tmp_path)
        try:
            with ServiceClient(host, port) as c:
                sid = c.load("hop-count", n=12, topology="random",
                             seed=5)["session"]
                c.set_edge(sid, 0, 3, edge_seed=21)
                v = c.set_edge(sid, 4, 7, edge_seed=8)["version"]
                first = c.sigma(sid)
                assert first["cached"] is False
                c.snapshot()             # cache + versions hit the disk
            _kill9(proc)

            proc, host, port = _spawn_serve(tmp_path)
            _wait_ready(host, port)
            with ServiceClient(host, port) as c:
                reply = c.load("hop-count", n=12, topology="random",
                               seed=5)
                assert reply["session"] == sid
                assert reply["version"] == v
                again = c.sigma(sid)
                assert again["cached"] is True      # warm from disk
                assert again["digest"] == first["digest"]
                c.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)

    def test_sigkill_mid_mutation_stream_replays_the_tail(self,
                                                          tmp_path):
        proc, host, port = _spawn_serve(tmp_path,
                                        "--journal-sync-every", "1")
        try:
            with ServiceClient(host, port) as c:
                sid = c.load("shortest", n=10, topology="random",
                             seed=2)["session"]
                c.set_edge(sid, 1, 2, edge_seed=4)
                c.snapshot()
                # mutations past the snapshot live only in the journal
                c.set_edge(sid, 3, 5, edge_seed=6)
                v = c.remove_edge(sid, 1, 2)["version"]
                digest = c.sigma(sid)["digest"]
            _kill9(proc)                 # mid-stream: no drain snapshot

            proc, host, port = _spawn_serve(tmp_path)
            _wait_ready(host, port)
            with ServiceClient(host, port) as c:
                reply = c.load("shortest", n=10, topology="random",
                               seed=2)
                assert reply["session"] == sid
                assert reply["version"] == v        # tail replayed
                # recomputed (the cache body died with the process)
                # but bit-identical to the pre-kill answer
                assert c.sigma(sid)["digest"] == digest
                c.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)

    def test_torn_journal_tail_recovers_to_the_last_intact_record(
            self, tmp_path):
        proc, host, port = _spawn_serve(tmp_path,
                                        "--journal-sync-every", "1")
        try:
            with ServiceClient(host, port) as c:
                sid = c.load("hop-count", n=8, topology="ring",
                             seed=1)["session"]
                v = c.set_edge(sid, 0, 1, edge_seed=9)["version"]
            _kill9(proc)
            # simulate the torn write a crash can leave behind: a
            # half-flushed record (valid header, short body)
            wal = tmp_path / "journal.wal"
            with open(wal, "ab") as fh:
                body = b'{"verb": "set_edge", "seq": 99}'
                fh.write(JOURNAL_HEADER.pack(len(body) + 40,
                                             zlib.crc32(body)) + body)

            proc, host, port = _spawn_serve(tmp_path)
            _wait_ready(host, port)
            with ServiceClient(host, port) as c:
                reply = c.load("hop-count", n=8, topology="ring", seed=1)
                assert reply["session"] == sid
                assert reply["version"] == v        # torn record dropped
                c.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)


# ----------------------------------------------------------------------
# 4. Per-peer delay faults: one slow peer never stalls the fleet
# ----------------------------------------------------------------------


class TestPerPeerDelay:
    def test_delayed_peer_does_not_stall_other_connections(self):
        # one single-shot 800ms recv delay; whichever client fires it
        # sleeps — the OTHER client's requests must stay fast (before
        # the fix, the daemon slept on the event loop and every
        # connection froze for the full delay)
        plan = {"seed": 1, "rules": [{
            "kind": "delay", "role": "daemon", "op": "recv",
            "msg_index": 1, "delay_ms": 800.0, "times": 1}]}
        d, t = _run_daemon(fault_plan=plan)
        try:
            slow = ServiceClient(port=d.port, timeout=15)
            fast = ServiceClient(port=d.port, timeout=15)
            box = {}

            def fire():
                t0 = time.perf_counter()
                slow.stats()             # msg_index 1: eats the delay
                box["slow_s"] = time.perf_counter() - t0

            th = threading.Thread(target=fire)
            th.start()
            time.sleep(0.15)             # the delayed frame is in flight
            t0 = time.perf_counter()
            fast.stats()
            fast_s = time.perf_counter() - t0
            th.join(15)
            slow.close()
            fast.close()
            assert box["slow_s"] >= 0.6, \
                f"delay rule never fired (slow={box['slow_s']:.3f}s)"
            assert fast_s < 0.4, \
                f"fast peer stalled {fast_s:.3f}s behind the delayed one"
        finally:
            _stop_daemon(d, t)
