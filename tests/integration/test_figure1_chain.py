"""Integration: the Figure 1 implication chain, arrow by arrow.

    strictly increasing ⇒ ultrametric conditions ⇒ (ACO) ⇒ absolute conv.

Arrow (c) is checked by building the ultrametric and testing Theorem 4's
three preconditions; arrows (a)+(b) are checked operationally: whenever
the preconditions hold, every δ run converges to the one fixed point.
"""

import random

import pytest

from repro.algebras import FiniteLevelAlgebra, HopCountAlgebra
from repro.analysis import run_absolute_convergence
from repro.core import (
    DistanceVectorUltrametric,
    Network,
    PathVectorUltrametric,
    RoutingState,
    iterate_sigma,
    random_state,
    theorem4_preconditions,
)
from tests.conftest import finite_net, hop_net, shortest_pv_net


def states_for(net, count, seed):
    rng = random.Random(seed)
    out = [RoutingState.identity(net.algebra, net.n)]
    out += [random_state(net.algebra, net.n, rng) for _ in range(count)]
    return out


class TestArrowC_DV:
    """strictly increasing (finite) ⇒ the Theorem 4 preconditions."""

    @pytest.mark.parametrize("build,seed", [
        (lambda: hop_net(4, bound=8), 1),
        (lambda: hop_net(5, bound=6), 2),
        (lambda: finite_net(4, levels=6, seed=3), 3),
    ], ids=["hop4", "hop5", "finite4"])
    def test_preconditions(self, build, seed):
        net = build()
        metric = DistanceVectorUltrametric(net.algebra)
        states = states_for(net, 6, seed)
        routes = list(net.algebra.routes())
        for check in theorem4_preconditions(metric, net, states, routes):
            assert check.holds, check


class TestArrowC_PV:
    """increasing path algebra ⇒ the Theorem 4 preconditions (PV form)."""

    def test_preconditions(self):
        net = shortest_pv_net(4, seed=4)
        metric = PathVectorUltrametric(net)
        states = states_for(net, 5, 5)
        from repro.core import enumerate_consistent_routes

        routes = enumerate_consistent_routes(net.algebra, net)
        for check in theorem4_preconditions(metric, net, states, routes):
            assert check.holds, check


class TestArrowsAB:
    """ultrametric preconditions verified ⇒ absolute convergence observed."""

    def test_whole_chain_dv(self):
        net = hop_net(4, bound=8)
        metric = DistanceVectorUltrametric(net.algebra)
        states = states_for(net, 4, 6)
        routes = list(net.algebra.routes())
        checks = theorem4_preconditions(metric, net, states, routes)
        assert all(c.holds for c in checks)
        report = run_absolute_convergence(net, n_starts=3, seed=7,
                                          max_steps=2500)
        assert report.absolute

    def test_whole_chain_pv(self):
        net = shortest_pv_net(4, seed=8)
        metric = PathVectorUltrametric(net)
        states = states_for(net, 4, 9)
        from repro.core import enumerate_consistent_routes

        routes = enumerate_consistent_routes(net.algebra, net)
        checks = theorem4_preconditions(metric, net, states, routes)
        assert all(c.holds for c in checks)
        report = run_absolute_convergence(net, n_starts=3, seed=10,
                                          max_steps=2500)
        assert report.absolute

    def test_chain_breaks_where_it_should(self):
        """A non-strict finite algebra admits two genuine fixed points;
        no ultrametric can make σ strictly contracting on a fixed point
        then (σ fixes both, so d(X*, Y*) can never decrease) — the
        chain's first arrow refuses, as it must."""
        from repro.core import check_contracting_on_fixed_point, is_stable

        alg = FiniteLevelAlgebra(4)
        net = Network(alg, 3, name="plateau")
        plateau = alg.table_edge([2, 3, 2, 3, 4])
        net.set_edge(0, 1, plateau)
        net.set_edge(1, 0, plateau)
        fp1 = RoutingState([[0, 2, 2], [2, 0, 2], [4, 4, 0]])
        fp2 = RoutingState([[0, 2, 3], [2, 0, 3], [4, 4, 0]])
        assert is_stable(net, fp1) and is_stable(net, fp2)
        metric = DistanceVectorUltrametric(alg)
        out = check_contracting_on_fixed_point(metric, net, fp1, [fp2],
                                               strict=True)
        assert not out.holds
