"""Integration: the three engines agree.

σ (synchronous), δ (abstract asynchronous) and the event-driven
simulator are three views of one computation; for convergent networks
they must land on the same fixed point, and the simulator's trace must
be an admissible δ-schedule prefix.
"""

import pytest

from repro.core import (
    RandomSchedule,
    RoutingState,
    delta_run,
    synchronous_fixed_point,
)
from repro.protocols import HOSTILE, simulate
from tests.conftest import bgp_net, finite_net, hop_net, shortest_pv_net


NETWORK_BUILDERS = [
    (lambda: hop_net(5), "hop-ring"),
    (lambda: finite_net(4, levels=6, seed=2), "finite-ring"),
    (lambda: shortest_pv_net(4, seed=3), "shortest-pv"),
    (lambda: bgp_net(4, seed=4), "bgplite"),
]


class TestThreeEnginesAgree:
    @pytest.mark.parametrize("build,name",
                             NETWORK_BUILDERS, ids=[n for _, n in NETWORK_BUILDERS])
    def test_fixed_points_coincide(self, build, name):
        net = build()
        alg = net.algebra
        sync_fp = synchronous_fixed_point(net)

        async_res = delta_run(net, RandomSchedule(net.n, seed=5),
                              RoutingState.identity(alg, net.n),
                              max_steps=2500)
        assert async_res.converged
        assert async_res.state.equals(sync_fp, alg)

        sim_res = simulate(net, seed=6)
        assert sim_res.converged
        assert sim_res.final_state.equals(sync_fp, alg)

    @pytest.mark.parametrize("build,name",
                             NETWORK_BUILDERS, ids=[n for _, n in NETWORK_BUILDERS])
    def test_hostile_simulator_still_agrees(self, build, name):
        net = build()
        alg = net.algebra
        sync_fp = synchronous_fixed_point(net)
        sim_res = simulate(net, seed=7, link_config=HOSTILE,
                           refresh_interval=5.0, quiet_period=25.0)
        assert sim_res.converged
        assert sim_res.final_state.equals(sync_fp, alg)

    @pytest.mark.parametrize("build,name",
                             NETWORK_BUILDERS, ids=[n for _, n in NETWORK_BUILDERS])
    def test_simulator_trace_is_admissible_delta_prefix(self, build, name):
        net = build()
        res = simulate(net, seed=8, link_config=HOSTILE,
                       refresh_interval=5.0)
        assert res.trace.check_schedule_axioms() == []
