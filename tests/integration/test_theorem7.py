"""Integration: Theorem 7 end-to-end.

Finite + strictly increasing ⇒ δ converges absolutely — checked across
algebras × topologies × starting states × schedules, plus the negative
controls that drop each hypothesis in turn.
"""

import random

import pytest

from repro.algebras import (
    FiniteLevelAlgebra,
    HopCountAlgebra,
    LexicographicAlgebra,
    QuantisedReliabilityAlgebra,
)
from repro.analysis import run_absolute_convergence
from repro.core import Network, RoutingState, delta_run, schedule_zoo
from repro.topologies import (
    erdos_renyi,
    line,
    ring,
    star,
    uniform_weight_factory,
)


def _networks():
    hop = HopCountAlgebra(12)
    hop_factory = uniform_weight_factory(hop, 1, 3)
    yield line(hop, 5, hop_factory, seed=0)
    yield ring(hop, 5, hop_factory, seed=1)
    yield star(hop, 5, hop_factory, seed=2)
    yield erdos_renyi(hop, 6, 0.4, hop_factory, seed=3)

    fin = FiniteLevelAlgebra(7)
    r = random.Random(4)
    net = Network(fin, 4, name="finite-chords")
    for i in range(4):
        for j in range(4):
            if i != j and r.random() < 0.7:
                net.set_edge(i, j, fin.random_strict_edge(r))
    # guarantee strong connectivity via a ring backbone
    for i in range(4):
        if not net.adjacency.has_edge(i, (i + 1) % 4):
            net.set_edge(i, (i + 1) % 4, fin.random_strict_edge(r))
    yield net

    quant = QuantisedReliabilityAlgebra(quantum=8)
    yield ring(quant, 4,
               lambda rng, _i, _j: quant.sample_edge_function(rng), seed=5)


class TestTheorem7Positive:
    @pytest.mark.parametrize("net", list(_networks()),
                             ids=lambda n: f"{n.name}/{n.algebra.name}")
    def test_absolute_convergence(self, net):
        report = run_absolute_convergence(net, n_starts=3, seed=7,
                                          max_steps=2500)
        assert report.all_converged, "some (state, schedule) run diverged"
        assert report.absolute, (
            f"{len(report.distinct_fixed_points)} distinct fixed points "
            "reached — absolute convergence violated")


class TestTheorem7Hypotheses:
    """Drop each hypothesis; the conclusion must become falsifiable."""

    def test_drop_finiteness_count_to_infinity(self):
        """Strictly increasing but infinite: divergence from stale state."""
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        res = delta_run(net, schedule_zoo(net.n)[0], stale, max_steps=200)
        assert not res.converged

    def test_drop_strictness_multiple_fixed_points(self):
        """Finite but only weakly increasing: multiple stable states
        become possible (which one you get depends on the start).

        Construction: nodes 0 and 1 exchange routes towards an
        unreachable destination 2 through a *plateau* table
        (g(2) = 2, g(3) = 3): any agreed plateau value is self-
        sustaining — the ghost-route analogue of a wedgie."""
        from repro.core import is_stable

        alg = FiniteLevelAlgebra(4)
        net = Network(alg, 3, name="plateau")
        plateau = alg.table_edge([2, 3, 2, 3, 4])
        net.set_edge(0, 1, plateau)
        net.set_edge(1, 0, plateau)

        def state(v):
            return RoutingState([[0, 2, v], [2, 0, v], [4, 4, 0]])

        fixed = [state(v) for v in (2, 3, 4)]
        for X in fixed:
            assert is_stable(net, X)
        assert not fixed[0].equals(fixed[1], alg)

    def test_drop_increasing_oscillation(self):
        from repro.algebras import bad_gadget
        from repro.analysis import sync_oscillates

        assert sync_oscillates(bad_gadget())


class TestConvergenceStepsAreBounded:
    def test_async_steps_recorded_and_finite(self):
        net = ring(HopCountAlgebra(8), 4,
                   uniform_weight_factory(HopCountAlgebra(8), 1, 2), seed=9)
        report = run_absolute_convergence(net, n_starts=2, seed=11,
                                          max_steps=2500)
        assert report.absolute
        assert 0 < report.mean_steps <= report.max_steps < 2500
