"""Integration: Theorem 11 end-to-end.

Increasing *path* algebra (possibly infinite carrier) ⇒ δ converges
absolutely, including from inconsistent stale states — checked for the
AddPaths lift, BGPLite and Gao–Rexford.
"""

import random

import pytest

from repro.algebras import (
    AddPaths,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.analysis import run_absolute_convergence
from repro.core import (
    RandomSchedule,
    RoutingState,
    delta_run,
    iterate_sigma,
    random_state,
)
from repro.topologies import lifted_weight_factory, ring
from tests.conftest import bgp_net, shortest_pv_net


def widest_pv_net(n=4, seed=0):
    base = WidestPathsAlgebra()
    alg = AddPaths(base, n_nodes=n)
    return ring(alg, n, lifted_weight_factory(alg, 1, 5), seed=seed)


class TestTheorem11Positive:
    @pytest.mark.parametrize("build", [
        lambda: shortest_pv_net(4, seed=1),
        lambda: widest_pv_net(4, seed=2),
        lambda: bgp_net(4, seed=3),
    ], ids=["shortest-pv", "widest-pv", "bgplite"])
    def test_absolute_convergence(self, build):
        net = build()
        report = run_absolute_convergence(net, n_starts=3, seed=5,
                                          max_steps=2500)
        assert report.all_converged
        assert report.absolute

    def test_gao_rexford_hierarchy(self):
        from repro.topologies import gao_rexford_hierarchy

        net, _rels = gao_rexford_hierarchy(2, 3, 4, seed=4)
        report = run_absolute_convergence(net, n_starts=2, seed=6,
                                          max_steps=2500)
        assert report.absolute


class TestInconsistentStates:
    """The Section 5 machinery exists precisely for these starts."""

    def test_convergence_from_heavily_inconsistent_state(self):
        net = shortest_pv_net(5, seed=7)
        alg = net.algebra
        rng = random.Random(8)
        reference = iterate_sigma(
            net, RoutingState.identity(alg, 5)).state
        # build a state of pure ghosts: plausible paths, wrong values
        ghost = RoutingState.from_function(
            lambda i, j: (rng.randint(50, 99),
                          tuple(rng.sample(range(5), 3))) if i != j
            else alg.trivial, 5)
        res = delta_run(net, RandomSchedule(5, seed=9), ghost,
                        max_steps=2500)
        assert res.converged
        assert res.state.equals(reference, alg)

    def test_inconsistency_flushed_within_bound(self):
        """Every application of σ lengthens the shortest inconsistent
        path; after ≤ n rounds the state is fully consistent (the
        Lemma 8/9 mechanism, observed directly)."""
        from repro.core import PathVectorUltrametric, sigma

        net = shortest_pv_net(4, seed=10)
        metric = PathVectorUltrametric(net)
        rng = random.Random(11)
        X = random_state(net.algebra, 4, rng)
        for _round in range(net.n + 1):
            X = sigma(net, X)
        for (_i, _j, r) in X.entries():
            assert metric.is_consistent(r)

    def test_stale_state_after_topology_change(self):
        """Operational version: converge, change the topology, keep the
        old state as the new start (Section 3.2), re-converge."""
        net = shortest_pv_net(5, seed=12)
        alg = net.algebra
        old_fp = iterate_sigma(net, RoutingState.identity(alg, 5)).state
        # re-weight one edge: the old fixed point is now inconsistent
        base = alg.base
        net.set_edge(0, 1, alg.edge(0, 1, base.edge(9)))
        new_fp = iterate_sigma(net, RoutingState.identity(alg, 5)).state
        res = delta_run(net, RandomSchedule(5, seed=13), old_fp,
                        max_steps=2500)
        assert res.converged
        assert res.state.equals(new_fp, alg)


class TestStrictnessForFree:
    def test_widest_paths_needs_the_lift(self):
        """Raw widest paths (not strictly increasing, infinite) gets no
        DV guarantee, but its AddPaths lift converges absolutely —
        Section 5.1's 'P3 upgrades increasing to strictly increasing'."""
        net = widest_pv_net(4, seed=14)
        report = run_absolute_convergence(net, n_starts=2, seed=15,
                                          max_steps=2500)
        assert report.absolute
