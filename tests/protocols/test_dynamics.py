"""Dynamic topologies (Section 3.2): change = new instance + stale state."""

import pytest

from repro.core import is_stable, synchronous_fixed_point
from repro.protocols import (
    ChangeScript,
    Simulator,
    TopologyChange,
    fail_edge,
    fail_link,
    set_edge,
    simulate,
)
from tests.conftest import hop_net, shortest_pv_net


class TestChangePrimitives:
    def test_fail_edge_removes(self):
        net = hop_net(3)
        change = fail_edge(0, 1, time=5.0)
        change.apply(net)
        assert not net.adjacency.has_edge(0, 1)
        assert net.adjacency.has_edge(1, 0)

    def test_fail_link_removes_both(self):
        net = hop_net(3)
        for change in fail_link(0, 1, time=5.0):
            change.apply(net)
        assert not net.adjacency.has_edge(0, 1)
        assert not net.adjacency.has_edge(1, 0)

    def test_set_edge_installs(self):
        net = hop_net(3)
        alg = net.algebra
        change = set_edge(0, 2, alg.edge(7), time=1.0)
        change.apply(net)
        assert net.edge(0, 2)(0) == 7


class TestReconvergence:
    def test_weight_change_reconverges(self):
        net = hop_net(5)
        alg = net.algebra
        sim = Simulator(net, seed=1, quiet_period=20.0,
                        refresh_interval=5.0)
        script = ChangeScript(sim, [set_edge(0, 1, alg.edge(9), time=40.0)])
        res = script.run()
        assert res.converged
        # the final state is the fixed point of the *new* topology
        assert res.final_state.equals(synchronous_fixed_point(net),
                                      alg)

    def test_link_failure_reroutes(self):
        net = hop_net(6)
        alg = net.algebra
        sim = Simulator(net, seed=2, quiet_period=20.0, refresh_interval=5.0)
        script = ChangeScript(sim, fail_link(0, 1, time=40.0))
        res = script.run()
        assert res.converged
        # 0 still reaches 1, the long way round the ring
        assert res.final_state.get(0, 1) == 5

    def test_partition_with_path_vector(self):
        """Failing both of node 0's links partitions it; the PV algebra
        flushes routes to 0 instead of counting to infinity."""
        net = shortest_pv_net(4, seed=3)
        alg = net.algebra
        sim = Simulator(net, seed=3, quiet_period=20.0, refresh_interval=5.0)
        changes = fail_link(0, 1, time=40.0) + fail_link(0, 3, time=40.0)
        script = ChangeScript(sim, changes)
        res = script.run()
        assert res.converged
        for other in (1, 2, 3):
            assert alg.equal(res.final_state.get(other, 0), alg.invalid)

    def test_multiple_sequential_changes(self):
        net = hop_net(5)
        alg = net.algebra
        sim = Simulator(net, seed=4, quiet_period=15.0, refresh_interval=5.0)
        script = ChangeScript(sim, [
            set_edge(0, 1, alg.edge(3), time=30.0),
            set_edge(0, 1, alg.edge(1), time=60.0),
        ])
        res = script.run()
        assert res.converged
        assert len(script.applied) == 2
        assert is_stable(net, res.final_state)

    def test_changes_applied_in_time_order(self):
        net = hop_net(4)
        alg = net.algebra
        sim = Simulator(net, seed=5, quiet_period=15.0, refresh_interval=5.0)
        script = ChangeScript(sim, [
            set_edge(0, 1, alg.edge(2), time=50.0),
            set_edge(1, 2, alg.edge(2), time=25.0),
        ])
        script.run()
        assert [c.time for c in script.applied] == [25.0, 50.0]
