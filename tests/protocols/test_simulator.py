"""Event-driven simulator: convergence, pathologies, determinism."""

import pytest

from repro.core import RoutingState, is_stable, synchronous_fixed_point
from repro.protocols import HOSTILE, RELIABLE, LinkConfig, Simulator, simulate
from tests.conftest import bgp_net, hop_net, shortest_pv_net


class TestReliableConvergence:
    def test_reaches_sigma_fixed_point(self):
        net = hop_net(5)
        fp = synchronous_fixed_point(net)
        res = simulate(net, seed=1)
        assert res.converged and res.quiesced
        assert res.final_state.equals(fp, net.algebra)

    def test_path_vector_network(self):
        net = shortest_pv_net(5, seed=2)
        fp = synchronous_fixed_point(net)
        res = simulate(net, seed=3)
        assert res.converged
        assert res.final_state.equals(fp, net.algebra)

    def test_bgp_network(self):
        net = bgp_net(5, seed=4)
        fp = synchronous_fixed_point(net)
        res = simulate(net, seed=5)
        assert res.converged
        assert res.final_state.equals(fp, net.algebra)


class TestArbitraryStarts:
    def test_converges_from_garbage(self, rng):
        from repro.core import random_state

        net = hop_net(4)
        fp = synchronous_fixed_point(net)
        for seed in range(3):
            start = random_state(net.algebra, 4, rng)
            res = simulate(net, start=start, seed=seed)
            assert res.converged
            assert res.final_state.equals(fp, net.algebra)


class TestHostileChannels:
    """Loss + duplication + reordering: the Section 3 pathologies."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_under_loss_dup_reorder(self, seed):
        net = hop_net(5)
        fp = synchronous_fixed_point(net)
        res = simulate(net, seed=seed, link_config=HOSTILE,
                       refresh_interval=5.0, quiet_period=25.0)
        assert res.converged, "hostile channels must not break convergence"
        assert res.final_state.equals(fp, net.algebra)

    def test_pathologies_actually_happened(self):
        net = hop_net(5)
        res = simulate(net, seed=7, link_config=HOSTILE,
                       refresh_interval=5.0, quiet_period=25.0)
        assert res.stats.lost > 0
        assert res.stats.duplicated > 0
        assert res.stats.delivered < res.stats.sent

    def test_fifo_links(self):
        net = hop_net(4)
        cfg = LinkConfig(min_delay=0.1, max_delay=3.0, fifo=True)
        res = simulate(net, seed=9, link_config=cfg)
        assert res.converged


class TestDeterminism:
    def test_same_seed_same_run(self):
        net = hop_net(4)
        a = simulate(net.copy(), seed=42, link_config=HOSTILE,
                     refresh_interval=5.0)
        b = simulate(net.copy(), seed=42, link_config=HOSTILE,
                     refresh_interval=5.0)
        assert a.final_state == b.final_state
        assert a.stats.as_dict() == b.stats.as_dict()
        assert a.sim_time == b.sim_time

    def test_different_seed_different_trace(self):
        net = hop_net(4)
        a = simulate(net.copy(), seed=1, link_config=HOSTILE,
                     refresh_interval=5.0)
        b = simulate(net.copy(), seed=2, link_config=HOSTILE,
                     refresh_interval=5.0)
        assert a.stats.as_dict() != b.stats.as_dict() or \
            a.sim_time != b.sim_time


class TestSimulatorInternals:
    def test_out_neighbours(self):
        net = hop_net(3, arcs=[(0, 1), (1, 2)])
        sim = Simulator(net)
        # who imports from node 1? node 0 has edge (0,1)
        assert sim._out_neighbours(1) == [0]
        assert sim._out_neighbours(0) == []

    def test_per_link_config(self):
        net = hop_net(3)
        lossy = LinkConfig(loss=0.9)
        sim = Simulator(net, link_config={(0, 1): lossy})
        assert sim.link(0, 1) is lossy
        assert sim.link(1, 0) is RELIABLE

    def test_current_state_roundtrip(self):
        net = hop_net(3)
        sim = Simulator(net)
        X = RoutingState.filled(3, 3)
        sim.load_state(X)
        assert sim.current_state() == X

    def test_quiesced_state_is_stable(self):
        net = hop_net(6)
        res = simulate(net, seed=11)
        assert res.quiesced
        assert is_stable(net, res.final_state)

    def test_convergence_time_reported(self):
        net = hop_net(5)
        res = simulate(net, seed=12)
        assert 0 < res.convergence_time <= res.sim_time


class TestLinkConfigValidation:
    def test_delay_bounds(self):
        with pytest.raises(ValueError):
            LinkConfig(min_delay=0)
        with pytest.raises(ValueError):
            LinkConfig(min_delay=2.0, max_delay=1.0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            LinkConfig(loss=1.0)
        with pytest.raises(ValueError):
            LinkConfig(duplicate=1.5)
