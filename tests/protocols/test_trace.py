"""Traces and the extracted Üresin–Dubois schedule witness."""

from repro.protocols import HOSTILE, simulate
from tests.conftest import hop_net


class TestTraceContents:
    def test_changes_recorded(self):
        net = hop_net(4)
        res = simulate(net, seed=1)
        assert res.trace.total_changes > 0
        change = res.trace.changes[0]
        assert change.old != change.new
        assert 0 <= change.node < 4 and 0 <= change.dest < 4

    def test_changes_for_node(self):
        net = hop_net(4)
        res = simulate(net, seed=1)
        for node in range(4):
            for c in res.trace.changes_for(node):
                assert c.node == node

    def test_stats_accounting(self):
        net = hop_net(4)
        res = simulate(net, seed=1)
        s = res.stats
        assert s.delivered <= s.sent
        assert s.lost == 0          # reliable default links

    def test_last_change_time(self):
        net = hop_net(4)
        res = simulate(net, seed=1)
        assert res.trace.last_change_time == \
            max(c.time for c in res.trace.changes)

    def test_empty_trace_defaults(self):
        from repro.protocols import Trace

        t = Trace()
        assert t.last_change_time == 0.0
        assert t.total_changes == 0
        assert t.check_schedule_axioms() == []


class TestScheduleWitness:
    """Every simulator run induces an admissible schedule prefix: the
    operational justification for applying Theorems 7/11 to message-
    passing protocols."""

    def test_s2_on_reliable_run(self):
        net = hop_net(5)
        res = simulate(net, seed=3)
        assert res.trace.check_schedule_axioms() == []

    def test_s2_on_hostile_run(self):
        net = hop_net(5)
        res = simulate(net, seed=4, link_config=HOSTILE,
                       refresh_interval=5.0)
        assert res.trace.check_schedule_axioms() == []

    def test_activations_have_beta_witnesses(self):
        net = hop_net(4)
        res = simulate(net, seed=5)
        acts = res.trace.activations
        assert acts
        for act in acts:
            if act.node != act.dest:    # self-entries read no neighbours
                assert act.betas
            for (_k, gen) in act.betas:
                assert gen < act.step

    def test_steps_strictly_increase(self):
        net = hop_net(4)
        res = simulate(net, seed=6)
        steps = [a.step for a in res.trace.activations]
        assert steps == sorted(steps)
        assert len(set(steps)) == len(steps)
