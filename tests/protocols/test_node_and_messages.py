"""Unit tests for the protocol node state machine and channel configs."""

import random

import pytest

from repro.algebras import HopCountAlgebra
from repro.core import Network
from repro.protocols import CacheEntry, LinkConfig, ProtocolNode
from repro.protocols.messages import Announcement


def small_net():
    alg = HopCountAlgebra(8)
    net = Network(alg, 3)
    net.set_edge(0, 1, alg.edge(1))
    net.set_edge(0, 2, alg.edge(2))
    net.set_edge(1, 0, alg.edge(1))
    net.set_edge(2, 0, alg.edge(2))
    return net, alg


class TestProtocolNode:
    def test_initial_table_is_identity_row(self):
        net, alg = small_net()
        node = ProtocolNode(0, net)
        assert node.table == [alg.trivial, alg.invalid, alg.invalid]

    def test_in_neighbours_and_cache_shape(self):
        net, _alg = small_net()
        node = ProtocolNode(0, net)
        assert node.in_neighbours == [1, 2]
        assert set(node.cache) == {1, 2}
        assert len(node.cache[1]) == 3

    def test_receive_updates_cache_only(self):
        net, alg = small_net()
        node = ProtocolNode(0, net)
        node.receive(sender=1, dest=2, route=3, gen_step=7, now=1.5)
        entry = node.cache[1][2]
        assert entry.route == 3 and entry.gen_step == 7
        assert node.table[2] == alg.invalid    # table untouched

    def test_receive_from_unknown_sender_ignored(self):
        net, _alg = small_net()
        node = ProtocolNode(0, net)
        node.receive(sender=2, dest=1, route=1, gen_step=1, now=0.0)
        node.refresh_neighbour_lists()
        net.remove_edge(0, 2)
        node.refresh_neighbour_lists()
        # stale in-flight message from the removed neighbour: no crash
        node.receive(sender=2, dest=1, route=1, gen_step=2, now=1.0)
        assert 2 not in node.cache

    def test_recompute_folds_cache_through_policy(self):
        net, alg = small_net()
        node = ProtocolNode(0, net)
        node.receive(1, 2, 4, gen_step=3, now=0.0)   # 1 knows 2 at 4
        node.receive(2, 2, 0, gen_step=5, now=0.0)   # 2 is 2 (trivial)
        changed, new, betas = node.recompute(2)
        # via 1: 4 + 1 = 5; via 2: 0 + 2 = 2 → best 2
        assert changed and new == 2
        assert betas == {1: 3, 2: 5}

    def test_recompute_own_destination_is_trivial(self):
        net, alg = small_net()
        node = ProtocolNode(0, net)
        changed, new, betas = node.recompute(0)
        assert not changed and new == alg.trivial and betas == {}

    def test_refresh_neighbour_lists_adds_new_edges(self):
        net, alg = small_net()
        node = ProtocolNode(1, net)
        assert node.in_neighbours == [0]
        net.set_edge(1, 2, alg.edge(1))
        node.refresh_neighbour_lists()
        assert node.in_neighbours == [0, 2]
        assert 2 in node.cache

    def test_load_state_row_keeps_garbage(self):
        """Theorems quantify over arbitrary states: loading must not
        sanitise (not even the diagonal — Lemma 1 is the computation's
        job)."""
        net, _alg = small_net()
        node = ProtocolNode(0, net)
        node.load_state_row([7, 7, 7])
        assert node.table == [7, 7, 7]


class TestAnnouncement:
    def test_value_object(self):
        a = Announcement(1, 2, 0, 5, 9)
        b = Announcement(1, 2, 0, 5, 9)
        assert a == b
        assert a.sender == 1 and a.receiver == 2
        assert a.gen_step == 9


class TestLinkConfig:
    def test_delay_sampling_within_bounds(self):
        cfg = LinkConfig(min_delay=0.5, max_delay=2.5)
        rng = random.Random(0)
        for _ in range(200):
            d = cfg.sample_delay(rng)
            assert 0.5 <= d <= 2.5

    def test_defaults_are_reliable(self):
        cfg = LinkConfig()
        assert cfg.loss == 0.0 and cfg.duplicate == 0.0 and not cfg.fifo

    def test_hostile_profile(self):
        from repro.protocols import HOSTILE

        assert HOSTILE.loss > 0 and HOSTILE.duplicate > 0
