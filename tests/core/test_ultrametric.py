"""Unit tests for the ultrametric constructions (Sections 4.1 & 5.2).

Every lemma of the convergence proof is exercised on live data:
Lemma 5 (d is an ultrametric), Lemma 6 (σ strictly contracting),
Lemmas 8–10 (path-vector contraction), Theorem 4's precondition bundle.
"""

import random

import pytest

from repro.algebras import AddPaths, HopCountAlgebra, ShortestPathsAlgebra
from repro.core import (
    DistanceVectorUltrametric,
    Network,
    PathVectorUltrametric,
    RoutingState,
    check_bounded,
    check_contracting_on_fixed_point,
    check_strictly_contracting,
    check_strictly_contracting_on_orbits,
    check_ultrametric_axioms,
    enumerate_consistent_routes,
    iterate_sigma,
    random_state,
    route_heights,
    sigma,
    theorem4_preconditions,
)
from tests.conftest import hop_net, shortest_pv_net


class TestRouteHeights:
    """h(x) = |{y : x ≤ y}| (Section 4.1)."""

    def test_heights_on_chain(self):
        alg = HopCountAlgebra(4)
        heights, H = route_heights(alg, list(alg.routes()))
        # carrier is {0..4}: h(0) = 5 = H ... h(4) = 1
        assert H == 5
        assert heights[0] == 5
        assert heights[4] == 1
        assert heights[2] == 3

    def test_trivial_max_invalid_min(self):
        alg = HopCountAlgebra(9)
        heights, H = route_heights(alg, list(alg.routes()))
        assert heights[alg.trivial] == H
        assert heights[alg.invalid] == 1


class TestDVUltrametric:
    def setup_method(self):
        self.alg = HopCountAlgebra(5)
        self.metric = DistanceVectorUltrametric(self.alg)
        self.routes = list(self.alg.routes())

    def test_axioms_exhaustively(self):
        """Lemma 5 over the whole finite carrier."""
        for outcome in check_ultrametric_axioms(self.metric, self.routes):
            assert outcome.holds, outcome

    def test_distance_formula(self):
        # d(x,y) = max(h(x), h(y)) when x != y
        assert self.metric.distance(0, 5) == self.metric.H
        assert self.metric.distance(4, 5) == self.metric.height(4)
        assert self.metric.distance(3, 3) == 0

    def test_bounded_by_H(self):
        assert check_bounded(self.metric, self.routes).holds
        assert self.metric.bound == self.metric.H == 6

    def test_rejects_infinite_algebra_without_carrier(self):
        with pytest.raises(ValueError):
            DistanceVectorUltrametric(ShortestPathsAlgebra())

    def test_explicit_carrier_for_infinite_algebra(self):
        alg = ShortestPathsAlgebra()
        metric = DistanceVectorUltrametric(alg, carrier=[0, 1, 2, alg.invalid])
        assert metric.H == 4
        assert metric.distance(1, 2) == metric.height(1)

    def test_unknown_route_raises(self):
        with pytest.raises(KeyError):
            self.metric.height(77)

    def test_state_distance_is_max_over_entries(self):
        X = RoutingState.filled(5, 2)
        Y = RoutingState([[5, 0], [5, 5]])
        # only entry (0,1) differs: d(5, 0) = h(0) = H
        assert self.metric.state_distance(X, Y) == self.metric.H
        assert self.metric.state_distance(X, X) == 0


class TestLemma6StrictContraction:
    """Strictly increasing (finite) ⇒ σ strictly contracting over D."""

    def test_on_random_states(self):
        net = hop_net(4, bound=8)
        metric = DistanceVectorUltrametric(net.algebra)
        rng = random.Random(3)
        states = [random_state(net.algebra, 4, rng) for _ in range(10)]
        assert check_strictly_contracting(metric, net, states).holds

    def test_orbit_contraction_follows(self):
        net = hop_net(5, bound=10)
        metric = DistanceVectorUltrametric(net.algebra)
        rng = random.Random(4)
        states = [random_state(net.algebra, 5, rng) for _ in range(10)]
        assert check_strictly_contracting_on_orbits(metric, net, states).holds

    def test_contraction_fails_for_non_strict_algebra(self):
        """Negative control: widest paths (increasing, NOT strict) admits
        states where σ does not contract — the Theorem 7 hypothesis is
        load-bearing."""
        from repro.algebras import BoundedWidestPathsAlgebra

        alg = BoundedWidestPathsAlgebra(max_capacity=3)
        inv, triv = alg.invalid, alg.trivial
        net = Network(alg, 3)          # line 0 - 1 - 2, capacity 3
        for (i, j) in [(0, 1), (1, 0), (1, 2), (2, 1)]:
            net.set_edge(i, j, alg.edge(3))
        metric = DistanceVectorUltrametric(alg)
        # X and Y disagree only on node 1's route to 2 (both below the
        # cap, so min(3, ·) transports the disagreement verbatim to
        # node 0 — the distance does not shrink).
        X = RoutingState([[triv, inv, inv], [inv, triv, 2], [inv, inv, triv]])
        Y = RoutingState([[triv, inv, inv], [inv, triv, 1], [inv, inv, triv]])
        out = check_strictly_contracting(metric, net, [X, Y])
        assert not out.holds


class TestPVUltrametric:
    def setup_method(self):
        self.net = shortest_pv_net(4, seed=2)
        self.alg = self.net.algebra
        self.metric = PathVectorUltrametric(self.net)
        self.sc = enumerate_consistent_routes(self.alg, self.net)

    def test_axioms_on_consistent_routes(self):
        for outcome in check_ultrametric_axioms(self.metric, self.sc):
            assert outcome.holds, outcome

    def test_axioms_with_inconsistent_routes(self):
        rng = random.Random(5)
        routes = list(self.sc[:6])
        routes += [self.alg.sample_route(rng) for _ in range(6)]
        for outcome in check_ultrametric_axioms(self.metric, routes):
            assert outcome.holds, outcome

    def test_consistent_height_range(self):
        """1 = h(∞̄) ≤ h_c(x) ≤ h_c(0̄) = H_c."""
        assert self.metric.consistent_height(self.alg.invalid) == 1
        assert self.metric.consistent_height(self.alg.trivial) == self.metric.H_c
        for r in self.sc:
            h = self.metric.consistent_height(r)
            assert 1 <= h <= self.metric.H_c

    def test_inconsistent_height(self):
        """h_i(x) = (n+1) - length(path(x)) for inconsistent x, 1 else."""
        ghost = (999, (3, 2, 1, 0))     # inconsistent: wrong value
        assert not self.metric.is_consistent(ghost)
        assert self.metric.inconsistent_height(ghost) == (4 + 1) - 3
        assert self.metric.inconsistent_height(self.alg.trivial) == 1

    def test_inconsistent_distance_dominates_consistent(self):
        """The H_c offset: any inconsistent disagreement is further than
        every consistent one (Section 5.2's design requirement)."""
        ghost = (999, (3, 2, 1, 0))
        d_incons = self.metric.distance(ghost, self.alg.trivial)
        for x in self.sc:
            for y in self.sc:
                if not self.alg.equal(x, y):
                    assert self.metric.distance(x, y) < d_incons

    def test_bound(self):
        assert self.metric.bound == self.metric.H_c + self.net.n + 1

    def test_consistent_height_unknown_route_raises(self):
        with pytest.raises(KeyError):
            self.metric.consistent_height((123456, (1, 0)))


class TestLemma9And10:
    """PV contraction on orbits and on the fixed point."""

    def test_strictly_contracting_on_orbits(self):
        net = shortest_pv_net(4, seed=3)
        metric = PathVectorUltrametric(net)
        rng = random.Random(6)
        states = [random_state(net.algebra, 4, rng) for _ in range(8)]
        out = check_strictly_contracting_on_orbits(metric, net, states)
        assert out.holds, out

    def test_contracting_on_fixed_point(self):
        net = shortest_pv_net(4, seed=4)
        metric = PathVectorUltrametric(net)
        alg = net.algebra
        fp = iterate_sigma(net, RoutingState.identity(alg, 4)).state
        rng = random.Random(7)
        states = [random_state(alg, 4, rng) for _ in range(8)]
        out = check_contracting_on_fixed_point(metric, net, fp, states,
                                               strict=False)
        assert out.holds, out

    def test_fixed_point_is_consistent(self):
        """Lemma 10's key step: X* cannot contain inconsistent routes."""
        net = shortest_pv_net(4, seed=5)
        metric = PathVectorUltrametric(net)
        fp = iterate_sigma(
            net, RoutingState.identity(net.algebra, net.n)).state
        for (_i, _j, r) in fp.entries():
            assert metric.is_consistent(r)


class TestTheorem4Bundle:
    def test_all_preconditions_hold_for_hop_count(self):
        net = hop_net(4, bound=6)
        metric = DistanceVectorUltrametric(net.algebra)
        rng = random.Random(8)
        states = [random_state(net.algebra, 4, rng) for _ in range(6)]
        routes = list(net.algebra.routes())
        checks = theorem4_preconditions(metric, net, states, routes)
        for c in checks:
            assert c.holds, c
