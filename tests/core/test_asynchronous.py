"""Unit tests for δ (Section 3.1): recursion, recovery of σ, convergence."""

import pytest

from repro.core import (
    FixedDelaySchedule,
    RandomSchedule,
    RoundRobinSchedule,
    RoutingState,
    SynchronousSchedule,
    absolute_convergence_experiment,
    delta_run,
    delta_step,
    is_stable,
    iterate_sigma,
    random_state,
    sigma,
    synchronous_fixed_point,
)
from tests.conftest import finite_net, hop_net


class TestDeltaRecoversSigma:
    """With α(t) = V and β(t,i,j) = t-1, δ is exactly σ (Section 3.1)."""

    def test_stepwise_equality(self):
        net = hop_net(4)
        alg = net.algebra
        sched = SynchronousSchedule(4)
        X = RoutingState.identity(alg, 4)
        history = [X]
        sigma_state = X
        for t in range(1, 8):
            history.append(delta_step(net, sched, history, t))
            sigma_state = sigma(net, sigma_state)
            assert history[t].equals(sigma_state, alg)


class TestDeltaMechanics:
    def test_inactive_nodes_keep_their_rows(self):
        net = hop_net(4)
        alg = net.algebra
        sched = RoundRobinSchedule(4)   # only node (t-1) % n activates
        X = RoutingState.filled(9, 4)
        step1 = delta_step(net, sched, [X], 1)
        # node 0 activated, others untouched
        assert step1.row(1) == X.row(1)
        assert step1.row(2) == X.row(2)
        assert step1.get(0, 0) == alg.trivial

    def test_delta_uses_historic_states(self):
        """With delay d, activations at t read states from t - d."""
        net = hop_net(3)
        alg = net.algebra
        sched = FixedDelaySchedule(3, delay=2)
        X0 = RoutingState.identity(alg, 3)
        history = [X0]
        for t in range(1, 4):
            history.append(delta_step(net, sched, history, t))
        # at t=1 and t=2, reads clamp to the initial state, so both
        # steps recompute from X0 and agree
        assert history[1].equals(history[2], alg)


class TestDeltaConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_to_sync_fixed_point(self, seed):
        net = hop_net(4)
        alg = net.algebra
        fp = synchronous_fixed_point(net)
        res = delta_run(net, RandomSchedule(4, seed=seed),
                        RoutingState.identity(alg, 4))
        assert res.converged
        assert res.state.equals(fp, alg)
        assert is_stable(net, res.state)

    def test_converged_at_is_consistent(self):
        net = hop_net(4)
        res = delta_run(net, RandomSchedule(4, seed=5),
                        RoutingState.filled(net.algebra.invalid, 4))
        assert res.converged
        assert res.converged_at is not None
        assert res.converged_at <= res.steps

    def test_history_kept_on_request(self):
        net = hop_net(3)
        res = delta_run(net, SynchronousSchedule(3),
                        RoutingState.identity(net.algebra, 3),
                        keep_history=True)
        assert res.history is not None
        assert len(res.history) == res.steps + 1

    def test_fixed_point_accessor_raises_on_divergence(self):
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        res = delta_run(net, SynchronousSchedule(net.n), stale, max_steps=40)
        assert not res.converged
        with pytest.raises(ValueError):
            _ = res.fixed_point


class TestAbsoluteConvergenceExperiment:
    def test_positive_case(self):
        net = finite_net(4, levels=6, seed=1)
        starts = [RoutingState.identity(net.algebra, 4),
                  RoutingState.filled(net.algebra.invalid, 4),
                  RoutingState.filled(3, 4)]
        schedules = [SynchronousSchedule(4), RoundRobinSchedule(4),
                     RandomSchedule(4, seed=9)]
        report = absolute_convergence_experiment(net, starts, schedules)
        assert report.absolute, f"{len(report.distinct_fixed_points)} FPs"
        assert report.runs == 9
        assert report.max_steps >= 1
        assert report.mean_steps > 0

    def test_empty_report_statistics(self):
        from repro.core.asynchronous import AbsoluteConvergenceReport

        r = AbsoluteConvergenceReport(0, True, [], [])
        assert r.max_steps == 0
        assert r.mean_steps == 0.0


class TestRandomState:
    def test_entries_come_from_sampler(self, rng):
        net = hop_net(4)
        X = random_state(net.algebra, 4, rng)
        carrier = set(net.algebra.routes())
        for (_i, _j, r) in X.entries():
            assert r in carrier

    def test_custom_sampler(self, rng):
        X = random_state(None, 3, rng, sampler=lambda r: 42)
        assert all(v == 42 for (_i, _j, v) in X.entries())
