"""Differential oracle: naive vs incremental vs vectorized vs parallel
vs batched.

An engine's speedup only counts if its compressed/sharded/stacked
iteration reaches exactly the reference fixed points, so this module
holds every rung of the five-engine ladder to *observational identity*:
identical per-round lockstep states, identical fixed points and round
counts for σ, and identical histories/convergence times for δ — across
every shipped finite algebra, two non-finite controls (which must fall
back, not diverge), and random-gnp / chain / gadget topology families.

The parallel engine is exercised with an explicit ``workers=2`` pool
(auto mode would decline these small nets and single-CPU CI hosts —
exactly the fallback it is supposed to take); one pool is shared across
the lockstep and δ phases of each oracle call and torn down in a
``finally``, while the σ fixed-point phase goes through the public
``iterate_sigma(engine="parallel")`` selector so the dispatch path is
covered too.  Parallel δ runs through the *windowed* IPC protocol at
its default window, plus an explicit ``window=1`` run (the per-step
protocol) on the first schedule to pin both wire formats to the same
results.  The batched engine is exercised per schedule through the
``delta_run(engine="batched")`` selector (the B = 1 grid) *and* as one
multi-trial ``delta_grid`` over every schedule at once — each trial of
the grid must match the strict literal recursion for its schedule.

``assert_engines_agree`` is the reusable oracle; other test modules and
the benchmark harness lean on the same contract.  The ``--engine``
pytest option (see ``tests/conftest.py``) restricts the per-engine
parametrised tests to one engine for CI sharding — ``parallel``
included; ``-m slow`` runs the scaled-up sizes.
"""

import random

import pytest

from repro.algebras import (
    BGPLiteAlgebra,
    BoundedStratifiedAlgebra,
    FiniteLevelAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
    good_gadget,
    increasing_disagree,
)
from repro.algebras.bgplite import random_policy
from repro.core import (
    ENGINES,
    AdversarialStaleSchedule,
    BatchedVectorizedEngine,
    FixedDelaySchedule,
    ParallelVectorizedEngine,
    RandomSchedule,
    RoundRobinSchedule,
    RoutingState,
    SynchronousSchedule,
    VectorizedEngine,
    delta_run_parallel,
    sigma,
    sigma_propagate,
    sigma_with_dirty,
    supports_parallel,
    supports_vectorized,
)
from repro.session import EngineSpec, RoutingSession
from repro.topologies import erdos_renyi, line, uniform_weight_factory

pytestmark = pytest.mark.engine_matrix


# ----------------------------------------------------------------------
# Network families: (algebra × topology) builders, each taking a size.
# ----------------------------------------------------------------------


def _hop(n, seed=1):
    alg = HopCountAlgebra(16)
    return erdos_renyi(alg, n, 0.3, uniform_weight_factory(alg, 1, 3),
                       seed=seed)


def _hop_chain(n, seed=1):
    alg = HopCountAlgebra(32)
    return line(alg, n, uniform_weight_factory(alg, 1, 2), seed=seed)


def _finite_chain_alg(n, seed=2):
    alg = FiniteLevelAlgebra(7)
    return erdos_renyi(alg, n, 0.3,
                       lambda rng, _i, _j: alg.random_strict_edge(rng),
                       seed=seed)


def _stratified(n, seed=3):
    alg = BoundedStratifiedAlgebra(max_level=3, max_distance=10)
    return erdos_renyi(alg, n, 0.3,
                       lambda rng, _i, _j: alg.sample_edge_function(rng),
                       seed=seed)


def _shortest(n, seed=4):
    alg = ShortestPathsAlgebra()
    return erdos_renyi(alg, n, 0.3, uniform_weight_factory(alg, 1, 9),
                       seed=seed)


def _bgplite(n, seed=5):
    alg = BGPLiteAlgebra(n_nodes=n)

    def factory(rng, i, j):
        pol = random_policy(rng, alg.community_universe, n,
                            allow_reject=False)
        return alg.edge(i, j, pol)

    return erdos_renyi(alg, n, 0.3, factory, seed=seed)


#: family name → builder(n).  Gadgets have fixed sizes; the size
#: argument is ignored there so they slot into the same matrix.
FAMILIES = {
    "gnp/hop-count": _hop,
    "chain/hop-count": _hop_chain,
    "gnp/finite-chain": _finite_chain_alg,
    "gnp/stratified-bounded": _stratified,
    "gnp/shortest-paths": _shortest,
    "gnp/bgplite": _bgplite,
    "gadget/spp-good": lambda n, seed=0: good_gadget(),
    "gadget/spp-increasing-disagree": lambda n, seed=0: increasing_disagree(),
}

#: families whose algebra must vectorize (the rest must fall back)
FINITE_FAMILIES = frozenset({
    "gnp/hop-count", "chain/hop-count", "gnp/finite-chain",
    "gnp/stratified-bounded",
})


def _schedules(n, seed=0):
    return [
        SynchronousSchedule(n),
        RoundRobinSchedule(n),
        FixedDelaySchedule(n, delay=3),
        AdversarialStaleSchedule(n, max_delay=5, burst=2),
        RandomSchedule(n, seed=seed + 8, max_delay=4),
    ]


# ----------------------------------------------------------------------
# The reusable oracle
# ----------------------------------------------------------------------


#: extra spec kwargs per engine: the parallel engine gets an explicit
#: 2-worker pool, because auto mode would (correctly) decline the
#: oracle's small nets and any single-CPU CI host; the remote engine
#: gets a 2-shard loopback TCP transport for the same reason.
ENGINE_KWARGS = {"parallel": {"workers": 2},
                 "remote": {"remote_workers": 2}}


def engine_session(net, engine) -> RoutingSession:
    """A session pinned to one ladder rung (oracle pool sizing applied)."""
    return RoutingSession(net, EngineSpec(engine,
                                          **ENGINE_KWARGS.get(engine, {})))


def assert_engines_agree(net, schedules=(), lockstep_rounds=10,
                         max_rounds=500, max_steps=500):
    """Assert all engines are observationally identical on ``net``.

    Driven through :class:`repro.session.RoutingSession` — one session
    per ladder rung, so the dispatch path under test is exactly the
    public facade (and its capability negotiation), not the deprecated
    free functions:

    * per-round lockstep: naive σ vs incremental dirty-set propagation
      vs the vectorized single-round ``VectorizedEngine.sigma`` vs the
      pool-computed ``ParallelVectorizedEngine.sigma`` vs the batched
      tensor kernel applied to a stacked copy of the state;
    * σ fixed points: ``session.sigma()`` under every engine spec
      agrees on convergence, round count and final state;
    * δ oracle: for every schedule, ``strict`` (literal recursion) vs
      incremental vs vectorized vs parallel (windowed, plus a
      ``window=1`` per-step run on the first schedule) vs batched
      (B = 1) runs agree on convergence step and final state (one
      shared pool serves every schedule);
    * δ grid: one ``BatchedVectorizedEngine.delta_grid`` over *all*
      schedules at once — every trial must match its strict reference.

    Non-finite algebras exercise the documented fallback ladder: the
    vectorized, parallel and batched sessions must behave exactly like
    the incremental one (their resolutions record the skipped rungs).
    """
    alg = net.algebra
    start = RoutingState.identity(alg, net.n)
    vec = VectorizedEngine(net) if supports_vectorized(alg) else None
    bat = BatchedVectorizedEngine(net) if supports_vectorized(alg) else None
    par = (ParallelVectorizedEngine(net, workers=2)
           if supports_parallel(alg) else None)
    sessions = {e: engine_session(net, e) for e in ENGINES}
    try:
        # -- per-round lockstep --------------------------------------------
        naive = start
        inc, dirty = start, None
        for _ in range(lockstep_rounds):
            nxt = sigma(net, naive)
            if dirty is None:
                inc, dirty = sigma_with_dirty(net, inc)
            else:
                inc, dirty = sigma_propagate(net, inc, dirty)
            assert inc.equals(nxt, alg), "incremental σ diverged from naive"
            if vec is not None:
                assert vec.sigma(naive).equals(nxt, alg), \
                    "vectorized σ diverged from naive"
            if par is not None:
                assert par.sigma(naive).equals(nxt, alg), \
                    "parallel σ diverged from naive"
            if bat is not None:
                import numpy as np
                bat.refresh()
                stacked = np.stack([bat.encode_state(naive)] * 2)
                batch = bat._sigma_codes_batch(stacked)
                for b in range(2):
                    assert bat.decode_state(batch[b]).equals(nxt, alg), \
                        "batched σ diverged from naive"
            naive = nxt

        # -- σ fixed points ------------------------------------------------
        results = {e: sessions[e].sigma(start, max_rounds=max_rounds,
                                        detect_cycles=True)
                   for e in ENGINES}
        ref = results["naive"]
        for name, res in results.items():
            assert res.converged == ref.converged, name
            assert res.rounds == ref.rounds, name
            assert res.state.equals(ref.state, alg), name
            expected = name if name in ("naive", "incremental") else None
            if expected is not None:
                assert res.resolution.chosen == expected, name

        # -- δ oracle ------------------------------------------------------
        stricts = []
        for pos, sched in enumerate(schedules):
            strict = sessions["incremental"].delta(
                sched, start, max_steps=max_steps, strict=True).result
            stricts.append(strict)
            inc = sessions["incremental"].delta(
                sched, start, max_steps=max_steps).result
            vecr = sessions["vectorized"].delta(
                sched, start, max_steps=max_steps).result
            batr = sessions["batched"].delta(
                sched, start, max_steps=max_steps).result
            remr = sessions["remote"].delta(
                sched, start, max_steps=max_steps).result
            runs = [("incremental", inc), ("vectorized", vecr),
                    ("batched", batr), ("remote", remr)]
            if par is not None and sched.max_read_back() is not None:
                runs.append(("parallel-windowed",
                             delta_run_parallel(net, sched, start,
                                                max_steps=max_steps,
                                                engine=par)))
                if pos == 0:
                    # pin the per-step wire protocol to the same result
                    runs.append(("parallel-window-1",
                                 delta_run_parallel(net, sched, start,
                                                    max_steps=max_steps,
                                                    engine=par, window=1)))
            for name, res in runs:
                assert res.converged == strict.converged, (name, repr(sched))
                assert res.converged_at == strict.converged_at, \
                    (name, repr(sched))
                assert res.state.equals(strict.state, alg), (name, repr(sched))

        # -- δ grid (all schedules as one tensor workload) -----------------
        if bat is not None and schedules:
            grid = bat.delta_grid([(sched, start) for sched in schedules],
                                  max_steps=max_steps)
            for sched, res, strict in zip(schedules, grid, stricts):
                assert res.converged == strict.converged, repr(sched)
                assert res.converged_at == strict.converged_at, repr(sched)
                assert res.state.equals(strict.state, alg), repr(sched)
        return ref
    finally:
        for session in sessions.values():
            session.close()
        if par is not None:
            par.close()


# ----------------------------------------------------------------------
# The oracle across the (algebra × topology) matrix
# ----------------------------------------------------------------------


class TestOracleMatrix:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_small(self, family):
        net = FAMILIES[family](9)
        assert_engines_agree(net, schedules=_schedules(net.n),
                             max_steps=400)

    @pytest.mark.slow
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_scaled(self, family):
        net = FAMILIES[family](24, seed=11)
        assert_engines_agree(net, schedules=_schedules(net.n, seed=11),
                             lockstep_rounds=6, max_steps=900)

    @pytest.mark.parametrize("family", sorted(FINITE_FAMILIES))
    def test_finite_families_vectorize(self, family):
        assert supports_vectorized(FAMILIES[family](6).algebra)

    def test_lockstep_from_garbage_state(self):
        """The theorems quantify over arbitrary starts; so does the
        oracle."""
        net = _hop(10, seed=9)
        rng = random.Random(7)
        garbage = RoutingState.from_function(
            lambda i, j: net.algebra.sample_route(rng), net.n)
        alg = net.algebra
        vec = VectorizedEngine(net)
        state = garbage
        for _ in range(8):
            nxt = sigma(net, state)
            assert vec.sigma(state).equals(nxt, alg)
            state = nxt


class TestPerEngine:
    """Tests parametrised by the ``--engine`` fixture (CI sharding),
    driven through :class:`repro.session.RoutingSession`."""

    def test_reaches_reference_fixed_point(self, engine):
        net = _hop(10, seed=2)
        start = RoutingState.identity(net.algebra, net.n)
        with engine_session(net, engine) as s, \
                engine_session(net, "naive") as ref_s:
            res = s.sigma(start)
            ref = ref_s.sigma(start)
        assert res.converged and res.rounds == ref.rounds
        assert res.state.equals(ref.state, net.algebra)

    def test_delta_matches_strict(self, engine):
        net = _finite_chain_alg(8, seed=6)
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=4, max_delay=4)
        with engine_session(net, engine) as s:
            res = s.delta(sched, start, max_steps=400)
            ref = s.delta(sched, start, max_steps=400, strict=True)
        assert res.converged == ref.converged
        assert res.converged_at == ref.converged_at
        assert res.state.equals(ref.state, net.algebra)

    def test_mid_run_topology_change(self, engine):
        """Engine-agnostic mirror of the PR 1 cache-invalidation tests:
        reconverging after set_edge must see the new topology — through
        one session whose managed engines must re-snapshot."""
        net = _hop(10, seed=3)
        alg = net.algebra
        with engine_session(net, engine) as s:
            fp = s.sigma(RoutingState.identity(alg, net.n)).state
            net.set_edge(0, net.n - 1, alg.edge(1))
            net.set_edge(net.n - 1, 0, alg.edge(1))
            res = s.sigma(fp)
        with engine_session(net, "naive") as ref_s:
            ref = ref_s.sigma(fp)
        assert res.converged and res.rounds == ref.rounds
        assert res.state.equals(ref.state, alg)
