"""The session facade contract: negotiation, reports, shims, resources.

Four obligations pinned here:

1. **Deprecation shims are bit-identical** — every legacy free function
   (``iterate_sigma``, ``delta_run``, ``absolute_convergence_experiment``,
   ``run_absolute_convergence``, ``simulate``) must produce exactly the
   result of the session API it delegates to, and must warn exactly
   once per call.
2. **Reason chains are exact** — for every (algebra × engine) pair of
   the oracle matrix the :class:`~repro.core.capabilities.EngineResolution`
   skip chain is asserted code-for-code, and ``strict=True`` raises
   :class:`~repro.core.capabilities.UnsupportedEngineError` where
   fallback used to be silent.
3. **Resources are managed** — the parallel pool a session builds is
   closed by the context manager; schedule compilation is cached.
4. **Metadata is recorded** — the
   :data:`~repro.core.schedule.RandomSchedule.SCHEDULE_SEED_VERSION`
   rides on δ/grid reports.
"""

import random
import warnings

import pytest

from repro.algebras import (
    BGPLiteAlgebra,
    BoundedStratifiedAlgebra,
    FiniteLevelAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
    good_gadget,
    increasing_disagree,
)
from repro.algebras.bgplite import random_policy
from repro.core import (
    ENGINES,
    RandomSchedule,
    RoutingState,
    Schedule,
    SynchronousSchedule,
    UnsupportedEngineError,
    absolute_convergence_experiment,
    delta_run,
    iterate_sigma,
    resolve_engine,
    supports_parallel,
    supports_vectorized,
)
from repro.analysis import run_absolute_convergence
from repro.protocols import LinkConfig, simulate
from repro.session import (
    EngineSpec,
    RoutingSession,
    schedule_seed_version,
)
from repro.topologies import erdos_renyi, line, uniform_weight_factory


# ----------------------------------------------------------------------
# The oracle matrix families (mirrors tests/core/test_engine_equivalence)
# ----------------------------------------------------------------------


def _hop(n=9, seed=1):
    alg = HopCountAlgebra(16)
    return erdos_renyi(alg, n, 0.3, uniform_weight_factory(alg, 1, 3),
                       seed=seed)


def _hop_chain(n=9, seed=1):
    alg = HopCountAlgebra(32)
    return line(alg, n, uniform_weight_factory(alg, 1, 2), seed=seed)


def _finite_chain(n=9, seed=2):
    alg = FiniteLevelAlgebra(7)
    return erdos_renyi(alg, n, 0.3,
                       lambda rng, _i, _j: alg.random_strict_edge(rng),
                       seed=seed)


def _stratified(n=9, seed=3):
    alg = BoundedStratifiedAlgebra(max_level=3, max_distance=10)
    return erdos_renyi(alg, n, 0.3,
                       lambda rng, _i, _j: alg.sample_edge_function(rng),
                       seed=seed)


def _shortest(n=9, seed=4):
    alg = ShortestPathsAlgebra()
    return erdos_renyi(alg, n, 0.3, uniform_weight_factory(alg, 1, 9),
                       seed=seed)


def _bgplite(n=9, seed=5):
    alg = BGPLiteAlgebra(n_nodes=n)

    def factory(rng, i, j):
        pol = random_policy(rng, alg.community_universe, n,
                            allow_reject=False)
        return alg.edge(i, j, pol)

    return erdos_renyi(alg, n, 0.3, factory, seed=seed)


FAMILIES = {
    "gnp/hop-count": _hop,
    "chain/hop-count": _hop_chain,
    "gnp/finite-chain": _finite_chain,
    "gnp/stratified-bounded": _stratified,
    "gnp/shortest-paths": _shortest,
    "gnp/bgplite": _bgplite,
    "gadget/spp-good": lambda: good_gadget(),
    "gadget/spp-increasing-disagree": lambda: increasing_disagree(),
}


class _UnboundedSchedule(Schedule):
    """Synchronous-looking schedule that declares no staleness bound."""

    def alpha(self, t):
        return frozenset(range(self.n))

    def beta(self, t, i, j):
        return t - 1


def assert_one_warning(record):
    dep = [w for w in record if issubclass(w.category, DeprecationWarning)]
    assert len(dep) == 1, \
        f"expected exactly one DeprecationWarning, saw {len(dep)}"


def shim_call(fn, *args, **kwargs):
    """Call a legacy shim asserting it warns exactly once."""
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = fn(*args, **kwargs)
    assert_one_warning(record)
    return result


# ----------------------------------------------------------------------
# 1. Shim equivalence (bit-identical + warns exactly once)
# ----------------------------------------------------------------------


class TestShimEquivalence:
    @pytest.mark.parametrize("build", [_hop, _shortest],
                             ids=["finite", "non-finite"])
    @pytest.mark.parametrize("rung", ENGINES)
    def test_iterate_sigma(self, build, rung):
        net = build()
        start = RoutingState.identity(net.algebra, net.n)
        workers = 2 if rung == "parallel" else None
        legacy = shim_call(iterate_sigma, net, start, engine=rung,
                           workers=workers, keep_trajectory=True)
        with RoutingSession(net, EngineSpec(rung, workers=workers)) as s:
            report = s.sigma(start, keep_trajectory=True)
        assert legacy.converged == report.converged
        assert legacy.rounds == report.rounds
        assert legacy.state.equals(report.state, net.algebra)
        assert len(legacy.trajectory) == len(report.trajectory)
        for a, b in zip(legacy.trajectory, report.trajectory):
            assert a.equals(b, net.algebra)

    @pytest.mark.parametrize("build", [_finite_chain, _bgplite],
                             ids=["finite", "non-finite"])
    @pytest.mark.parametrize("mode", ["default", "strict", "keep_history"])
    def test_delta_run(self, build, mode):
        net = build()
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=7, max_delay=4)
        kwargs = {"strict": mode == "strict",
                  "keep_history": mode == "keep_history"}
        legacy = shim_call(delta_run, net, sched, start, max_steps=300,
                           **kwargs)
        with RoutingSession(net) as s:
            report = s.delta(sched, start, max_steps=300, **kwargs)
        assert legacy.converged == report.converged
        assert legacy.converged_at == report.converged_at
        assert legacy.steps == report.steps
        assert legacy.state.equals(report.state, net.algebra)
        assert legacy.history_retained == report.history_retained
        if mode == "keep_history":
            assert len(legacy.history) == len(report.history)

    @pytest.mark.parametrize("rung", ENGINES)
    def test_absolute_convergence_experiment(self, rung):
        net = _hop(8, seed=3)
        rng = random.Random(0)
        from repro.core import random_state
        starts = [RoutingState.identity(net.algebra, net.n),
                  random_state(net.algebra, net.n, rng)]
        schedules = [SynchronousSchedule(net.n),
                     RandomSchedule(net.n, seed=2, max_delay=3)]
        workers = 2 if rung == "parallel" else None
        legacy = shim_call(absolute_convergence_experiment, net, starts,
                           schedules, max_steps=400, engine=rung,
                           workers=workers)
        with RoutingSession(net, EngineSpec(rung, workers=workers)) as s:
            grid = s.delta_grid(
                [(sched, start) for start in starts for sched in schedules],
                max_steps=400)
        assert legacy.runs == grid.runs
        assert legacy.all_converged == grid.all_converged
        assert legacy.convergence_steps == grid.convergence_steps
        assert len(legacy.distinct_fixed_points) == \
            len(grid.distinct_fixed_points)
        for a, b in zip(legacy.distinct_fixed_points,
                        grid.distinct_fixed_points):
            assert a.equals(b, net.algebra)

    def test_run_absolute_convergence(self):
        net = _hop(7, seed=5)
        legacy = shim_call(run_absolute_convergence, net, n_starts=2,
                           seed=1, max_steps=400)
        with RoutingSession(net) as s:
            report = s.converges(n_starts=2, seed=1, max_steps=400)
        assert legacy.runs == report.grid.runs
        assert legacy.all_converged == report.grid.all_converged
        assert legacy.convergence_steps == report.grid.convergence_steps
        assert legacy.absolute == report.absolute

    def test_simulate(self):
        net = _hop(6, seed=8)
        cfg = LinkConfig(min_delay=0.2, max_delay=2.0, loss=0.1,
                         duplicate=0.05)
        legacy = shim_call(simulate, net, seed=4, link_config=cfg,
                           refresh_interval=5.0, quiet_period=20.0)
        with RoutingSession(net) as s:
            report = s.simulate(seed=4, link_config=cfg,
                                refresh_interval=5.0, quiet_period=20.0)
        assert legacy.converged == report.converged
        assert legacy.final_state.equals(report.final_state, net.algebra)
        assert legacy.stats.as_dict() == report.stats.as_dict()
        assert legacy.convergence_time == report.convergence_time


# ----------------------------------------------------------------------
# 2. Exact reason chains across the oracle matrix
# ----------------------------------------------------------------------


def expected_sigma_chain(net, engine):
    """The exact (rung, code) skip chain the resolver must produce for
    a σ request with an explicit 2-worker pool."""
    finite = supports_vectorized(net.algebra)
    shm = supports_parallel(net.algebra) if finite else None
    if engine in ("naive", "incremental"):
        return [], engine
    if finite:
        if engine == "remote":
            # this matrix configures no remote transport, so the remote
            # rung always skips with its machine-readable code and the
            # ladder continues at batched
            return [("remote", "no-remote-endpoints")], "batched"
        if engine == "parallel" and not shm:
            return [("parallel", "no-shared-memory")], "vectorized"
        if engine == "batched" and not shm:
            return [], "batched"
        return [], engine
    ladder = {"vectorized": ["vectorized"],
              "parallel": ["parallel", "vectorized"],
              "batched": ["batched", "parallel", "vectorized"],
              "remote": ["remote", "batched", "parallel",
                         "vectorized"]}[engine]
    return [(rung, "no-finite-encoding") for rung in ladder], "incremental"


class TestReasonChains:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("rung", ENGINES)
    def test_sigma_chain_exact(self, family, rung):
        net = FAMILIES[family]()
        skips, chosen = expected_sigma_chain(net, rung)
        res = resolve_engine(net, rung, "sigma", workers=2)
        assert res.reason_codes() == skips, (family, rung)
        assert res.chosen == chosen, (family, rung)
        assert res.requested == rung
        assert res.fell_back == bool(skips)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("rung", ENGINES)
    def test_strict_raises_exactly_where_fallback_was_silent(self, family,
                                                             rung):
        net = FAMILIES[family]()
        skips, chosen = expected_sigma_chain(net, rung)
        if chosen == rung:
            res = resolve_engine(net, rung, "sigma", workers=2,
                                 strict=True)
            assert res.chosen == rung
        else:
            with pytest.raises(UnsupportedEngineError) as exc:
                resolve_engine(net, rung, "sigma", workers=2, strict=True)
            assert exc.value.resolution.reason_codes() == skips

    def test_auto_never_raises(self):
        for family in FAMILIES:
            net = FAMILIES[family]()
            res = resolve_engine(net, "auto", "sigma", strict=True)
            assert res.chosen in ENGINES
            # oracle nets are far below PARALLEL_MIN_N, so for finite
            # algebras auto always skips the parallel rung for one of
            # the two sizing reasons; non-finite ones fail the
            # capability check first
            par = [s for s in res.skipped if s.rung == "parallel"]
            if par and supports_vectorized(net.algebra):
                assert par[0].code in ("auto-single-cpu", "below-min-n")
            elif par:
                assert par[0].code in ("no-finite-encoding",
                                       "no-shared-memory")

    def test_delta_policy_chains(self):
        net = _hop()
        sched = _UnboundedSchedule(net.n)
        assert sched.max_read_back() is None
        res = resolve_engine(net, "batched", "delta", workers=2,
                             schedule=sched)
        assert res.reason_codes() == [("batched", "unbounded-schedule"),
                                      ("parallel", "unbounded-schedule")]
        assert res.chosen == "vectorized"

        bounded = SynchronousSchedule(net.n)
        res = resolve_engine(net, "parallel", "delta", workers=2,
                             schedule=bounded, keep_history=True)
        assert res.reason_codes() == [("parallel", "keep-history")]
        assert res.chosen == "vectorized"

        res = resolve_engine(net, "batched", "delta", workers=2,
                             schedule=bounded, literal=True)
        assert res.reason_codes() == [
            ("batched", "literal-history"), ("parallel", "literal-history"),
            ("vectorized", "literal-history"),
            ("incremental", "literal-history")]
        assert res.chosen == "naive"

    def test_worker_sizing_chain(self):
        net = _hop()
        res = resolve_engine(net, "parallel", "sigma", workers=1)
        assert res.reason_codes()[0] == ("parallel", "workers-lt-2")
        with pytest.raises(UnsupportedEngineError):
            resolve_engine(net, "parallel", "sigma", workers=1, strict=True)

    def test_stability_chain(self):
        net = _hop()
        res = resolve_engine(net, "batched", "stability", workers=2)
        assert res.reason_codes()[0] == ("batched", "single-stability-check")

    def test_unknown_engine_rejected(self):
        net = _hop()
        with pytest.raises(ValueError):
            resolve_engine(net, "quantum", "sigma")
        with pytest.raises(ValueError):
            EngineSpec("quantum")
        with pytest.raises(ValueError):
            EngineSpec(history="ring-of-power")

    def test_resolution_rides_on_reports(self):
        net = _shortest()
        with RoutingSession(net, EngineSpec("batched")) as s:
            report = s.sigma()
        assert report.resolution.chosen == "incremental"
        assert report.resolution.reason_codes() == [
            ("batched", "no-finite-encoding"),
            ("parallel", "no-finite-encoding"),
            ("vectorized", "no-finite-encoding")]

    def test_strict_session_raises_on_entry(self):
        net = _shortest()
        with RoutingSession(net, EngineSpec("vectorized",
                                            strict=True)) as s:
            with pytest.raises(UnsupportedEngineError):
                s.sigma()

    def test_capabilities_advertised_on_classes(self):
        from repro.core import (BatchedVectorizedEngine,
                                ParallelVectorizedEngine, VectorizedEngine)
        assert VectorizedEngine.capabilities.requires_finite_algebra
        assert ParallelVectorizedEngine.capabilities.requires_shared_memory
        assert ParallelVectorizedEngine.capabilities.min_n > 0
        assert BatchedVectorizedEngine.capabilities.supports_batched_trials
        assert not BatchedVectorizedEngine.capabilities.\
            supports_single_stability_check


# ----------------------------------------------------------------------
# 3. Managed resources
# ----------------------------------------------------------------------


class TestManagedResources:
    @pytest.mark.parallel
    def test_pool_closed_on_exit(self):
        net = _hop(8)
        with RoutingSession(net, EngineSpec("parallel", workers=2)) as s:
            report = s.sigma()
            assert report.resolution.chosen == "parallel"
            pool = s._engines["parallel"]
            assert not pool.closed
            # a second call reuses the same pool
            s.sigma()
            assert s._engines["parallel"] is pool
        assert pool.closed

    @pytest.mark.parallel
    def test_pool_reused_across_delta_grid(self):
        net = _hop(8)
        sched = SynchronousSchedule(net.n)
        start = RoutingState.identity(net.algebra, net.n)
        with RoutingSession(net, EngineSpec("parallel", workers=2)) as s:
            s.delta_grid([(sched, start)] * 3, max_steps=120)
            pool = s._engines["parallel"]
            report = s.delta(sched, start, max_steps=120)
            assert s._engines["parallel"] is pool
            assert report.ipc_commands >= 1
            assert report.ipc_steps >= report.ipc_commands
        assert pool.closed

    def test_closed_session_refuses(self):
        net = _hop()
        s = RoutingSession(net)
        s.close()
        with pytest.raises(RuntimeError):
            s.sigma()

    def test_schedule_compile_cache(self):
        net = _hop()
        sched = RandomSchedule(net.n, seed=3, max_delay=3)
        with RoutingSession(net, EngineSpec("batched")) as s:
            comp1 = s.compile_schedule(sched, 200)
            comp2 = s.compile_schedule(sched, 150)
            assert comp1 is comp2          # horizon already covered
            comp3 = s.compile_schedule(sched, 500)
            assert comp3 is not comp1 and comp3.horizon >= 500

    def test_from_parts_shares_live_adjacency(self):
        net = _hop(6)
        with RoutingSession.from_parts(net.algebra, net.adjacency) as s:
            fp1 = s.sigma().state
            net.set_edge(0, 3, net.algebra.edge(1))
            net.set_edge(3, 0, net.algebra.edge(1))
            fp2 = s.sigma().state
        with RoutingSession(net) as ref:
            assert fp2.equals(ref.sigma().state, net.algebra)
        assert not fp1.equals(fp2, net.algebra)

    def test_batch_dtype_override(self):
        import numpy as np
        net = _hop(6)
        sched = RandomSchedule(net.n, seed=1, max_delay=3)
        start = RoutingState.identity(net.algebra, net.n)
        with RoutingSession(net, EngineSpec("batched")) as plain, \
                RoutingSession(net, EngineSpec(
                    "batched", batch_dtype="int32")) as wide:
            a = plain.delta(sched, start, max_steps=200)
            b = wide.delta(sched, start, max_steps=200)
            assert wide._engines["batched"]._batch_dtype == np.dtype("int32")
        assert a.converged == b.converged
        assert a.converged_at == b.converged_at
        assert a.state.equals(b.state, net.algebra)

    def test_batch_dtype_too_narrow_rejected(self):
        alg = HopCountAlgebra(300)       # carrier too big for int8
        net = line(alg, 4, uniform_weight_factory(alg, 1, 2), seed=0)
        with RoutingSession(net, EngineSpec("batched",
                                            batch_dtype="int8")) as s:
            with pytest.raises(ValueError):
                s.delta(SynchronousSchedule(net.n),
                        RoutingState.identity(alg, net.n), max_steps=50)


# ----------------------------------------------------------------------
# 4. Run-report metadata
# ----------------------------------------------------------------------


class TestReportMetadata:
    def test_schedule_seed_version_constant(self):
        assert RandomSchedule.SCHEDULE_SEED_VERSION == 2

    def test_delta_report_records_seed_version(self):
        net = _hop(6)
        with RoutingSession(net) as s:
            seeded = s.delta(RandomSchedule(net.n, seed=1, max_delay=3),
                             max_steps=200)
            structured = s.delta(SynchronousSchedule(net.n), max_steps=120)
        assert seeded.schedule_seed_version == 2
        assert seeded.metadata["schedule_seed_version"] == 2
        assert structured.schedule_seed_version is None

    def test_grid_report_records_seed_version(self):
        net = _hop(6)
        start = RoutingState.identity(net.algebra, net.n)
        with RoutingSession(net) as s:
            grid = s.delta_grid(
                [(RandomSchedule(net.n, seed=2, max_delay=3), start)],
                max_steps=200)
            plain = s.delta_grid([(SynchronousSchedule(net.n), start)],
                                 max_steps=120)
        assert grid.schedule_seed_version == 2
        assert grid.metadata["schedule_seed_version"] == 2
        assert plain.schedule_seed_version is None

    def test_seed_version_unwraps_compiled(self):
        from repro.core import CompiledSchedule
        sched = CompiledSchedule(RandomSchedule(5, seed=0, max_delay=2), 50)
        assert schedule_seed_version([sched]) == 2
        assert schedule_seed_version([SynchronousSchedule(5)]) is None

    def test_sigma_report_measures_churn(self):
        from repro.analysis import measure_sync
        finite, obj = _hop(7), _shortest(7)
        for net in (finite, obj):
            with RoutingSession(net) as s:
                report = s.sigma(measure_churn=True)
            measured = measure_sync(net)
            assert report.churn == measured.changed_entries
            assert report.rounds == measured.rounds

    def test_reports_carry_timing(self):
        net = _hop(6)
        with RoutingSession(net) as s:
            assert s.sigma().elapsed_s >= 0.0
            assert s.delta(SynchronousSchedule(net.n),
                           max_steps=60).elapsed_s >= 0.0

    def test_grid_strict_parallel_rejects_unbounded_trials(self):
        """Strict resolution covers per-trial delegation too: a grid on
        the parallel rung must not silently run an unbounded-schedule
        trial on the serial vectorized engine."""
        net = _hop(8)
        start = RoutingState.identity(net.algebra, net.n)
        sched = _UnboundedSchedule(net.n)
        with RoutingSession(net, EngineSpec("parallel", workers=2,
                                            strict=True)) as s:
            with pytest.raises(UnsupportedEngineError) as exc:
                s.delta_grid([(sched, start)], max_steps=100)
            assert ("parallel", "unbounded-schedule") in \
                exc.value.resolution.reason_codes()
            # bounded trials still run on the pool
            grid = s.delta_grid(
                [(SynchronousSchedule(net.n), start)], max_steps=120)
            assert grid.resolution.chosen == "parallel"

    def test_churn_respects_pinned_object_engine(self):
        """measure_churn must not override a spec pinned to an object
        rung with the vectorized fast path (the resolution would lie)."""
        net = _hop(7)
        with RoutingSession(net, EngineSpec("naive")) as s:
            report = s.sigma(measure_churn=True)
            assert report.resolution.chosen == "naive"
            assert "vectorized" not in s._engines
        with RoutingSession(net) as auto:
            fast = auto.sigma(measure_churn=True)
        assert fast.churn == report.churn   # both paths count the same

    def test_grid_honours_history_policy(self):
        """The spec's δ history policy applies to grids (and so to
        converges()), not just to single delta runs."""
        net = _hop(7)
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=2, max_delay=3)
        with RoutingSession(net, EngineSpec("auto",
                                            history="literal")) as s:
            grid = s.delta_grid([(sched, start)], max_steps=200)
        assert grid.resolution.chosen == "naive"
        assert all(code == "literal-history"
                   for _rung, code in grid.resolution.reason_codes())
        with RoutingSession(net, EngineSpec("batched",
                                            history="full")) as s:
            grid = s.delta_grid([(sched, start)], max_steps=200,
                                keep_results=True)
        assert grid.resolution.chosen == "vectorized"
        assert grid.resolution.reason_codes() == [
            ("batched", "keep-history"), ("parallel", "keep-history")]
        assert grid.results[0].history is not None

    def test_simulator_stability_resolution(self):
        from repro.protocols import Simulator
        net = _hop(6)
        sim = Simulator(net, engine="batched", workers=2)
        try:
            res = sim.stability_resolution()
            assert res.reason_codes()[0] == ("batched",
                                             "single-stability-check")
            assert res.chosen in ("parallel", "vectorized")
        finally:
            sim.close()
