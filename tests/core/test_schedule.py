"""Unit tests for Üresin–Dubois schedules (Section 3.1, axioms S1–S3)."""

import pytest

from repro.core import (
    AdversarialStaleSchedule,
    FixedDelaySchedule,
    RandomSchedule,
    RoundRobinSchedule,
    SynchronousSchedule,
    schedule_zoo,
)


ALL_SCHEDULES = [
    SynchronousSchedule(5),
    RoundRobinSchedule(5),
    FixedDelaySchedule(5, delay=3),
    RandomSchedule(5, seed=1),
    RandomSchedule(5, seed=2, activation_prob=0.1, max_delay=9),
    AdversarialStaleSchedule(5, max_delay=6, burst=2),
]


class TestAxioms:
    @pytest.mark.parametrize("sched", ALL_SCHEDULES,
                             ids=lambda s: type(s).__name__ + str(id(s) % 97))
    def test_admissible(self, sched):
        assert sched.is_admissible(horizon=300), sched.validate(300)

    @pytest.mark.parametrize("sched", ALL_SCHEDULES,
                             ids=lambda s: type(s).__name__ + str(id(s) % 97))
    def test_s2_beta_before_t(self, sched):
        for t in range(1, 60):
            for i in range(sched.n):
                for j in range(sched.n):
                    b = sched.beta(t, i, j)
                    assert 0 <= b < t

    @pytest.mark.parametrize("sched", ALL_SCHEDULES,
                             ids=lambda s: type(s).__name__ + str(id(s) % 97))
    def test_s1_every_node_activates(self, sched):
        seen = set()
        for t in range(1, 200):
            seen |= set(sched.alpha(t))
        assert seen == set(range(sched.n))


class TestSynchronousSchedule:
    def test_everyone_every_step(self):
        s = SynchronousSchedule(4)
        assert s.alpha(1) == frozenset({0, 1, 2, 3})
        assert s.beta(9, 2, 3) == 8


class TestRoundRobin:
    def test_cycles_through_nodes(self):
        s = RoundRobinSchedule(3)
        assert [sorted(s.alpha(t)) for t in (1, 2, 3, 4)] == \
            [[0], [1], [2], [0]]


class TestFixedDelay:
    def test_reads_delay_steps_back(self):
        s = FixedDelaySchedule(3, delay=4)
        assert s.beta(10, 0, 1) == 6
        assert s.beta(2, 0, 1) == 0   # clamped at the initial state

    def test_rejects_zero_delay(self):
        with pytest.raises(ValueError):
            FixedDelaySchedule(3, delay=0)


class TestRandomSchedule:
    def test_deterministic_in_seed(self):
        a = RandomSchedule(6, seed=42)
        b = RandomSchedule(6, seed=42)
        for t in range(1, 50):
            assert a.alpha(t) == b.alpha(t)
            assert a.beta(t, 1, 2) == b.beta(t, 1, 2)

    def test_beta_is_a_function(self):
        """β must return the same value when queried twice — the δ
        recursion re-reads it."""
        s = RandomSchedule(4, seed=7)
        assert s.beta(33, 2, 1) == s.beta(33, 2, 1)

    def test_different_seeds_differ(self):
        a = RandomSchedule(6, seed=1)
        b = RandomSchedule(6, seed=2)
        assert any(a.alpha(t) != b.alpha(t) for t in range(1, 50))

    def test_bounded_staleness(self):
        s = RandomSchedule(4, seed=3, max_delay=5)
        for t in range(1, 100):
            for i in range(4):
                for j in range(4):
                    assert t - s.beta(t, i, j) <= 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomSchedule(3, activation_prob=0.0)
        with pytest.raises(ValueError):
            RandomSchedule(3, max_delay=0)


class TestZoo:
    def test_zoo_is_populated_and_admissible(self):
        zoo = schedule_zoo(4)
        assert len(zoo) >= 8
        for s in zoo:
            assert s.n == 4
            assert s.is_admissible(horizon=200), (s, s.validate(200))

    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            SynchronousSchedule(0)
