"""Parallel-engine specifics: sharding, fallback ladder, and cleanup.

The observational-identity contract lives in the shared oracle
(``test_engine_equivalence.py``, which covers ``engine="parallel"``
lockstep σ, fixed points and δ-vs-strict across the algebra×topology
matrix).  This module covers what is unique to the process pool:

* worker/shared-memory lifecycle — segments and processes must be
  released on ``close()``, on garbage collection, and (the regression
  the engine is explicitly held to) when an exception escapes a run the
  driver started;
* topology-mutation invalidation: a shared engine must republish its
  edge-table snapshot to the workers when ``adjacency.version`` moves;
* the fallback ladder (`parallel_workers`) and the direct-construction
  error contract;
* ring-buffer staleness policing (schedules that read further back
  than they declared must fail loudly, like ``BoundedHistory``).

All pools are built with explicit tiny worker counts so the suite runs
(and actually exercises the pool) on single-CPU CI hosts.
"""

import gc
import random

import pytest

from repro.algebras import FiniteLevelAlgebra, HopCountAlgebra, \
    ShortestPathsAlgebra
from repro.core import (
    DELTA_WINDOW,
    FixedDelaySchedule,
    ParallelVectorizedEngine,
    RandomSchedule,
    RoutingState,
    UnsupportedAlgebraError,
    delta_run,
    delta_run_parallel,
    iterate_sigma,
    iterate_sigma_parallel,
    parallel_workers,
    supports_parallel,
)
from repro.core import parallel as parallel_mod
from repro.core.schedule import Schedule
from repro.topologies import erdos_renyi, uniform_weight_factory

pytestmark = [
    pytest.mark.parallel,
    pytest.mark.skipif(not supports_parallel(HopCountAlgebra(4)),
                       reason="no multiprocessing shared memory here"),
]


def _net(n=14, seed=1, bound=16):
    alg = HopCountAlgebra(bound)
    return erdos_renyi(alg, n, 0.3, uniform_weight_factory(alg, 1, 3),
                       seed=seed)


def _segment_names(engine):
    return [seg.name for seg in engine._res.segments]


def _assert_released(names, procs):
    from multiprocessing import shared_memory

    for name in names:
        with pytest.raises(FileNotFoundError):
            seg = shared_memory.SharedMemory(name=name)
            seg.close()                 # pragma: no cover - leak witness
    for proc in procs:
        assert not proc.is_alive()


class TestLifecycle:
    def test_close_releases_everything_and_is_idempotent(self):
        net = _net()
        eng = ParallelVectorizedEngine(net, workers=3)
        start = RoutingState.identity(net.algebra, net.n)
        eng.iterate(start)
        names, procs = _segment_names(eng), list(eng._res.procs)
        assert names and procs
        eng.close()
        eng.close()                      # second close must be a no-op
        assert eng.closed
        _assert_released(names, procs)
        with pytest.raises(RuntimeError):
            eng.iterate(start)           # a closed engine refuses to run

    def test_context_manager(self):
        net = _net()
        with ParallelVectorizedEngine(net, workers=2) as eng:
            res = eng.iterate(RoutingState.identity(net.algebra, net.n))
            names, procs = _segment_names(eng), list(eng._res.procs)
        assert res.converged
        _assert_released(names, procs)

    def test_finalizer_backstop_on_garbage_collection(self):
        net = _net()
        eng = ParallelVectorizedEngine(net, workers=2)
        eng.iterate(RoutingState.identity(net.algebra, net.n))
        names, procs = _segment_names(eng), list(eng._res.procs)
        del eng
        gc.collect()
        _assert_released(names, procs)

    def test_driver_cleans_up_when_sigma_run_raises(self, monkeypatch):
        """The regression: an exception escaping a driver-owned run must
        not leak workers or segments."""
        created = []
        original = parallel_mod.ParallelVectorizedEngine

        class Recording(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(parallel_mod, "ParallelVectorizedEngine",
                            Recording)
        net = _net()
        bad = RoutingState.filled(10 ** 9, net.n)   # outside the carrier
        with pytest.raises(UnsupportedAlgebraError):
            iterate_sigma_parallel(net, bad, workers=2)
        assert len(created) == 1
        assert created[0].closed
        _assert_released([], list(created[0]._res.procs))

    def test_driver_cleans_up_when_delta_schedule_raises(self, monkeypatch):
        created = []
        original = parallel_mod.ParallelVectorizedEngine

        class Recording(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(parallel_mod, "ParallelVectorizedEngine",
                            Recording)

        class Poisoned(RandomSchedule):
            def alpha(self, t):
                if t >= 3:
                    raise RuntimeError("schedule detonated")
                return super().alpha(t)

        net = _net()
        start = RoutingState.identity(net.algebra, net.n)
        with pytest.raises(RuntimeError, match="detonated"):
            delta_run_parallel(net, Poisoned(net.n, seed=1, max_delay=3),
                               start, max_steps=50, workers=2)
        assert len(created) == 1 and created[0].closed

    def test_worker_failure_is_relayed_and_pool_closed(self):
        """A failure inside a worker command must surface as a raised
        exception on the master (not a silent worker death) and leave
        no pool behind."""
        net = _net(10, seed=6)
        eng = ParallelVectorizedEngine(net, workers=2)
        eng.refresh()
        eng._load(eng.encode_state(RoutingState.identity(net.algebra,
                                                         net.n)))
        procs = list(eng._res.procs)
        # a window whose only step reads a ring that was never attached
        eng._broadcast(("delta", [(1, [(0, [99])])]))
        with pytest.raises(RuntimeError, match="failed on 'delta'"):
            eng._collect()
        assert eng.closed
        _assert_released([], procs)

    def test_shared_engine_survives_driver_calls(self):
        """Engines passed in by the caller are *not* closed by drivers."""
        net = _net()
        start = RoutingState.identity(net.algebra, net.n)
        with ParallelVectorizedEngine(net, workers=2) as eng:
            iterate_sigma_parallel(net, start, engine=eng)
            assert not eng.closed
            delta_run_parallel(net, RandomSchedule(net.n, seed=2, max_delay=3),
                               start, engine=eng)
            assert not eng.closed


class TestInvalidation:
    def test_set_edge_republishes_tables(self):
        net = _net(12, seed=3)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        with ParallelVectorizedEngine(net, workers=3) as eng:
            fp = eng.iterate(start).state
            net.set_edge(0, net.n - 1, alg.edge(1))
            net.set_edge(net.n - 1, 0, alg.edge(1))
            res = eng.iterate(fp)
            ref = iterate_sigma(net, fp, engine="naive")
            assert res.rounds == ref.rounds
            assert res.state.equals(ref.state, alg)

    def test_remove_edge_republishes_tables(self):
        net = _net(12, seed=4)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        with ParallelVectorizedEngine(net, workers=2) as eng:
            fp = eng.iterate(start).state
            removed = next(iter(net.present_edges()))
            net.remove_edge(*removed)
            res = eng.iterate(fp)
            ref = iterate_sigma(net, fp, engine="naive")
            assert res.rounds == ref.rounds
            assert res.state.equals(ref.state, alg)

    def test_mid_delta_topology_change_between_runs(self):
        net = _net(10, seed=5)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        sched = RandomSchedule(net.n, seed=6, max_delay=4)
        with ParallelVectorizedEngine(net, workers=2) as eng:
            first = eng.delta(sched, start, max_steps=400)
            net.set_edge(1, net.n - 1, alg.edge(2))
            second = eng.delta(sched, first.state, max_steps=400)
            ref = delta_run(net, sched, first.state, max_steps=400,
                            strict=True)
            assert second.converged == ref.converged
            assert second.converged_at == ref.converged_at
            assert second.state.equals(ref.state, alg)


class TestFallbackLadder:
    def test_parallel_workers_resolution(self):
        net = _net(12)
        assert parallel_workers(net, 1) is None          # explicit serial
        assert parallel_workers(net, 4) == 4             # explicit pool
        assert parallel_workers(net, 100) == net.n       # clamped to n
        sp = ShortestPathsAlgebra()
        infinite = erdos_renyi(sp, 12, 0.3,
                               uniform_weight_factory(sp, 1, 5), seed=1)
        assert parallel_workers(infinite, 4) is None     # no finite encoding

    def test_auto_mode_declines_tiny_problems(self):
        net = _net(parallel_mod.PARALLEL_MIN_N - 1)
        if (parallel_mod.os.cpu_count() or 1) >= 2:
            assert parallel_workers(net) is None
        big_enough = parallel_workers(net, 2)
        assert big_enough == 2           # explicit request still honoured

    def test_selector_falls_back_silently(self):
        sp = ShortestPathsAlgebra()
        net = erdos_renyi(sp, 10, 0.3, uniform_weight_factory(sp, 1, 5),
                          seed=2)
        start = RoutingState.identity(sp, net.n)
        res = iterate_sigma(net, start, engine="parallel", workers=4)
        ref = iterate_sigma(net, start, engine="naive")
        assert res.rounds == ref.rounds
        assert res.state.equals(ref.state, sp)

    def test_direct_construction_raises_for_nonfinite(self):
        sp = ShortestPathsAlgebra()
        net = erdos_renyi(sp, 8, 0.3, uniform_weight_factory(sp, 1, 5),
                          seed=3)
        with pytest.raises(UnsupportedAlgebraError):
            ParallelVectorizedEngine(net, workers=2)

    def test_direct_construction_rejects_single_worker(self):
        with pytest.raises(UnsupportedAlgebraError):
            ParallelVectorizedEngine(_net(8), workers=1)

    def test_delta_keep_history_delegates_to_vectorized(self):
        net = _net(10, seed=7)
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=8, max_delay=3)
        par = delta_run(net, sched, start, max_steps=300, engine="parallel",
                        workers=2, keep_history=True)
        vec = delta_run(net, sched, start, max_steps=300, engine="vectorized",
                        keep_history=True)
        assert par.history is not None and len(par.history) == \
            len(vec.history)
        for a, b in zip(par.history, vec.history):
            assert a.equals(b, net.algebra)


class TestSemantics:
    def test_sigma_and_stability_match_reference_on_garbage(self):
        net = _net(11, seed=9)
        alg = net.algebra
        rng = random.Random(13)
        from repro.core import sigma as sigma_ref

        with ParallelVectorizedEngine(net, workers=3) as eng:
            state = RoutingState.from_function(
                lambda i, j: alg.sample_route(rng), net.n)
            for _ in range(6):
                nxt = sigma_ref(net, state)
                assert eng.sigma(state).equals(nxt, alg)
                assert eng.is_stable(state) == state.equals(nxt, alg)
                state = nxt
            fixed = iterate_sigma(net, state, engine="naive").state
            assert eng.is_stable(fixed)

    def test_block_split_covers_all_columns(self):
        blocks = ParallelVectorizedEngine._split_columns(11, 3)
        assert blocks[0][0] == 0 and blocks[-1][1] == 11
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c and b > a
        assert sum(hi - lo for lo, hi in blocks) == 11

    def test_overdeclared_read_back_raises_lookup_error(self):
        """A schedule reaching further back than its declared bound must
        fail loudly (BoundedHistory parity), not read a recycled slot."""

        class Lying(Schedule):
            def alpha(self, t):
                return set(range(self.n))

            def beta(self, t, i, k):
                return max(0, t - 6)     # reads 6 back...

            def max_read_back(self):
                return 2                 # ...but declares 2

        net = _net(8, seed=10)
        start = RoutingState.identity(net.algebra, net.n)
        with pytest.raises(LookupError):
            delta_run_parallel(net, Lying(net.n), start, max_steps=60,
                               workers=2)

    def test_reads_slightly_past_declaration_match_serial(self):
        """BoundedHistory tolerates reads up to (declared bound + 2)
        before declaring eviction; the shared ring must tolerate — and
        compute identically on — exactly the same reads."""

        class Overreaching(Schedule):
            def alpha(self, t):
                return set(range(self.n)) if t % 2 else {t % self.n}

            def beta(self, t, i, k):
                return max(0, t - 4)     # 2 past the declared bound...

            def max_read_back(self):
                return 2                 # ...but within the +2 window

        net = _net(9, seed=12)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        ref = delta_run(net, Overreaching(net.n), start, max_steps=200)
        par = delta_run_parallel(net, Overreaching(net.n), start,
                                 max_steps=200, workers=2)
        assert par.converged == ref.converged
        assert par.converged_at == ref.converged_at
        assert par.state.equals(ref.state, alg)

    def test_negative_beta_raises_lookup_error(self):
        """A β that forgets the max(0, …) clamp (S2 violation) must not
        wrap the ring modulo into an arbitrary slot."""

        class Unclamped(Schedule):
            def alpha(self, t):
                return set(range(self.n))

            def beta(self, t, i, k):
                return t - 3             # goes negative at t = 1, 2

            def max_read_back(self):
                return 3

        net = _net(8, seed=10)
        start = RoutingState.identity(net.algebra, net.n)
        with pytest.raises(LookupError):
            delta_run_parallel(net, Unclamped(net.n), start, max_steps=60,
                               workers=2)

    def test_windowed_delta_bit_identical_across_window_sizes(self):
        """One command per window vs one per step must compute the same
        run — every window size, same converged_at, same fixed point."""
        net = _net(12, seed=14)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        sched = RandomSchedule(net.n, seed=15, max_delay=4)
        ref = delta_run(net, sched, start, max_steps=400, strict=True)
        with ParallelVectorizedEngine(net, workers=2) as eng:
            for window in (1, 2, 7, 16, 64):
                res = eng.delta(sched, start, max_steps=400, window=window)
                assert res.converged == ref.converged, window
                assert res.converged_at == ref.converged_at, window
                assert res.state.equals(ref.state, alg), window

    def test_windowed_delta_amortises_ipc_8x(self):
        """The ISSUE 4 acceptance point: at window=16 the per-step IPC
        command count drops ≥ 8× (vs the one-command-per-step protocol)
        on any run spanning at least a couple of windows."""
        net = _net(12, seed=16)
        start = RoutingState.identity(net.algebra, net.n)
        # a slow-converging schedule so the run spans many windows
        sched = RandomSchedule(net.n, seed=17, activation_prob=0.3,
                               max_delay=4)
        with ParallelVectorizedEngine(net, workers=2) as eng:
            res = eng.delta(sched, start, max_steps=600, window=16)
            assert res.converged
            assert eng.delta_ipc_steps >= 32, \
                "need a run long enough to amortise"
            ratio = eng.delta_ipc_steps / eng.delta_ipc_commands
            assert ratio >= 8.0, (eng.delta_ipc_steps,
                                  eng.delta_ipc_commands)
            # the default window is the amortising one
            assert DELTA_WINDOW >= 16
            eng.delta(sched, start, max_steps=600)
            assert eng.delta_ipc_steps / eng.delta_ipc_commands >= 8.0

    def test_windowed_delta_converges_mid_window_like_serial(self):
        """Convergence at a step that is not a window boundary must
        report the serial step/state (the master replays the counter
        over the per-step flags)."""
        net = _net(10, seed=18)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        sched = FixedDelaySchedule(net.n, delay=3)
        ref = delta_run(net, sched, start, max_steps=400, strict=True)
        assert ref.converged
        with ParallelVectorizedEngine(net, workers=2) as eng:
            # a window far larger than the whole run: everything happens
            # inside one command
            res = eng.delta(sched, start, max_steps=400, window=128)
            assert eng.delta_ipc_commands <= 2
            assert res.converged and res.converged_at == ref.converged_at
            assert res.steps == ref.steps
            assert res.state.equals(ref.state, alg)

    def test_window_does_not_evaluate_steps_past_convergence(self):
        """The per-step protocol never looks at schedule steps after
        the convergence point; a windowed run must not raise for a
        staleness violation located there (bit-identical contract)."""

        class LiesLate(Schedule):
            """Declares bound 1, reads 9 back — but only at t >= 60,
            far after the run below converges."""

            def alpha(self, t):
                return frozenset(range(self.n))

            def beta(self, t, i, k):
                return max(0, t - 9) if t >= 60 else t - 1

            def max_read_back(self):
                return 1

        net = _net(10, seed=20)
        start = RoutingState.identity(net.algebra, net.n)
        ref = delta_run(net, LiesLate(net.n), start, max_steps=400,
                        engine="vectorized")
        assert ref.converged and ref.steps < 60
        with ParallelVectorizedEngine(net, workers=2) as eng:
            res = eng.delta(LiesLate(net.n), start, max_steps=400,
                            window=64)   # window spans the bad step
            assert res.converged and res.converged_at == ref.converged_at
            assert res.state.equals(ref.state, net.algebra)
        # a run that genuinely reaches its violation still fails loudly
        # (test_overdeclared_read_back_raises_lookup_error covers it)

    def test_finite_level_algebra_on_pool(self):
        alg = FiniteLevelAlgebra(7)
        rng_net = erdos_renyi(alg, 13, 0.3,
                              lambda rng, _i, _j: alg.random_strict_edge(rng),
                              seed=11)
        start = RoutingState.identity(alg, rng_net.n)
        res = iterate_sigma_parallel(rng_net, start, workers=3)
        ref = iterate_sigma(rng_net, start, engine="naive")
        assert res.converged == ref.converged
        assert res.rounds == ref.rounds
        assert res.state.equals(ref.state, alg)
