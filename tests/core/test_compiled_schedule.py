"""CompiledSchedule ≡ its source Schedule — the equivalence contract.

The batched engine trusts the compiled form blindly (α bitmask rows, β
read-time arrays, derived staleness bound), so the contract is held
property-style over random schedules and horizons: every query a δ
recursion could make must answer exactly as the object form does, the
axioms must be preserved verbatim, and the derived bound must cover
every read the compiled horizon performs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdversarialStaleSchedule,
    CompiledSchedule,
    FixedDelaySchedule,
    RandomSchedule,
    RoundRobinSchedule,
    SynchronousSchedule,
    schedule_zoo,
)

np = pytest.importorskip("numpy")


def _random_schedule(draw):
    n = draw(st.integers(min_value=1, max_value=9))
    kind = draw(st.sampled_from(
        ["sync", "round-robin", "fixed", "adversarial", "random"]))
    if kind == "sync":
        return SynchronousSchedule(n)
    if kind == "round-robin":
        return RoundRobinSchedule(n)
    if kind == "fixed":
        return FixedDelaySchedule(n, delay=draw(st.integers(1, 6)))
    if kind == "adversarial":
        return AdversarialStaleSchedule(
            n, max_delay=draw(st.integers(1, 7)),
            burst=draw(st.integers(1, 4)))
    return RandomSchedule(
        n, seed=draw(st.integers(0, 2 ** 16)),
        activation_prob=draw(st.sampled_from([0.2, 0.5, 0.9, 1.0])),
        max_delay=draw(st.integers(1, 6)),
        max_silence=draw(st.integers(1, 8)))


class TestEquivalenceContract:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_alpha_beta_identical_over_random_horizons(self, data):
        src = _random_schedule(data.draw)
        horizon = data.draw(st.integers(min_value=1, max_value=90))
        block = data.draw(st.sampled_from([1, 3, 8, 32]))
        comp = CompiledSchedule(src, horizon, block=block)
        for t in range(1, horizon + 1):
            assert comp.alpha(t) == src.alpha(t), t
            mask = comp.alpha_mask(t)
            assert set(np.nonzero(mask)[0].tolist()) == set(src.alpha(t))
            for i in range(src.n):
                for j in range(src.n):
                    assert comp.beta(t, i, j) == src.beta(t, i, j), (t, i, j)
            for i in src.alpha(t):
                assert comp.beta_times(t, i).tolist() == src.beta_row(t, i)
        # queries past the horizon delegate wholesale
        beyond = horizon + data.draw(st.integers(1, 5))
        assert comp.alpha(beyond) == src.alpha(beyond)
        assert comp.beta(beyond, 0, 0) == src.beta(beyond, 0, 0)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_admissibility_preserved(self, data):
        src = _random_schedule(data.draw)
        horizon = data.draw(st.integers(min_value=20, max_value=80))
        comp = CompiledSchedule(src, horizon)
        assert comp.validate(horizon) == src.validate(horizon)
        assert comp.is_admissible(horizon) == src.is_admissible(horizon)

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_declared_bound_is_preserved(self, data):
        src = _random_schedule(data.draw)
        horizon = data.draw(st.integers(min_value=1, max_value=60))
        comp = CompiledSchedule(src, horizon)
        assert comp.max_read_back() == src.max_read_back()

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_derived_bound_covers_every_active_read(self, data):
        base = _random_schedule(data.draw)

        class Undeclared(type(base)):
            def max_read_back(self):
                return None

        src = Undeclared.__new__(Undeclared)
        src.__dict__.update(base.__dict__)
        src.n = base.n
        horizon = data.draw(st.integers(min_value=5, max_value=60))
        comp = CompiledSchedule(src, horizon)
        derived = comp.max_read_back()
        assert derived == comp.derived_max_read_back()
        worst = 1
        for t in range(1, horizon + 1):
            for i in src.alpha(t):
                for j in range(src.n):
                    worst = max(worst, t - src.beta(t, i, j))
        assert derived == worst
        assert derived >= 1


class TestCompileMechanics:
    def test_block_eviction_recompiles_deterministically(self):
        """Revisiting an evicted block must answer identically — the
        compiled form is a pure function of (source, t)."""
        src = RandomSchedule(6, seed=11, max_delay=4)
        comp = CompiledSchedule(src, horizon=300, block=4)
        first = {(t, i, j): comp.beta(t, i, j)
                 for t in (1, 2, 3) for i in range(6) for j in range(6)}
        for t in range(4, 300, 4):        # walk far enough to evict t<4
            comp.alpha(t)
        again = {(t, i, j): comp.beta(t, i, j)
                 for t in (1, 2, 3) for i in range(6) for j in range(6)}
        assert first == again

    def test_ensure_reuses_wide_enough_compilations(self):
        src = RandomSchedule(5, seed=2)
        comp = CompiledSchedule(src, horizon=100)
        assert CompiledSchedule.ensure(comp, 50) is comp
        wider = CompiledSchedule.ensure(comp, 200)
        assert wider is not comp and wider.source is src
        assert CompiledSchedule.ensure(src, 10).source is src

    def test_beta_times_for_is_layout_independent(self):
        """The sliced read-time view must answer per the *caller's*
        source array — one compiled instance can serve engines over
        different edge layouts (or the same network across topology
        mutations)."""
        src = RandomSchedule(8, seed=21, max_delay=4)
        comp = CompiledSchedule(src, horizon=50)
        a = np.asarray([0, 3, 5])
        b = np.asarray([1, 2, 6, 7])
        for t in (1, 9, 30):
            row = src.beta_row(t, 2)
            assert comp.beta_times_for(t, 2, a).tolist() == \
                [row[j] for j in a.tolist()]
            assert comp.beta_times_for(t, 2, b).tolist() == \
                [row[j] for j in b.tolist()]
            # and again in the other order (no stale cache)
            assert comp.beta_times_for(t, 2, a).tolist() == \
                [row[j] for j in a.tolist()]

    def test_zoo_compiles(self):
        for src in schedule_zoo(7):
            comp = CompiledSchedule(src, horizon=40)
            for t in (1, 7, 40):
                assert comp.alpha(t) == src.alpha(t)

    def test_rejects_bad_parameters(self):
        src = SynchronousSchedule(3)
        with pytest.raises(ValueError):
            CompiledSchedule(src, horizon=0)
        with pytest.raises(ValueError):
            CompiledSchedule(src, 10, block=0)


class TestRandomScheduleMemo:
    def test_memoized_draws_match_fresh_instance(self):
        """The per-step memo is caching only: two instances with the
        same seed answer identically under interleaved query orders."""
        a = RandomSchedule(7, seed=42, max_delay=5)
        b = RandomSchedule(7, seed=42, max_delay=5)
        for t in range(1, 50):
            assert a.alpha(t) == b.alpha(t)
            # a queried row-wise, b element-wise, both twice
            for i in range(7):
                row = a.beta_row(t, i)
                assert row == [b.beta(t, i, j) for j in range(7)]
                assert a.beta_row(t, i) == row

    def test_memo_eviction_recomputes_identically(self):
        sched = RandomSchedule(5, seed=9, max_delay=4)
        early = [sched.beta(2, i, j) for i in range(5) for j in range(5)]
        for t in range(3, 60):            # push t=2 out of the memo
            sched.beta(t, 0, 0)
        assert early == [sched.beta(2, i, j)
                         for i in range(5) for j in range(5)]
