"""Unit tests for routing states, adjacency matrices and networks."""

import pytest

from repro.algebras import HopCountAlgebra
from repro.core import AdjacencyMatrix, ConstantEdge, Network, RoutingState


class TestAdjacencyMatrix:
    def setup_method(self):
        self.alg = HopCountAlgebra(8)
        self.adj = AdjacencyMatrix(3, self.alg)

    def test_missing_edge_is_constant_invalid(self):
        f = self.adj(0, 1)
        assert f(3) == self.alg.invalid
        assert f(self.alg.trivial) == self.alg.invalid

    def test_set_and_get(self):
        self.adj.set(0, 1, self.alg.edge(2))
        assert self.adj(0, 1)(3) == 5
        assert self.adj.has_edge(0, 1)
        assert not self.adj.has_edge(1, 0)

    def test_remove_reverts_to_invalid(self):
        self.adj.set(0, 1, self.alg.edge(1))
        self.adj.remove(0, 1)
        assert self.adj(0, 1)(0) == self.alg.invalid

    def test_bounds_checked(self):
        with pytest.raises(IndexError):
            self.adj(0, 7)
        with pytest.raises(IndexError):
            self.adj.set(-1, 0, self.alg.edge(1))

    def test_present_edges_sorted(self):
        self.adj.set(2, 0, self.alg.edge(1))
        self.adj.set(0, 1, self.alg.edge(1))
        assert list(self.adj.present_edges()) == [(0, 1), (2, 0)]

    def test_needs_positive_n(self):
        with pytest.raises(ValueError):
            AdjacencyMatrix(0, self.alg)


class TestNetwork:
    def test_neighbours_in(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 3)
        net.set_edge(0, 1, alg.edge(1))
        net.set_edge(0, 2, alg.edge(1))
        net.set_edge(1, 2, alg.edge(1))
        assert net.neighbours_in(0) == [1, 2]
        assert net.neighbours_in(1) == [2]
        assert net.neighbours_in(2) == []

    def test_copy_is_independent(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 2)
        net.set_edge(0, 1, alg.edge(1))
        clone = net.copy()
        clone.remove_edge(0, 1)
        assert net.adjacency.has_edge(0, 1)
        assert not clone.adjacency.has_edge(0, 1)


class TestRoutingState:
    def setup_method(self):
        self.alg = HopCountAlgebra(8)

    def test_identity_matrix(self):
        I = RoutingState.identity(self.alg, 3)
        for i in range(3):
            for j in range(3):
                expected = self.alg.trivial if i == j else self.alg.invalid
                assert I.get(i, j) == expected

    def test_filled(self):
        X = RoutingState.filled(5, 2)
        assert all(r == 5 for (_i, _j, r) in X.entries())

    def test_from_function(self):
        X = RoutingState.from_function(lambda i, j: i * 10 + j, 3)
        assert X.get(2, 1) == 21

    def test_square_enforced(self):
        with pytest.raises(ValueError):
            RoutingState([[1, 2], [3]])

    def test_row_and_column_are_copies(self):
        X = RoutingState.identity(self.alg, 3)
        row = X.row(0)
        row[1] = 99
        assert X.get(0, 1) == self.alg.invalid
        col = X.column(1)
        col[0] = 99
        assert X.get(0, 1) == self.alg.invalid

    def test_elementwise_choice(self):
        X = RoutingState.filled(5, 2)
        Y = RoutingState.filled(3, 2)
        Z = X.choice(Y, self.alg)
        assert all(r == 3 for (_i, _j, r) in Z.entries())

    def test_equals_under_algebra(self):
        X = RoutingState.filled(5, 2)
        Y = RoutingState.filled(5, 2)
        Z = RoutingState.filled(4, 2)
        assert X.equals(Y, self.alg)
        assert not X.equals(Z, self.alg)

    def test_hashable_value_object(self):
        X = RoutingState.filled(5, 2)
        Y = RoutingState.filled(5, 2)
        assert X == Y
        assert hash(X) == hash(Y)
        assert len({X, Y}) == 1

    def test_pretty_contains_all_entries(self):
        X = RoutingState.identity(self.alg, 2)
        out = X.pretty()
        assert "node 0" in out and "node 1" in out
