"""Equivalence tests: incremental σ/δ engines vs the literal definitions.

The incremental engine (dirty-set propagation, structural row sharing,
bounded δ history) must be *observationally identical* to the naive
full-recompute engines on every algebra — same iterates, same fixed
points, same convergence rounds — including after mid-run topology
changes (the cache-invalidation regression tests).
"""

import random

import pytest

from repro.algebras import BGPLiteAlgebra, ShortestPathsAlgebra
from repro.algebras.bgplite import random_policy
from repro.core import (
    AdversarialStaleSchedule,
    BoundedHistory,
    FixedDelaySchedule,
    RandomSchedule,
    RoundRobinSchedule,
    RoutingState,
    SynchronousSchedule,
    delta_run,
    delta_step,
    delta_step_literal,
    iterate_sigma,
    sigma,
    sigma_propagate,
    sigma_with_dirty,
)
from repro.algebras import bad_gadget, good_gadget, increasing_disagree
from repro.topologies import (
    erdos_renyi,
    gao_rexford_hierarchy,
    uniform_weight_factory,
)


def _sp_net(n=12, p=0.25, seed=0):
    alg = ShortestPathsAlgebra()
    return erdos_renyi(alg, n, p, uniform_weight_factory(alg, 1, 9), seed=seed)


def _bgp_net(n=8, p=0.35, seed=0, allow_reject=True):
    alg = BGPLiteAlgebra(n_nodes=n)

    def factory(rng, i, j):
        pol = random_policy(rng, alg.community_universe, n,
                            allow_reject=allow_reject)
        return alg.edge(i, j, pol)

    return erdos_renyi(alg, n, p, factory, seed=seed)


def _gr_net(seed=0):
    net, _rels = gao_rexford_hierarchy(seed=seed)
    return net


#: name → zero-arg network builder covering four qualitatively different
#: algebras, as the equivalence satellite demands.
NETWORKS = {
    "shortest-paths": lambda: _sp_net(seed=3),
    "bgplite": lambda: _bgp_net(seed=5),
    "gao-rexford": lambda: _gr_net(seed=7),
    "spp-good-gadget": good_gadget,
    "spp-increasing-disagree": increasing_disagree,
    "spp-bad-gadget": bad_gadget,        # oscillates: lockstep-only
}


def lockstep(net, start, rounds):
    """Run naive σ and incremental propagation side by side; assert the
    iterates agree every round and dirty-emptiness ⟺ σ-stability."""
    alg = net.algebra
    naive = start
    inc, dirty = start, None
    for _ in range(rounds):
        naive_next = sigma(net, naive)
        if dirty is None:
            inc, dirty = sigma_with_dirty(net, inc)
        else:
            inc, dirty = sigma_propagate(net, inc, dirty)
        assert inc.equals(naive_next, alg)
        assert (not dirty) == naive_next.equals(naive, alg)
        naive = naive_next
    return naive


class TestSigmaEquivalence:
    @pytest.mark.parametrize("name", sorted(NETWORKS))
    def test_lockstep_from_identity(self, name):
        net = NETWORKS[name]()
        start = RoutingState.identity(net.algebra, net.n)
        lockstep(net, start, rounds=12)

    @pytest.mark.parametrize("name", sorted(NETWORKS))
    def test_lockstep_from_random_garbage(self, name):
        net = NETWORKS[name]()
        rng = random.Random(99)
        try:
            start = RoutingState.from_function(
                lambda i, j: net.algebra.sample_route(rng), net.n)
        except NotImplementedError:
            pytest.skip(f"{name}: no route sampler")
        lockstep(net, start, rounds=10)

    @pytest.mark.parametrize("name", ["shortest-paths", "bgplite",
                                      "gao-rexford", "spp-good-gadget"])
    def test_iterate_sigma_engines_agree(self, name):
        net = NETWORKS[name]()
        start = RoutingState.identity(net.algebra, net.n)
        inc = iterate_sigma(net, start, engine="incremental")
        naive = iterate_sigma(net, start, engine="naive")
        assert inc.converged and naive.converged
        assert inc.rounds == naive.rounds
        assert inc.state.equals(naive.state, net.algebra)

    def test_unknown_engine_rejected(self):
        net = _sp_net()
        with pytest.raises(ValueError):
            iterate_sigma(net, RoutingState.identity(net.algebra, net.n),
                          engine="quantum")

    def test_cycle_detection_still_works_incrementally(self):
        net = bad_gadget()
        start = RoutingState.identity(net.algebra, net.n)
        res = iterate_sigma(net, start, max_rounds=200, detect_cycles=True)
        assert not res.converged
        assert res.rounds < 200        # stopped by the cycle, not the cap

    def test_structural_sharing_of_stable_rows(self):
        """Once an entry's row stops changing, successors share the row
        *object* — the memory half of the σ tentpole."""
        net = _sp_net(seed=3)
        start = RoutingState.identity(net.algebra, net.n)
        state, dirty = sigma_with_dirty(net, start)
        while dirty:
            prev = state
            state, dirty = sigma_propagate(net, state, dirty)
            changed_rows = {i for (i, _j) in dirty}
            for i in range(net.n):
                if i not in changed_rows:
                    assert state.rows[i] is prev.rows[i]

    def test_stable_state_returns_identical_object(self):
        net = _sp_net(seed=3)
        fp = iterate_sigma(net, RoutingState.identity(net.algebra, net.n)).state
        nxt, dirty = sigma_with_dirty(net, fp)
        assert not dirty
        same, dirty2 = sigma_propagate(net, fp, set())
        assert same is fp and not dirty2


class TestTopologyChangeRegression:
    """Mid-run set_edge / remove_edge must invalidate every cache: a
    stale neighbour list or edge-function snapshot would silently give
    wrong fixed points."""

    def _reconverge_both_ways(self, net, state):
        alg = net.algebra
        inc = iterate_sigma(net, state, engine="incremental")
        naive = iterate_sigma(net, state, engine="naive")
        assert inc.converged == naive.converged
        assert inc.rounds == naive.rounds
        assert inc.state.equals(naive.state, alg)
        return inc.state

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_set_edge_then_reconverge(self, seed):
        net = _sp_net(n=10, p=0.3, seed=seed)
        alg = net.algebra
        fp = iterate_sigma(net, RoutingState.identity(alg, net.n)).state
        # install a zero-ish cost shortcut that must reroute traffic
        net.set_edge(0, net.n - 1, alg.edge(1))
        net.set_edge(net.n - 1, 0, alg.edge(1))
        fp2 = self._reconverge_both_ways(net, fp)
        assert not fp2.equals(fp, alg)       # the change was visible

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_remove_edge_then_reconverge(self, seed):
        net = _sp_net(n=10, p=0.3, seed=seed)
        alg = net.algebra
        fp = iterate_sigma(net, RoutingState.identity(alg, net.n)).state
        i, k = next(iter(net.present_edges()))
        net.remove_edge(i, k)
        self._reconverge_both_ways(net, fp)
        assert k not in net.neighbours_in(i)   # cache was invalidated

    def test_delta_after_topology_change(self):
        net = _sp_net(n=8, p=0.35, seed=4)
        alg = net.algebra
        sched = RandomSchedule(net.n, seed=2, max_delay=4)
        start = RoutingState.identity(alg, net.n)
        mid = delta_run(net, sched, start, max_steps=500)
        assert mid.converged
        net.set_edge(0, net.n - 1, alg.edge(1))
        bounded = delta_run(net, sched, mid.state, max_steps=500)
        strict = delta_run(net, sched, mid.state, max_steps=500, strict=True)
        assert bounded.converged and strict.converged
        assert bounded.state.equals(strict.state, alg)


class TestDeltaEquivalence:
    def _schedules(self, n):
        return [
            SynchronousSchedule(n),
            RoundRobinSchedule(n),
            FixedDelaySchedule(n, delay=3),
            AdversarialStaleSchedule(n, max_delay=5, burst=2),
            RandomSchedule(n, seed=8, max_delay=4),
        ]

    def test_delta_step_matches_literal(self):
        net = _sp_net(n=8, p=0.35, seed=4)
        sched = RandomSchedule(net.n, seed=5, max_delay=4)
        history = [RoutingState.identity(net.algebra, net.n)]
        for t in range(1, 15):
            fast = delta_step(net, sched, history, t)
            literal = delta_step_literal(net, sched, history, t)
            assert fast.equals(literal, net.algebra)
            history.append(literal)

    @pytest.mark.parametrize("name", ["shortest-paths", "bgplite",
                                      "gao-rexford", "spp-good-gadget"])
    def test_bounded_run_equals_strict_run(self, name):
        net = NETWORKS[name]()
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        for sched in self._schedules(net.n):
            bounded = delta_run(net, sched, start, max_steps=600)
            strict = delta_run(net, sched, start, max_steps=600, strict=True)
            assert bounded.converged == strict.converged, repr(sched)
            assert bounded.converged_at == strict.converged_at, repr(sched)
            assert bounded.state.equals(strict.state, alg), repr(sched)

    def test_bounded_memory_vs_unbounded(self):
        net = _sp_net(n=10, p=0.3, seed=6)
        sched = RandomSchedule(net.n, seed=1, max_delay=5)
        start = RoutingState.identity(net.algebra, net.n)
        bounded = delta_run(net, sched, start, max_steps=800)
        strict = delta_run(net, sched, start, max_steps=800, strict=True)
        assert bounded.converged
        mrb = sched.max_read_back()
        assert bounded.history_retained <= mrb + 2
        assert strict.history_retained == strict.steps + 1

    def test_inactive_rows_shared_not_copied(self):
        """Satellite regression: δ must reuse inactive nodes' row
        objects instead of copying O(n) routes per row per step."""
        net = _sp_net(n=8, p=0.35, seed=4)
        sched = RoundRobinSchedule(net.n)     # one active node per step
        X = RoutingState.identity(net.algebra, net.n)
        step1 = delta_step(net, sched, [X], 1)
        for i in range(1, net.n):             # node 0 activated at t=1
            assert step1.rows[i] is X.rows[i]

    def test_unknown_read_back_falls_back_to_full_history(self):
        """A schedule that declares no staleness bound must get the
        unbounded history (bounding it would be unsound), not a
        default-sized ring buffer that β can outrun."""

        class HalfTime(SynchronousSchedule):
            """β(t) = t // 2: admissible, but read-back grows forever."""

            def beta(self, t, i, j):
                return t // 2

            def max_read_back(self):
                return None

        net = _sp_net(n=6, p=0.4, seed=2)
        sched = HalfTime(net.n)
        start = RoutingState.identity(net.algebra, net.n)
        res = delta_run(net, sched, start, max_steps=300)   # must not raise
        assert res.converged
        assert res.history_retained == res.steps + 1        # full history

    def test_keep_history_returns_full_list(self):
        net = _sp_net(n=6, p=0.4, seed=2)
        sched = FixedDelaySchedule(net.n, delay=2)
        start = RoutingState.identity(net.algebra, net.n)
        res = delta_run(net, sched, start, max_steps=300, keep_history=True)
        assert res.converged
        assert res.history is not None
        assert len(res.history) == res.steps + 1


class TestBoundedHistory:
    def _state(self, tag):
        return RoutingState([[tag]])

    def test_absolute_time_indexing_and_eviction(self):
        h = BoundedHistory(self._state(0), window=3)
        for t in range(1, 6):
            h.append(self._state(t))
        assert h.end_time == 5
        assert len(h) == 3
        assert h[5].rows[0][0] == 5
        assert h[3].rows[0][0] == 3
        with pytest.raises(LookupError):
            h[2]

    def test_evicted_read_mentions_strict_mode(self):
        h = BoundedHistory(self._state(0), window=2)
        h.append(self._state(1))
        h.append(self._state(2))
        with pytest.raises(LookupError, match="strict=True"):
            h[0]

    def test_window_must_cover_two_states(self):
        with pytest.raises(ValueError):
            BoundedHistory(self._state(0), window=1)

    def test_len_never_exceeds_window(self):
        h = BoundedHistory(self._state(0), window=4)
        for t in range(1, 50):
            h.append(self._state(t))
            assert len(h) <= 4
        assert h.end_time == 49


class TestScheduleReadBack:
    def test_declared_bounds(self):
        assert SynchronousSchedule(4).max_read_back() == 1
        assert RoundRobinSchedule(4).max_read_back() == 1
        assert FixedDelaySchedule(4, delay=3).max_read_back() == 3
        assert RandomSchedule(4, max_delay=6).max_read_back() == 6
        assert AdversarialStaleSchedule(4, max_delay=7).max_read_back() == 7

    def test_beta_respects_declared_bound(self):
        for sched in [FixedDelaySchedule(5, delay=3),
                      RandomSchedule(5, seed=4, max_delay=6),
                      AdversarialStaleSchedule(5, max_delay=7)]:
            bound = sched.max_read_back()
            for t in range(1, 60):
                for i in range(5):
                    for j in range(5):
                        assert t - sched.beta(t, i, j) <= bound
