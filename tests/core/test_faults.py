"""Chaos suite: deterministic fault injection and self-healing.

The contract under test (``docs/faults.md`` is the narrative form):

* a :class:`~repro.core.faults.FaultPlan` is *deterministic* — the same
  plan against the same protocol trace injects the same faults, across
  processes (keyed blake2b draws, not ``hash()`` or global RNG);
* single-shot rules share one firing budget per plan object, so a
  healed worker's fresh connection cannot re-fire a spent fault;
* the supervised remote engine heals every injectable single-fault
  plan — worker kill mid-σ and mid-δ, dropped/corrupt/truncated
  frames, silent stalls past the deadline — to a fixed point
  **bit-identical** to the fault-free run, with the recovery recorded
  as machine-readable :class:`~repro.core.capabilities.DegradedEvent`s;
* ``strict=True`` (and exhausted retry budgets) surface the original
  typed errors — :class:`~repro.core.remote.RemoteWorkerError`,
  :class:`~repro.core.wire.WireFormatError` — exactly as before
  supervision existed;
* nothing ever hangs: every engine-level test runs under a hard
  watchdog, and a hypothesis fuzz over random plans asserts
  heal-bit-identically-or-typed-error across the fault space.
"""

import pickle
import socket
import threading

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebras import HopCountAlgebra
from repro.core import (
    RandomSchedule,
    RemoteError,
    RemoteVectorizedEngine,
    RemoteWorkerError,
    RoutingState,
    WireClosedError,
    WireError,
    WireFormatError,
)
from repro.core.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    RECV_CLOSE,
    RECV_DROP,
    RECV_PASS,
)
from repro.core.remote import _serve_connection, serve_worker
from repro.core.wire import (
    MSG_ACK,
    MSG_SIGMA_ROUND,
    MSG_DELTA_STEPS,
    MSG_UPDATE,
    FrameConnection,
)
from repro.core.vectorized import (
    delta_run_vectorized,
    iterate_sigma_vectorized,
)
from repro.topologies import erdos_renyi, uniform_weight_factory

WATCHDOG_S = 120.0


def _net(n=9, seed=1, bound=16):
    alg = HopCountAlgebra(bound)
    return erdos_renyi(alg, n, 0.4, uniform_weight_factory(alg, 1, 3),
                       seed=seed)


def _watchdog(fn, timeout=WATCHDOG_S):
    """Run ``fn`` under a hard wall-clock bound: a hang is a failure,
    never a stuck suite."""
    box = {}

    def run():
        try:
            box["value"] = fn()
        except BaseException as exc:       # re-raised on the main thread
            box["error"] = exc

    th = threading.Thread(target=run, daemon=True)
    th.start()
    th.join(timeout)
    if th.is_alive():
        raise AssertionError(
            f"operation hung past the {timeout}s chaos watchdog")
    if "error" in box:
        raise box["error"]
    return box["value"]


# ----------------------------------------------------------------------
# 1. FaultPlan: parsing, validation, determinism, shared budget
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            '{"seed": 7, "rules": [{"kind": "drop", "role": '
            '"coordinator", "op": "send", "prob": 0.25, "times": 0}, '
            '{"kind": "delay", "delay_ms": 10.0}]}')
        assert plan.seed == 7
        assert [r.kind for r in plan.rules] == ["drop", "delay"]
        again = FaultPlan.parse(plan.to_json())
        assert again.as_dict() == plan.as_dict()
        # a plan passes through parse unchanged (identity, not a copy:
        # the shared firing budget must stay shared)
        assert FaultPlan.parse(plan) is plan

    @pytest.mark.parametrize("bad", [
        {"rules": [{"kind": "meteor-strike"}]},
        {"rules": [{"kind": "drop", "role": "astronaut"}]},
        {"rules": [{"kind": "drop", "op": "teleport"}]},
        {"rules": [{"kind": "drop", "prob": 1.5}]},
        {"rules": [{"kind": "drop", "times": -1}]},
        {"rules": [{"kind": "drop", "nonsense": 1}]},
        {"rules": "not-a-list"},
        {"unknown-key": 1},
        "{not json",
        12345,
    ])
    def test_bad_specs_are_typed(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_probabilistic_draws_replay_exactly(self):
        spec = {"seed": 42, "rules": [{"kind": "drop", "prob": 0.3,
                                       "times": 0}]}

        def trace():
            inj = FaultPlan.parse(dict(spec)).injector("coordinator", 0)
            return [inj.send_frame(MSG_ACK, b"x" * 16)[0] is None
                    for _ in range(200)]

        first, second = trace(), trace()
        assert first == second
        assert 20 < sum(first) < 120   # the draw really is ~p=0.3

    def test_seed_changes_the_trace(self):
        def trace(seed):
            plan = FaultPlan([FaultRule(kind="drop", prob=0.5, times=0)],
                             seed=seed)
            inj = plan.injector("coordinator", 0)
            return [inj.send_frame(MSG_ACK, b"x")[0] is None
                    for _ in range(64)]

        assert trace(1) != trace(2)

    def test_single_shot_budget_spans_injectors(self):
        # "kill once" means once per plan, even across the fresh
        # injectors a healed/respawned connection creates
        plan = FaultPlan([FaultRule(kind="drop")])
        first = plan.injector("coordinator", 0)
        assert first.send_frame(MSG_ACK, b"x")[0] is None
        second = plan.injector("coordinator", 0)   # post-heal connection
        assert second.send_frame(MSG_ACK, b"x")[0] == b"x"

    def test_pickle_resets_the_budget(self):
        # the plan crosses a Pipe into spawned workers: each process is
        # an independent adversary with a fresh budget
        plan = FaultPlan([FaultRule(kind="drop")], seed=3)
        assert plan.injector("worker").send_frame(MSG_ACK, b"x")[0] is None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 3
        assert clone.injector("worker").send_frame(MSG_ACK, b"x")[0] is None

    def test_rule_matching_keys(self):
        rule = FaultRule(kind="drop", role="coordinator", shard=1,
                         round=2, msg_index=3, op="send",
                         msg_type=MSG_SIGMA_ROUND)
        assert rule.matches("coordinator", 1, 2, 3, "send",
                            MSG_SIGMA_ROUND)
        assert not rule.matches("worker", 1, 2, 3, "send",
                                MSG_SIGMA_ROUND)
        assert not rule.matches("coordinator", 0, 2, 3, "send",
                                MSG_SIGMA_ROUND)
        assert not rule.matches("coordinator", 1, 9, 3, "send",
                                MSG_SIGMA_ROUND)
        assert not rule.matches("coordinator", 1, 2, 4, "send",
                                MSG_SIGMA_ROUND)
        assert not rule.matches("coordinator", 1, 2, 3, "recv",
                                MSG_SIGMA_ROUND)
        assert not rule.matches("coordinator", 1, 2, 3, "send", MSG_ACK)


class TestFaultInjector:
    def test_send_verdicts(self):
        frame = bytes(range(32))
        cases = {
            "drop": (None, False),
            "close": (None, True),
        }
        for kind, expected in cases.items():
            inj = FaultPlan([FaultRule(kind=kind)]).injector("worker")
            assert inj.send_frame(MSG_ACK, frame) == expected
        corrupted, close = FaultPlan(
            [FaultRule(kind="corrupt", offset=4)]).injector(
                "worker").send_frame(MSG_ACK, frame)
        assert not close
        assert corrupted != frame and len(corrupted) == len(frame)
        assert sum(a != b for a, b in zip(corrupted, frame)) == 1
        truncated, close = FaultPlan(
            [FaultRule(kind="truncate", truncate_to=6)]).injector(
                "worker").send_frame(MSG_ACK, frame)
        assert close and truncated == frame[:6]

    def test_recv_verdicts(self):
        payload = bytes(range(16))
        inj = FaultPlan([FaultRule(kind="drop")]).injector("worker")
        assert inj.recv_frame(MSG_ACK, payload)[0] == RECV_DROP
        inj = FaultPlan([FaultRule(kind="close")]).injector("worker")
        assert inj.recv_frame(MSG_ACK, payload)[0] == RECV_CLOSE
        inj = FaultPlan([FaultRule(kind="corrupt")]).injector("worker")
        verdict, mangled = inj.recv_frame(MSG_ACK, payload)
        assert verdict == RECV_PASS and mangled != payload
        # past the budget the stream is clean again
        assert inj.recv_frame(MSG_ACK, payload) == (RECV_PASS, payload)

    def test_corrupt_never_noops(self):
        # an xor_mask that would leave the byte unchanged still flips it
        inj = FaultPlan([FaultRule(kind="corrupt", xor_mask=0)]).injector(
            "worker")
        assert inj.send_frame(MSG_ACK, b"\x00\x00")[0] != b"\x00\x00"


# ----------------------------------------------------------------------
# 2. Wire integration: FrameConnection honors the injector
# ----------------------------------------------------------------------


def _pair(plan=None, role="coordinator"):
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    injector = plan.injector(role, 0) if plan is not None else None
    return FrameConnection(a, injector=injector), FrameConnection(b)


class TestWireInjection:
    def test_clean_connection_roundtrips(self):
        left, right = _pair()
        try:
            left.send(MSG_ACK, b"payload")
            assert right.recv() == (MSG_ACK, b"payload")
        finally:
            left.close()
            right.close()

    def test_send_drop_suppresses_the_frame(self):
        plan = FaultPlan([FaultRule(kind="drop", op="send")])
        left, right = _pair(plan)
        try:
            left.send(MSG_ACK, b"lost")     # dropped silently
            left.send(MSG_ACK, b"kept")     # budget spent: delivered
            assert right.recv() == (MSG_ACK, b"kept")
        finally:
            left.close()
            right.close()

    def test_send_corrupt_breaks_the_peer_frame(self):
        plan = FaultPlan([FaultRule(kind="corrupt", op="send")])
        left, right = _pair(plan)
        try:
            left.send(MSG_ACK, b"x")
            with pytest.raises(WireFormatError):
                right.recv()                # header magic was mangled
        finally:
            left.close()
            right.close()

    def test_send_close_raises_and_severs(self):
        plan = FaultPlan([FaultRule(kind="close", op="send")])
        left, right = _pair(plan)
        try:
            with pytest.raises(WireClosedError):
                left.send(MSG_ACK, b"x")
            with pytest.raises(WireClosedError):
                right.recv()                # peer sees a clean EOF
        finally:
            left.close()
            right.close()

    def test_recv_drop_skips_to_the_next_frame(self):
        plan = FaultPlan([FaultRule(kind="drop", op="recv")])
        left, right = _pair()
        right.injector = plan.injector("coordinator", 0)
        try:
            left.send(MSG_ACK, b"first")
            left.send(MSG_ACK, b"second")
            assert right.recv() == (MSG_ACK, b"second")
        finally:
            left.close()
            right.close()


# ----------------------------------------------------------------------
# 3. The chaos matrix: every single-fault plan heals bit-identically
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def sigma_ref():
    net = _net(9)
    start = RoutingState.identity(net.algebra, net.n)
    return net, start, iterate_sigma_vectorized(net, start, max_rounds=300)


@pytest.fixture(scope="module")
def delta_ref():
    net = _net(9)
    start = RoutingState.identity(net.algebra, net.n)
    sched = RandomSchedule(net.n, seed=2, max_delay=3)
    return net, start, sched, delta_run_vectorized(net, sched, start,
                                                   max_steps=300)


def _assert_sigma_identical(res, ref, net):
    assert res.converged == ref.converged
    assert res.rounds == ref.rounds
    assert res.state.equals(ref.state, net.algebra)


def _assert_delta_identical(res, ref, net):
    assert res.converged == ref.converged
    assert res.steps == ref.steps
    assert res.converged_at == ref.converged_at
    assert res.state.equals(ref.state, net.algebra)


def _sigma_under_plan(net, start, plan, **kw):
    eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=1.0,
                                 fault_plan=plan, **kw)
    try:
        res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
        return res, list(eng.degraded)
    finally:
        eng.close()


def _delta_under_plan(net, start, sched, plan, **kw):
    eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=1.0,
                                 fault_plan=plan, **kw)
    try:
        res = _watchdog(lambda: eng.delta(sched, start, max_steps=300))
        return res, list(eng.degraded)
    finally:
        eng.close()


class TestChaosMatrix:
    def test_worker_kill_mid_sigma_heals(self, sigma_ref):
        net, start, ref = sigma_ref
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=5.0)
        try:
            # establish the pool, then kill a shard *between* runs so
            # the next σ run trips mid-protocol on a dead peer
            _watchdog(lambda: eng.iterate(start, max_rounds=300))
            victim = eng._res.procs[0]
            victim.kill()
            victim.join(timeout=10)
            res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
            _assert_sigma_identical(res, ref, net)
            assert any(ev.code == "worker-respawned"
                       for ev in eng.degraded)
            assert all(ev.heal_ms is not None and ev.heal_ms >= 0
                       for ev in eng.degraded)
        finally:
            eng.close()

    def test_worker_kill_mid_delta_heals(self, delta_ref):
        net, start, sched, ref = delta_ref
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=5.0)
        try:
            _watchdog(lambda: eng.iterate(start, max_rounds=300))
            victim = eng._res.procs[1]
            victim.kill()
            victim.join(timeout=10)
            res = _watchdog(lambda: eng.delta(sched, start, max_steps=300))
            _assert_delta_identical(res, ref, net)
            assert any(ev.code == "worker-respawned"
                       for ev in eng.degraded)
        finally:
            eng.close()

    def test_dropped_frame_mid_sigma_heals(self, sigma_ref):
        # a dropped σ-round broadcast = a silent stall: the shard never
        # replies, the deadline trips, the supervisor heals
        net, start, ref = sigma_ref
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_SIGMA_ROUND, "round": 2, "shard": 0}]}
        res, degraded = _sigma_under_plan(net, start, plan)
        _assert_sigma_identical(res, ref, net)
        assert [ev.code for ev in degraded] == ["worker-respawned"]

    def test_dropped_frame_mid_delta_heals(self, delta_ref):
        net, start, sched, ref = delta_ref
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_DELTA_STEPS, "shard": 1}]}
        res, degraded = _delta_under_plan(net, start, sched, plan)
        _assert_delta_identical(res, ref, net)
        assert [ev.code for ev in degraded] == ["worker-respawned"]

    def test_corrupt_reply_heals(self, sigma_ref):
        # a corrupted reply payload is a typed decode failure; the
        # supervisor rebuilds and replays to the same fixed point
        net, start, ref = sigma_ref
        plan = {"seed": 9, "rules": [{
            "kind": "corrupt", "role": "coordinator", "op": "recv",
            "msg_type": MSG_UPDATE, "round": 1, "shard": 0, "offset": 2}]}
        res, degraded = _sigma_under_plan(net, start, plan)
        _assert_sigma_identical(res, ref, net)
        assert len(degraded) == 1

    def test_truncated_frame_heals(self, sigma_ref):
        net, start, ref = sigma_ref
        plan = {"seed": 9, "rules": [{
            "kind": "truncate", "role": "coordinator", "op": "send",
            "msg_type": MSG_SIGMA_ROUND, "round": 1, "truncate_to": 6}]}
        res, degraded = _sigma_under_plan(net, start, plan)
        _assert_sigma_identical(res, ref, net)
        assert len(degraded) == 1

    def test_connection_close_heals(self, sigma_ref):
        net, start, ref = sigma_ref
        plan = {"seed": 9, "rules": [{
            "kind": "close", "role": "coordinator", "op": "send",
            "round": 2, "shard": 1}]}
        res, degraded = _sigma_under_plan(net, start, plan)
        _assert_sigma_identical(res, ref, net)
        assert len(degraded) == 1

    def test_delay_fault_is_lossless(self, sigma_ref):
        # a delay is adversarial latency, not loss: no heal, no
        # degraded events, identical result
        net, start, ref = sigma_ref
        plan = {"seed": 1, "rules": [{
            "kind": "delay", "role": "coordinator", "delay_ms": 20.0,
            "times": 3}]}
        res, degraded = _sigma_under_plan(net, start, plan)
        _assert_sigma_identical(res, ref, net)
        assert degraded == []

    def test_worker_side_persistent_fault_exhausts_retries(self, sigma_ref):
        # a plan shipped to the *workers* crosses the spawn Pipe, so its
        # firing budget resets per process (each respawn is an
        # independent adversary).  A deterministic worker-side drop
        # therefore re-fires on every respawned pool: a persistent
        # fault.  The supervisor must burn its bounded retry budget and
        # surface the original typed timeout — never loop forever.
        net, start, _ = sigma_ref
        plan = {"seed": 3, "rules": [{
            "kind": "drop", "role": "worker", "op": "send",
            "msg_index": 2, "times": 0}]}
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=1.0)
        try:
            from repro.core import remote as remote_mod
            orig = remote_mod.spawn_loopback_workers

            def spawn_with_plan(count, host="127.0.0.1", timeout=30.0,
                                fault_plan=None):
                return orig(count, host=host, timeout=timeout,
                            fault_plan=FaultPlan.parse(plan))

            remote_mod.spawn_loopback_workers = spawn_with_plan
            try:
                with pytest.raises(RemoteWorkerError) as exc:
                    _watchdog(lambda: eng.iterate(start, max_rounds=300))
            finally:
                remote_mod.spawn_loopback_workers = orig
            assert "did not reply within 1.0s" in str(exc.value)
            # every recovery attempt was recorded before the give-up
            assert [ev.code for ev in eng.degraded_total] == \
                ["worker-respawned"] * 3
        finally:
            eng.close()


# ----------------------------------------------------------------------
# 4. Strict mode and exhausted budgets surface the original errors
# ----------------------------------------------------------------------


class TestStrictAndTerminal:
    def test_strict_timeout_is_typed(self, sigma_ref):
        net, start, _ = sigma_ref
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_SIGMA_ROUND, "round": 2, "shard": 0}]}
        with pytest.raises(RemoteWorkerError) as exc:
            _sigma_under_plan(net, start, plan, strict=True)
        assert "did not reply within 1.0s" in str(exc.value)
        assert exc.value.last_acked_round is not None

    def test_strict_corrupt_reply_is_wire_error(self, sigma_ref):
        net, start, _ = sigma_ref
        plan = {"seed": 9, "rules": [{
            "kind": "corrupt", "role": "coordinator", "op": "recv",
            "msg_type": MSG_UPDATE, "round": 1, "shard": 0, "offset": 2}]}
        with pytest.raises(WireError):
            _sigma_under_plan(net, start, plan, strict=True)

    def test_exhausted_retries_surface_the_fault(self, sigma_ref):
        # an unbounded drop rule keeps stalling every rebuilt pool; the
        # retry budget must run dry in bounded time with the original
        # typed timeout error, not loop forever
        net, start, _ = sigma_ref
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_SIGMA_ROUND, "times": 0}]}
        with pytest.raises(RemoteWorkerError) as exc:
            _sigma_under_plan(net, start, plan)
        assert "did not reply within 1.0s" in str(exc.value)

    def test_strict_never_records_degraded(self, sigma_ref):
        net, start, ref = sigma_ref
        eng = RemoteVectorizedEngine(net, workers=2, strict=True,
                                     socket_timeout=5.0)
        try:
            res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
            _assert_sigma_identical(res, ref, net)
            assert eng.degraded == [] and eng.degraded_total == []
        finally:
            eng.close()


# ----------------------------------------------------------------------
# 5. Hypothesis fuzz: random plans heal bit-identically or raise typed
# ----------------------------------------------------------------------


_RULES = st.builds(
    dict,
    kind=st.sampled_from(("drop", "delay", "corrupt", "close")),
    op=st.sampled_from(("send", "recv")),
    msg_index=st.integers(min_value=0, max_value=12),
    shard=st.sampled_from((0, 1)),
    delay_ms=st.just(5.0),
)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(rules=st.lists(_RULES, min_size=1, max_size=2),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_fuzz_sigma_heals_or_raises_typed(sigma_ref, rules, seed):
    net, start, ref = sigma_ref
    for rule in rules:
        rule["role"] = "coordinator"
    plan = {"seed": seed, "rules": rules}
    try:
        res, _degraded = _sigma_under_plan(net, start, plan)
    except (RemoteError, RemoteWorkerError, WireError):
        return  # a documented typed error is an acceptable outcome
    _assert_sigma_identical(res, ref, net)


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(rules=st.lists(_RULES, min_size=1, max_size=2),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_fuzz_delta_heals_or_raises_typed(delta_ref, rules, seed):
    net, start, sched, ref = delta_ref
    for rule in rules:
        rule["role"] = "coordinator"
    plan = {"seed": seed, "rules": rules}
    try:
        res, _degraded = _delta_under_plan(net, start, sched, plan)
    except (RemoteError, RemoteWorkerError, WireError):
        return
    _assert_delta_identical(res, ref, net)


# ----------------------------------------------------------------------
# 6. Session plumbing: degraded events ride the reports
# ----------------------------------------------------------------------


class TestSessionDegraded:
    def test_degraded_rides_the_sigma_report(self):
        from repro.session import EngineSpec, RoutingSession
        net = _net(9)
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_SIGMA_ROUND, "round": 2, "shard": 0}]}
        spec = EngineSpec(engine="remote", remote_workers=2,
                          socket_timeout=1.0, fault_plan=plan)
        with RoutingSession(net, spec) as session:
            report = _watchdog(lambda: session.sigma())
        ref = iterate_sigma_vectorized(
            net, RoutingState.identity(net.algebra, net.n),
            max_rounds=10_000)
        assert report.state.equals(ref.state, net.algebra)
        assert report.degraded and \
            report.degraded[0].code == "worker-respawned"
        assert report.degraded[0].as_dict()["code"] == "worker-respawned"

    def test_clean_remote_run_has_empty_degraded(self):
        from repro.session import EngineSpec, RoutingSession
        net = _net(9)
        spec = EngineSpec(engine="remote", remote_workers=2)
        with RoutingSession(net, spec) as session:
            report = _watchdog(lambda: session.sigma())
        assert report.degraded == ()

    def test_local_rungs_report_none(self):
        from repro.session import EngineSpec, RoutingSession
        net = _net(9)
        with RoutingSession(net, EngineSpec(engine="vectorized")) as s:
            assert s.sigma().degraded is None


# ----------------------------------------------------------------------
# 7. Endpoint probation/rejoin and mid-run delta checkpoints
# ----------------------------------------------------------------------


def _threaded_worker(port=0):
    """A long-lived ``serve_worker`` on a daemon thread; returns the
    bound port once the socket is listening."""
    box = {}
    listening = threading.Event()

    def ready(_host, bound):
        box["port"] = bound
        listening.set()

    threading.Thread(
        target=serve_worker,
        kwargs=dict(host="127.0.0.1", port=port, once=False,
                    ready_callback=ready),
        daemon=True).start()
    assert listening.wait(10), "worker never started listening"
    return box["port"]


class TestEndpointProbation:
    def test_probation_then_rejoin_restores_the_original_layout(
            self, sigma_ref):
        net, start, ref = sigma_ref
        port_a = _threaded_worker()

        # worker B is hand-rolled so the test holds both its accepted
        # connection (to sever it) and its listener (closed right after
        # the accept, so the heal's reconnect is refused -> probation)
        srv_b = socket.socket()
        srv_b.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        srv_b.bind(("127.0.0.1", 0))
        srv_b.listen(1)
        port_b = srv_b.getsockname()[1]
        accepted = {}
        b_serving = threading.Event()

        def b_once():
            conn, _addr = srv_b.accept()
            srv_b.close()
            accepted["conn"] = conn
            b_serving.set()
            _serve_connection(conn)

        threading.Thread(target=b_once, daemon=True).start()

        ep_a, ep_b = ("127.0.0.1", port_a), ("127.0.0.1", port_b)
        eng = RemoteVectorizedEngine(net, endpoints=[ep_a, ep_b],
                                     socket_timeout=2.0, max_retries=8)
        try:
            res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
            _assert_sigma_identical(res, ref, net)
            assert b_serving.wait(10)
            assert eng.workers == 2

            # sever B mid-life: the run trips, the heal cannot
            # reconnect, B is parked and A absorbs every column
            accepted["conn"].close()
            res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
            _assert_sigma_identical(res, ref, net)
            codes = [ev.code for ev in eng.degraded]
            assert "endpoint-probation" in codes
            assert "reshard-after-loss" in codes
            assert eng.workers == 1
            assert eng._shard_endpoints == [ep_a]
            assert ep_b in eng._parked

            # resurrect B on the same port and expire its probation:
            # the next run's reset probes it, re-admits it, and the
            # re-shard lands back on the ORIGINAL column layout
            _threaded_worker(port=port_b)
            eng._parked[ep_b]["next_probe"] = 0.0
            res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
            _assert_sigma_identical(res, ref, net)
            assert "endpoint-rejoined" in [ev.code for ev in eng.degraded]
            assert eng.workers == 2
            assert eng._shard_endpoints == [ep_a, ep_b]
            assert eng._parked == {}
        finally:
            eng.close()

    def test_failed_probe_reparks_with_backoff(self, sigma_ref):
        net, start, ref = sigma_ref
        port_a = _threaded_worker()
        # B never existed as a live worker for this engine: park it by
        # hand to exercise the probe path in isolation
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))
        port_b = dead.getsockname()[1]
        dead.close()                     # nothing listens here any more

        ep_a, ep_b = ("127.0.0.1", port_a), ("127.0.0.1", port_b)
        eng = RemoteVectorizedEngine(net, endpoints=[ep_a, ep_b],
                                     socket_timeout=2.0, max_retries=8)
        try:
            eng._park(ep_b, 1, "a test-injected failure")
            failures = eng._parked[ep_b]["failures"]
            eng._parked[ep_b]["next_probe"] = 0.0
            res = _watchdog(lambda: eng.iterate(start, max_rounds=300))
            _assert_sigma_identical(res, ref, net)
            # the probe failed: still parked, backoff doubled, and no
            # rejoin event was recorded
            assert eng._parked[ep_b]["failures"] == failures + 1
            assert all(ev.code != "endpoint-rejoined"
                       for ev in eng.degraded)
            assert eng._shard_endpoints == [ep_a]
        finally:
            eng.close()


class TestDeltaCheckpoint:
    def test_clean_run_checkpoints_are_invisible(self, delta_ref):
        # checkpoints are pure insurance: with no fault they must not
        # change the trajectory, the counters, or the fixed point
        net, start, sched, ref = delta_ref
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=5.0)
        eng.delta_ckpt_every = 1
        try:
            res = _watchdog(lambda: eng.delta(sched, start, max_steps=300,
                                              window=4))
            _assert_delta_identical(res, ref, net)
            assert eng.delta_ckpt_saves >= 1
            assert eng.delta_ckpt_resumes == 0
            assert eng.degraded == []
        finally:
            eng.close()

    def test_heal_resumes_from_the_checkpoint_not_step_one(self,
                                                           delta_ref):
        # drop a window-2 steps frame: the heal must restart the run
        # from the window-1 checkpoint (t=4), NOT from step 1, and
        # still land on the bit-identical fixed point
        net, start, sched, ref = delta_ref
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_DELTA_STEPS, "round": 3, "shard": 1}]}
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=1.0,
                                     fault_plan=plan)
        eng.delta_ckpt_every = 1
        try:
            res = _watchdog(lambda: eng.delta(sched, start, max_steps=300,
                                              window=4))
            _assert_delta_identical(res, ref, net)
            assert eng.delta_ckpt_saves >= 1
            assert eng.delta_ckpt_resumes == 1
            assert eng.delta_resumed_from == 4
            assert [ev.code for ev in eng.degraded] == ["worker-respawned"]
        finally:
            eng.close()

    def test_checkpoints_off_replays_from_scratch(self, delta_ref):
        # the pre-checkpoint behaviour is one knob away: with the
        # cadence disabled the same window-2 fault heals by full
        # replay (no barriers advance the injector round without
        # checkpoints, so the frame is pinned by send index instead:
        # load=0, delta-init=1, steps w1=2, steps w2=3)
        net, start, sched, ref = delta_ref
        plan = {"seed": 5, "rules": [{
            "kind": "drop", "role": "coordinator", "op": "send",
            "msg_type": MSG_DELTA_STEPS, "msg_index": 3, "shard": 1}]}
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=1.0,
                                     fault_plan=plan)
        eng.delta_ckpt_every = 0
        try:
            res = _watchdog(lambda: eng.delta(sched, start, max_steps=300,
                                              window=4))
            _assert_delta_identical(res, ref, net)
            assert eng.delta_ckpt_saves == 0
            assert eng.delta_ckpt_resumes == 0
            assert [ev.code for ev in eng.degraded] == ["worker-respawned"]
        finally:
            eng.close()
