"""Unit and property tests for the vectorized finite-algebra engine.

Covers the FiniteEncoding protocol (preference-ordered codes, edge
tables, fast-path hooks), the engine's cache-invalidation contract
under mid-run topology mutation (mirror of ``test_topology_cache.py``),
the non-finite guard/fallback behaviour, and Hypothesis properties:
random :class:`~repro.algebras.finite.FiniteLevelAlgebra` lookup-table
networks under random schedules must reproduce the ``strict=True``
history semantics exactly, including ``max_read_back`` ring-buffer
bounding.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebras import (
    BoundedStratifiedAlgebra,
    FiniteLevelAlgebra,
    GaoRexfordAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
    good_gadget,
)
from repro.algebras.stratified import STRAT_INVALID
from repro.core import (
    FixedDelaySchedule,
    Network,
    RandomSchedule,
    RoutingState,
    SynchronousSchedule,
    UnsupportedAlgebraError,
    VectorizedEngine,
    delta_run,
    delta_run_vectorized,
    iterate_sigma,
    iterate_sigma_vectorized,
    supports_vectorized,
)
from repro.protocols.simulator import Simulator
from repro.topologies import erdos_renyi, uniform_weight_factory


def _hop_net(n=10, p=0.3, seed=0, bound=16):
    alg = HopCountAlgebra(bound)
    return erdos_renyi(alg, n, p, uniform_weight_factory(alg, 1, 3),
                       seed=seed)


# ----------------------------------------------------------------------
# FiniteEncoding protocol
# ----------------------------------------------------------------------


class TestFiniteEncoding:
    def test_hop_count_identity_encoding(self):
        alg = HopCountAlgebra(8)
        enc = alg.finite_encoding()
        assert enc.size == 9 and enc.identity
        assert enc.encode(alg.trivial) == enc.trivial_code == 0
        assert enc.encode(alg.invalid) == enc.invalid_code == 8
        for r in alg.routes():
            assert enc.decode(enc.encode(r)) == r

    def test_encoding_is_cached(self):
        alg = FiniteLevelAlgebra(5)
        assert alg.finite_encoding() is alg.finite_encoding()

    def test_stratified_encoding_orders_by_preference(self):
        alg = BoundedStratifiedAlgebra(max_level=2, max_distance=3)
        enc = alg.finite_encoding()
        assert enc.size == 3 * 4 + 1
        assert enc.decode(0) == alg.trivial
        assert enc.decode(enc.invalid_code) == STRAT_INVALID
        # min on codes == ⊕ on routes, for every pair
        universe = list(alg.routes())
        for a in universe:
            for b in universe:
                best = alg.choice(a, b)
                assert enc.encode(best) == min(enc.encode(a), enc.encode(b))

    def test_edge_table_matches_pointwise_application(self):
        alg = BoundedStratifiedAlgebra(max_level=2, max_distance=4)
        rng = random.Random(3)
        enc = alg.finite_encoding()
        for _ in range(10):
            fn = alg.sample_edge_function(rng)
            table = enc.edge_table(fn)
            assert len(table) == enc.size
            for code, route in enumerate(enc.codes):
                assert table[code] == enc.encode(fn(route))

    def test_table_edge_fast_path_is_its_own_table(self):
        alg = FiniteLevelAlgebra(6)
        fn = alg.random_strict_edge(random.Random(1))
        assert alg.finite_encoding().edge_table(fn) == fn.table

    def test_hop_edge_fast_path(self):
        alg = HopCountAlgebra(10)
        fn = alg.edge(3)
        table = alg.finite_encoding().edge_table(fn)
        assert table == [min(c + 3, 10) for c in range(11)]

    def test_non_finite_algebra_raises(self):
        with pytest.raises(UnsupportedAlgebraError, match="not finite"):
            ShortestPathsAlgebra().finite_encoding()

    def test_route_outside_carrier_raises(self):
        enc = HopCountAlgebra(4).finite_encoding()
        with pytest.raises(UnsupportedAlgebraError, match="outside"):
            enc.encode(99)

    def test_incomparable_keys_surface_as_capability_gap(self):
        """A finite algebra whose keys cannot be totally ordered must be
        reported unsupported (selector falls back), not crash with a
        raw TypeError from sort()."""

        class Mixed(HopCountAlgebra):
            def routes(self):
                return iter([0, "one", self.bound])

        alg = Mixed(4)
        with pytest.raises(UnsupportedAlgebraError, match="comparable"):
            alg.finite_encoding()
        assert not supports_vectorized(alg)


class TestStateCodecs:
    def test_round_trip(self):
        net = _hop_net(6, seed=1)
        eng = VectorizedEngine(net)
        rng = random.Random(5)
        state = RoutingState.from_function(
            lambda i, j: net.algebra.sample_route(rng), net.n)
        back = eng.decode_state(eng.encode_state(state))
        assert back.equals(state, net.algebra)

    def test_out_of_carrier_state_rejected(self):
        net = _hop_net(4, seed=1)
        eng = VectorizedEngine(net)
        bad = RoutingState.filled(999, net.n)
        with pytest.raises(UnsupportedAlgebraError):
            eng.encode_state(bad)

    def test_float_routes_rejected_not_truncated(self):
        """The identity fast path must not cast 2.5 → 2 (or -0.5 → 0):
        a silently truncated start state would diverge from the
        reference engines with no error."""
        net = _hop_net(4, seed=1)
        eng = VectorizedEngine(net)
        for value in (2.5, -0.5):
            with pytest.raises(UnsupportedAlgebraError):
                eng.encode_state(RoutingState.filled(value, net.n))

    def test_wide_int_routes_rejected_not_wrapped(self):
        """Bounds are checked before the int32 cast: 2**32 must raise,
        not wrap modulo 2³² into the trivial route."""
        net = _hop_net(4, seed=1)
        eng = VectorizedEngine(net)
        with pytest.raises(UnsupportedAlgebraError):
            eng.encode_state(RoutingState.filled(2 ** 32, net.n))


# ----------------------------------------------------------------------
# Non-finite guard / fallback (satellite)
# ----------------------------------------------------------------------


class TestNonFiniteGuard:
    def test_spp_engine_construction_raises(self):
        with pytest.raises(UnsupportedAlgebraError):
            VectorizedEngine(good_gadget())

    def test_gao_rexford_engine_construction_raises(self):
        alg = GaoRexfordAlgebra(n_nodes=4)
        with pytest.raises(UnsupportedAlgebraError):
            VectorizedEngine(Network(alg, 4))

    def test_supports_vectorized_flags(self):
        assert supports_vectorized(HopCountAlgebra(16))
        assert supports_vectorized(FiniteLevelAlgebra(4))
        assert supports_vectorized(BoundedStratifiedAlgebra(2, 5))
        assert not supports_vectorized(ShortestPathsAlgebra())
        assert not supports_vectorized(good_gadget().algebra)
        assert not supports_vectorized(GaoRexfordAlgebra(n_nodes=4))

    def test_sigma_selector_falls_back_silently(self):
        alg = ShortestPathsAlgebra()
        net = erdos_renyi(alg, 8, 0.3, uniform_weight_factory(alg, 1, 5),
                          seed=2)
        start = RoutingState.identity(alg, net.n)
        vec = iterate_sigma(net, start, engine="vectorized")
        inc = iterate_sigma(net, start, engine="incremental")
        assert vec.converged and vec.rounds == inc.rounds
        assert vec.state.equals(inc.state, alg)

    def test_delta_selector_falls_back_silently(self):
        net = good_gadget()
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=1, max_delay=3)
        vec = delta_run(net, sched, start, max_steps=400, engine="vectorized")
        inc = delta_run(net, sched, start, max_steps=400)
        assert vec.converged == inc.converged
        assert vec.converged_at == inc.converged_at
        assert vec.state.equals(inc.state, net.algebra)

    def test_unknown_engine_rejected_everywhere(self):
        net = _hop_net(4)
        start = RoutingState.identity(net.algebra, net.n)
        with pytest.raises(ValueError):
            iterate_sigma(net, start, engine="quantum")
        with pytest.raises(ValueError):
            delta_run(net, SynchronousSchedule(net.n), start, engine="quantum")
        with pytest.raises(ValueError):
            Simulator(net, engine="quantum")


# ----------------------------------------------------------------------
# Cache invalidation under mid-run topology mutation (satellite)
# ----------------------------------------------------------------------


class TestVectorizedCacheInvalidation:
    """Mirror of ``test_topology_cache.py`` for the engine's edge-table
    snapshot: a stale table after set_edge / remove_edge would silently
    compute fixed points for the old topology."""

    def test_set_edge_mid_run_invalidates_tables(self):
        net = _hop_net(10, seed=3)
        alg = net.algebra
        eng = VectorizedEngine(net)
        fp = iterate_sigma_vectorized(net, RoutingState.identity(alg, net.n),
                                      engine=eng).state
        net.set_edge(0, net.n - 1, alg.edge(1))
        net.set_edge(net.n - 1, 0, alg.edge(1))
        fp2 = iterate_sigma_vectorized(net, fp, engine=eng).state
        ref = iterate_sigma(net, fp, engine="naive").state
        assert fp2.equals(ref, alg)
        assert not fp2.equals(fp, alg)       # the shortcut was visible

    def test_remove_edge_mid_run_invalidates_tables(self):
        net = _hop_net(10, seed=4)
        alg = net.algebra
        eng = VectorizedEngine(net)
        start = RoutingState.identity(alg, net.n)
        fp = iterate_sigma_vectorized(net, start, engine=eng).state
        i, k = next(iter(net.present_edges()))
        net.remove_edge(i, k)
        fp2 = iterate_sigma_vectorized(net, fp, engine=eng).state
        ref = iterate_sigma(net, fp, engine="naive").state
        assert fp2.equals(ref, alg)

    def test_replacing_edge_function_refreshes_table(self):
        """The id()-reuse trap: a replaced edge function must never be
        served from a previous snapshot's table."""
        alg = HopCountAlgebra(16)
        net = Network(alg, 3)
        net.set_edge(0, 1, alg.edge(1))
        net.set_edge(1, 0, alg.edge(1))
        net.set_edge(1, 2, alg.edge(1))
        net.set_edge(2, 1, alg.edge(1))
        eng = VectorizedEngine(net)
        fp = iterate_sigma_vectorized(
            net, RoutingState.identity(alg, net.n), engine=eng).state
        assert fp.get(0, 2) == 2
        net.set_edge(0, 1, alg.edge(5))
        fp2 = iterate_sigma_vectorized(net, fp, engine=eng).state
        assert fp2.get(0, 2) == 6

    def test_delta_after_topology_change(self):
        net = _hop_net(8, p=0.35, seed=5)
        alg = net.algebra
        eng = VectorizedEngine(net)
        sched = RandomSchedule(net.n, seed=2, max_delay=4)
        start = RoutingState.identity(alg, net.n)
        mid = delta_run_vectorized(net, sched, start, max_steps=500,
                                   engine=eng)
        assert mid.converged
        net.set_edge(0, net.n - 1, alg.edge(1))
        vec = delta_run_vectorized(net, sched, mid.state, max_steps=500,
                                   engine=eng)
        strict = delta_run(net, sched, mid.state, max_steps=500, strict=True)
        assert vec.converged and strict.converged
        assert vec.state.equals(strict.state, alg)

    def test_simulator_vectorized_stability_follows_changes(self):
        net = _hop_net(8, p=0.4, seed=6)
        sim = Simulator(net, seed=0, engine="vectorized")
        res = sim.run(RoutingState.identity(net.algebra, net.n),
                      max_time=5_000.0)
        assert res.converged
        # the cached engine must notice a post-run topology change
        net.set_edge(0, net.n - 1, net.algebra.edge(1))
        assert not sim._is_sigma_stable(res.final_state)


# ----------------------------------------------------------------------
# δ memory bounding
# ----------------------------------------------------------------------


class TestBoundedHistorySemantics:
    def test_ring_buffer_sized_by_max_read_back(self):
        net = _hop_net(10, seed=7)
        sched = RandomSchedule(net.n, seed=1, max_delay=5)
        start = RoutingState.identity(net.algebra, net.n)
        res = delta_run_vectorized(net, sched, start, max_steps=600)
        assert res.converged
        assert res.history_retained <= sched.max_read_back() + 2

    def test_unbounded_schedule_keeps_full_history(self):
        class HalfTime(SynchronousSchedule):
            def beta(self, t, i, j):
                return t // 2

            def max_read_back(self):
                return None

        net = _hop_net(6, p=0.4, seed=8)
        start = RoutingState.identity(net.algebra, net.n)
        res = delta_run_vectorized(net, HalfTime(net.n), start, max_steps=300)
        assert res.converged
        assert res.history_retained == res.steps + 1

    def test_keep_history_returns_decoded_states(self):
        net = _hop_net(6, p=0.4, seed=9)
        sched = FixedDelaySchedule(net.n, delay=2)
        start = RoutingState.identity(net.algebra, net.n)
        vec = delta_run_vectorized(net, sched, start, max_steps=300,
                                   keep_history=True)
        ref = delta_run(net, sched, start, max_steps=300, keep_history=True)
        assert vec.converged and len(vec.history) == len(ref.history)
        for mine, theirs in zip(vec.history, ref.history):
            assert mine.equals(theirs, net.algebra)


# ----------------------------------------------------------------------
# Hypothesis: random finite tables × random schedules ≡ strict (satellite)
# ----------------------------------------------------------------------


@st.composite
def finite_table_networks(draw):
    """A FiniteLevelAlgebra network with *arbitrary* lookup tables.

    Tables only fix g(m) = m, so the draw space includes strictly
    increasing tables, plateaus, filters and outright non-increasing
    policies — the vectorized δ must mirror strict semantics on all of
    them, converging or not.
    """
    levels = draw(st.integers(min_value=2, max_value=6))
    n = draw(st.integers(min_value=3, max_value=6))
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    arcs = draw(st.lists(st.sampled_from(pairs), unique=True,
                         min_size=n, max_size=len(pairs)))
    alg = FiniteLevelAlgebra(levels)
    net = Network(alg, n, name="hypothesis-finite")
    for (i, j) in arcs:
        table = draw(st.lists(st.integers(0, levels), min_size=levels,
                              max_size=levels))
        net.set_edge(i, j, alg.table_edge(table + [levels]))
    return net


@st.composite
def schedules_for(draw, n):
    kind = draw(st.sampled_from(["random", "sync", "fixed"]))
    if kind == "sync":
        return SynchronousSchedule(n)
    if kind == "fixed":
        return FixedDelaySchedule(n, delay=draw(st.integers(1, 4)))
    return RandomSchedule(n, seed=draw(st.integers(0, 2 ** 16)),
                          activation_prob=draw(st.sampled_from([0.3, 0.6, 1.0])),
                          max_delay=draw(st.integers(1, 4)))


class TestHypothesisDeltaEquivalence:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_vectorized_delta_matches_strict_history(self, data):
        net = data.draw(finite_table_networks())
        sched = data.draw(schedules_for(net.n))
        start = RoutingState.identity(net.algebra, net.n)
        strict = delta_run(net, sched, start, max_steps=60, strict=True,
                           keep_history=True)
        vec = delta_run_vectorized(net, sched, start, max_steps=60,
                                   keep_history=True)
        assert vec.converged == strict.converged
        assert vec.steps == strict.steps
        assert vec.converged_at == strict.converged_at
        assert len(vec.history) == len(strict.history)
        for t, (mine, theirs) in enumerate(zip(vec.history, strict.history)):
            assert mine.equals(theirs, net.algebra), f"δ^{t} differs"

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_bounded_ring_buffer_matches_strict_fixed_point(self, data):
        net = data.draw(finite_table_networks())
        sched = data.draw(schedules_for(net.n))
        start = RoutingState.identity(net.algebra, net.n)
        strict = delta_run(net, sched, start, max_steps=60, strict=True)
        vec = delta_run_vectorized(net, sched, start, max_steps=60)
        assert vec.converged == strict.converged
        assert vec.steps == strict.steps
        assert vec.state.equals(strict.state, net.algebra)
        mrb = sched.max_read_back()
        assert mrb is not None
        assert vec.history_retained <= mrb + 2

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_vectorized_sigma_matches_naive_trajectory(self, data):
        from repro.core import sigma

        net = data.draw(finite_table_networks())
        eng = VectorizedEngine(net)
        state = RoutingState.identity(net.algebra, net.n)
        for _ in range(8):
            nxt = sigma(net, state)
            assert eng.sigma(state).equals(nxt, net.algebra)
            state = nxt
