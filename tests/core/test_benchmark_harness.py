"""Smoke coverage for benchmarks/run_benchmarks.py.

Tier-1 runs only the tiny ``smoke`` scale (a second or two); the real
suites are invoked explicitly (``--quick`` / full) and the full-scale
pytest entry is gated behind the ``perfbench`` marker, which
``pytest.ini`` deselects by default.
"""

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(BENCH_DIR))

import run_benchmarks  # noqa: E402


class TestSmokeSuite:
    def test_smoke_suite_agrees_and_bounds_memory(self):
        report = run_benchmarks.run_suite("smoke", repeats=1)
        assert report["meta"]["all_fixed_points_equal"]
        assert report["sigma"] and report["delta"]
        # smoke stays pool-free, but the columns must exist in the schema
        assert "parallel" in report
        assert "batched" in report
        assert "remote" in report
        assert "service" in report
        assert "windowed_ipc" in report
        assert "scenarios" in report
        assert report["meta"]["cpu_count"] >= 1
        for row in report["sigma"]:
            assert row["fixed_points_equal"], row["case"]
            assert row["converged"], row["case"]
        for row in report["delta"]:
            assert row["fixed_points_equal"], row["case"]
            assert row["memory_bounded"], row["case"]
            assert (row["bounded_history_retained"]
                    <= row["max_read_back"] + 2), row["case"]

    def test_main_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = run_benchmarks.main(["--smoke", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["meta"]["scale"] == "smoke"
        assert capsys.readouterr().out      # the table was printed

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks.run_suite("galactic")


class TestCommittedBaseline:
    """BENCH_core.json is the committed perf trajectory; keep it honest."""

    def test_committed_report_meets_acceptance(self):
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        assert report["meta"]["all_fixed_points_equal"]
        headline = [r for r in report["sigma"] if r.get("headline")]
        assert headline, "headline n=100 sparse random case missing"
        for row in headline:
            assert row["n"] >= 100
            assert row["speedup"] >= 10, row
        for row in report["delta"]:
            assert row["memory_bounded"], row
            assert (row["bounded_history_retained"]
                    <= row["max_read_back"] + 2), row

    def test_committed_parallel_column(self):
        """The PR 3 column: a headline row must exist, carry agreement
        evidence, and meet the hardware-aware floor (the full ≥ 2×
        acceptance floor when the baseline host's σ-kernel scaling
        ceiling allows it, 80% of the measured memory-bandwidth ceiling
        otherwise — see ``run_benchmarks.parallel_floor``)."""
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        rows = report.get("parallel", [])
        headline = [r for r in rows if r.get("headline_parallel")]
        assert headline, "parallel headline (n >= 400) case missing"
        for row in rows:
            assert row["fixed_points_equal"], row["case"]
        floor, _reason = run_benchmarks.parallel_floor(report["meta"])
        for row in headline:
            assert row["n"] >= 400
            if row.get("skipped"):
                # single-core baseline host: the skip must say why
                assert "single-core" in row["skipped"]
                continue
            if floor is not None:
                best = max((p["vs_vectorized"] or 0.0)
                           for p in row["scaling"] if p["workers"] >= 4)
                assert best >= floor, (row, floor)


class TestCommittedBatchedColumn:
    """The PR 4 columns: batched-grid headline and windowed-δ IPC."""

    def test_committed_batched_headline(self):
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        rows = report.get("batched", [])
        headline = [r for r in rows if r.get("headline_batched")]
        assert headline, "batched headline (n=100 grid) case missing"
        for row in rows:
            assert row["fixed_points_equal"], row["case"]
        for row in headline:
            assert row["n"] >= 100
            assert row["trials"] >= 16
            assert row["batched_vs_loop"] >= \
                run_benchmarks.BATCHED_HEADLINE_FLOOR, row

    def test_committed_remote_headline(self):
        """The PR 6 column: the gnp-400 remote headline must carry
        bit-identity evidence and keep the delta-encoded σ updates at
        least ``REMOTE_COMPRESSION_FLOOR`` times smaller than a naive
        full-column transfer."""
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        rows = report.get("remote", [])
        headline = [r for r in rows if r.get("headline_remote")]
        assert headline, "remote headline (gnp-400) case missing"
        for row in rows:
            assert row["fixed_points_equal"], row["case"]
        for row in headline:
            assert row["n"] >= 400
            if row.get("skipped"):
                continue
            assert row["workers"] >= 2
            assert row["compression_ratio"] >= \
                run_benchmarks.REMOTE_COMPRESSION_FLOOR, row
            assert row["bytes_per_round"] <= \
                row["bytes_per_round_ceiling"], row
            # protocol barriers include the init/fetch cycles, so the
            # wire round count can only exceed the σ round count
            assert row["sigma_wire"]["rounds"] >= row["rounds"]

    def test_committed_service_headline(self):
        """The PR 7 column: the 200-client service headline must serve
        warm-cache repeated queries ≥ ``SERVICE_CACHE_FLOOR`` times
        faster than cold computes, error-free, with the served fixed
        point bit-identical to a direct session run."""
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        rows = report.get("service", [])
        headline = [r for r in rows if r.get("headline_service")]
        assert headline, "service headline (200 clients) case missing"
        for row in rows:
            assert row["fixed_points_equal"], row["case"]
            assert row["server_errors"] == 0, row["case"]
        for row in headline:
            assert row["clients"] >= 100
            assert row["cache_hit_speedup"] >= \
                run_benchmarks.SERVICE_CACHE_FLOOR, row
            assert 0.0 < row["cache_hit_ratio"] <= 1.0
            assert row["warm_ms"]["p99"] >= row["warm_ms"]["p50"]

    def test_committed_scenarios_column(self):
        """The PR 10 column: the full (topology × event × algebra)
        survey headline must run every cell through the per-trial
        session-replay oracle with zero failures — bit-identity between
        the batched grid path and ``RoutingSession.replay``."""
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        rows = report.get("scenarios", [])
        headline = [r for r in rows if r.get("headline_scenarios")]
        assert headline, "scenarios headline (full survey grid) missing"
        for row in rows:
            assert row["fixed_points_equal"], row["case"]
            assert row["failed_cells"] == 0, row["case"]
            assert row["failures"] == [], row["case"]
        for row in headline:
            # acceptance floor: >= 6 topologies x >= 4 events x
            # >= 2 algebras, every cell oracle-checked
            assert row["cells"] >= 48, row
            assert row["oracle_checked"] == row["cells"], row

    def test_committed_windowed_ipc(self):
        path = BENCH_DIR.parent / "BENCH_core.json"
        report = json.loads(path.read_text())
        rows = report.get("windowed_ipc", [])
        assert rows, "windowed-IPC row missing"
        for row in rows:
            assert row["fixed_points_equal"], row["case"]
            if row["delta_steps"] >= 4 * row["window"]:
                assert row["steps_per_command"] >= \
                    run_benchmarks.WINDOWED_IPC_FLOOR, row


@pytest.mark.perfbench
class TestFullQuickSuite:
    """Deselected in tier-1 (see pytest.ini); run with -m perfbench."""

    def test_quick_suite(self):
        report = run_benchmarks.run_suite("quick", repeats=1)
        assert report["meta"]["all_fixed_points_equal"]
