"""Unit tests for paths: ⊥, extension guards, weight, S_c enumeration."""

import pytest

from repro.algebras import AddPaths, ShortestPathsAlgebra
from repro.core import (
    BOTTOM,
    Network,
    all_simple_paths_to,
    can_extend,
    dst,
    enumerate_consistent_routes,
    extend,
    is_simple,
    is_valid_path,
    length,
    src,
    weight,
)


class TestBottom:
    def test_singleton(self):
        from repro.core.paths import _Bottom

        assert _Bottom() is BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_not_a_valid_path(self):
        assert not is_valid_path(BOTTOM)
        assert is_valid_path(())
        assert is_valid_path((1, 2))


class TestPathAccessors:
    def test_src_dst_of_real_path(self):
        assert src((3, 2, 0)) == 3
        assert dst((3, 2, 0)) == 0

    def test_src_dst_of_empty_and_bottom(self):
        assert src(()) is None and dst(()) is None
        assert src(BOTTOM) is None and dst(BOTTOM) is None

    def test_length_counts_edges(self):
        assert length(()) == 0
        assert length((1, 0)) == 1
        assert length((3, 2, 1, 0)) == 3
        assert length(BOTTOM) == 0

    def test_is_simple(self):
        assert is_simple((3, 2, 0))
        assert not is_simple((3, 2, 3))
        assert is_simple(())
        assert is_simple(BOTTOM)


class TestExtension:
    """P3's guards: the edge must plug into the source; no loops."""

    def test_extend_empty_path(self):
        assert extend(1, 0, ()) == (1, 0)

    def test_extend_empty_path_self_loop_rejected(self):
        assert extend(2, 2, ()) is BOTTOM

    def test_extend_matching_source(self):
        assert extend(3, 2, (2, 0)) == (3, 2, 0)

    def test_extend_mismatched_source_rejected(self):
        # edge (3, 1) cannot extend a path starting at 2
        assert extend(3, 1, (2, 0)) is BOTTOM

    def test_extend_loop_rejected(self):
        assert extend(0, 2, (2, 1, 0)) is BOTTOM

    def test_extend_bottom_rejected(self):
        assert extend(1, 0, BOTTOM) is BOTTOM

    def test_can_extend_agrees_with_extend(self):
        cases = [(1, 0, ()), (2, 2, ()), (3, 2, (2, 0)), (3, 1, (2, 0)),
                 (0, 2, (2, 1, 0)), (1, 0, BOTTOM)]
        for (i, j, p) in cases:
            assert can_extend(i, j, p) == (extend(i, j, p) is not BOTTOM)


def line_network(n=4, w=1):
    base = ShortestPathsAlgebra()
    alg = AddPaths(base, n_nodes=n)
    net = Network(alg, n)
    for i in range(n - 1):
        net.set_edge(i, i + 1, alg.edge(i, i + 1, base.edge(w)))
        net.set_edge(i + 1, i, alg.edge(i + 1, i, base.edge(w)))
    return net, alg, base


class TestWeight:
    """weight(p) folds the adjacency matrix along p (Section 5.1)."""

    def test_weight_of_bottom_is_invalid(self):
        net, alg, _ = line_network()
        assert alg.equal(weight(alg, net, BOTTOM), alg.invalid)

    def test_weight_of_empty_is_trivial(self):
        net, alg, _ = line_network()
        assert alg.equal(weight(alg, net, ()), alg.trivial)

    def test_weight_of_line_path(self):
        net, alg, base = line_network(4, w=2)
        # path 3 -> 2 -> 1 -> 0 has base value 6 in the lifted algebra
        r = weight(alg, net, (3, 2, 1, 0))
        assert r == (6, (3, 2, 1, 0))

    def test_weight_of_missing_edge_path_is_invalid(self):
        net, alg, _ = line_network(4)
        # (0, 2) is not an edge of the line
        assert alg.equal(weight(alg, net, (0, 2)), alg.invalid)


class TestSimplePathEnumeration:
    def test_line_paths_to_end(self):
        net, _, _ = line_network(4)
        paths = set(all_simple_paths_to(net, 0))
        assert (1, 0) in paths
        assert (3, 2, 1, 0) in paths
        # no loops, all end at 0
        for p in paths:
            assert p[-1] == 0
            assert len(set(p)) == len(p)

    def test_count_on_line(self):
        net, _, _ = line_network(4)
        # on a line the simple paths to node 0 are exactly the prefixes:
        # (1,0), (2,1,0), (3,2,1,0)
        assert len(list(all_simple_paths_to(net, 0))) == 3

    def test_max_len_cap(self):
        net, _, _ = line_network(4)
        paths = list(all_simple_paths_to(net, 0, max_len=1))
        assert paths == [(1, 0)]


class TestConsistentRoutes:
    def test_contains_distinguished_routes(self):
        net, alg, _ = line_network(3)
        sc = enumerate_consistent_routes(alg, net)
        assert any(alg.equal(r, alg.invalid) for r in sc)
        assert any(alg.equal(r, alg.trivial) for r in sc)

    def test_all_enumerated_routes_are_consistent(self):
        net, alg, _ = line_network(3)
        for r in enumerate_consistent_routes(alg, net):
            assert alg.is_consistent(r, net)

    def test_inconsistent_route_detected(self):
        net, alg, _ = line_network(3)
        ghost = (42, (2, 1, 0))   # the path exists but its weight is 2
        assert not alg.is_consistent(ghost, net)

    def test_per_destination_filter(self):
        net, alg, _ = line_network(4)
        sc0 = enumerate_consistent_routes(alg, net, dest=0)
        for r in sc0:
            if alg.is_valid(r) and not alg.equal(r, alg.trivial):
                assert r[1][-1] == 0
