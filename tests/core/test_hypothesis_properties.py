"""Property-based tests (hypothesis) over the space of finite algebras.

Theorems 7/11 quantify over *all* algebras satisfying their hypotheses;
hand-picked examples cannot cover that.  These strategies generate
arbitrary finite chain algebras with arbitrary strictly-increasing
table edges and arbitrary small topologies, then check the paper's
invariants on every draw:

* the Table 1 laws of the construction,
* Lemma 1 (diagonals), Lemma 5 (ultrametric axioms), Lemma 6 (strict
  contraction),
* the Theorem 7 conclusion itself: σ and δ converge from arbitrary
  states to one fixed point.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebras import FiniteLevelAlgebra
from repro.core import (
    DistanceVectorUltrametric,
    Network,
    RandomSchedule,
    RoutingState,
    check_ultrametric_axioms,
    delta_run,
    is_stable,
    iterate_sigma,
    sigma,
)

LEVELS = 5   # carrier {0..5}: small enough for exhaustive sub-checks


@st.composite
def strict_tables(draw):
    """A lookup table g with g(x) > x (strictly increasing) and g(m)=m."""
    table = [draw(st.integers(min_value=x + 1, max_value=LEVELS))
             for x in range(LEVELS)]
    table.append(LEVELS)
    return table


@st.composite
def small_networks(draw):
    """A connected-ish digraph on 3–4 nodes with strict table edges."""
    alg = FiniteLevelAlgebra(LEVELS)
    n = draw(st.integers(min_value=3, max_value=4))
    net = Network(alg, n)
    # ring backbone guarantees strong connectivity
    for i in range(n):
        net.set_edge(i, (i + 1) % n,
                     alg.table_edge(draw(strict_tables())))
        net.set_edge((i + 1) % n, i,
                     alg.table_edge(draw(strict_tables())))
    # optional chords
    for i in range(n):
        for j in range(n):
            if i != j and not net.adjacency.has_edge(i, j):
                if draw(st.booleans()):
                    net.set_edge(i, j, alg.table_edge(draw(strict_tables())))
    return net


@st.composite
def states_for(draw, n):
    rows = [[draw(st.integers(min_value=0, max_value=LEVELS))
             for _ in range(n)] for _ in range(n)]
    return RoutingState(rows)


class TestTableEdgeProperties:
    @given(strict_tables())
    def test_generated_tables_are_strict(self, table):
        alg = FiniteLevelAlgebra(LEVELS)
        edge = alg.table_edge(table)
        assert edge.is_strictly_increasing
        for x in range(LEVELS):
            assert alg.lt(x, edge(x))

    @given(strict_tables(), strict_tables())
    def test_strict_edges_compose_to_strict(self, t1, t2):
        """Closure under composition — route-map stacking stays safe."""
        from repro.core import ComposedEdge

        alg = FiniteLevelAlgebra(LEVELS)
        f = ComposedEdge(alg.table_edge(t1), alg.table_edge(t2))
        for x in range(LEVELS):
            assert alg.lt(x, f(x))
        assert f(LEVELS) == LEVELS


class TestUltrametricProperties:
    @given(st.lists(st.integers(min_value=0, max_value=LEVELS),
                    min_size=3, max_size=6))
    def test_axioms_on_arbitrary_route_samples(self, routes):
        alg = FiniteLevelAlgebra(LEVELS)
        metric = DistanceVectorUltrametric(alg)
        for outcome in check_ultrametric_axioms(metric, routes):
            assert outcome.holds, outcome


class TestSigmaProperties:
    @settings(max_examples=25, deadline=None)
    @given(small_networks(), st.data())
    def test_lemma1_diagonal(self, net, data):
        X = data.draw(states_for(net.n))
        out = sigma(net, X)
        for i in range(net.n):
            assert out.get(i, i) == net.algebra.trivial

    @settings(max_examples=25, deadline=None)
    @given(small_networks(), st.data())
    def test_lemma6_strict_contraction(self, net, data):
        metric = DistanceVectorUltrametric(net.algebra)
        X = data.draw(states_for(net.n))
        Y = data.draw(states_for(net.n))
        if X.equals(Y, net.algebra):
            return
        before = metric.state_distance(X, Y)
        after = metric.state_distance(sigma(net, X), sigma(net, Y))
        assert before > after

    @settings(max_examples=25, deadline=None)
    @given(small_networks(), st.data())
    def test_theorem7_sync_unique_fixed_point(self, net, data):
        alg = net.algebra
        ref = iterate_sigma(net, RoutingState.identity(alg, net.n))
        assert ref.converged
        X = data.draw(states_for(net.n))
        res = iterate_sigma(net, X)
        assert res.converged
        assert res.state.equals(ref.state, alg)
        assert is_stable(net, res.state)

    @settings(max_examples=10, deadline=None)
    @given(small_networks(), st.data(),
           st.integers(min_value=0, max_value=999))
    def test_theorem7_async_absolute(self, net, data, seed):
        alg = net.algebra
        ref = iterate_sigma(net, RoutingState.identity(alg, net.n)).state
        X = data.draw(states_for(net.n))
        res = delta_run(net, RandomSchedule(net.n, seed=seed), X,
                        max_steps=600)
        assert res.converged
        assert res.state.equals(ref, alg)

    @settings(max_examples=25, deadline=None)
    @given(small_networks(), st.data())
    def test_convergence_within_certified_bound(self, net, data):
        """Lemma 2's chain argument: rounds ≤ H."""
        from repro.analysis import dv_bounds

        bound = dv_bounds(net.algebra).sync_round_bound
        X = data.draw(states_for(net.n))
        res = iterate_sigma(net, X, max_rounds=bound + 1)
        assert res.converged
        assert res.rounds <= bound
