"""Unit tests for σ (Section 2.2–2.3): Lemma 1, stability, iteration."""

import pytest

from repro.algebras import HopCountAlgebra, LongestPathsAlgebra
from repro.core import (
    Network,
    RoutingState,
    is_stable,
    iterate_sigma,
    sigma,
    sigma_entry,
    synchronous_fixed_point,
)
from tests.conftest import hop_net


class TestSigma:
    def test_diagonal_is_trivial_after_one_round(self):
        """Lemma 1: σ(X)[i][i] = 0̄ for every X."""
        net = hop_net(4)
        alg = net.algebra
        garbage = RoutingState.filled(7, 4)
        out = sigma(net, garbage)
        for i in range(4):
            assert out.get(i, i) == alg.trivial

    def test_one_round_from_identity_learns_neighbours(self):
        net = hop_net(4, weight=1)
        alg = net.algebra
        out = sigma(net, RoutingState.identity(alg, 4))
        # after one round each node knows its ring neighbours at cost 1
        assert out.get(0, 1) == 1
        assert out.get(0, 3) == 1
        # and nothing else yet
        assert out.get(0, 2) == alg.invalid

    def test_sigma_entry_matches_sigma(self):
        net = hop_net(5, weight=2)
        X = RoutingState.identity(net.algebra, 5)
        full = sigma(net, X)
        for i in range(5):
            for j in range(5):
                assert sigma_entry(net, X, i, j) == full.get(i, j)

    def test_shortest_distances_on_ring(self):
        net = hop_net(6, weight=1)
        fp = synchronous_fixed_point(net)
        # ring distances: min(|i-j|, 6-|i-j|)
        for i in range(6):
            for j in range(6):
                d = min(abs(i - j), 6 - abs(i - j))
                assert fp.get(i, j) == d


class TestStability:
    def test_fixed_point_is_stable(self):
        net = hop_net(4)
        fp = synchronous_fixed_point(net)
        assert is_stable(net, fp)

    def test_identity_is_not_stable_on_connected_net(self):
        net = hop_net(4)
        assert not is_stable(net, RoutingState.identity(net.algebra, 4))


class TestIterateSigma:
    def test_rounds_zero_for_stable_start(self):
        net = hop_net(4)
        fp = synchronous_fixed_point(net)
        res = iterate_sigma(net, fp)
        assert res.converged and res.rounds == 0

    def test_trajectory_recorded(self):
        net = hop_net(4)
        res = iterate_sigma(net, RoutingState.identity(net.algebra, 4),
                            keep_trajectory=True)
        assert res.converged
        assert len(res.trajectory) >= res.rounds
        assert res.trajectory[-1].equals(res.state, net.algebra) or \
            res.trajectory[-2].equals(res.state, net.algebra)

    def test_fixed_point_property_raises_when_diverged(self):
        # count-to-infinity: genuinely never stabilises
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        res = iterate_sigma(net, stale, max_rounds=20)
        assert not res.converged
        with pytest.raises(ValueError):
            _ = res.fixed_point

    def test_max_rounds_respected(self):
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        res = iterate_sigma(net, stale, max_rounds=7)
        assert res.rounds == 7

    def test_longest_paths_converges_to_garbage(self):
        """Longest paths does not diverge — it converges to the useless
        all-∞ state, because the trivial route (numeric ∞) is an
        annihilator and propagates everywhere.  The algebra's failure
        mode is wrong answers, not non-termination."""
        alg = LongestPathsAlgebra()
        net = Network(alg, 2)
        net.set_edge(0, 1, alg.edge(1))
        net.set_edge(1, 0, alg.edge(1))
        res = iterate_sigma(net, RoutingState.identity(alg, 2))
        assert res.converged
        assert all(r == alg.trivial for (_i, _j, r) in res.state.entries())


class TestConvergenceFromArbitraryStates:
    """Theorem 7's synchronous shadow: finite strictly increasing ⇒
    σ converges from garbage states too."""

    @pytest.mark.parametrize("fill", [0, 3, 7, 16])
    def test_converges_from_constant_states(self, fill):
        net = hop_net(4, bound=16)
        res = iterate_sigma(net, RoutingState.filled(fill, 4))
        assert res.converged

    def test_same_fixed_point_from_different_starts(self, rng):
        from repro.core import random_state

        net = hop_net(4, bound=16)
        alg = net.algebra
        reference = synchronous_fixed_point(net)
        for _ in range(10):
            start = random_state(alg, 4, rng)
            res = iterate_sigma(net, start)
            assert res.converged
            assert res.state.equals(reference, alg)
