"""Unit tests for the cached NetworkTopology / sorted-edge view.

The caches replace per-call O(E log E) neighbour derivation, so the
tests focus on (a) correctness against a brute-force scan and (b)
invalidation on every mutation path — a stale cache here would corrupt
every engine at once.
"""

import random

import pytest

from repro.algebras import HopCountAlgebra, ShortestPathsAlgebra
from repro.core import Network, NetworkTopology, RoutingState
from repro.protocols.simulator import Simulator
from repro.topologies import erdos_renyi, uniform_weight_factory


def _random_net(n=15, p=0.2, seed=0):
    alg = ShortestPathsAlgebra()
    return erdos_renyi(alg, n, p, uniform_weight_factory(alg, 1, 5), seed=seed)


def _brute_in(net, i):
    return [k for (a, k) in sorted(net.adjacency._edges) if a == i]


def _brute_out(net, k):
    return [i for (a, b) in sorted(net.adjacency._edges) if b == k for i in [a]]


class TestNetworkTopology:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force(self, seed):
        net = _random_net(seed=seed)
        topo = net.topology
        for i in range(net.n):
            assert topo.in_neighbours[i] == _brute_in(net, i)
            assert topo.out_neighbours[i] == _brute_out(net, i)
            assert net.neighbours_in(i) == _brute_in(net, i)
            assert net.neighbours_out(i) == _brute_out(net, i)
            assert [k for (k, _fn) in topo.in_edges[i]] == _brute_in(net, i)
            for k, fn in topo.in_edges[i]:
                assert fn is net.edge(i, k)

    def test_snapshot_is_cached(self):
        net = _random_net()
        assert net.topology is net.topology
        assert net.adjacency.topology is net.topology

    def test_set_edge_invalidates(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 4)
        net.set_edge(0, 1, alg.edge(1))
        before = net.topology
        net.set_edge(2, 1, alg.edge(1))
        after = net.topology
        assert after is not before
        assert after.out_neighbours[1] == [0, 2]
        assert net.neighbours_in(2) == [1]

    def test_replacing_edge_function_invalidates(self):
        """set_edge on an existing pair must refresh in_edges — a stale
        edge-function snapshot would apply the old policy forever."""
        alg = HopCountAlgebra(16)
        net = Network(alg, 3)
        net.set_edge(0, 1, alg.edge(1))
        assert net.topology.in_edges[0][0][1](0) == 1
        net.set_edge(0, 1, alg.edge(5))
        assert net.topology.in_edges[0][0][1](0) == 5

    def test_remove_edge_invalidates(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 4)
        net.set_edge(0, 1, alg.edge(1))
        net.set_edge(0, 2, alg.edge(1))
        net.remove_edge(0, 1)
        assert net.neighbours_in(0) == [2]
        assert net.topology.out_neighbours[1] == []

    def test_removing_absent_edge_keeps_cache(self):
        net = _random_net()
        before = net.adjacency.version
        topo = net.topology
        net.remove_edge(0, 0)        # nothing installed there
        assert net.adjacency.version == before
        assert net.topology is topo

    def test_version_monotonic(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 3)
        v0 = net.adjacency.version
        net.set_edge(0, 1, alg.edge(1))
        v1 = net.adjacency.version
        net.remove_edge(0, 1)
        v2 = net.adjacency.version
        assert v0 < v1 < v2

    def test_snapshot_records_version(self):
        net = _random_net()
        topo = net.topology
        assert isinstance(topo, NetworkTopology)
        assert topo.version == net.adjacency.version


class TestPresentEdgesCache:
    def test_sorted_and_stable(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 4)
        for (i, k) in [(3, 0), (0, 2), (1, 1), (0, 1)]:
            net.set_edge(i, k, alg.edge(1))
        assert list(net.present_edges()) == [(0, 1), (0, 2), (1, 1), (3, 0)]
        # cached: repeated calls iterate the same sorted view
        assert list(net.present_edges()) == list(net.present_edges())

    def test_mutation_refreshes_view(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 4)
        net.set_edge(2, 0, alg.edge(1))
        assert list(net.present_edges()) == [(2, 0)]
        net.set_edge(0, 3, alg.edge(1))
        assert list(net.present_edges()) == [(0, 3), (2, 0)]
        net.remove_edge(2, 0)
        assert list(net.present_edges()) == [(0, 3)]


class TestSimulatorUsesCache:
    def test_out_neighbours_follow_topology_changes(self):
        net = _random_net(n=8, p=0.4, seed=1)
        sim = Simulator(net, seed=0)
        k = 0
        expected = _brute_out(net, k)
        assert sim._out_neighbours(k) == expected
        assert expected, "seeded network should give node 0 importers"
        m = expected[0]
        net.remove_edge(m, k)
        assert sim._out_neighbours(k) == _brute_out(net, k)
        assert m not in sim._out_neighbours(k)

    def test_simulation_still_converges(self):
        net = _random_net(n=6, p=0.5, seed=2)
        sim = Simulator(net, seed=0)
        res = sim.run(RoutingState.identity(net.algebra, net.n),
                      max_time=5_000.0)
        assert res.converged
