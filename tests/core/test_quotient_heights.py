"""Height computation over quotiented carriers.

Lexicographic products and path lifts represent the invalid route by
*several* denormalised values ((0, x) pairs, (v, ⊥) pairs...); the
Section 4.1 height function must treat each equivalence class as one
element, or M1/M3 break.  These tests pin that behaviour down.
"""

import random

import pytest

from repro.algebras import (
    AddPaths,
    HopCountAlgebra,
    LexicographicAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.core import (
    DistanceVectorUltrametric,
    check_ultrametric_axioms,
    route_heights,
)


class TestLexProductHeights:
    def setup_method(self):
        # finite × finite product: carrier contains many invalid-class
        # members, e.g. (invalid, x) for every x
        self.alg = LexicographicAlgebra(HopCountAlgebra(3),
                                        HopCountAlgebra(2))
        self.carrier = list(self.alg.routes())

    def test_invalid_class_shares_one_height(self):
        heights, _H = route_heights(self.alg, self.carrier)
        invalid_members = [r for r in self.carrier
                           if self.alg.equal(r, self.alg.invalid)]
        assert len(invalid_members) > 1          # the quotient is real
        hs = {heights[r] for r in invalid_members}
        assert len(hs) == 1
        assert hs == {1}                         # ∞̄ has minimal height

    def test_trivial_has_maximal_height(self):
        heights, H = route_heights(self.alg, self.carrier)
        assert heights[self.alg.trivial] == H

    def test_H_counts_classes_not_values(self):
        _heights, H = route_heights(self.alg, self.carrier)
        # distinct classes: all (a, b) with a valid... plus 1 invalid class
        first_valid = 3      # hop<3>: {0,1,2} valid
        second_valid = 2     # hop<2>: {0,1} valid
        assert H == first_valid * second_valid + 1

    def test_metric_axioms_hold_on_the_quotient(self):
        metric = DistanceVectorUltrametric(self.alg, carrier=self.carrier)
        for outcome in check_ultrametric_axioms(metric, self.carrier):
            assert outcome.holds, outcome

    def test_distance_zero_within_the_invalid_class(self):
        metric = DistanceVectorUltrametric(self.alg, carrier=self.carrier)
        invalid_members = [r for r in self.carrier
                           if self.alg.equal(r, self.alg.invalid)]
        a, b = invalid_members[0], invalid_members[-1]
        assert a != b                    # distinct representations...
        assert metric.distance(a, b) == 0   # ...same point of the space


class TestAddPathsQuotientHeights:
    def test_denormalised_invalids_collapse(self):
        base = ShortestPathsAlgebra()
        alg = AddPaths(base, n_nodes=3)
        from repro.core import BOTTOM

        carrier = [alg.trivial, (1, (1, 0)), (2, (2, 1, 0)),
                   alg.invalid, (5, BOTTOM), (base.invalid, (1, 0))]
        heights, H = route_heights(alg, carrier)
        assert heights[alg.invalid] == 1
        assert heights[(5, BOTTOM)] == 1
        assert heights[(base.invalid, (1, 0))] == 1
        assert H == 4     # trivial, two real routes, one invalid class

    def test_axioms_with_denormalised_members(self):
        base = WidestPathsAlgebra()
        alg = AddPaths(base, n_nodes=3)
        from repro.core import BOTTOM

        carrier = [alg.trivial, (3, (1, 0)), (2, (2, 0)),
                   alg.invalid, (7, BOTTOM)]
        metric = DistanceVectorUltrametric(alg, carrier=carrier)
        for outcome in check_ultrametric_axioms(metric, carrier):
            assert outcome.holds, outcome
