"""Remote-rung specifics: the wire codec, framing discipline, loopback
bit-identity, and deterministic failure modes.

The cross-engine observational contract lives in the shared oracle
(``test_engine_equivalence.py``, where the remote session is one more
column).  This module covers what is unique to computing σ/δ over TCP:

* the frame layout — magic/version/type/length headers, torn-frame and
  version-skew rejection (``docs/wire.md`` is the normative reference);
* the delta-encoded, quantized column-update codec: exact round trips
  (including a hypothesis fuzz over carrier sizes and shapes), loud
  failure on truncated or trailing bytes, and the compression
  accounting the benchmarks gate on;
* loopback bit-identity: 2 real TCP worker subprocesses must reproduce
  the vectorized engine's σ trajectories and δ convergence decisions
  bit for bit;
* failure surfaces: a killed worker raises a typed
  :class:`~repro.core.remote.RemoteWorkerError` carrying the shard id
  and last acked protocol round — never a hang — and silent workers
  trip the configurable coordinator socket timeout;
* capability negotiation: no transport / too few shards / too small a
  problem produce the documented machine-readable skip codes, and
  topology mutation is refused by the engine but healed by the
  session's rebuild;
* the CLI ``worker`` subcommand announces a parseable endpoint.
"""

import multiprocessing
import random
import re
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.algebras import HopCountAlgebra, ShortestPathsAlgebra
from repro.core import (
    FixedDelaySchedule,
    RandomSchedule,
    RemoteError,
    RemoteVectorizedEngine,
    RemoteWorkerError,
    RoundRobinSchedule,
    RoutingState,
    SynchronousSchedule,
    UnsupportedAlgebraError,
    UnsupportedEngineError,
    WIRE_VERSION,
    WireClosedError,
    WireFormatError,
    WireVersionError,
    delta_run_remote,
    iterate_sigma_remote,
    random_state,
    resolve_engine,
    serve_worker,
)
from repro.core.remote import REMOTE_MIN_N, _split_columns
from repro.core.vectorized import (
    VectorizedEngine,
    delta_run_vectorized,
    iterate_sigma_vectorized,
)
from repro.core.wire import (
    MAGIC,
    MSG_ACK,
    MSG_ERROR,
    MSG_STOP,
    FrameConnection,
    WireStats,
    _HEADER,
    carrier_dtype,
    decode_frame_bytes,
    decode_update,
    encode_frame,
    encode_update,
    naive_update_bytes,
    pack_payload,
    unpack_payload,
)
from repro.session import EngineSpec, RoutingSession
from repro.topologies import erdos_renyi, uniform_weight_factory


def _net(n=9, seed=1, bound=16):
    alg = HopCountAlgebra(bound)
    return erdos_renyi(alg, n, 0.4, uniform_weight_factory(alg, 1, 3),
                       seed=seed)


def _schedules(n, seed=0):
    return [
        SynchronousSchedule(n),
        RoundRobinSchedule(n),
        FixedDelaySchedule(n, delay=2),
        RandomSchedule(n, seed=seed + 5, max_delay=3),
    ]


# ----------------------------------------------------------------------
# 1. Framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_roundtrip_and_remainder(self):
        a = encode_frame(3, b"abc")
        b = encode_frame(7, b"")
        msg, payload, rest = decode_frame_bytes(a + b)
        assert (msg, payload) == (3, b"abc")
        msg2, payload2, rest2 = decode_frame_bytes(rest)
        assert (msg2, payload2, rest2) == (7, b"", b"")

    def test_every_torn_prefix_rejected(self):
        frame = encode_frame(5, b"payload-bytes")
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_frame_bytes(frame[:cut])

    def test_bad_magic_rejected(self):
        frame = _HEADER.pack(b"NOPE", WIRE_VERSION, 1, 0)
        with pytest.raises(WireFormatError):
            decode_frame_bytes(frame)

    def test_version_skew_rejected(self):
        frame = _HEADER.pack(MAGIC, WIRE_VERSION + 1, 1, 0)
        with pytest.raises(WireVersionError):
            decode_frame_bytes(frame)

    def test_oversized_payload_declaration_rejected(self):
        frame = _HEADER.pack(MAGIC, WIRE_VERSION, 1, (1 << 30) + 1)
        with pytest.raises(WireFormatError):
            decode_frame_bytes(frame)

    def test_payload_head_tail_roundtrip(self):
        obj, tail = unpack_payload(
            pack_payload({"k": [1, 2], "s": "x"}, b"\x00\xff raw"))
        assert obj == {"k": [1, 2], "s": "x"}
        assert tail == b"\x00\xff raw"

    def test_truncated_payload_rejected(self):
        blob = pack_payload({"key": "value"}, b"tail")
        with pytest.raises(WireFormatError):
            unpack_payload(blob[:3])
        with pytest.raises(WireFormatError):
            unpack_payload(blob[:6])
        with pytest.raises(WireFormatError):
            unpack_payload(struct.pack("!I", 4) + b"{bad")


# ----------------------------------------------------------------------
# 2. The column-update codec
# ----------------------------------------------------------------------


class TestUpdateCodec:
    def test_carrier_dtype_quantization(self):
        assert carrier_dtype(16) == np.dtype("<u1")
        assert carrier_dtype(256) == np.dtype("<u1")
        assert carrier_dtype(257) == np.dtype("<u2")
        assert carrier_dtype(65536) == np.dtype("<u2")
        assert carrier_dtype(65537) == np.dtype("<i4")

    def test_roundtrip_exact(self):
        rng = np.random.default_rng(3)
        prev = rng.integers(0, 16, size=(10, 4)).astype(np.int32)
        cur = prev.copy()
        cur[2, 1] = (cur[2, 1] + 1) % 16
        cur[:, 3] = rng.integers(0, 16, size=10)
        out = prev.copy()
        blob = encode_update(prev, cur, 16)
        changed = decode_update(blob, out)
        assert np.array_equal(out, cur)
        assert changed == len(
            [c for c in range(4) if (prev[:, c] != cur[:, c]).any()])

    def test_no_change_is_near_free(self):
        prev = np.zeros((50, 20), dtype=np.int32)
        blob = encode_update(prev, prev, 16)
        assert len(blob) < naive_update_bytes(50, 20) / 10

    def test_compression_beats_naive_on_sparse_change(self):
        rng = np.random.default_rng(7)
        prev = rng.integers(0, 16, size=(100, 40)).astype(np.int32)
        cur = prev.copy()
        cur[5, 7] = (cur[5, 7] + 1) % 16
        blob = encode_update(prev, cur, 16)
        assert naive_update_bytes(100, 40) / len(blob) >= 4.0

    def test_truncated_blob_rejected(self):
        prev = np.zeros((6, 3), dtype=np.int32)
        cur = np.arange(18, dtype=np.int32).reshape(6, 3) % 16
        blob = encode_update(prev, cur, 16)
        for cut in (0, 4, len(blob) - 1):
            with pytest.raises(WireFormatError):
                decode_update(blob[:cut], prev.copy())

    def test_trailing_bytes_rejected(self):
        prev = np.zeros((6, 3), dtype=np.int32)
        cur = (prev + 2) % 16
        blob = encode_update(prev, cur, 16)
        with pytest.raises(WireFormatError):
            decode_update(blob + b"\x00", prev.copy())

    def test_shape_mismatch_rejected(self):
        prev = np.zeros((6, 3), dtype=np.int32)
        blob = encode_update(prev, prev, 16)
        with pytest.raises(WireFormatError):
            decode_update(blob, np.zeros((6, 4), dtype=np.int32))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_fuzz_roundtrip(self, data):
        rows = data.draw(st.integers(1, 12), label="rows")
        cols = data.draw(st.integers(1, 12), label="cols")
        carrier = data.draw(st.sampled_from([2, 16, 256, 300, 70_000]),
                            label="carrier")
        flat = st.lists(st.integers(0, carrier - 1),
                        min_size=rows * cols, max_size=rows * cols)
        prev = np.array(data.draw(flat, label="prev"),
                        dtype=np.int32).reshape(rows, cols)
        cur = np.array(data.draw(flat, label="cur"),
                       dtype=np.int32).reshape(rows, cols)
        out = prev.copy()
        changed = decode_update(encode_update(prev, cur, carrier), out)
        assert np.array_equal(out, cur)
        assert changed == int(
            ((prev != cur).any(axis=0)).sum())


# ----------------------------------------------------------------------
# 3. A live worker's protocol discipline
# ----------------------------------------------------------------------


def _live_worker():
    """One in-thread single-session worker; returns its endpoint."""
    ready = threading.Event()
    box = {}

    def cb(host, port):
        box["ep"] = (host, port)
        ready.set()

    th = threading.Thread(target=serve_worker,
                          kwargs=dict(port=0, once=True, ready_callback=cb),
                          daemon=True)
    th.start()
    assert ready.wait(10), "worker never bound its socket"
    return box["ep"]


class TestWorkerProtocol:
    def test_version_skew_gets_error_frame_then_close(self):
        host, port = _live_worker()
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            sock.sendall(_HEADER.pack(MAGIC, WIRE_VERSION + 1, MSG_STOP, 0))
            fc = FrameConnection(sock)
            msg_type, payload = fc.recv()
            assert msg_type == MSG_ERROR
            obj, _ = unpack_payload(payload)
            assert "version" in obj["message"]
            with pytest.raises(WireClosedError):
                fc.recv()

    def test_garbage_stream_drops_connection(self):
        host, port = _live_worker()
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 32)
            # depending on timing the drop reads as clean EOF or a reset
            with pytest.raises((WireClosedError, ConnectionResetError)):
                FrameConnection(sock).recv()

    def test_stop_is_acked(self):
        host, port = _live_worker()
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.settimeout(10)
            fc = FrameConnection(sock)
            fc.send(MSG_STOP)
            msg_type, payload = fc.recv()
            assert (msg_type, payload) == (MSG_ACK, b"")


# ----------------------------------------------------------------------
# 4. Loopback bit-identity vs. the vectorized engine
# ----------------------------------------------------------------------


class TestLoopbackBitIdentity:
    def test_sigma_trajectory_identical(self):
        net = _net(9)
        start = RoutingState.identity(net.algebra, net.n)
        with RemoteVectorizedEngine(net, workers=2) as eng:
            rem = iterate_sigma_remote(net, start, keep_trajectory=True,
                                       engine=eng)
        ref = iterate_sigma_vectorized(net, start, keep_trajectory=True)
        assert rem.converged == ref.converged
        assert rem.rounds == ref.rounds
        assert len(rem.trajectory) == len(ref.trajectory)
        for a, b in zip(rem.trajectory, ref.trajectory):
            assert a.equals(b, net.algebra)

    def test_sigma_from_garbage_states(self):
        net = _net(11, seed=4)
        rng = random.Random(2)
        with RemoteVectorizedEngine(net, workers=3) as eng:
            for _ in range(3):
                start = random_state(net.algebra, net.n, rng)
                rem = eng.iterate(start)
                ref = iterate_sigma_vectorized(net, start)
                assert rem.converged == ref.converged
                assert rem.rounds == ref.rounds
                assert rem.state.equals(ref.state, net.algebra)

    def test_delta_identical_across_schedules(self):
        net = _net(9, seed=2)
        start = RoutingState.identity(net.algebra, net.n)
        with RemoteVectorizedEngine(net, workers=2) as eng:
            for sched in _schedules(net.n):
                rem = eng.delta(sched, start, max_steps=400)
                ref = delta_run_vectorized(net, sched, start, max_steps=400)
                assert rem.converged == ref.converged, repr(sched)
                assert rem.steps == ref.steps, repr(sched)
                assert rem.converged_at == ref.converged_at, repr(sched)
                assert rem.history_retained == ref.history_retained, \
                    repr(sched)
                assert rem.state.equals(ref.state, net.algebra), repr(sched)

    def test_delta_window_one_identical(self):
        net = _net(8, seed=6)
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=9, max_delay=3)
        with RemoteVectorizedEngine(net, workers=2) as eng:
            rem = eng.delta(sched, start, max_steps=300, window=1)
        ref = delta_run_vectorized(net, sched, start, max_steps=300)
        assert rem.converged == ref.converged
        assert rem.steps == ref.steps
        assert rem.converged_at == ref.converged_at
        assert rem.state.equals(ref.state, net.algebra)

    def test_wire_stats_recorded(self):
        net = _net(9)
        start = RoutingState.identity(net.algebra, net.n)
        with RemoteVectorizedEngine(net, workers=2) as eng:
            eng.iterate(start)
            sigma_stats = eng.wire_stats
            assert sigma_stats.rounds > 0
            assert sigma_stats.bytes_sent > 0
            assert sigma_stats.bytes_received > 0
            assert sigma_stats.commands_per_round == eng.workers
            # hop-count codes travel as single bytes + change bitmasks:
            # far below a naive 4-byte-per-entry full-column transfer
            assert sigma_stats.compression_ratio > 1.0
            eng.delta(RandomSchedule(net.n, seed=1, max_delay=3), start,
                      max_steps=300)
            assert eng.delta_ipc_commands >= 1
            assert eng.delta_ipc_steps >= eng.delta_ipc_commands
            # per-run stats reset; totals are monotonic
            assert eng.wire_totals.bytes_sent >= \
                sigma_stats.bytes_sent + eng.wire_stats.bytes_sent

    def test_unbounded_schedule_delegates_per_run(self):
        class Unbounded(RandomSchedule):
            def max_read_back(self):
                return None

        net = _net(8)
        start = RoutingState.identity(net.algebra, net.n)
        sched = Unbounded(net.n, seed=3, max_delay=2)
        with RemoteVectorizedEngine(net, workers=2) as eng:
            rem = delta_run_remote(net, sched, start, max_steps=300,
                                   engine=eng)
        ref = delta_run_vectorized(net, sched, start, max_steps=300)
        assert rem.converged == ref.converged
        assert rem.steps == ref.steps
        assert rem.state.equals(ref.state, net.algebra)


# ----------------------------------------------------------------------
# 5. Failure modes: typed errors, never hangs
# ----------------------------------------------------------------------


class TestFailureModes:
    def test_worker_death_mid_delta_heals(self):
        # supervision contract: a dead loopback worker is respawned and
        # the run replays to the same fixed point as the serial engine
        net = _net(9)
        start = RoutingState.identity(net.algebra, net.n)
        sched = RandomSchedule(net.n, seed=2, max_delay=3)
        ref = delta_run_vectorized(net, sched, start, max_steps=300)
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=30.0)
        try:
            eng.iterate(start)          # establish the pool
            victim = eng._res.procs[1]
            victim.kill()
            victim.join(timeout=10)
            res = eng.delta(sched, start, max_steps=300)
            assert res.converged == ref.converged
            assert res.steps == ref.steps
            assert res.state.equals(ref.state, net.algebra)
            assert any(ev.code == "worker-respawned" for ev in eng.degraded)
        finally:
            eng.close()

    def test_worker_death_mid_delta_strict_is_typed(self):
        # strict engines keep the pre-supervision contract: typed error
        net = _net(9)
        start = RoutingState.identity(net.algebra, net.n)
        eng = RemoteVectorizedEngine(net, workers=2, socket_timeout=30.0,
                                     strict=True)
        try:
            eng.iterate(start)          # establish the pool
            victim = eng._res.procs[1]
            victim.kill()
            victim.join(timeout=10)
            with pytest.raises(RemoteWorkerError) as exc:
                eng.delta(RandomSchedule(net.n, seed=2, max_delay=3),
                          start, max_steps=300)
            err = exc.value
            assert err.shard_id is not None
            assert err.last_acked_round is not None
            assert err.last_acked_round >= 0
            assert eng.closed            # failed engines do not linger
        finally:
            eng.close()

    def test_silent_worker_trips_socket_timeout(self):
        # two accept-and-never-reply servers: the coordinator must give
        # up after the configured timeout with a typed error, not hang
        held = []
        servers = []
        endpoints = []
        for _ in range(2):
            srv = socket.create_server(("127.0.0.1", 0))
            servers.append(srv)
            endpoints.append(("127.0.0.1", srv.getsockname()[1]))

            def hold(server=srv):
                try:
                    conn, _ = server.accept()
                    held.append(conn)    # keep open, never reply
                except OSError:
                    pass

            threading.Thread(target=hold, daemon=True).start()
        net = _net(9)
        t0 = time.monotonic()
        try:
            eng = RemoteVectorizedEngine(net, endpoints=endpoints,
                                         socket_timeout=0.5)
            with pytest.raises(RemoteWorkerError) as exc:
                eng.iterate(RoutingState.identity(net.algebra, net.n))
            assert "0.5" in str(exc.value)
            assert time.monotonic() - t0 < 30
        finally:
            for conn in held:
                conn.close()
            for srv in servers:
                srv.close()

    def test_unreachable_endpoint_is_typed(self):
        srv = socket.create_server(("127.0.0.1", 0))
        port = srv.getsockname()[1]
        srv.close()                      # nobody listening any more
        net = _net(9)
        with pytest.raises(RemoteError):
            RemoteVectorizedEngine(
                net, endpoints=[("127.0.0.1", port)] * 2,
                socket_timeout=2.0).iterate(
                    RoutingState.identity(net.algebra, net.n))

    def test_no_transport_raises(self):
        with pytest.raises(ValueError):
            RemoteVectorizedEngine(_net(9))

    def test_single_shard_refused(self):
        with pytest.raises(UnsupportedAlgebraError):
            RemoteVectorizedEngine(_net(9), workers=1)

    def test_closed_engine_refuses_runs(self):
        net = _net(9)
        eng = RemoteVectorizedEngine(net, workers=2)
        eng.close()
        assert eng.closed
        with pytest.raises(RuntimeError):
            eng.iterate(RoutingState.identity(net.algebra, net.n))


# ----------------------------------------------------------------------
# 6. Negotiation, sizing gates, topology mutation
# ----------------------------------------------------------------------


class TestNegotiation:
    def test_explicit_request_with_transport_wins(self):
        res = resolve_engine(_net(9), "remote", "sigma", remote=2)
        assert res.chosen == "remote"
        assert res.workers == 2
        assert not res.fell_back

    def test_no_transport_skips_with_code(self):
        res = resolve_engine(_net(9), "remote", "sigma")
        assert res.chosen == "batched"
        assert res.reason_codes() == [("remote", "no-remote-endpoints")]

    def test_strict_raises_instead_of_falling(self):
        with pytest.raises(UnsupportedEngineError) as exc:
            resolve_engine(_net(9), "remote", "sigma", strict=True)
        assert exc.value.resolution.reason_codes() == \
            [("remote", "no-remote-endpoints")]

    def test_min_n_gate_applies_even_to_explicit_requests(self):
        res = resolve_engine(_net(REMOTE_MIN_N - 1), "remote", "sigma",
                             remote=2)
        assert res.chosen != "remote"
        assert res.reason_codes()[0] == ("remote", "below-min-n")

    def test_single_endpoint_skips_with_code(self):
        res = resolve_engine(_net(9), "remote", "sigma",
                             remote=[("127.0.0.1", 1)])
        assert res.reason_codes()[0] == ("remote", "workers-lt-2")

    def test_non_finite_algebra_skips_first(self):
        alg = ShortestPathsAlgebra()
        net = erdos_renyi(alg, 8, 0.4, uniform_weight_factory(alg, 1, 5),
                          seed=0)
        res = resolve_engine(net, "remote", "sigma", remote=2)
        assert res.reason_codes()[0] == ("remote", "no-finite-encoding")

    def test_shard_split_covers_all_columns(self):
        for n in (4, 9, 10, 17):
            for w in (2, 3, 4):
                blocks = _split_columns(n, w)
                assert blocks[0][0] == 0 and blocks[-1][1] == n
                assert all(b[1] == c[0]
                           for b, c in zip(blocks, blocks[1:]))

    def test_engine_refuses_topology_mutation(self):
        net = _net(9)
        with RemoteVectorizedEngine(net, workers=2) as eng:
            eng.iterate(RoutingState.identity(net.algebra, net.n))
            net.set_edge(0, net.n - 1, net.algebra.edge(1))
            assert eng.stale_topology()
            with pytest.raises(RemoteError):
                eng.refresh()

    def test_session_rebuilds_on_mutation(self):
        net = _net(9)
        with RoutingSession(net,
                            EngineSpec("remote", remote_workers=2)) as s:
            s.sigma()
            net.set_edge(0, net.n - 1, net.algebra.edge(1))
            res = s.sigma()
        ref_net = _net(9)
        ref_net.set_edge(0, ref_net.n - 1, ref_net.algebra.edge(1))
        with RoutingSession(ref_net, EngineSpec("naive")) as ref_s:
            ref = ref_s.sigma()
        assert res.converged == ref.converged
        assert res.rounds == ref.rounds
        assert res.state.equals(ref.state, net.algebra)


# ----------------------------------------------------------------------
# 7. The session facade's remote column
# ----------------------------------------------------------------------


class TestSessionRemote:
    def test_spec_coerces_and_validates(self):
        spec = EngineSpec("remote", endpoints=[("h", 1), "host:2"])
        assert spec.endpoints == (("h", 1), "host:2")
        assert spec.remote_transport == spec.endpoints
        assert EngineSpec("remote", remote_workers=3).remote_transport == 3
        with pytest.raises(ValueError):
            EngineSpec("remote", socket_timeout=0)

    def test_reports_carry_wire_stats(self):
        net = _net(9)
        sched = RandomSchedule(net.n, seed=4, max_delay=3)
        with RoutingSession(net,
                            EngineSpec("remote", remote_workers=2)) as s:
            srep = s.sigma()
            drep = s.delta(sched, max_steps=400)
            grid = s.delta_grid(
                [(RandomSchedule(net.n, seed=k, max_delay=3),
                  RoutingState.identity(net.algebra, net.n))
                 for k in (1, 2)], max_steps=400)
        for rep in (srep, drep, grid):
            assert rep.resolution.chosen == "remote"
            assert isinstance(rep.wire, WireStats)
            assert rep.wire.rounds > 0
        assert drep.ipc_commands >= 1
        assert drep.metadata["wire"]["bytes_per_round"] > 0
        assert grid.metadata["wire"]["rounds"] >= drep.wire.rounds

    def test_local_rungs_have_no_wire(self):
        net = _net(9)
        with RoutingSession(net, EngineSpec("vectorized")) as s:
            assert s.sigma().wire is None


# ----------------------------------------------------------------------
# 8. Deterministic worker release across the session's rebuild path
# ----------------------------------------------------------------------


class TestWorkerRelease:
    """A topology mutation on an ``engine="remote"`` session makes the
    engine stale; the session rebuilds it and resends a full MSG_LOAD.
    The rebuild must *reap* the old loopback worker subprocesses
    deterministically — counted before/after, no leaked children."""

    @staticmethod
    def _workers():
        return [p for p in multiprocessing.active_children()
                if p.name == "repro-remote-worker"]

    def test_rebuild_after_mutation_releases_workers(self):
        baseline = len(self._workers())
        net = _net(9)
        factory = uniform_weight_factory(net.algebra, 1, 3)
        with RoutingSession(net,
                            EngineSpec("remote", remote_workers=2)) as s:
            first = s.sigma()
            assert first.resolution.chosen == "remote"
            assert len(self._workers()) == baseline + 2
            net.set_edge(0, 1, factory(random.Random(5), 0, 1))
            second = s.sigma()     # stale engine → close + rebuild
            assert second.resolution.chosen == "remote"
            # fresh pair spawned, stale pair reaped: never 4 children
            assert len(self._workers()) == baseline + 2
            net.remove_edge(0, 1)
            third = s.sigma()      # a second rebuild behaves the same
            assert third.resolution.chosen == "remote"
            assert len(self._workers()) == baseline + 2
        # session close reaps the last pair too
        assert len(self._workers()) == baseline


# ----------------------------------------------------------------------
# 9. The CLI worker subcommand
# ----------------------------------------------------------------------


class TestCLIWorker:
    def test_announce_line_is_parseable_and_servable(self):
        procs = []
        endpoints = []
        try:
            for _ in range(2):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "worker",
                     "--port", "0", "--once"],
                    stdout=subprocess.PIPE, text=True)
                procs.append(proc)
                line = proc.stdout.readline()
                m = re.search(r"listening on (\S+):(\d+)", line)
                assert m, f"unparseable announce line: {line!r}"
                endpoints.append((m.group(1), int(m.group(2))))
            net = _net(9)
            start = RoutingState.identity(net.algebra, net.n)
            with RemoteVectorizedEngine(net, endpoints=endpoints,
                                        socket_timeout=30.0) as eng:
                rem = eng.iterate(start)
            ref = iterate_sigma_vectorized(net, start)
            assert rem.rounds == ref.rounds
            assert rem.state.equals(ref.state, net.algebra)
            for proc in procs:           # --once: exit after the session
                assert proc.wait(timeout=15) == 0
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
