"""Batched-engine specifics: trial stacking, dropout, and the grid driver.

The observational-identity contract lives in the shared oracle
(``test_engine_equivalence.py``, which covers batched lockstep σ, the
B = 1 ``delta_run(engine="batched")`` selector and an all-schedules
``delta_grid``).  This module covers what is unique to multi-trial
stacking:

* per-trial convergence masking — trials converging at very different
  steps must each report exactly their solo result while the rest of
  the batch keeps running;
* the grid driver's report parity with the per-trial experiment loop
  (trial order, distinct-fixed-point ordering, chunking);
* the batch-axis history ring: per-trial staleness windows, derived
  bounds for schedules that declare none, loud failure for lying ones;
* topology invalidation between grid runs on a shared engine;
* the fallback ladder for non-finite algebras;
* the vectorized churn measurement (``measure_sync`` satellite).
"""

import random

import pytest

from repro.algebras import HopCountAlgebra, ShortestPathsAlgebra
from repro.analysis import measure_sync, run_absolute_convergence
from repro.core import (
    BatchedVectorizedEngine,
    FixedDelaySchedule,
    RandomSchedule,
    RoundRobinSchedule,
    RoutingState,
    Schedule,
    SynchronousSchedule,
    UnsupportedAlgebraError,
    absolute_convergence_batched,
    absolute_convergence_experiment,
    delta_run,
    iterate_sigma,
    iterate_sigma_batched,
    random_state,
    schedule_zoo,
    supports_vectorized,
)
from repro.core.state import Network
from repro.topologies import erdos_renyi, uniform_weight_factory

np = pytest.importorskip("numpy")


def _net(n=12, seed=1, bound=16):
    alg = HopCountAlgebra(bound)
    return erdos_renyi(alg, n, 0.3, uniform_weight_factory(alg, 1, 3),
                      seed=seed)


def _starts(net, k=2, seed=5):
    rng = random.Random(seed)
    return [RoutingState.identity(net.algebra, net.n)] + \
        [random_state(net.algebra, net.n, rng) for _ in range(k - 1)]


class TestTrialMasking:
    def test_mixed_speed_trials_each_match_solo_runs(self):
        """Round-robin converges an order of magnitude later than the
        synchronous schedule; stacked together each must still report
        its exact solo (converged_at, state)."""
        net = _net(10, seed=3)
        start = RoutingState.identity(net.algebra, net.n)
        scheds = [SynchronousSchedule(net.n), RoundRobinSchedule(net.n),
                  FixedDelaySchedule(net.n, delay=5),
                  RandomSchedule(net.n, seed=9, activation_prob=0.2,
                                 max_delay=4)]
        eng = BatchedVectorizedEngine(net)
        grid = eng.delta_grid([(s, start) for s in scheds], max_steps=900)
        steps = set()
        for sched, res in zip(scheds, grid):
            ref = delta_run(net, sched, start, max_steps=900, strict=True)
            assert res.converged and ref.converged
            assert res.converged_at == ref.converged_at, repr(sched)
            assert res.state.equals(ref.state, net.algebra), repr(sched)
            steps.add(res.steps)
        assert len(steps) > 1, "trials should drop out at different steps"

    def test_non_converging_trial_does_not_poison_the_batch(self):
        """A trial capped below its convergence horizon reports
        converged=False while its batchmates still converge."""
        net = _net(10, seed=4)
        start = RoutingState.identity(net.algebra, net.n)
        slow = RoundRobinSchedule(net.n)
        fast = SynchronousSchedule(net.n)
        ref_slow = delta_run(net, slow, start, max_steps=25, strict=True)
        eng = BatchedVectorizedEngine(net)
        res_fast, res_slow = eng.delta_grid(
            [(fast, start), (slow, start)], max_steps=25)
        assert res_slow.converged == ref_slow.converged
        assert res_slow.state.equals(ref_slow.state, net.algebra)
        ref_fast = delta_run(net, fast, start, max_steps=25, strict=True)
        assert res_fast.converged == ref_fast.converged
        assert res_fast.converged_at == ref_fast.converged_at

    def test_garbage_starts_per_trial(self):
        net = _net(9, seed=6)
        rng = random.Random(17)
        starts = [random_state(net.algebra, net.n, rng) for _ in range(3)]
        sched = RandomSchedule(net.n, seed=2, max_delay=3)
        eng = BatchedVectorizedEngine(net)
        grid = eng.delta_grid([(sched, s) for s in starts], max_steps=500)
        for s, res in zip(starts, grid):
            ref = delta_run(net, sched, s, max_steps=500, strict=True)
            assert res.converged == ref.converged
            assert res.converged_at == ref.converged_at
            assert res.state.equals(ref.state, net.algebra)


class TestGridDriver:
    def test_report_parity_with_per_trial_loop(self):
        net = _net(11, seed=7)
        starts = _starts(net, 2)
        scheds = schedule_zoo(net.n)
        batched = absolute_convergence_batched(net, starts, scheds,
                                               max_steps=700)
        loop = absolute_convergence_experiment(net, starts, scheds,
                                               max_steps=700,
                                               engine="incremental")
        assert batched.runs == loop.runs
        assert batched.all_converged == loop.all_converged
        assert batched.convergence_steps == loop.convergence_steps
        assert len(batched.distinct_fixed_points) == \
            len(loop.distinct_fixed_points)
        for a, b in zip(batched.distinct_fixed_points,
                        loop.distinct_fixed_points):
            assert a.equals(b, net.algebra)

    def test_chunked_batches_match_unchunked(self):
        net = _net(9, seed=8)
        starts = _starts(net, 2)
        scheds = schedule_zoo(net.n)[:5]
        whole = absolute_convergence_batched(net, starts, scheds,
                                             max_steps=500, batch_size=None)
        chunked = absolute_convergence_batched(net, starts, scheds,
                                               max_steps=500, batch_size=3)
        assert whole.convergence_steps == chunked.convergence_steps
        assert whole.all_converged == chunked.all_converged
        assert len(whole.distinct_fixed_points) == \
            len(chunked.distinct_fixed_points)

    def test_experiment_selector_routes_batched(self):
        net = _net(10, seed=9)
        starts = _starts(net, 2)
        scheds = schedule_zoo(net.n)[:4]
        via_selector = absolute_convergence_experiment(
            net, starts, scheds, max_steps=500, engine="batched")
        ref = absolute_convergence_experiment(
            net, starts, scheds, max_steps=500, engine="incremental")
        assert via_selector.convergence_steps == ref.convergence_steps
        assert via_selector.absolute == ref.absolute

    def test_run_absolute_convergence_accepts_batched(self):
        net = _net(10, seed=10)
        rep = run_absolute_convergence(net, n_starts=2, seed=1,
                                       max_steps=600, engine="batched")
        ref = run_absolute_convergence(net, n_starts=2, seed=1,
                                       max_steps=600, engine="incremental")
        assert rep.convergence_steps == ref.convergence_steps
        assert rep.absolute == ref.absolute

    def test_nonfinite_algebra_falls_back_silently(self):
        sp = ShortestPathsAlgebra()
        net = erdos_renyi(sp, 8, 0.3, uniform_weight_factory(sp, 1, 5),
                          seed=2)
        rep = run_absolute_convergence(net, n_starts=1, seed=0,
                                       max_steps=500, engine="batched")
        ref = run_absolute_convergence(net, n_starts=1, seed=0,
                                       max_steps=500, engine="incremental")
        assert rep.convergence_steps == ref.convergence_steps
        assert rep.absolute == ref.absolute

    def test_empty_grid(self):
        eng = BatchedVectorizedEngine(_net(6))
        assert eng.delta_grid([]) == []


class TestHistoryRing:
    def test_lying_schedule_raises_lookup_error(self):
        class Lying(Schedule):
            def alpha(self, t):
                return frozenset(range(self.n))

            def beta(self, t, i, j):
                return max(0, t - 6)     # reads 6 back...

            def max_read_back(self):
                return 2                 # ...but declares 2

        net = _net(8, seed=11)
        start = RoutingState.identity(net.algebra, net.n)
        with pytest.raises(LookupError):
            BatchedVectorizedEngine(net).delta_grid([(Lying(net.n), start)],
                                                    max_steps=60)

    def test_reads_slightly_past_declaration_match_serial(self):
        """BoundedHistory tolerates reads up to (declared bound + 2);
        the batch ring must tolerate — and compute identically on —
        exactly the same reads."""

        class Overreaching(Schedule):
            def alpha(self, t):
                return frozenset(range(self.n)) if t % 2 \
                    else frozenset({t % self.n})

            def beta(self, t, i, j):
                return max(0, t - 4)     # 2 past the declared bound...

            def max_read_back(self):
                return 2                 # ...but within the +2 window

        net = _net(9, seed=12)
        start = RoutingState.identity(net.algebra, net.n)
        ref = delta_run(net, Overreaching(net.n), start, max_steps=200)
        res = BatchedVectorizedEngine(net).delta_grid(
            [(Overreaching(net.n), start)], max_steps=200)[0]
        assert res.converged == ref.converged
        assert res.converged_at == ref.converged_at
        assert res.state.equals(ref.state, net.algebra)

    def test_undeclared_bound_runs_on_derived_ring(self):
        """A schedule declaring no staleness bound forces the serial
        engines to keep the full history; the batched engine sizes the
        ring from the bound its compiled reads actually attain and must
        still agree with strict."""

        class Undeclared(RandomSchedule):
            def max_read_back(self):
                return None

        net = _net(9, seed=13)
        start = RoutingState.identity(net.algebra, net.n)
        res = BatchedVectorizedEngine(net).delta_grid(
            [(Undeclared(net.n, seed=4, max_delay=5), start)],
            max_steps=400)[0]
        ref = delta_run(net, Undeclared(net.n, seed=4, max_delay=5), start,
                        max_steps=400, strict=True)
        assert res.converged == ref.converged
        assert res.converged_at == ref.converged_at
        assert res.state.equals(ref.state, net.algebra)

    def test_isolated_nodes_get_invalid_rows(self):
        alg = HopCountAlgebra(8)
        net = Network(alg, 4, name="mostly-isolated")
        net.set_edge(0, 1, alg.edge(1))
        net.set_edge(1, 0, alg.edge(1))
        rng = random.Random(3)
        start = random_state(alg, 4, rng)
        sched = SynchronousSchedule(4)
        res = BatchedVectorizedEngine(net).delta_grid([(sched, start)],
                                                      max_steps=100)[0]
        ref = delta_run(net, sched, start, max_steps=100, strict=True)
        assert res.converged == ref.converged
        assert res.state.equals(ref.state, alg)


class TestEngineLifecycle:
    def test_topology_change_between_grid_runs(self):
        net = _net(10, seed=14)
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        sched = RandomSchedule(net.n, seed=6, max_delay=4)
        eng = BatchedVectorizedEngine(net)
        first = eng.delta_grid([(sched, start)], max_steps=400)[0]
        net.set_edge(0, net.n - 1, alg.edge(2))
        net.set_edge(net.n - 1, 0, alg.edge(2))
        second = eng.delta_grid([(sched, first.state)], max_steps=400)[0]
        ref = delta_run(net, sched, first.state, max_steps=400, strict=True)
        assert second.converged == ref.converged
        assert second.converged_at == ref.converged_at
        assert second.state.equals(ref.state, alg)

    def test_direct_construction_raises_for_nonfinite(self):
        sp = ShortestPathsAlgebra()
        net = erdos_renyi(sp, 8, 0.3, uniform_weight_factory(sp, 1, 5),
                          seed=3)
        with pytest.raises(UnsupportedAlgebraError):
            BatchedVectorizedEngine(net)

    def test_compiled_schedule_reused_across_networks(self):
        """One compiled schedule driven against two different edge
        layouts must answer per layout (the β views are a property of
        the caller's network, not of the schedule)."""
        from repro.core import CompiledSchedule

        sched = RandomSchedule(10, seed=23, max_delay=4)
        comp = CompiledSchedule(sched, horizon=500)
        for seed in (31, 32):
            net = _net(10, seed=seed)
            start = RoutingState.identity(net.algebra, net.n)
            res = BatchedVectorizedEngine(net).delta_grid(
                [(comp, start)], max_steps=500)[0]
            ref = delta_run(net, sched, start, max_steps=500, strict=True)
            assert res.converged == ref.converged, seed
            assert res.converged_at == ref.converged_at, seed
            assert res.state.equals(ref.state, net.algebra), seed

    def test_multi_start_sigma_batch(self):
        net = _net(11, seed=15)
        starts = _starts(net, 3, seed=21)
        results = iterate_sigma_batched(net, starts, detect_cycles=True,
                                        keep_trajectory=True)
        for s, res in zip(starts, results):
            ref = iterate_sigma(net, s, engine="naive", detect_cycles=True,
                                keep_trajectory=True)
            assert res.converged == ref.converged
            assert res.rounds == ref.rounds
            assert res.state.equals(ref.state, net.algebra)
            assert len(res.trajectory) == len(ref.trajectory)
            for a, b in zip(res.trajectory, ref.trajectory):
                assert a.equals(b, net.algebra)


class TestChurnVectorization:
    def test_measure_sync_matches_object_path_on_finite_algebra(self):
        net = _net(10, seed=16)
        assert supports_vectorized(net.algebra)
        fast = measure_sync(net)
        # the object path, forced: recompute churn from the trajectory
        alg = net.algebra
        start = RoutingState.identity(alg, net.n)
        result = iterate_sigma(net, start, keep_trajectory=True)
        churn = 0
        for prev, cur in zip(result.trajectory, result.trajectory[1:]):
            for i in range(net.n):
                for j in range(net.n):
                    if not alg.equal(prev.get(i, j), cur.get(i, j)):
                        churn += 1
        assert fast.converged == result.converged
        assert fast.rounds == result.rounds
        assert fast.changed_entries == churn

    def test_measure_sync_object_fallback_for_nonfinite(self):
        sp = ShortestPathsAlgebra()
        net = erdos_renyi(sp, 8, 0.3, uniform_weight_factory(sp, 1, 5),
                          seed=4)
        m = measure_sync(net)
        assert m.converged and m.changed_entries > 0
