"""Unit tests for the algebra abstractions (Definition 1 machinery)."""

import pytest

from repro.algebras import HopCountAlgebra, ShortestPathsAlgebra
from repro.core import ComposedEdge, ConstantEdge, FunctionEdge
from repro.core.algebra import exhaustive_pairs, exhaustive_triples


class TestEdgeFunctions:
    def test_function_edge_wraps_callable(self):
        f = FunctionEdge(lambda a: a + 3, name="+3")
        assert f(4) == 7
        assert "+3" in repr(f)

    def test_constant_edge_is_constant(self):
        f = ConstantEdge(99)
        assert f(0) == 99
        assert f(12345) == 99

    def test_composed_edge_applies_inner_first(self):
        double = FunctionEdge(lambda a: a * 2, name="double")
        inc = FunctionEdge(lambda a: a + 1, name="inc")
        assert ComposedEdge(double, inc)(3) == 8     # double(inc(3))
        assert ComposedEdge(inc, double)(3) == 7     # inc(double(3))

    def test_missing_edge_is_constant_invalid(self):
        alg = ShortestPathsAlgebra()
        absent = ConstantEdge(alg.invalid)
        assert absent(0) == alg.invalid
        assert absent(alg.invalid) == alg.invalid


class TestDerivedOrder:
    """The order a ≤ b ⇔ a ⊕ b = a (Section 2.1)."""

    def setup_method(self):
        self.alg = HopCountAlgebra(8)

    def test_leq_matches_numeric_order(self):
        assert self.alg.leq(2, 5)
        assert not self.alg.leq(5, 2)
        assert self.alg.leq(3, 3)

    def test_lt_is_strict(self):
        assert self.alg.lt(2, 5)
        assert not self.alg.lt(3, 3)

    def test_trivial_below_everything(self):
        for r in self.alg.routes():
            assert self.alg.leq(self.alg.trivial, r)

    def test_invalid_above_everything(self):
        for r in self.alg.routes():
            assert self.alg.leq(r, self.alg.invalid)

    def test_total_order(self):
        routes = list(self.alg.routes())
        for a in routes:
            for b in routes:
                assert self.alg.leq(a, b) or self.alg.leq(b, a)


class TestBest:
    def test_best_of_empty_is_invalid(self):
        alg = HopCountAlgebra(8)
        assert alg.best([]) == alg.invalid

    def test_best_folds_choice(self):
        alg = HopCountAlgebra(8)
        assert alg.best([5, 2, 7, 3]) == 2

    def test_best_with_invalid_entries(self):
        alg = HopCountAlgebra(8)
        assert alg.best([alg.invalid, 4, alg.invalid]) == 4


class TestSortRoutes:
    def test_sorts_most_preferred_first(self):
        alg = HopCountAlgebra(8)
        assert alg.sort_routes([5, 0, 8, 2]) == [0, 2, 5, 8]

    def test_preserves_multiplicity(self):
        alg = HopCountAlgebra(8)
        assert alg.sort_routes([3, 3, 1]) == [1, 3, 3]


class TestSamplers:
    def test_finite_sampler_stays_in_carrier(self, rng):
        alg = HopCountAlgebra(6)
        carrier = set(alg.routes())
        for _ in range(100):
            assert alg.sample_route(rng) in carrier

    def test_infinite_algebra_has_no_enumeration(self):
        alg = ShortestPathsAlgebra()
        with pytest.raises(NotImplementedError):
            list(alg.routes())


class TestExhaustiveHelpers:
    def test_pairs_count(self):
        assert len(list(exhaustive_pairs([1, 2, 3]))) == 9

    def test_triples_count(self):
        assert len(list(exhaustive_triples([1, 2]))) == 8
