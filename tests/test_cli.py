"""CLI front-end tests."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bgplite" in out and "ring" in out and "disagree" in out


class TestVerify:
    def test_hop_count_ring(self, capsys):
        assert main(["verify", "--algebra", "hop-count", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 7" in out

    def test_bgplite_gets_theorem11(self, capsys):
        assert main(["verify", "--algebra", "bgplite", "--n", "4",
                     "--samples", "20"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 11" in out

    def test_unknown_algebra_exits(self):
        with pytest.raises(SystemExit):
            main(["verify", "--algebra", "nonsense"])

    def test_unknown_topology_exits(self):
        with pytest.raises(SystemExit):
            main(["verify", "--topology", "moebius"])


class TestConverge:
    def test_absolute_on_hop_ring(self, capsys):
        rc = main(["converge", "--algebra", "hop-count", "--n", "4",
                   "--starts", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ABSOLUTE          : True" in out


class TestCensus:
    def test_disagree_wedgie(self, capsys):
        assert main(["census", "--gadget", "disagree"]) == 0
        out = capsys.readouterr().out
        assert "stable states     : 2" in out
        assert "wedgie" in out

    def test_bad_gadget(self, capsys):
        assert main(["census", "--gadget", "bad"]) == 0
        out = capsys.readouterr().out
        assert "no stable state" in out

    def test_repaired(self, capsys):
        assert main(["census", "--gadget", "disagree-increasing"]) == 0
        out = capsys.readouterr().out
        assert "unique stable state" in out


class TestSimulate:
    def test_lossy_run(self, capsys):
        rc = main(["simulate", "--algebra", "hop-count", "--n", "5",
                   "--loss", "0.2", "--dup", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged      : True" in out

    def test_random_topology(self, capsys):
        rc = main(["simulate", "--algebra", "shortest-pv", "--n", "5",
                   "--topology", "random"])
        assert rc == 0


class TestScenarios:
    def test_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "corpus:abilene" in out
        assert "link-flap" in out and "del-best-route" in out
        assert "stratified-bounded" in out

    def test_run_prints_per_phase_table(self, capsys):
        rc = main(["scenarios", "run", "--topology", "corpus:cesnet",
                   "--event", "link-flap"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "corpus-cesnet" in out
        assert "link-down" in out and "link-up" in out
        assert "churn" in out

    def test_run_unknown_event_exits(self):
        with pytest.raises(SystemExit):
            main(["scenarios", "run", "--event", "meteor-strike"])

    def test_survey_small_grid_exits_zero(self, capsys):
        rc = main(["scenarios", "survey",
                   "--topology", "corpus:janet",
                   "--event", "link-flap", "--event", "policy-change",
                   "--algebra", "hop-count", "--trials", "2", "--oracle"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failed: 0" in out and "ok*" in out

    def test_survey_failed_cell_exits_nonzero(self, capsys):
        rc = main(["scenarios", "survey", "--topology", "nope",
                   "--event", "link-flap", "--algebra", "hop-count"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
