"""The law checkers themselves: do they catch deliberately broken algebras?

A verifier that never fails is worthless; these tests feed each checker
an algebra violating exactly one law and assert the violation is caught
with a counterexample.
"""

import random

import pytest

from repro.algebras import FiniteLevelAlgebra, HopCountAlgebra
from repro.core import FunctionEdge
from repro.core.algebra import RoutingAlgebra
from repro.verification import (
    check_associative,
    check_commutative,
    check_invalid_fixed_point,
    check_invalid_identity,
    check_selective,
    check_trivial_annihilator,
    verify_algebra,
)


class BrokenChoice(RoutingAlgebra):
    """An 'algebra' whose ⊕ averages — violating selectivity (and more)."""

    name = "broken-average"
    is_finite = True

    @property
    def trivial(self):
        return 0

    @property
    def invalid(self):
        return 8

    def choice(self, a, b):
        return (a + b) // 2

    def routes(self):
        return iter(range(9))

    def sample_edge_function(self, rng):
        from repro.core import ConstantEdge

        return ConstantEdge(self.invalid)


class NonCommutative(RoutingAlgebra):
    """⊕ always returns its first argument: selective but not commutative."""

    name = "broken-first"
    is_finite = True

    @property
    def trivial(self):
        return 0

    @property
    def invalid(self):
        return 5

    def choice(self, a, b):
        return a

    def routes(self):
        return iter(range(6))


class TestCheckersCatchViolations:
    def test_selectivity_violation_caught(self):
        alg = BrokenChoice()
        out = check_selective(alg, list(alg.routes()))
        assert not out.holds
        assert out.counterexample is not None

    def test_commutativity_violation_caught(self):
        alg = NonCommutative()
        out = check_commutative(alg, list(alg.routes()))
        assert not out.holds

    def test_non_commutative_passes_associativity(self):
        """first-projection is associative — checkers are independent."""
        alg = NonCommutative()
        assert check_associative(alg, list(alg.routes())).holds

    def test_identity_violation_caught(self):
        alg = NonCommutative()
        # choice(invalid, a) = invalid != a
        out = check_invalid_identity(alg, [1, 2])
        assert not out.holds

    def test_annihilator_violation_caught(self):
        alg = NonCommutative()
        # choice(a, trivial) = a != trivial
        out = check_trivial_annihilator(alg, [2])
        assert not out.holds

    def test_invalid_fixed_point_violation_caught(self):
        alg = HopCountAlgebra(8)
        leaky = FunctionEdge(lambda a: 3, name="const3")
        out = check_invalid_fixed_point(alg, [leaky])
        assert not out.holds


class TestReportAPI:
    def test_unknown_law_raises(self, rng):
        rep = verify_algebra(HopCountAlgebra(4), rng=rng)
        with pytest.raises(KeyError):
            rep.check("no such law")

    def test_table_rendering(self, rng):
        rep = verify_algebra(HopCountAlgebra(4), rng=rng)
        text = rep.table()
        assert "hop-count<4>" in text
        assert "✓ ⊕ associative" in text

    def test_counterexample_rendered_on_failure(self, rng):
        alg = FiniteLevelAlgebra(4)
        bad = alg.table_edge([0, 0, 1, 2, 4])
        rep = verify_algebra(alg, edge_functions=[bad], rng=rng)
        text = rep.check("F increasing").describe()
        assert "✗" in text and "counterexample" in text

    def test_broken_algebra_is_not_routing_algebra(self, rng):
        rep = verify_algebra(BrokenChoice(), rng=rng)
        assert not rep.is_routing_algebra


class TestExhaustiveVsSampled:
    def test_finite_algebra_checked_exhaustively(self, rng):
        alg = FiniteLevelAlgebra(3)   # carrier size 4
        rep = verify_algebra(alg, rng=rng)
        assert rep.check("⊕ associative").cases == 4 ** 3

    def test_infinite_algebra_sampled(self, rng):
        from repro.algebras import ShortestPathsAlgebra

        rep = verify_algebra(ShortestPathsAlgebra(), rng=rng, samples=10)
        # 10 samples + trivial + invalid = 12 routes -> 12^3 triples
        assert rep.check("⊕ associative").cases == 12 ** 3
