"""Network-level verification and the theorem-mapping helper."""

import pytest

from repro.algebras import bad_gadget
from repro.verification import convergence_guarantee, verify_network
from tests.conftest import bgp_net, hop_net, shortest_pv_net


class TestVerifyNetwork:
    def test_hop_ring_passes(self):
        rep = verify_network(hop_net(4))
        assert rep.is_routing_algebra
        assert rep.is_strictly_increasing

    def test_path_algebra_network_gets_path_laws(self):
        rep = verify_network(shortest_pv_net(4))
        assert rep.holds("P3: path(A_ij(r)) follows the extension rule")

    def test_bgp_network_passes(self):
        rep = verify_network(bgp_net(4, seed=3))
        assert rep.is_routing_algebra
        assert rep.is_strictly_increasing

    def test_spp_gadget_flagged(self):
        rep = verify_network(bad_gadget(), samples=50)
        assert rep.is_routing_algebra       # structure is fine
        assert not rep.is_increasing        # preferences are not


class TestConvergenceGuarantee:
    def test_theorem7_route(self):
        rep = verify_network(hop_net(4))
        msg = convergence_guarantee(rep, finite_carrier=True,
                                    path_algebra=False)
        assert "Theorem 7" in msg

    def test_theorem11_route(self):
        rep = verify_network(shortest_pv_net(4))
        msg = convergence_guarantee(rep, finite_carrier=False,
                                    path_algebra=True)
        assert "Theorem 11" in msg

    def test_no_guarantee_for_spp(self):
        rep = verify_network(bad_gadget(), samples=50)
        msg = convergence_guarantee(rep, finite_carrier=False,
                                    path_algebra=True)
        assert "no convergence guarantee" in msg

    def test_broken_structure_reported(self):
        from tests.verification.test_properties import BrokenChoice
        from repro.verification import verify_algebra

        rep = verify_algebra(BrokenChoice())
        msg = convergence_guarantee(rep, finite_carrier=True,
                                    path_algebra=False)
        assert "not a routing algebra" in msg

    def test_infinite_strict_dv_gets_no_guarantee(self):
        """Strictly increasing but infinite: Theorem 7 does NOT apply
        (shortest paths counts to infinity) — the mapping must refuse."""
        from repro.algebras import ShortestPathsAlgebra
        from repro.verification import verify_algebra

        rep = verify_algebra(ShortestPathsAlgebra())
        msg = convergence_guarantee(rep, finite_carrier=False,
                                    path_algebra=False)
        assert "no convergence guarantee" in msg
