"""Shared fixtures and small-network builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.algebras import (
    AddPaths,
    BGPLiteAlgebra,
    FiniteLevelAlgebra,
    HopCountAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.core import ENGINES as ENGINE_CHOICES
from repro.core import Network


def pytest_addoption(parser):
    parser.addoption(
        "--engine", action="store", default="all",
        choices=("all",) + ENGINE_CHOICES,
        help="restrict tests using the `engine` fixture to one engine "
             "(default: parametrise over all engines)")


def pytest_generate_tests(metafunc):
    """Parametrise the ``engine`` fixture from ``--engine``.

    Tier-1 runs the whole engine matrix at small sizes; CI shards can
    pass ``--engine=vectorized`` (etc.) to split the matrix, and
    ``-m slow`` scales the oracle suite's sizes up.
    """
    if "engine" in metafunc.fixturenames:
        chosen = metafunc.config.getoption("--engine")
        engines = ENGINE_CHOICES if chosen == "all" else (chosen,)
        metafunc.parametrize("engine", engines)


@pytest.fixture
def rng():
    return random.Random(12345)


def hop_net(n: int = 4, bound: int = 16, weight: int = 1,
            arcs=None) -> Network:
    """A hop-count network on a ring (or explicit arcs)."""
    alg = HopCountAlgebra(bound)
    net = Network(alg, n, name=f"hop-ring-{n}")
    if arcs is None:
        arcs = [(i, (i + 1) % n) for i in range(n)]
        arcs += [((i + 1) % n, i) for i in range(n)]
    for (i, j) in arcs:
        net.set_edge(i, j, alg.edge(weight))
    return net


def finite_net(n: int = 4, levels: int = 8, seed: int = 0) -> Network:
    """A finite-chain-algebra network with random strict tables on a ring."""
    alg = FiniteLevelAlgebra(levels)
    r = random.Random(seed)
    net = Network(alg, n, name=f"finite-ring-{n}")
    for i in range(n):
        for j in ((i + 1) % n, (i - 1) % n):
            net.set_edge(i, j, alg.random_strict_edge(r))
    return net


def shortest_pv_net(n: int = 4, seed: int = 0) -> Network:
    """AddPaths(shortest-paths) on a ring with random weights."""
    base = ShortestPathsAlgebra()
    alg = AddPaths(base, n_nodes=n)
    r = random.Random(seed)
    net = Network(alg, n, name=f"sp-pv-ring-{n}")
    for i in range(n):
        for j in ((i + 1) % n, (i - 1) % n):
            net.set_edge(i, j, alg.edge(i, j, base.edge(r.randint(1, 4))))
    return net


def bgp_net(n: int = 4, seed: int = 0, allow_reject: bool = False) -> Network:
    """BGPLite on a ring with random safe policies."""
    from repro.algebras.bgplite import random_policy

    alg = BGPLiteAlgebra(n_nodes=n)
    r = random.Random(seed)
    net = Network(alg, n, name=f"bgp-ring-{n}")
    for i in range(n):
        for j in ((i + 1) % n, (i - 1) % n):
            pol = random_policy(r, alg.community_universe, n,
                                allow_reject=allow_reject)
            net.set_edge(i, j, alg.edge(i, j, pol))
    return net
