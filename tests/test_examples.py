"""Smoke tests: every shipped example must run clean end-to-end.

Examples are documentation that executes; a broken example is a broken
promise to the first user.  Each is run in a subprocess (fresh
interpreter, no test-suite state) and its key output lines checked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Theorem 7" in out
        assert "absolute=True" in out

    def test_bgp_wedgie(self):
        out = run_example("bgp_wedgie.py")
        assert "DISAGREE: 2 stable state(s)" in out
        assert "wedged = True" in out
        assert "limit cycle: True" in out
        assert "stable states reachable: 1" in out

    def test_count_to_infinity(self):
        out = run_example("count_to_infinity.py")
        assert "it never will" in out
        assert "path-vector lift: converged in" in out

    def test_safe_by_design(self):
        out = run_example("safe_by_design_bgp.py")
        assert "strictly increasing: True" in out
        assert "increasing: False" in out          # the SetPref control

    def test_datacenter(self):
        out = run_example("datacenter_bgp.py")
        assert "Theorem 11" in out
        assert "deterministic outcome: True" in out

    def test_vectorized_rip(self):
        out = run_example("vectorized_rip.py")
        assert "vectorizable: True" in out
        assert "engines agree: True" in out
        assert "δ engines agree: True" in out
        assert "vectorized skipped [no-finite-encoding]" in out

    def test_custom_algebra(self):
        out = run_example("custom_algebra.py")
        assert "✗ F increasing" in out             # the buggy round
        assert "Theorem 7" in out                  # the fixed round

    def test_scenario_replay(self):
        out = run_example("scenario_replay.py")
        assert "abilene" in out
        assert "Seattle" in out                    # corpus labels survive
        assert "link-down" in out and "node-up" in out
        assert "all converged: True" in out
