"""Rate sweeps and certified theory bounds."""

import math

import pytest

from repro.algebras import HopCountAlgebra
from repro.analysis import (
    dv_bounds,
    measure_sync,
    pv_bounds,
    rate_sweep,
)
from repro.topologies import line, preference_cascade, uniform_weight_factory
from tests.conftest import hop_net, shortest_pv_net


class TestRateSweep:
    def build_line(self, n):
        alg = HopCountAlgebra(2 * n)
        return line(alg, n, uniform_weight_factory(alg, 1, 1))

    def test_line_family_is_linear(self):
        sweep = rate_sweep("hop-line", self.build_line, [4, 8, 16])
        # shortest paths on a line: rounds = n - 1 (diameter), slope ~ 1
        assert 0.8 <= sweep.exponent <= 1.2, sweep.table()

    def test_cascade_family_super_constant(self):
        sweep = rate_sweep("cascade", preference_cascade, [4, 8, 12])
        assert sweep.exponent > 0.5

    def test_table_rendering(self):
        sweep = rate_sweep("hop-line", self.build_line, [4, 8])
        text = sweep.table()
        assert "n=4" in text and "fitted exponent" in text

    def test_divergent_family_raises(self):
        from repro.topologies import count_to_infinity

        def bad(_n):
            net, stale = count_to_infinity()
            return net

        # from the identity start this tiny net actually converges; use a
        # genuinely divergent measurement via max_rounds starvation
        def slow(n):
            return preference_cascade(n)

        with pytest.raises(RuntimeError):
            rate_sweep("starved", slow, [12], max_rounds=2)

    def test_exponent_nan_with_insufficient_points(self):
        from repro.analysis import RatePoint, RateSweep

        sweep = RateSweep("tiny", [RatePoint(4, 3, 5)])
        assert math.isnan(sweep.exponent)


class TestTheoryBounds:
    def test_dv_bound_certifies_measured_rounds(self):
        alg = HopCountAlgebra(16)
        bounds = dv_bounds(alg)
        assert bounds.height == 17          # |{0..16}|
        m = measure_sync(hop_net(5, bound=16))
        assert m.rounds <= bounds.sync_round_bound

    def test_pv_bound_certifies_measured_rounds(self):
        net = shortest_pv_net(4, seed=6)
        bounds = pv_bounds(net)
        m = measure_sync(net)
        assert m.rounds <= bounds.sync_round_bound
        assert bounds.distance_bound == bounds.height + net.n + 1

    def test_pv_bounds_rejects_non_path_algebra(self):
        with pytest.raises(TypeError):
            pv_bounds(hop_net(3))

    def test_describe(self):
        text = dv_bounds(HopCountAlgebra(4)).describe()
        assert "H=5" in text
