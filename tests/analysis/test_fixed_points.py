"""Fixed-point search: exhaustive column enumeration vs multistart."""

import pytest

from repro.algebras import (
    bad_gadget,
    disagree,
    spp_fixed_point_candidates,
)
from repro.analysis import (
    enumerate_fixed_points,
    multistart_fixed_points,
    stable_columns,
    sync_oscillates,
)
from repro.core import is_stable, RoutingState, synchronous_fixed_point
from tests.conftest import hop_net, shortest_pv_net


class TestStableColumns:
    def test_hop_ring_has_unique_columns(self):
        net = hop_net(3, bound=6)
        for d in range(3):
            cols = stable_columns(net, d, list(net.algebra.routes()))
            assert len(cols) == 1

    def test_columns_match_global_fixed_point(self):
        net = hop_net(3, bound=6)
        fp = synchronous_fixed_point(net)
        for d in range(3):
            [col] = stable_columns(net, d, list(net.algebra.routes()))
            assert list(col) == fp.column(d)


class TestEnumerate:
    def test_census_total_is_product(self):
        net = disagree()
        cands = {d: spp_fixed_point_candidates(net) for d in range(3)}
        census = enumerate_fixed_points(net, candidates=cands)
        assert census.total == \
            census.per_destination[0] * census.per_destination[1] * \
            census.per_destination[2]

    def test_path_algebra_candidates_derived_automatically(self):
        net = shortest_pv_net(3, seed=1)
        census = enumerate_fixed_points(net, dests=[0])
        assert census.per_destination[0] == 1

    def test_infinite_non_path_algebra_requires_candidates(self):
        from repro.algebras import ShortestPathsAlgebra
        from repro.core import Network

        alg = ShortestPathsAlgebra()
        net = Network(alg, 2)
        net.set_edge(0, 1, alg.edge(1))
        net.set_edge(1, 0, alg.edge(1))
        with pytest.raises(ValueError):
            enumerate_fixed_points(net, dests=[0])

    def test_enumerated_columns_assemble_into_stable_states(self):
        net = hop_net(3, bound=6)
        census = enumerate_fixed_points(net)
        rows = [[None] * 3 for _ in range(3)]
        for d in range(3):
            [col] = census.columns[d]
            for i in range(3):
                rows[i][d] = col[i]
        assert is_stable(net, RoutingState(rows))


class TestMultistart:
    def test_unique_for_strictly_increasing(self):
        net = hop_net(4, bound=8)
        report = multistart_fixed_points(net, n_starts=4, seed=1)
        assert report.converged_runs == report.runs
        assert len(report.fixed_points) == 1
        assert not report.wedged

    def test_divergence_counted(self):
        report = multistart_fixed_points(bad_gadget(), n_starts=2, seed=1,
                                         max_steps=300)
        assert report.diverged > 0


class TestSyncOscillates:
    def test_stable_network_does_not_oscillate(self):
        assert not sync_oscillates(hop_net(4))

    def test_divergence_is_not_oscillation(self):
        """Count-to-infinity never repeats a state (distances grow), so
        it is divergence-without-cycle: sync_oscillates must say False
        while iterate_sigma still reports non-convergence."""
        from repro.core import iterate_sigma
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        assert not sync_oscillates(net, start=stale, max_rounds=60)
        res = iterate_sigma(net, stale, max_rounds=60, detect_cycles=True)
        assert not res.converged
