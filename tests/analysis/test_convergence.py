"""Convergence measurement wrappers."""

from repro.analysis import measure_sync, run_absolute_convergence, sample_starts
from repro.core import RoutingState, synchronous_fixed_point
from tests.conftest import bgp_net, hop_net


class TestMeasureSync:
    def test_rounds_and_churn_positive(self):
        m = measure_sync(hop_net(5))
        assert m.converged
        assert m.rounds >= 2
        assert m.changed_entries >= m.rounds

    def test_zero_rounds_from_fixed_point(self):
        net = hop_net(4)
        fp = synchronous_fixed_point(net)
        m = measure_sync(net, start=fp)
        assert m.converged and m.rounds == 0 and m.changed_entries == 0

    def test_non_convergence_reported(self):
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        m = measure_sync(net, start=stale, max_rounds=30)
        assert not m.converged


class TestSampleStarts:
    def test_includes_identity_by_default(self):
        net = hop_net(3)
        starts = sample_starts(net, 4, seed=1)
        assert len(starts) == 5
        assert starts[0] == RoutingState.identity(net.algebra, 3)

    def test_reproducible(self):
        net = hop_net(3)
        a = sample_starts(net, 4, seed=9)
        b = sample_starts(net, 4, seed=9)
        assert all(x == y for x, y in zip(a, b))


class TestRunAbsoluteConvergence:
    def test_hop_count_is_absolute(self):
        report = run_absolute_convergence(hop_net(4), n_starts=3, seed=1,
                                          max_steps=1500)
        assert report.absolute

    def test_bgp_is_absolute(self):
        report = run_absolute_convergence(bgp_net(4, seed=2), n_starts=2,
                                          seed=2, max_steps=1500)
        assert report.absolute

    def test_report_counts_runs(self):
        report = run_absolute_convergence(hop_net(3), n_starts=2, seed=3,
                                          max_steps=1500)
        # (2 starts + identity) x |zoo|
        from repro.core import schedule_zoo

        assert report.runs == 3 * len(schedule_zoo(3, seeds=(3, 20)))
