"""Bisimulation (Section 8.4): inheritance of convergence."""

import random

import pytest

from repro.algebras import (
    AddPaths,
    BGPLiteAlgebra,
    Compose,
    IncrPrefBy,
    INVALID,
    Prepend,
    PrependingBGPAlgebra,
    ShortestPathsAlgebra,
    valid,
)
from repro.analysis import (
    check_bisimulation,
    inherited_convergence,
    project_state,
)
from repro.core import Network, RoutingState


def paired_shortest_networks(n=4, seed=0):
    """AddPaths(shortest) network + the plain shortest network obtained
    by forgetting paths — the Section 8.4 'extra information' pattern
    (router-level paths kept vs discarded)."""
    base = ShortestPathsAlgebra()
    lifted = AddPaths(base, n_nodes=n)
    rng = random.Random(seed)
    concrete = Network(lifted, n, name="with-paths")
    abstract = Network(base, n, name="values-only")
    for i in range(n):
        for j in ((i + 1) % n, (i - 1) % n):
            w = rng.randint(1, 4)
            concrete.set_edge(i, j, lifted.edge(i, j, base.edge(w)))
            abstract.set_edge(i, j, base.edge(w))

    def project(route):
        if lifted._is_invalid(route):
            return base.invalid
        return route[0]

    return concrete, abstract, project


class TestProjectState:
    def test_entrywise(self):
        X = RoutingState([[(1, ()), (2, (0, 1))], [(3, (1, 0)), (4, ())]])
        Y = project_state(lambda r: r[0], X)
        assert Y.rows == [[1, 2], [3, 4]]


class TestShortestPathsBisimulation:
    """AddPaths(shortest) ~ shortest: forgetting paths commutes with σ."""

    def test_square_commutes_from_consistent_starts(self):
        concrete, abstract, project = paired_shortest_networks()
        lifted = concrete.algebra
        starts = [RoutingState.identity(lifted, 4),
                  RoutingState.filled(lifted.invalid, 4)]
        report = check_bisimulation(concrete, abstract, project, starts,
                                    rounds=8)
        assert report.commutes, report.counterexample
        assert report.fixed_points_match
        assert bool(report)

    def test_square_breaks_from_ghost_states(self):
        """From arbitrary states the two systems genuinely differ: the
        lifted algebra *filters* ghost routes whose path source does not
        match the announcing node, plain DV launders them — this is the
        count-to-infinity gap, caught as a bisimulation failure."""
        concrete, abstract, project = paired_shortest_networks()
        lifted = concrete.algebra
        ghost = RoutingState.filled((5, (1, 0)), 4)
        report = check_bisimulation(concrete, abstract, project, [ghost],
                                    rounds=4, compare_fixed_points=False)
        assert not report.commutes

    def test_inheritance_message(self):
        concrete, abstract, project = paired_shortest_networks(seed=1)
        report = check_bisimulation(
            concrete, abstract, project,
            [RoutingState.identity(concrete.algebra, 4)])
        msg = inherited_convergence(report, "Theorem 11")
        assert "inherited" in msg


class TestPrependingBisimulation:
    """PrependingBGP with zero prepending ~ plain BGPLite; with real
    prepending the square must FAIL (padding changes preferences — the
    paper's proviso that policies must not exploit the hidden data)."""

    def _paired(self, prepend_times, n=4):
        """A diamond 0—1—3 / 0—2—3; imports *from node 1* are padded
        ``prepend_times`` times (asymmetric padding is what flips
        decisions — uniform padding cancels out in comparisons)."""
        concrete_alg = PrependingBGPAlgebra(n_nodes=n)
        abstract_alg = BGPLiteAlgebra(n_nodes=n)
        concrete = Network(concrete_alg, n)
        abstract = Network(abstract_alg, n)
        for (i, j) in [(0, 1), (1, 0), (0, 2), (2, 0),
                       (1, 3), (3, 1), (2, 3), (3, 2)]:
            pol = IncrPrefBy(0)
            cpol = Compose(pol, Prepend(prepend_times)) \
                if prepend_times and j == 1 else pol
            concrete.set_edge(i, j, concrete_alg.edge(i, j, cpol))
            abstract.set_edge(i, j, abstract_alg.edge(i, j, pol))

        def project(route):
            if route is INVALID:
                return INVALID
            return valid(route.lp, route.communities, route.path)

        return concrete, abstract, project

    def test_no_prepending_commutes(self):
        concrete, abstract, project = self._paired(0)
        starts = [RoutingState.identity(concrete.algebra, 4)]
        report = check_bisimulation(concrete, abstract, project, starts,
                                    rounds=8)
        assert report.commutes
        assert report.fixed_points_match

    def test_real_prepending_breaks_the_square(self):
        concrete, abstract, project = self._paired(2)
        starts = [RoutingState.identity(concrete.algebra, 4)]
        report = check_bisimulation(concrete, abstract, project, starts,
                                    rounds=8)
        # padding influences choice, so the abstraction is NOT a
        # bisimulation; the checker must catch it
        assert not report.fixed_points_match or not report.commutes
        assert "no inheritance" in inherited_convergence(report, "T11") \
            or not bool(report)


class TestValidation:
    def test_mismatched_sizes_rejected(self):
        base = ShortestPathsAlgebra()
        a = Network(base, 3)
        b = Network(base, 4)
        with pytest.raises(ValueError):
            check_bisimulation(a, b, lambda r: r, [])
