"""Failure-injection robustness harness."""

import pytest

from repro.analysis import (
    failure_sweep,
    inject_failure,
    partition_probe,
    random_multi_failure_sweep,
)
from repro.protocols import HOSTILE
from tests.conftest import bgp_net, hop_net, shortest_pv_net


class TestInjectFailure:
    def test_single_link_on_ring(self):
        net = hop_net(5)
        outcome = inject_failure(net, [(0, 1)], seed=1)
        assert outcome.converged
        assert outcome.deterministic
        assert outcome.partitioned_pairs == 0   # ring survives one cut
        assert outcome.reconvergence_time > 0

    def test_original_network_untouched(self):
        net = hop_net(4)
        before = set(net.present_edges())
        inject_failure(net, [(0, 1)], seed=2)
        assert set(net.present_edges()) == before

    def test_partitioning_failure_counts_pairs(self):
        # line 0-1-2-3: cutting 1-2 splits {0,1} from {2,3}
        net = hop_net(4, arcs=[(0, 1), (1, 0), (1, 2), (2, 1),
                               (2, 3), (3, 2)])
        outcome = inject_failure(net, [(1, 2)], seed=3)
        assert outcome.converged
        assert outcome.partitioned_pairs == 8   # 2x2 pairs, both directions


class TestFailureSweep:
    def test_ring_sweep_all_recover(self):
        # n = 6: cutting a link leaves genuinely stale caches (the
        # nodes whose old routes crossed the cut must re-learn over
        # several message exchanges), so re-convergence takes real time
        net = hop_net(6)
        report = failure_sweep(net, seed=4)
        assert len(report.outcomes) == 6        # 6 undirected ring links
        assert report.all_converged
        assert report.all_deterministic
        assert report.worst_reconvergence >= report.mean_reconvergence > 0

    def test_max_links_cap(self):
        net = hop_net(5)
        report = failure_sweep(net, seed=5, max_links=2)
        assert len(report.outcomes) == 2

    def test_table_renders(self):
        net = hop_net(4)
        report = failure_sweep(net, seed=6, max_links=1)
        text = report.table()
        assert "re-time" in text and "0-1" in text

    def test_sweep_under_hostile_channels(self):
        net = bgp_net(4, seed=7)
        report = failure_sweep(net, seed=7, link_config=HOSTILE,
                               max_links=2)
        assert report.all_converged
        assert report.all_deterministic


class TestMultiFailure:
    def test_double_failures_on_pv_net(self):
        net = shortest_pv_net(5, seed=8)
        report = random_multi_failure_sweep(net, k=2, trials=3, seed=8)
        assert len(report.outcomes) == 3
        assert report.all_converged
        assert report.all_deterministic


class TestPartitionProbe:
    def test_clean_withdrawal_on_pv(self):
        """The acceptance test the paper motivates: partition ⇒ routes
        withdrawn (∞̄), not counted to infinity."""
        net = shortest_pv_net(4, seed=9)
        # isolate node 0 completely
        links = [(0, 1), (0, 3)]
        outcome, withdrew = partition_probe(net, links, seed=9)
        assert withdrew
        assert outcome.partitioned_pairs == 6   # node 0 vs 3 others, both ways

    def test_empty_report_statistics(self):
        from repro.analysis import RobustnessReport

        r = RobustnessReport()
        assert r.all_converged and r.all_deterministic
        assert r.worst_reconvergence == 0.0
        assert r.mean_reconvergence == 0.0
