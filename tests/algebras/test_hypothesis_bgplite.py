"""Property-based tests for BGPLite: safety-by-design over the whole
policy language (Section 7's headline, hypothesis-style)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebras import (
    AddComm,
    And,
    BGPLiteAlgebra,
    BGPRoute,
    Compose,
    DelComm,
    If,
    InComm,
    IncrPrefBy,
    InPath,
    INVALID,
    LprefEq,
    Not,
    Or,
    Reject,
    valid,
)

N_NODES = 5
COMMS = 6


def conditions(depth=2):
    leaf = st.one_of(
        st.builds(InPath, st.integers(0, N_NODES - 1)),
        st.builds(InComm, st.integers(0, COMMS - 1)),
        st.builds(LprefEq, st.integers(0, 6)),
    )
    if depth == 0:
        return leaf
    sub = conditions(depth - 1)
    return st.one_of(
        leaf,
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(Not, sub),
    )


def policies(depth=3):
    leaf = st.one_of(
        st.just(Reject()),
        st.builds(IncrPrefBy, st.integers(0, 5)),
        st.builds(AddComm, st.integers(0, COMMS - 1)),
        st.builds(DelComm, st.integers(0, COMMS - 1)),
    )
    if depth == 0:
        return leaf
    sub = policies(depth - 1)
    return st.one_of(
        leaf,
        st.builds(Compose, sub, sub),
        st.builds(If, conditions(), sub),
    )


@st.composite
def routes(draw):
    lp = draw(st.integers(0, 8))
    comms = frozenset(draw(st.lists(st.integers(0, COMMS - 1), max_size=4)))
    k = draw(st.integers(0, 3))
    if k == 0:
        path = ()
    else:
        nodes = draw(st.permutations(range(N_NODES)))
        path = tuple(nodes[:k + 1])
    return BGPRoute(lp, comms, path)


class TestPolicySemantics:
    @settings(max_examples=200, deadline=None)
    @given(policies(), routes())
    def test_policy_never_lowers_the_level(self, pol, route):
        """The increasing linchpin: no policy can reduce lp."""
        out = pol.apply(route)
        if out is not INVALID:
            assert out.lp >= route.lp

    @settings(max_examples=200, deadline=None)
    @given(policies(), routes())
    def test_policy_never_touches_the_path(self, pol, route):
        out = pol.apply(route)
        if out is not INVALID:
            assert out.path == route.path

    @settings(max_examples=100, deadline=None)
    @given(policies())
    def test_invalid_is_fixed(self, pol):
        assert pol.apply(INVALID) is INVALID


class TestEdgeIncreasing:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, N_NODES - 1), st.integers(0, N_NODES - 1),
           policies(), routes())
    def test_every_edge_strictly_increasing(self, i, j, pol, route):
        """Definition 3 over arbitrary (edge, policy, route) draws."""
        alg = BGPLiteAlgebra(n_nodes=N_NODES)
        if i == j:
            return
        f = alg.edge(i, j, pol)
        out = f(route)
        if route is INVALID:
            assert out is INVALID
        else:
            assert alg.lt(route, out) or alg.equal(out, alg.invalid)
            # and never equal:
            assert not alg.equal(route, out)


class TestChoiceLaws:
    @settings(max_examples=200, deadline=None)
    @given(routes(), routes(), routes())
    def test_associative(self, a, b, c):
        alg = BGPLiteAlgebra(n_nodes=N_NODES)
        assert alg.choice(a, alg.choice(b, c)) == \
            alg.choice(alg.choice(a, b), c)

    @settings(max_examples=200, deadline=None)
    @given(routes(), routes())
    def test_commutative_and_selective(self, a, b):
        alg = BGPLiteAlgebra(n_nodes=N_NODES)
        chosen = alg.choice(a, b)
        assert chosen == alg.choice(b, a)
        assert chosen == a or chosen == b
