"""SPP gadgets: the negative controls (wedgies and oscillation)."""

import random

import pytest

from repro.algebras import (
    SPP_INVALID,
    SPPAlgebra,
    bad_gadget,
    disagree,
    good_gadget,
    increasing_disagree,
    spp_fixed_point_candidates,
)
from repro.analysis import (
    enumerate_fixed_points,
    multistart_fixed_points,
    sync_oscillates,
)
from repro.core import BOTTOM, RoutingState, iterate_sigma
from repro.verification import verify_algebra


@pytest.fixture
def rng():
    return random.Random(11)


class TestAlgebraMechanics:
    def setup_method(self):
        self.net = disagree()
        self.alg = self.net.algebra

    def test_rank_lookup(self):
        assert self.alg.rank_of(1, (1, 2, 0)) == 0
        assert self.alg.rank_of(1, (1, 0)) == 1
        assert self.alg.rank_of(1, (1, 9, 0)) is None

    def test_edge_ranks_with_head_node_table(self):
        f = self.alg.edge(1, 2)
        assert f((1, (2, 0))) == (0, (1, 2, 0))

    def test_unranked_path_filtered(self):
        f = self.alg.edge(2, 0)           # path (2, 0) is ranked though
        assert f(self.alg.trivial) == (1, (2, 0))
        g = self.alg.edge(0, 1)           # node 0 ranks nothing
        assert g((1, (1, 0))) == SPP_INVALID

    def test_loop_filtered(self):
        f = self.alg.edge(2, 1)
        assert f((0, (1, 2, 0))) == SPP_INVALID

    def test_path_projection(self):
        assert self.alg.path(SPP_INVALID) is BOTTOM
        assert self.alg.path((0, (1, 2, 0))) == (1, 2, 0)

    def test_required_laws_hold(self, rng):
        """SPP algebras are genuine routing algebras — only the
        *increasing* law is violated."""
        rep = verify_algebra(self.alg, rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_not_increasing(self, rng):
        rep = verify_algebra(self.alg, rng=rng, samples=60)
        assert not rep.is_increasing


class TestDisagree:
    """The BGP wedgie: two stable states."""

    def test_exactly_two_stable_columns(self):
        net = disagree()
        census = enumerate_fixed_points(
            net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
        assert census.per_destination[0] == 2

    def test_both_states_reachable(self):
        net = disagree()
        report = multistart_fixed_points(net, n_starts=8, seed=4,
                                         max_steps=600)
        assert report.wedged
        assert len(report.fixed_points) == 2

    def test_wedge_contents(self):
        """The two stable states are the expected route assignments."""
        net = disagree()
        census = enumerate_fixed_points(
            net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
        cols = {tuple(c[1:]) for c in census.columns[0]}
        wedge_a = ((1, (1, 0)), (0, (2, 1, 0)))   # 1 direct, 2 via 1
        wedge_b = ((0, (1, 2, 0)), (1, (2, 0)))   # 2 direct, 1 via 2
        assert cols == {wedge_a, wedge_b}


class TestBadGadget:
    def test_no_stable_state(self):
        net = bad_gadget()
        census = enumerate_fixed_points(
            net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
        assert census.per_destination[0] == 0

    def test_sync_oscillation(self):
        assert sync_oscillates(bad_gadget())


class TestGoodGadget:
    def test_unique_stable_state_despite_non_increasing(self):
        """Sufficient, not necessary: GOOD GADGET violates increasing
        yet converges absolutely."""
        net = good_gadget()
        census = enumerate_fixed_points(
            net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
        assert census.per_destination[0] == 1
        assert not sync_oscillates(net)


class TestIncreasingRepair:
    def test_unique_stable_state(self):
        net = increasing_disagree()
        census = enumerate_fixed_points(
            net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
        assert census.per_destination[0] == 1

    def test_repaired_algebra_is_increasing_on_its_network(self):
        """Rank grows with path length in the repaired tables."""
        net = increasing_disagree()
        alg = net.algebra
        for (i, j) in net.present_edges():
            f = net.edge(i, j)
            for node, table in alg.rankings.items():
                for path, rank in table.items():
                    r = (rank, path)
                    out = f(r)
                    if out != SPP_INVALID:
                        assert alg.lt(r, out) or alg.equal(r, out) is False

    def test_all_runs_reach_the_same_state(self):
        net = increasing_disagree()
        report = multistart_fixed_points(net, n_starts=8, seed=5,
                                         max_steps=600)
        assert not report.wedged
        assert report.converged_runs == report.runs
