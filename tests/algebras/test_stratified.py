"""Stratified shortest paths and its embedding into BGPLite."""

import random

import pytest

from repro.algebras import (
    AddDistance,
    AddPaths,
    BGPLiteAlgebra,
    Compose,
    Filtered,
    IncrPrefBy,
    RaiseLevel,
    StratifiedAlgebra,
    valid,
)
from repro.core import Network, RoutingState, iterate_sigma
from repro.verification import verify_algebra


@pytest.fixture
def rng():
    return random.Random(55)


class TestLaws:
    def test_full_profile(self, rng):
        rep = verify_algebra(StratifiedAlgebra(), rng=rng)
        assert rep.is_routing_algebra, rep.table()
        assert rep.is_strictly_increasing, rep.table()

    def test_add_and_raise_alone_are_distributive(self):
        """AddDistance and RaiseLevel are monotone over the total order,
        and a selective ⊕ distributes over every monotone map — so the
        restricted policy set is classical."""
        alg = StratifiedAlgebra()
        rep = verify_algebra(
            alg, edge_functions=[AddDistance(3), RaiseLevel(1), Filtered()],
            rng=random.Random(0))
        assert rep.is_distributive

    def test_level_map_breaks_distributivity(self):
        """A non-monotone level map ({0 → 2, 1 → 1}) reverses
        preferences across the edge: f(a ⊕ b) ≠ f(a) ⊕ f(b)."""
        alg = StratifiedAlgebra()
        f = alg.level_map({0: 2, 1: 1}, add=1)
        a = (0, 5)     # preferred before the edge
        b = (1, 3)
        assert alg.choice(a, b) == a
        lhs = f(alg.choice(a, b))            # f(a) = (2, 0)
        rhs = alg.choice(f(a), f(b))         # min((2,0), (1,4)) = (1,4)
        assert lhs == (2, 0) and rhs == (1, 4)
        assert not alg.equal(lhs, rhs)

    def test_level_map_still_strictly_increasing(self, rng):
        alg = StratifiedAlgebra()
        edges = [alg.level_map({0: 2, 1: 1}, add=1)]
        edges += [type(edges[0]).random(rng, 4) for _ in range(20)]
        rep = verify_algebra(alg, edge_functions=edges, rng=rng)
        assert rep.is_strictly_increasing, rep.table()
        assert not rep.is_distributive

    def test_level_map_validation(self):
        alg = StratifiedAlgebra()
        with pytest.raises(ValueError):
            alg.level_map({2: 1})      # lowers a level
        with pytest.raises(ValueError):
            alg.level_map({0: 0}, add=0)

    def test_level_and_distance_semantics(self):
        alg = StratifiedAlgebra()
        assert AddDistance(3)((2, 5)) == (2, 8)
        assert RaiseLevel(2)((1, 7)) == (3, 0)
        assert Filtered()((0, 0)) == alg.invalid

    def test_invalid_fixed(self):
        alg = StratifiedAlgebra()
        for f in (AddDistance(1), RaiseLevel(1), Filtered()):
            assert f(alg.invalid) == alg.invalid

    def test_validation(self):
        with pytest.raises(ValueError):
            AddDistance(0)
        with pytest.raises(ValueError):
            RaiseLevel(0)


class TestPreference:
    def test_lower_level_always_wins(self):
        alg = StratifiedAlgebra()
        assert alg.choice((0, 999), (1, 0)) == (0, 999)

    def test_distance_breaks_level_tie(self):
        alg = StratifiedAlgebra()
        assert alg.choice((1, 3), (1, 7)) == (1, 3)


class TestConvergence:
    def test_mixed_policy_line(self):
        alg = StratifiedAlgebra()
        net = Network(alg, 4)
        net.set_edge(0, 1, alg.add(1))
        net.set_edge(1, 0, alg.add(1))
        net.set_edge(1, 2, alg.raise_level())
        net.set_edge(2, 1, alg.raise_level())
        net.set_edge(2, 3, alg.add(2))
        net.set_edge(3, 2, alg.add(2))
        res = iterate_sigma(net, RoutingState.identity(alg, 4))
        assert res.converged
        # node 0's route to 3 crosses the level boundary once
        assert res.state.get(0, 3) == (1, 1)


class TestBGPLiteEmbedding:
    """The paper: BGPLite 'is a superset of the Stratified Shortest
    Paths algebra'.  Witness: map level -> local-pref and distance ->
    path length; every stratified edge policy has a BGPLite policy with
    the same preference behaviour."""

    def embed_edge(self, alg_bgp, i, j, strat_edge):
        if isinstance(strat_edge, Filtered):
            from repro.algebras import Reject

            return alg_bgp.edge(i, j, Reject())
        if isinstance(strat_edge, RaiseLevel):
            # jumping k levels: raise lp by a stride large enough to
            # dominate any path-length difference
            return alg_bgp.edge(i, j, IncrPrefBy(100 * strat_edge.k))
        # AddDistance(w): path length already grows by 1 per hop; extra
        # weight becomes a small lp bump that cannot cross a stride
        return alg_bgp.edge(i, j, IncrPrefBy(strat_edge.weight - 1))

    def test_embedding_preserves_fixed_point_shape(self):
        """Build the same topology in both algebras (unit weights) and
        check the winning *paths* coincide."""
        strat = StratifiedAlgebra()
        snet = Network(strat, 4)
        bgp = BGPLiteAlgebra(n_nodes=4)
        bnet = Network(bgp, 4)
        arcs = [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2),
                (0, 3), (3, 0)]
        for (i, j) in arcs:
            if (i, j) in ((0, 3), (3, 0)):
                snet.set_edge(i, j, strat.raise_level())
                bnet.set_edge(i, j, self.embed_edge(bgp, i, j,
                                                    strat.raise_level()))
            else:
                snet.set_edge(i, j, strat.add(1))
                bnet.set_edge(i, j, self.embed_edge(bgp, i, j, strat.add(1)))
        sres = iterate_sigma(snet, RoutingState.identity(strat, 4))
        bres = iterate_sigma(bnet, RoutingState.identity(bgp, 4))
        assert sres.converged and bres.converged
        # compare reachability and level structure entry-wise
        for i in range(4):
            for j in range(4):
                s_route = sres.state.get(i, j)
                b_route = bres.state.get(i, j)
                s_valid = not strat.equal(s_route, strat.invalid)
                b_valid = not bgp.equal(b_route, bgp.invalid)
                assert s_valid == b_valid
                if s_valid and i != j:
                    level = s_route[0]
                    assert b_route.lp // 100 == level
