"""AS-path prepending (the Section 7 extension)."""

import random

import pytest

from repro.algebras import (
    Compose,
    IncrPrefBy,
    INVALID,
    PaddedRoute,
    Prepend,
    PrependingBGPAlgebra,
    padded,
    padding_of,
    strip_padding,
)
from repro.core import BOTTOM, Network, RoutingState, iterate_sigma
from repro.verification import verify_algebra, verify_path_algebra


@pytest.fixture
def rng():
    return random.Random(808)


class TestStripping:
    def test_strip_padding(self):
        assert strip_padding((3, 3, 3, 2, 0)) == (3, 2, 0)
        assert strip_padding((3, 2, 0)) == (3, 2, 0)
        assert strip_padding(()) == ()

    def test_padding_of(self):
        assert padding_of((3, 3, 3, 2, 0)) == 2
        assert padding_of((1, 0)) == 0

    def test_projection_is_simple(self):
        alg = PrependingBGPAlgebra()
        r = padded(0, (), (3, 3, 2, 2, 0))
        from repro.core import is_simple

        assert is_simple(alg.path(r))


class TestPrependPolicy:
    def test_pads_the_head(self):
        r = padded(1, {4}, (2, 0))
        out = Prepend(3).apply(r)
        assert out.raw_path == (2, 2, 2, 2, 0)
        assert out.path == (2, 0)
        assert out.lp == 1

    def test_zero_prepend_is_noop(self):
        r = padded(1, (), (2, 0))
        assert Prepend(0).apply(r) == r

    def test_empty_path_unpadded(self):
        r = padded(0, (), ())
        assert Prepend(2).apply(r) == r

    def test_invalid_fixed(self):
        assert Prepend(2).apply(INVALID) is INVALID

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Prepend(-1)

    def test_composes_with_bgplite_policies(self):
        pol = Compose(IncrPrefBy(2), Prepend(1))
        out = pol.apply(padded(0, (), (2, 0)))
        assert out.lp == 2
        assert out.raw_path == (2, 2, 0)


class TestPreferenceEffect:
    """Prepending's purpose: make a route look longer, deterring use."""

    def test_padded_route_loses_length_tie(self):
        alg = PrependingBGPAlgebra()
        plain = padded(0, (), (1, 0))
        puffed = padded(0, (), (2, 2, 0))   # same simple length, padded
        assert alg.choice(plain, puffed) == plain

    def test_padding_can_flip_a_decision(self):
        alg = PrependingBGPAlgebra()
        # without padding the 2-hop route via 2 loses to the 2-hop via 1
        a = padded(0, (), (1, 3, 0))
        b = padded(0, (), (2, 0))
        assert alg.choice(a, b) == b        # shorter raw path wins
        b_padded = padded(0, (), (2, 2, 2, 0))
        assert alg.choice(a, b_padded) == a


class TestEdgeFunctions:
    def test_extension_preserves_padding(self):
        alg = PrependingBGPAlgebra()
        f = alg.edge(3, 2, IncrPrefBy(0))
        out = f(padded(0, (), (2, 2, 0)))
        assert out.raw_path == (3, 2, 2, 0)
        assert out.path == (3, 2, 0)

    def test_loop_checked_on_stripped_path(self):
        alg = PrependingBGPAlgebra()
        f = alg.edge(0, 2, IncrPrefBy(0))
        assert f(padded(0, (), (2, 2, 1, 0))) is INVALID

    def test_prepending_edge_policy(self):
        alg = PrependingBGPAlgebra()
        f = alg.edge(3, 2, Prepend(2))
        out = f(padded(0, (), (2, 0)))
        assert out.raw_path == (3, 3, 3, 2, 0)


class TestLaws:
    def test_full_profile(self, rng):
        alg = PrependingBGPAlgebra(n_nodes=6)
        rep = verify_algebra(alg, rng=rng, samples=60)
        assert rep.is_routing_algebra, rep.table()
        assert rep.is_strictly_increasing, rep.table()

    def test_path_laws_on_stripped_projection(self, rng):
        from repro.algebras.bgplite import random_policy

        alg = PrependingBGPAlgebra(n_nodes=4)
        pairs = []
        for i in range(4):
            for j in range(4):
                if i != j:
                    pol = Compose(random_policy(rng, n_nodes=4),
                                  Prepend(rng.randint(0, 2)))
                    pairs.append((i, j, alg.edge(i, j, pol)))
        rep = verify_path_algebra(alg, pairs, rng=rng)
        assert rep.holds("P1: x = ∞̄ ⇔ path(x) = ⊥"), rep.table()
        assert rep.holds("path(x) is always simple"), rep.table()
        assert rep.holds("P3: path(A_ij(r)) follows the extension rule"), \
            rep.table()


class TestTrafficEngineering:
    def test_prepending_diverts_traffic(self):
        """The operational point: node 0 reaches 3 via 1 by default;
        after 1 prepends, traffic shifts to the path via 2 — and the
        network still converges absolutely (Theorem 11 untouched)."""
        alg = PrependingBGPAlgebra(n_nodes=4)
        plain = IncrPrefBy(0)

        def build(prepend_on_1: int) -> Network:
            net = Network(alg, 4)
            for (i, j) in [(0, 1), (1, 0), (0, 2), (2, 0),
                           (1, 3), (3, 1), (2, 3), (3, 2)]:
                pol = plain
                if prepend_on_1 and j == 1:
                    # importing from node 1: node 1's announcements are
                    # padded (model the padding on the import side)
                    pol = Prepend(prepend_on_1)
                net.set_edge(i, j, alg.edge(i, j, pol))
            return net

        before = iterate_sigma(
            build(0), RoutingState.identity(alg, 4)).state
        assert before.get(0, 3).path in ((0, 1, 3), (0, 2, 3))
        baseline = before.get(0, 3).path

        after = iterate_sigma(
            build(3), RoutingState.identity(alg, 4)).state
        diverted = after.get(0, 3).path
        if baseline == (0, 1, 3):
            assert diverted == (0, 2, 3)
        else:
            assert diverted == baseline   # already avoiding node 1
