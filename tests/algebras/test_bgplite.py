"""BGPLite (Section 7): conditions, policies, the decision procedure,
and the safety-by-design claim."""

import random

import pytest

from repro.algebras import (
    AddComm,
    And,
    BGPLiteAlgebra,
    Compose,
    DelComm,
    If,
    InComm,
    IncrPrefBy,
    InPath,
    INVALID,
    LprefEq,
    Not,
    Or,
    Reject,
    SetPref,
    random_policy,
    valid,
)
from repro.core import BOTTOM
from repro.verification import verify_algebra, verify_path_algebra


@pytest.fixture
def rng():
    return random.Random(2718)


class TestConditions:
    def setup_method(self):
        self.route = valid(lp=3, communities={17, 4}, path=(2, 1, 0))

    def test_in_path(self):
        assert InPath(1).evaluate(self.route)
        assert not InPath(9).evaluate(self.route)

    def test_in_comm(self):
        """The paper's worked example: 'does this route contain the BGP
        community 17?'"""
        assert InComm(17).evaluate(self.route)
        assert not InComm(5).evaluate(self.route)

    def test_lpref_eq(self):
        assert LprefEq(3).evaluate(self.route)
        assert not LprefEq(4).evaluate(self.route)

    def test_boolean_connectives(self):
        assert And(InComm(17), InPath(2)).evaluate(self.route)
        assert not And(InComm(17), InPath(9)).evaluate(self.route)
        assert Or(InComm(5), InPath(1)).evaluate(self.route)
        assert Not(InComm(5)).evaluate(self.route)


class TestPolicies:
    def setup_method(self):
        self.route = valid(lp=2, communities={1}, path=(1, 0))

    def test_reject(self):
        assert Reject().apply(self.route) is INVALID

    def test_incr_pref(self):
        out = IncrPrefBy(3).apply(self.route)
        assert out.lp == 5
        assert out.path == self.route.path

    def test_incr_pref_rejects_negative(self):
        with pytest.raises(ValueError):
            IncrPrefBy(-1)

    def test_add_del_comm(self):
        added = AddComm(7).apply(self.route)
        assert added.communities == frozenset({1, 7})
        removed = DelComm(1).apply(added)
        assert removed.communities == frozenset({7})

    def test_del_absent_comm_is_noop(self):
        assert DelComm(9).apply(self.route).communities == frozenset({1})

    def test_compose_order(self):
        """compose p q applies p first (the Agda semantics)."""
        p = Compose(AddComm(7), If(InComm(7), IncrPrefBy(10)))
        out = p.apply(self.route)
        assert out.lp == 12           # the If sees the community p added

    def test_conditional_policy(self):
        pol = If(InComm(17), Reject())
        assert pol.apply(self.route) == self.route          # no tag: no-op
        tagged = valid(lp=0, communities={17}, path=(1, 0))
        assert pol.apply(tagged) is INVALID

    def test_every_policy_fixes_invalid(self, rng):
        for _ in range(100):
            pol = random_policy(rng)
            assert pol.apply(INVALID) is INVALID


class TestDecisionProcedure:
    """⊕ follows the paper's 4 steps (plus the community tiebreak)."""

    def setup_method(self):
        self.alg = BGPLiteAlgebra()

    def test_invalid_loses(self):
        r = valid(5, {1}, (1, 0))
        assert self.alg.choice(INVALID, r) == r
        assert self.alg.choice(r, INVALID) == r

    def test_lower_level_wins(self):
        a, b = valid(1, (), (3, 2, 1, 0)), valid(2, (), (1, 0))
        assert self.alg.choice(a, b) == a

    def test_shorter_path_breaks_level_tie(self):
        a, b = valid(1, (), (2, 0)), valid(1, (), (3, 1, 0))
        assert self.alg.choice(a, b) == a

    def test_lex_path_breaks_length_tie(self):
        a, b = valid(1, (), (1, 0)), valid(1, (), (2, 0))
        assert self.alg.choice(a, b) == a

    def test_trivial_annihilates(self):
        r = valid(0, (), (1, 0))
        assert self.alg.choice(self.alg.trivial, r) == self.alg.trivial


class TestEdgeFunctions:
    def setup_method(self):
        self.alg = BGPLiteAlgebra()

    def test_extension_and_policy(self):
        f = self.alg.edge(2, 1, IncrPrefBy(3))
        out = f(valid(1, {5}, (1, 0)))
        assert out == valid(4, {5}, (2, 1, 0))

    def test_loop_filtered(self):
        f = self.alg.edge(0, 1, IncrPrefBy(0))
        assert f(valid(0, (), (1, 2, 0))) is INVALID

    def test_source_mismatch_filtered(self):
        f = self.alg.edge(3, 2, IncrPrefBy(0))
        assert f(valid(0, (), (1, 0))) is INVALID

    def test_policy_sees_extended_path(self):
        """The Agda order: extend first, then apply policy — a policy
        matching on the *importing* edge works."""
        f = self.alg.edge(2, 1, If(InPath(2), IncrPrefBy(9)))
        out = f(valid(0, (), (1, 0)))
        assert out.lp == 9


class TestSafetyByDesign:
    """No expressible policy can break the increasing law."""

    def test_random_policies_increasing(self, rng):
        alg = BGPLiteAlgebra(n_nodes=6)
        edges = [alg.sample_edge_function(rng) for _ in range(60)]
        rep = verify_algebra(alg, edge_functions=edges, rng=rng, samples=60)
        assert rep.is_routing_algebra, rep.table()
        assert rep.is_strictly_increasing, rep.table()

    def test_path_laws(self, rng):
        alg = BGPLiteAlgebra(n_nodes=4)
        pairs = [(i, j, alg.edge(i, j, random_policy(rng, n_nodes=4)))
                 for i in range(4) for j in range(4) if i != j]
        rep = verify_path_algebra(alg, pairs, rng=rng)
        assert rep.holds("P3: path(A_ij(r)) follows the extension rule")
        assert rep.holds("P1: x = ∞̄ ⇔ path(x) = ⊥")

    def test_policy_rich_but_not_distributive(self, rng):
        """The whole point: conditionals break Eq. 1 while staying safe."""
        alg = BGPLiteAlgebra()
        f = alg.edge(2, 1, If(InComm(17), IncrPrefBy(5)))
        a = valid(0, {17}, (1, 0))
        b = valid(1, (), (1, 3, 0))
        lhs = f(alg.choice(a, b))
        rhs = alg.choice(f(a), f(b))
        assert not alg.equal(lhs, rhs)

    def test_setpref_breaks_increasing(self, rng):
        """Negative control (Section 8.2): real BGP's import-time
        local-pref overwrite violates the increasing law."""
        alg = BGPLiteAlgebra()
        unsafe = alg.edge(2, 1, SetPref(0))
        rep = verify_algebra(alg, edge_functions=[unsafe], rng=rng,
                             samples=60)
        assert not rep.is_increasing


class TestRandomPolicyGenerator:
    def test_depth_bounded_and_well_formed(self, rng):
        for _ in range(200):
            pol = random_policy(rng, depth=3)
            out = pol.apply(valid(1, {2}, (1, 0)))
            assert out is INVALID or out.lp >= 1

    def test_no_reject_option(self, rng):
        for _ in range(200):
            pol = random_policy(rng, allow_reject=False)
            out = pol.apply(valid(1, {2}, (1, 0)))
            assert out is not INVALID
