"""Finite chain algebras and table edges (the property-test substrate)."""

import pytest

from repro.algebras import FiniteLevelAlgebra
from repro.algebras.finite import TableEdge
from repro.verification import verify_algebra


class TestCarrier:
    def test_routes(self):
        alg = FiniteLevelAlgebra(3)
        assert list(alg.routes()) == [0, 1, 2, 3]
        assert alg.trivial == 0
        assert alg.invalid == 3

    def test_minimum_levels(self):
        with pytest.raises(ValueError):
            FiniteLevelAlgebra(0)


class TestTableEdges:
    def test_lookup(self):
        alg = FiniteLevelAlgebra(3)
        f = alg.table_edge([1, 2, 3, 3])
        assert [f(x) for x in alg.routes()] == [1, 2, 3, 3]

    def test_table_length_validated(self):
        alg = FiniteLevelAlgebra(3)
        with pytest.raises(ValueError):
            alg.table_edge([1, 2, 3])

    def test_invalid_must_be_fixed(self):
        alg = FiniteLevelAlgebra(3)
        with pytest.raises(ValueError):
            alg.table_edge([1, 2, 3, 2])

    def test_values_in_carrier(self):
        alg = FiniteLevelAlgebra(3)
        with pytest.raises(ValueError):
            alg.table_edge([1, 2, 9, 3])

    def test_strictness_predicates(self):
        alg = FiniteLevelAlgebra(3)
        strict = alg.table_edge([1, 2, 3, 3])
        plateau = alg.table_edge([0, 2, 3, 3])
        broken = alg.table_edge([1, 0, 3, 3])
        assert strict.is_strictly_increasing and strict.is_increasing
        assert plateau.is_increasing and not plateau.is_strictly_increasing
        assert not broken.is_increasing

    def test_step_edge(self):
        alg = FiniteLevelAlgebra(4)
        f = alg.step_edge(2)
        assert [f(x) for x in alg.routes()] == [2, 3, 4, 4, 4]

    def test_filter_edge(self):
        alg = FiniteLevelAlgebra(4)
        f = alg.filter_edge()
        assert all(f(x) == alg.invalid for x in alg.routes())
        assert f.is_strictly_increasing   # jumping to ∞̄ is strict


class TestRandomEdges:
    def test_random_strict_edges_are_strict(self, rng):
        alg = FiniteLevelAlgebra(6)
        for _ in range(50):
            assert alg.random_strict_edge(rng).is_strictly_increasing

    def test_random_increasing_edges_are_increasing(self, rng):
        alg = FiniteLevelAlgebra(6)
        for _ in range(50):
            assert alg.random_increasing_edge(rng).is_increasing

    def test_arbitrary_edges_fix_invalid(self, rng):
        alg = FiniteLevelAlgebra(6)
        for _ in range(50):
            f = alg.random_arbitrary_edge(rng)
            assert f(alg.invalid) == alg.invalid


class TestLawProfiles:
    def test_strict_tables_verify_strict(self, rng):
        alg = FiniteLevelAlgebra(5)
        edges = [alg.random_strict_edge(rng) for _ in range(10)]
        rep = verify_algebra(alg, edge_functions=edges, rng=rng)
        assert rep.is_routing_algebra
        assert rep.is_strictly_increasing

    def test_plateau_detected(self, rng):
        alg = FiniteLevelAlgebra(5)
        identityish = alg.table_edge([0, 1, 2, 3, 4, 5])   # g(x) = x
        rep = verify_algebra(alg, edge_functions=[identityish], rng=rng)
        assert rep.is_increasing
        assert not rep.is_strictly_increasing
        # the counterexample names the offending (f, a, f(a))
        check = rep.check("F strictly increasing")
        assert check.counterexample is not None

    def test_decreasing_table_detected(self, rng):
        alg = FiniteLevelAlgebra(5)
        bad = alg.table_edge([0, 0, 1, 2, 3, 5])
        rep = verify_algebra(alg, edge_functions=[bad], rng=rng)
        assert not rep.is_increasing
