"""Law profiles of the four Table 2 algebras.

Each algebra's row in Table 2 is checked: the five required laws hold,
and the increasing/strictly-increasing/distributive columns come out
exactly as the theory predicts:

===================  =========  ==========  ===========
algebra              increasing strictly    distributive
===================  =========  ==========  ===========
shortest paths (w≥1)    ✓          ✓            ✓
longest paths           ✗          ✗            —
widest paths            ✓          ✗            ✓
most reliable (s<1)     ✓          ✓            ✓
===================  =========  ==========  ===========
"""

import math
import random

import pytest

from repro.algebras import (
    LongestPathsAlgebra,
    MostReliableAlgebra,
    QuantisedReliabilityAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.verification import verify_algebra


@pytest.fixture
def rng():
    return random.Random(99)


class TestShortestPaths:
    def test_required_laws(self, rng):
        rep = verify_algebra(ShortestPathsAlgebra(), rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_strictly_increasing_with_positive_weights(self, rng):
        rep = verify_algebra(ShortestPathsAlgebra(), rng=rng)
        assert rep.is_increasing
        assert rep.is_strictly_increasing

    def test_distributive(self, rng):
        """min-plus is a semiring: the classical, non-policy-rich case."""
        rep = verify_algebra(ShortestPathsAlgebra(), rng=rng)
        assert rep.is_distributive

    def test_zero_weight_breaks_strictness(self, rng):
        alg = ShortestPathsAlgebra()
        rep = verify_algebra(alg, edge_functions=[alg.edge(0)], rng=rng)
        assert rep.is_increasing
        assert not rep.is_strictly_increasing

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ShortestPathsAlgebra().edge(-1)

    def test_infinity_absorbs(self):
        alg = ShortestPathsAlgebra()
        assert alg.edge(5)(alg.invalid) == alg.invalid


class TestLongestPaths:
    def test_required_laws(self, rng):
        rep = verify_algebra(LongestPathsAlgebra(), rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_not_increasing(self, rng):
        """Extending a route makes it *better* — the broken direction."""
        rep = verify_algebra(LongestPathsAlgebra(), rng=rng)
        assert not rep.is_increasing
        assert not rep.is_strictly_increasing

    def test_gain_edge_fixes_invalid(self):
        alg = LongestPathsAlgebra()
        assert alg.edge(5)(alg.invalid) == alg.invalid

    def test_order_prefers_longer(self):
        alg = LongestPathsAlgebra()
        assert alg.choice(10, 3) == 10
        assert alg.lt(10, 3)


class TestWidestPaths:
    def test_required_laws(self, rng):
        rep = verify_algebra(WidestPathsAlgebra(), rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_increasing_but_not_strictly(self, rng):
        rep = verify_algebra(WidestPathsAlgebra(), rng=rng)
        assert rep.is_increasing
        assert not rep.is_strictly_increasing

    def test_distributive(self, rng):
        """max-min is distributive — widest paths is globally optimal."""
        rep = verify_algebra(WidestPathsAlgebra(), rng=rng)
        assert rep.is_distributive

    def test_bottleneck_semantics(self):
        alg = WidestPathsAlgebra()
        f = alg.edge(4)
        assert f(10) == 4     # link is the bottleneck
        assert f(2) == 2      # upstream is the bottleneck
        assert f(alg.invalid) == alg.invalid

    def test_order_prefers_wider(self):
        alg = WidestPathsAlgebra()
        assert alg.choice(3, 7) == 7
        assert alg.leq(math.inf, 5)


class TestMostReliable:
    def test_required_laws(self, rng):
        rep = verify_algebra(MostReliableAlgebra(), rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_strictly_increasing_below_one(self, rng):
        rep = verify_algebra(MostReliableAlgebra(), rng=rng)
        assert rep.is_strictly_increasing

    def test_perfect_link_breaks_strictness(self, rng):
        alg = MostReliableAlgebra()
        rep = verify_algebra(alg, edge_functions=[alg.edge(1.0)], rng=rng)
        assert rep.is_increasing
        assert not rep.is_strictly_increasing

    def test_reliability_validation(self):
        with pytest.raises(ValueError):
            MostReliableAlgebra().edge(1.5)

    def test_multiplication_semantics(self):
        alg = MostReliableAlgebra()
        assert alg.edge(0.5)(0.5) == 0.25
        assert alg.edge(0.5)(alg.trivial) == 0.5


class TestQuantisedReliability:
    def test_finite_carrier(self):
        alg = QuantisedReliabilityAlgebra(quantum=4)
        assert list(alg.routes()) == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_required_laws_exhaustive(self, rng):
        rep = verify_algebra(QuantisedReliabilityAlgebra(quantum=5), rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_strictly_increasing(self, rng):
        rep = verify_algebra(QuantisedReliabilityAlgebra(quantum=5), rng=rng)
        assert rep.is_strictly_increasing, rep.table()

    def test_rounding_stays_on_grid(self, rng):
        alg = QuantisedReliabilityAlgebra(quantum=10)
        grid = set(alg.routes())
        for _ in range(50):
            f = alg.sample_edge_function(rng)
            r = alg.sample_route(rng)
            assert f(r) in grid
