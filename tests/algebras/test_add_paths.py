"""The AddPaths lift: P1–P3, the strictness upgrade, consistency."""

import random

import pytest

from repro.algebras import AddPaths, ShortestPathsAlgebra, WidestPathsAlgebra
from repro.core import BOTTOM, Network, RoutingState, iterate_sigma
from repro.verification import verify_algebra, verify_path_algebra


@pytest.fixture
def rng():
    return random.Random(77)


def lifted(base_cls=ShortestPathsAlgebra, n=5):
    base = base_cls()
    return AddPaths(base, n_nodes=n), base


class TestDistinguishedRoutes:
    def test_trivial_and_invalid(self):
        alg, base = lifted()
        assert alg.trivial == (base.trivial, ())
        assert alg.path(alg.trivial) == ()
        assert alg.path(alg.invalid) is BOTTOM

    def test_invalid_quotient(self):
        """(v, ⊥) and (∞̄_base, p) are all the invalid route (P1 quotient)."""
        alg, base = lifted()
        assert alg.equal((5, BOTTOM), alg.invalid)
        assert alg.equal((base.invalid, (1, 0)), alg.invalid)
        assert not alg.equal((5, (1, 0)), alg.invalid)


class TestChoice:
    def test_prefers_better_base_value(self):
        alg, _ = lifted()
        assert alg.choice((2, (1, 0)), (5, (2, 0))) == (2, (1, 0))

    def test_ties_break_on_path_length(self):
        alg, _ = lifted()
        short = (3, (2, 0))
        long_ = (3, (2, 1, 0))
        assert alg.choice(short, long_) == short
        assert alg.choice(long_, short) == short

    def test_ties_break_lexicographically(self):
        alg, _ = lifted()
        a = (3, (1, 0))
        b = (3, (2, 0))
        assert alg.choice(a, b) == a

    def test_invalid_loses(self):
        alg, _ = lifted()
        assert alg.choice(alg.invalid, (9, (1, 0))) == (9, (1, 0))


class TestEdgeFunctions:
    def test_extension_happy_path(self):
        alg, base = lifted()
        f = alg.edge(2, 1, base.edge(3))
        assert f((4, (1, 0))) == (7, (2, 1, 0))

    def test_trivial_route_extension(self):
        alg, base = lifted()
        f = alg.edge(2, 1, base.edge(3))
        assert f(alg.trivial) == (3, (2, 1))

    def test_loop_rejected(self):
        alg, base = lifted()
        f = alg.edge(0, 1, base.edge(1))
        assert alg.equal(f((2, (1, 2, 0))), alg.invalid)

    def test_source_mismatch_rejected(self):
        alg, base = lifted()
        f = alg.edge(3, 1, base.edge(1))
        # path starts at 2, but we claim to have learned it from 1
        assert alg.equal(f((2, (2, 0))), alg.invalid)

    def test_base_filter_propagates(self):
        alg, base = lifted()
        from repro.core import ConstantEdge

        f = alg.edge(2, 1, ConstantEdge(base.invalid))
        assert alg.equal(f((4, (1, 0))), alg.invalid)

    def test_invalid_is_fixed(self):
        alg, base = lifted()
        f = alg.edge(2, 1, base.edge(3))
        assert alg.equal(f(alg.invalid), alg.invalid)


class TestLaws:
    def test_full_table1_profile(self, rng):
        alg, _ = lifted()
        rep = verify_algebra(alg, rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_path_laws(self, rng):
        alg, base = lifted(n=4)
        pairs = [(i, j, alg.edge(i, j, base.edge(rng.randint(1, 3))))
                 for i in range(4) for j in range(4) if i != j]
        rep = verify_path_algebra(alg, pairs, rng=rng)
        for law in ("P1: x = ∞̄ ⇔ path(x) = ⊥",
                    "P2: x = 0̄ ⇒ path(x) = []",
                    "path(x) is always simple",
                    "P3: path(A_ij(r)) follows the extension rule"):
            assert rep.holds(law), rep.table()

    def test_strictness_upgrade(self, rng):
        """Increasing base (widest paths — NOT strictly increasing)
        lifts to a strictly increasing path algebra (Section 5.1)."""
        base = WidestPathsAlgebra()
        alg = AddPaths(base, n_nodes=5)
        rep = verify_algebra(alg, rng=rng)
        assert rep.is_strictly_increasing, rep.table()

    def test_non_increasing_base_stays_broken(self, rng):
        from repro.algebras import LongestPathsAlgebra

        base = LongestPathsAlgebra()
        alg = AddPaths(base, n_nodes=5)
        rep = verify_algebra(alg, rng=rng)
        assert not rep.is_increasing


class TestConsistency:
    def test_computed_routes_are_consistent(self):
        from tests.conftest import shortest_pv_net

        net = shortest_pv_net(4, seed=9)
        alg = net.algebra
        fp = iterate_sigma(net, RoutingState.identity(alg, 4)).state
        for (_i, _j, r) in fp.entries():
            assert alg.is_consistent(r, net)

    def test_garbage_routes_are_inconsistent(self):
        from tests.conftest import shortest_pv_net

        net = shortest_pv_net(4, seed=9)
        alg = net.algebra
        assert not alg.is_consistent((123, (3, 2, 1, 0)), net)


class TestCountToInfinityRepair:
    """The Section 5 headline: the lift converges where plain DV loops."""

    def test_pv_converges_from_stale_state(self):
        from repro.topologies import count_to_infinity_pv

        net, stale = count_to_infinity_pv()
        res = iterate_sigma(net, stale, max_rounds=50)
        assert res.converged
        # destination 0 is unreachable: all routes to it invalid
        alg = net.algebra
        assert alg.equal(res.state.get(1, 0), alg.invalid)
        assert alg.equal(res.state.get(2, 0), alg.invalid)

    def test_dv_diverges_from_same_scenario(self):
        from repro.topologies import count_to_infinity

        net, stale = count_to_infinity()
        res = iterate_sigma(net, stale, max_rounds=100)
        assert not res.converged
        # distances grew without bound — the count-to-infinity signature
        assert res.state.get(1, 0) > 50
