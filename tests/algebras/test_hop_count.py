"""Hop-count (RIP) algebra: the Theorem 7 workhorse."""

import random

import pytest

from repro.algebras import ConditionalHopEdge, HopCountAlgebra, UncappedHopEdge
from repro.core import Network, RoutingState, iterate_sigma
from repro.verification import verify_algebra
from tests.conftest import hop_net


class TestLaws:
    def test_full_profile(self, rng):
        rep = verify_algebra(HopCountAlgebra(8), rng=rng)
        assert rep.is_routing_algebra
        assert rep.is_strictly_increasing, rep.table()

    def test_exhaustive_strictness(self):
        """a < min(a + w, B) for every a < B: checked over everything."""
        alg = HopCountAlgebra(16)
        for w in (1, 3, 15):
            f = alg.edge(w)
            for a in alg.routes():
                if a != alg.invalid:
                    assert alg.lt(a, f(a))
                else:
                    assert f(a) == alg.invalid


class TestConditionalPolicies:
    """Route maps (Eq. 2): strictly increasing but non-distributive."""

    def test_conditional_edge_is_strictly_increasing(self, rng):
        alg = HopCountAlgebra(16)
        edges = [ConditionalHopEdge.random(rng, 16) for _ in range(20)]
        rep = verify_algebra(alg, edge_functions=edges, rng=rng)
        assert rep.is_strictly_increasing, rep.table()

    def test_explicit_distributivity_violation(self):
        """Reproduce the paper's Eq. 2 counterexample shape: a route map
        f(a) = if a < 3 then a+5 else a+1 violates f(a ⊕ b) = f(a) ⊕ f(b)."""
        alg = HopCountAlgebra(16)
        f = ConditionalHopEdge(lambda a: a < 3, 5, 1, 16)
        a, b = 2, 4
        lhs = f(alg.choice(a, b))            # f(2) = 7
        rhs = alg.choice(f(a), f(b))         # min(7, 5) = 5
        assert lhs == 7 and rhs == 5
        assert lhs != rhs

    def test_report_flags_non_distributive(self, rng):
        alg = HopCountAlgebra(16)
        f = ConditionalHopEdge(lambda a: a < 3, 5, 1, 16)
        rep = verify_algebra(alg, edge_functions=[f], rng=rng)
        assert not rep.is_distributive
        assert rep.is_strictly_increasing

    def test_branches_must_be_strict(self):
        with pytest.raises(ValueError):
            ConditionalHopEdge(lambda a: True, 0, 1, 16)

    def test_invalid_fixed_even_when_predicate_matches(self):
        f = ConditionalHopEdge(lambda a: True, 2, 2, 16)
        assert f(16) == 16


class TestConvergenceWithPolicies:
    """Section 4.2: conditional policies do not endanger convergence."""

    def test_policy_rich_ring_converges_from_garbage(self, rng):
        alg = HopCountAlgebra(16)
        net = Network(alg, 5)
        for i in range(5):
            for j in ((i + 1) % 5, (i - 1) % 5):
                net.set_edge(i, j, ConditionalHopEdge.random(rng, 16))
        reference = None
        for _ in range(6):
            start = RoutingState.from_function(
                lambda i, j: rng.randint(0, 16), 5)
            res = iterate_sigma(net, start)
            assert res.converged
            if reference is None:
                reference = res.state
            else:
                assert res.state.equals(reference, alg)


class TestBrokenVariants:
    def test_uncapped_edge_escapes_carrier(self):
        """Negative control: dropping the cap leaves the finite carrier,
        and the uniqueness/termination guarantee evaporates with it
        (count-to-infinity again)."""
        alg = HopCountAlgebra(16)
        f = UncappedHopEdge(1)
        assert f(16) == 17            # outside S = {0..16}
        assert f(16) not in set(alg.routes())

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            HopCountAlgebra(0)
        with pytest.raises(ValueError):
            HopCountAlgebra(4).edge(0)


class TestRIPDefaults:
    def test_rip_bound_is_16(self):
        assert HopCountAlgebra().invalid == 16

    def test_ring_distances(self):
        net = hop_net(6, bound=16)
        from repro.core import synchronous_fixed_point

        fp = synchronous_fixed_point(net)
        assert fp.get(0, 3) == 3
