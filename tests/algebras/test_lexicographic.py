"""Lexicographic products: shortest-widest and law-profile engineering."""

import math
import random

import pytest

from repro.algebras import (
    HopCountAlgebra,
    LexicographicAlgebra,
    ShortestPathsAlgebra,
    WidestPathsAlgebra,
)
from repro.verification import verify_algebra


def shortest_widest():
    """Widest-then-shortest: prefer bandwidth, tie-break on distance."""
    return LexicographicAlgebra(WidestPathsAlgebra(), ShortestPathsAlgebra())


@pytest.fixture
def rng():
    return random.Random(31)


class TestStructure:
    def test_distinguished_routes_are_pairs(self):
        alg = shortest_widest()
        assert alg.trivial == (math.inf, 0)
        assert alg.invalid == (0, math.inf)

    def test_choice_prefers_first_component(self):
        alg = shortest_widest()
        assert alg.choice((5, 10), (3, 1)) == (5, 10)   # wider wins

    def test_choice_ties_on_second(self):
        alg = shortest_widest()
        assert alg.choice((5, 10), (5, 2)) == (5, 2)    # shorter wins

    def test_finite_product_enumerates(self):
        alg = LexicographicAlgebra(HopCountAlgebra(2), HopCountAlgebra(1))
        assert alg.is_finite
        assert len(list(alg.routes())) == 3 * 2

    def test_name_mentions_factors(self):
        assert "widest-paths" in shortest_widest().name


class TestLaws:
    def test_required_laws(self, rng):
        rep = verify_algebra(shortest_widest(), rng=rng)
        assert rep.is_routing_algebra, rep.table()

    def test_increasing_and_strict(self, rng):
        """Widest alone is not strict, but the distance tie-break (with
        weights ≥ 1) restores strictness — the lex upgrade."""
        rep = verify_algebra(shortest_widest(), rng=rng)
        assert rep.is_increasing
        assert rep.is_strictly_increasing, rep.table()

    def test_not_distributive(self, rng):
        """The textbook policy-rich example: both factors distributive,
        the product is not (Section 8.1 mentions shortest-widest)."""
        alg = shortest_widest()
        w, s = alg.first, alg.second
        # f caps width at 2 and adds 1 to distance
        f = alg.edge(w.edge(2), s.edge(1))
        a = (3, 5)   # wide but long
        b = (2, 1)   # narrower but short
        lhs = f(alg.choice(a, b))
        rhs = alg.choice(f(a), f(b))
        assert alg.choice(a, b) == a
        assert lhs == (2, 6)
        assert rhs == (2, 2)
        assert not alg.equal(lhs, rhs)

    def test_finite_product_laws_exhaustive(self, rng):
        alg = LexicographicAlgebra(HopCountAlgebra(3), HopCountAlgebra(3))
        rep = verify_algebra(alg, rng=rng)
        assert rep.is_routing_algebra
        assert rep.is_strictly_increasing


class TestConvergence:
    def test_shortest_widest_network(self, rng):
        """A concrete non-distributive network converges to a *local*
        (not global) optimum — the paper's 'locally optimal routes'."""
        from repro.core import Network, iterate_sigma, RoutingState

        alg = shortest_widest()
        w, s = alg.first, alg.second
        net = Network(alg, 3)

        def edge(i, j, cap, dist):
            net.set_edge(i, j, alg.edge(w.edge(cap), s.edge(dist)))

        # 0 -- 1 direct: narrow/short; 0 -- 2 -- 1: wide/long
        edge(0, 1, 2, 1), edge(1, 0, 2, 1)
        edge(0, 2, 10, 1), edge(2, 0, 10, 1)
        edge(2, 1, 10, 1), edge(1, 2, 10, 1)
        res = iterate_sigma(net, RoutingState.identity(alg, 3))
        assert res.converged
        # node 0 prefers the wide two-hop route to 1
        assert res.state.get(0, 1) == (10, 2)
