"""Gao–Rexford as a strictly increasing algebra (the Sobrinho embedding)."""

import random

import pytest

from repro.algebras import GaoRexfordAlgebra, GR_INVALID, Rel
from repro.core import BOTTOM, RoutingState, iterate_sigma
from repro.topologies import gao_rexford_hierarchy
from repro.verification import verify_algebra


@pytest.fixture
def rng():
    return random.Random(404)


class TestExportRules:
    """Valley-free: peer/provider routes are only exported to customers."""

    def setup_method(self):
        self.alg = GaoRexfordAlgebra(n_nodes=6)

    def test_provider_exports_everything_to_customer(self):
        # edge i <- j where j is i's PROVIDER (so i is j's customer)
        f = self.alg.edge(2, 1, Rel.PROVIDER)
        for tag in (0, 1, 2):
            out = f((tag, (1, 0)))
            assert out != GR_INVALID
            assert out == (int(Rel.PROVIDER), (2, 1, 0))

    def test_customer_route_exports_to_peer(self):
        f = self.alg.edge(2, 1, Rel.PEER)
        assert f((0, (1, 0))) == (int(Rel.PEER), (2, 1, 0))

    def test_peer_route_not_exported_to_peer(self):
        f = self.alg.edge(2, 1, Rel.PEER)
        assert f((1, (1, 0))) == GR_INVALID

    def test_provider_route_not_exported_upward(self):
        # j is i's CUSTOMER: j exports to its provider i
        f = self.alg.edge(2, 1, Rel.CUSTOMER)
        assert f((2, (1, 0))) == GR_INVALID
        assert f((1, (1, 0))) == GR_INVALID
        assert f((0, (1, 0))) == (int(Rel.CUSTOMER), (2, 1, 0))

    def test_loop_rejected(self):
        f = self.alg.edge(0, 1, Rel.CUSTOMER)
        assert f((0, (1, 0))) == GR_INVALID


class TestPreference:
    def test_customer_beats_peer_beats_provider(self):
        alg = GaoRexfordAlgebra()
        cust = (0, (3, 0))
        peer = (1, (2, 0))
        prov = (2, (1, 0))
        assert alg.choice(cust, peer) == cust
        assert alg.choice(peer, prov) == peer
        assert alg.choice(cust, prov) == cust

    def test_path_length_breaks_tag_tie(self):
        alg = GaoRexfordAlgebra()
        short = (0, (2, 0))
        long_ = (0, (3, 1, 0))
        assert alg.choice(long_, short) == short


class TestLaws:
    def test_full_profile(self, rng):
        alg = GaoRexfordAlgebra(n_nodes=6)
        rep = verify_algebra(alg, rng=rng, samples=60)
        assert rep.is_routing_algebra, rep.table()
        assert rep.is_strictly_increasing, rep.table()

    def test_path_projection(self):
        alg = GaoRexfordAlgebra()
        assert alg.path(GR_INVALID) is BOTTOM
        assert alg.path((0, (1, 0))) == (1, 0)
        assert alg.path(alg.trivial) == ()


class TestHierarchyConvergence:
    def test_unique_convergence_on_hierarchy(self, rng):
        net, rels = gao_rexford_hierarchy(2, 3, 5, seed=1)
        alg = net.algebra
        reference = iterate_sigma(
            net, RoutingState.identity(alg, net.n)).state
        for seed in range(3):
            r = random.Random(seed)
            start = RoutingState.from_function(
                lambda i, j: alg.sample_route(r), net.n)
            res = iterate_sigma(net, start)
            assert res.converged
            assert res.state.equals(reference, alg)

    def test_relationships_are_symmetric_inverses(self):
        _net, rels = gao_rexford_hierarchy(2, 3, 5, seed=2)
        inverse = {Rel.CUSTOMER: Rel.PROVIDER, Rel.PROVIDER: Rel.CUSTOMER,
                   Rel.PEER: Rel.PEER}
        for (i, j), rel in rels.items():
            assert rels[(j, i)] == inverse[rel]

    def test_valley_free_fixed_point(self):
        """No route in the fixed point descends then re-ascends: once a
        route is learned from a peer/provider it never flows up again."""
        net, rels = gao_rexford_hierarchy(2, 3, 4, seed=3)
        alg = net.algebra
        fp = iterate_sigma(net, RoutingState.identity(alg, net.n)).state
        for (_i, _j, r) in fp.entries():
            if r == GR_INVALID or r == alg.trivial:
                continue
            tag, path = r
            # the route's tag is how its owner learned it: the first hop
            assert tag == int(rels[(path[0], path[1])])
            # valley-free: every non-final hop (i_k -> i_{k+1}) must have
            # been exportable by i_k to i_{k-1}: either i_{k-1} is i_k's
            # customer, or i_k learned the route from its own customer.
            for k in range(1, len(path) - 1):
                downstream, here, upstream = path[k - 1], path[k], path[k + 1]
                exported_to_customer = \
                    rels[(downstream, here)] == Rel.PROVIDER
                learned_from_customer = \
                    rels[(here, upstream)] == Rel.CUSTOMER
                assert exported_to_customer or learned_from_customer
