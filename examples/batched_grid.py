#!/usr/bin/env python3
"""A full absolute-convergence grid in one call: the batched engine.

Theorem 7 quantifies over *all* starting states and *all* admissible
schedules, so the experiment that tests it (Definition 8) is inherently
a grid: (starting state × schedule) trials, each a full δ run.  Looping
that grid one trial at a time re-pays the per-step interpreter overhead
once per trial; the batched engine (``engine="batched"``, the fifth
rung of the engine ladder) stacks every trial into one ``(B, n, n)``
code tensor, precompiles the schedules
(:class:`repro.core.schedule.CompiledSchedule` — α as bitmask rows, β
as read-time arrays), and runs each δ step for *all* trials per kernel
invocation, with finished trials dropping out.

This example runs the same grid through the per-trial and the batched
paths, checks the reports agree trial for trial, and prints the
wall-clock ratio.

Run:  python examples/batched_grid.py
"""

import time

from repro.algebras import HopCountAlgebra
from repro.analysis import run_absolute_convergence
from repro.core import (
    FixedDelaySchedule,
    RandomSchedule,
    RoutingState,
    SynchronousSchedule,
    absolute_convergence_experiment,
    random_state,
)
from repro.topologies import erdos_renyi, uniform_weight_factory


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A finite-algebra network and a (start × schedule) grid.
    # ------------------------------------------------------------------
    alg = HopCountAlgebra(bound=16)
    net = erdos_renyi(alg, 80, 0.2, uniform_weight_factory(alg, 1, 3),
                      seed=3)
    import random
    rng = random.Random(0)
    starts = [RoutingState.identity(alg, net.n)] + \
        [random_state(alg, net.n, rng) for _ in range(3)]
    schedules = [
        SynchronousSchedule(net.n),
        FixedDelaySchedule(net.n, delay=2),
        RandomSchedule(net.n, seed=0, activation_prob=0.4, max_delay=4),
        RandomSchedule(net.n, seed=1, activation_prob=0.8, max_delay=7),
    ]
    n_trials = len(starts) * len(schedules)
    print(f"network: {net.name} ({alg.name}), "
          f"grid: {len(starts)} starts x {len(schedules)} schedules "
          f"= {n_trials} trials\n")

    # ------------------------------------------------------------------
    # 2. The same experiment, two execution shapes.
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    per_trial = absolute_convergence_experiment(
        net, starts, schedules, max_steps=2000, engine="vectorized")
    t_loop = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = absolute_convergence_experiment(
        net, starts, schedules, max_steps=2000, engine="batched")
    t_batched = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # 3. Identical science, different wall clock.
    # ------------------------------------------------------------------
    assert batched.runs == per_trial.runs
    assert batched.all_converged == per_trial.all_converged
    assert batched.convergence_steps == per_trial.convergence_steps
    assert len(batched.distinct_fixed_points) == \
        len(per_trial.distinct_fixed_points)
    for a, b in zip(batched.distinct_fixed_points,
                    per_trial.distinct_fixed_points):
        assert a.equals(b, alg)

    print(f"per-trial vectorized loop : {t_loop:8.3f} s")
    print(f"batched tensor grid       : {t_batched:8.3f} s "
          f"({t_loop / t_batched:.1f}x)")
    print(f"absolute convergence      : {batched.absolute} "
          f"({batched.runs} runs, worst {batched.max_steps} steps, "
          f"{len(batched.distinct_fixed_points)} distinct fixed point)")

    # ------------------------------------------------------------------
    # 4. The convenience wrapper takes the same engine selector.
    # ------------------------------------------------------------------
    report = run_absolute_convergence(net, n_starts=3, seed=1,
                                      max_steps=2000, engine="batched")
    print(f"\nrun_absolute_convergence(engine='batched'): "
          f"absolute={report.absolute}, runs={report.runs}, "
          f"mean steps {report.mean_steps:.1f}")


if __name__ == "__main__":
    main()
