#!/usr/bin/env python3
"""A full absolute-convergence grid in one call: the batched engine.

Theorem 7 quantifies over *all* starting states and *all* admissible
schedules, so the experiment that tests it (Definition 8) is inherently
a grid: (starting state × schedule) trials, each a full δ run.  Looping
that grid one trial at a time re-pays the per-step interpreter overhead
once per trial; the batched engine (``engine="batched"``, the fifth
rung of the engine ladder) stacks every trial into one ``(B, n, n)``
code tensor, precompiles the schedules
(:class:`repro.core.schedule.CompiledSchedule` — α as bitmask rows, β
as read-time arrays), and runs each δ step for *all* trials per kernel
invocation, with finished trials dropping out.

This example runs the same grid through two sessions — one pinned to
the per-trial vectorized rung, one to the batched rung — checks the
:class:`repro.session.GridReport` pair agrees trial for trial, and
prints the wall-clock ratio.

Run:  python examples/batched_grid.py
"""

from repro import EngineSpec, RoutingSession
from repro.algebras import HopCountAlgebra
from repro.core import (
    FixedDelaySchedule,
    RandomSchedule,
    RoutingState,
    SynchronousSchedule,
    random_state,
)
from repro.topologies import erdos_renyi, uniform_weight_factory


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A finite-algebra network and a (start × schedule) grid.
    # ------------------------------------------------------------------
    alg = HopCountAlgebra(bound=16)
    net = erdos_renyi(alg, 80, 0.2, uniform_weight_factory(alg, 1, 3),
                      seed=3)
    import random
    rng = random.Random(0)
    starts = [RoutingState.identity(alg, net.n)] + \
        [random_state(alg, net.n, rng) for _ in range(3)]
    schedules = [
        SynchronousSchedule(net.n),
        FixedDelaySchedule(net.n, delay=2),
        RandomSchedule(net.n, seed=0, activation_prob=0.4, max_delay=4),
        RandomSchedule(net.n, seed=1, activation_prob=0.8, max_delay=7),
    ]
    n_trials = len(starts) * len(schedules)
    print(f"network: {net.name} ({alg.name}), "
          f"grid: {len(starts)} starts x {len(schedules)} schedules "
          f"= {n_trials} trials\n")

    # ------------------------------------------------------------------
    # 2. The same experiment, two execution shapes (the reports carry
    #    their own wall-clock and engine resolution).
    # ------------------------------------------------------------------
    trials = [(sched, start) for start in starts for sched in schedules]
    with RoutingSession(net, EngineSpec("vectorized")) as s:
        per_trial = s.delta_grid(trials, max_steps=2000)
    with RoutingSession(net, EngineSpec("batched")) as s:
        batched = s.delta_grid(trials, max_steps=2000)
    t_loop, t_batched = per_trial.elapsed_s, batched.elapsed_s

    # ------------------------------------------------------------------
    # 3. Identical science, different wall clock.
    # ------------------------------------------------------------------
    assert batched.runs == per_trial.runs
    assert batched.all_converged == per_trial.all_converged
    assert batched.convergence_steps == per_trial.convergence_steps
    assert len(batched.distinct_fixed_points) == \
        len(per_trial.distinct_fixed_points)
    for a, b in zip(batched.distinct_fixed_points,
                    per_trial.distinct_fixed_points):
        assert a.equals(b, alg)

    print(f"per-trial vectorized loop : {t_loop:8.3f} s "
          f"(engine={per_trial.resolution.chosen})")
    print(f"batched tensor grid       : {t_batched:8.3f} s "
          f"({t_loop / t_batched:.1f}x, "
          f"engine={batched.resolution.chosen}, "
          f"schedule seeds v{batched.schedule_seed_version})")
    print(f"absolute convergence      : {batched.absolute} "
          f"({batched.runs} runs, worst {batched.max_steps} steps, "
          f"{len(batched.distinct_fixed_points)} distinct fixed point)")

    # ------------------------------------------------------------------
    # 4. The convenience entry point samples its own grid.
    # ------------------------------------------------------------------
    with RoutingSession(net, EngineSpec("batched")) as s:
        report = s.converges(n_starts=3, seed=1, max_steps=2000)
    print(f"\nsession.converges(engine='batched'): "
          f"absolute={report.absolute}, runs={report.runs}, "
          f"mean steps {report.grid.mean_steps:.1f}")


if __name__ == "__main__":
    main()
