#!/usr/bin/env python3
"""BGP wedgies, oscillation — and the increasing-algebra cure.

Reproduces the paper's Section 1 narrative:

* DISAGREE (an SPP gadget) has **two** stable states; which one the
  network reaches depends on message timing — that is a BGP wedgie
  (RFC 4264), and escaping the unintended state needs manual
  intervention.
* BAD GADGET has **no** stable state: the protocol oscillates forever.
* Repairing the preferences to be increasing (or writing the same
  intent in the Section 7 safe policy language) leaves exactly **one**
  stable state, reached from everywhere — Theorems 7/11 in action.

Run:  python examples/bgp_wedgie.py
"""

from repro.algebras import (
    bad_gadget,
    disagree,
    increasing_disagree,
    spp_fixed_point_candidates,
)
from repro.analysis import (
    enumerate_fixed_points,
    multistart_fixed_points,
    sync_oscillates,
)
from repro.core import synchronous_fixed_point
from repro.topologies import BACKUP_COMMUNITY, wedgie_bgplite


def show_gadget(name, net):
    census = enumerate_fixed_points(
        net, candidates={0: spp_fixed_point_candidates(net)}, dests=[0])
    print(f"{name}: {census.per_destination[0]} stable state(s) "
          f"towards destination 0")
    return census


def main() -> None:
    # ------------------------------------------------------------------
    # DISAGREE: the wedgie.
    # ------------------------------------------------------------------
    net = disagree()
    census = show_gadget("DISAGREE", net)
    for idx, col in enumerate(census.columns[0]):
        routes = {node: route for node, route in enumerate(col) if node}
        print(f"  stable state {idx}: {routes}")

    report = multistart_fixed_points(net, n_starts=10, seed=1,
                                     max_steps=600)
    print(f"  multistart: {len(report.fixed_points)} distinct outcomes "
          f"over {report.runs} (state × schedule) runs "
          f"→ wedged = {report.wedged}")

    # ------------------------------------------------------------------
    # BAD GADGET: persistent oscillation.
    # ------------------------------------------------------------------
    bad = bad_gadget()
    show_gadget("BAD GADGET", bad)
    print(f"  synchronous iteration enters a limit cycle: "
          f"{sync_oscillates(bad)}")

    # ------------------------------------------------------------------
    # The increasing repair: one stable state, from everywhere.
    # ------------------------------------------------------------------
    fixed = increasing_disagree()
    show_gadget("DISAGREE (increasing ranks)", fixed)
    report = multistart_fixed_points(fixed, n_starts=10, seed=2,
                                     max_steps=600)
    print(f"  multistart: {len(report.fixed_points)} outcome(s), "
          f"all runs converged = "
          f"{report.converged_runs == report.runs}")

    # ------------------------------------------------------------------
    # The same backup-link intent in the safe BGPLite language
    # (RFC 4264's scenario, wedgie-proof by construction).
    # ------------------------------------------------------------------
    net, alg = wedgie_bgplite()
    fp = synchronous_fixed_point(net)
    print()
    print("RFC 4264 backup-link scenario in safe BGPLite:")
    route = fp.get(1, 0)
    tagged = BACKUP_COMMUNITY in route.communities
    print(f"  node 1's route to 0: {route}")
    print(f"  uses backup link: {tagged}  (policy intent: primary wins)")
    report = multistart_fixed_points(net, n_starts=6, seed=3,
                                     max_steps=800)
    print(f"  stable states reachable: {len(report.fixed_points)} "
          f"(a wedgie would need ≥ 2)")


if __name__ == "__main__":
    main()
