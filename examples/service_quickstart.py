#!/usr/bin/env python3
"""Quickstart for the routing service daemon.

Batch sessions (:class:`repro.session.RoutingSession`) recompute per
process; the service daemon is the serving shape: a long-lived
process owns *warm* sessions and clients stream small requests at it.
This example starts a daemon in-process, then walks the whole verb
vocabulary through :class:`repro.service.ServiceClient`:

1. ``load`` a topology (identical loads share one warm session);
2. query ``sigma`` twice — the second is an O(1) fixed-point cache hit;
3. stream a ``set_edge`` mutation — the topology version moves and the
   stale cache entries are invalidated, precisely;
4. re-query (a recompute against the new version), run a ``delta``
   under a seeded random schedule, and read the daemon's ``stats``;
5. ``shutdown`` cleanly.

Protocol reference: ``docs/service.md``.

Run:  python examples/service_quickstart.py
"""

import threading

from repro.service import RoutingServiceDaemon, ServiceClient


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A daemon on an ephemeral port (in production: repro.cli serve)
    # ------------------------------------------------------------------
    daemon = RoutingServiceDaemon(host="127.0.0.1", port=0)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    assert daemon.wait_ready(10)
    print(f"daemon up on 127.0.0.1:{daemon.port}")

    with ServiceClient("127.0.0.1", daemon.port) as client:
        # --------------------------------------------------------------
        # 2. Load a topology: one warm session, engines negotiated once
        # --------------------------------------------------------------
        load = client.load("hop-count", n=48, topology="random", seed=5)
        sid = load["session"]
        print(f"session {sid}: n={load['n']} {load['algebra']}/"
              f"{load['topology']}, {load['edges']} edges, "
              f"topology version {load['version']}")

        # --------------------------------------------------------------
        # 3. Query σ twice: compute once, then an O(1) cache hit
        # --------------------------------------------------------------
        first = client.sigma(sid)
        again = client.sigma(sid)
        print(f"sigma: converged={first['converged']} in "
              f"{first['rounds']} rounds on the {first['engine']} "
              f"engine ({first['compute_ms']:.1f} ms)")
        print(f"  repeated query cached={again['cached']} "
              f"(digest match: {again['digest'] == first['digest']})")

        # --------------------------------------------------------------
        # 4. Stream a mutation: version bumps, stale entries invalidated
        # --------------------------------------------------------------
        mutation = client.set_edge(sid, 0, 7, edge_seed=9)
        print(f"set_edge(0, 7): version {load['version']} -> "
              f"{mutation['version']}, "
              f"{mutation['invalidated']} cache entries invalidated")
        fresh = client.sigma(sid)
        print(f"  re-query: cached={fresh['cached']}, new digest "
              f"{'differs' if fresh['digest'] != first['digest'] else 'matches'}")

        # --------------------------------------------------------------
        # 5. δ under a seeded schedule, then the daemon's own stats
        # --------------------------------------------------------------
        delta = client.delta(
            sid, schedule={"kind": "random", "seed": 7, "max_delay": 4})
        print(f"delta: converged={delta['converged']} at step "
              f"{delta['converged_at']} (schedule seed semantics "
              f"v{delta['schedule_seed_version']})")

        stats = client.stats()
        print(f"stats: {stats['requests']} requests, cache hit ratio "
              f"{stats['cache']['hit_ratio']:.2f}, p50 "
              f"{stats['latency_ms']['p50']:.2f} ms, p99 "
              f"{stats['latency_ms']['p99']:.2f} ms")

        # --------------------------------------------------------------
        # 6. Clean shutdown (the daemon closes its warm sessions)
        # --------------------------------------------------------------
        client.shutdown()
    thread.join(10)
    print(f"daemon stopped cleanly: {not thread.is_alive()}")


if __name__ == "__main__":
    main()
