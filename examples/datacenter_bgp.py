#!/usr/bin/env python3
"""BGP in the data center (Section 8.3) on a fat-tree fabric.

Data centers run BGP as their IGP over fat-tree fabrics, with
conditional policies, filtering and local-pref manipulation — the exact
mix Section 8.3 worries about.  Here the fabric's policies are written
in safe BGPLite, so the paper's verification story applies: check the
increasing law once, get absolute convergence for every failure
scenario for free.

The demo builds a k=4 fat tree, verifies the deployed policies, then
kills a core switch's links mid-run and measures re-convergence under
hostile channels.

Run:  python examples/datacenter_bgp.py
"""

import random

from repro.algebras import BGPLiteAlgebra, If, IncrPrefBy, InPath
from repro.core import synchronous_fixed_point
from repro.protocols import ChangeScript, HOSTILE, Simulator, fail_link
from repro.topologies import fat_tree
from repro.verification import convergence_guarantee, verify_network


def main() -> None:
    k = 4
    n_core = (k // 2) ** 2
    alg = BGPLiteAlgebra(n_nodes=n_core + k * k)
    rng = random.Random(7)

    # Fabric policy: depreference anything transiting core 0 slightly
    # (traffic engineering), and add a small uniform cost per hop.
    def factory(_rng, i, j):
        policy = IncrPrefBy(1)
        if _rng.random() < 0.3:
            policy = IncrPrefBy(2)                       # "congested" links
        return alg.edge(i, j, If(InPath(0), IncrPrefBy(1))
                        if _rng.random() < 0.2 else policy)

    net = fat_tree(alg, k, factory, seed=7)
    print(f"fat-tree k={k}: {net.n} switches, "
          f"{len(list(net.present_edges()))} directed links")

    report = verify_network(net, samples=30)
    print("deployed-policy verification:",
          convergence_guarantee(report, finite_carrier=False,
                                path_algebra=True))

    fp = synchronous_fixed_point(net)
    reachable = sum(1 for (_i, _j, r) in fp.entries()
                    if r is not alg.invalid)
    print(f"baseline fixed point: {reachable}/{net.n * net.n} "
          "entries reachable")

    # ------------------------------------------------------------------
    # Kill core switch 0's links at t = 60 and watch re-convergence.
    # ------------------------------------------------------------------
    sim = Simulator(net, seed=8, link_config=HOSTILE,
                    refresh_interval=6.0, quiet_period=30.0)
    changes = []
    for (i, j) in list(net.present_edges()):
        if 0 in (i, j):
            changes.append(fail_link(i, j, time=60.0)[0])
    script = ChangeScript(sim, changes)
    result = script.run(max_time=4000.0)
    print()
    print(f"after failing core 0 at t=60 (hostile channels):")
    print(f"  converged: {result.converged}")
    print(f"  last route change at t={result.convergence_time:.1f}")
    print(f"  messages: {result.stats.as_dict()}")

    still_reachable = sum(
        1 for (i, j, r) in result.final_state.entries()
        if i != 0 and j != 0 and r is not alg.invalid)
    print(f"  non-core-0 entries reachable: {still_reachable}/"
          f"{(net.n - 1) ** 2} (fabric redundancy routed around the loss)")
    # absolute convergence: the post-failure state is the fixed point of
    # the post-failure topology, independent of timing
    post_fp = synchronous_fixed_point(net)
    print(f"  deterministic outcome: "
          f"{result.final_state.equals(post_fp, alg)}")


if __name__ == "__main__":
    main()
