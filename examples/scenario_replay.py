#!/usr/bin/env python3
"""Scenario replay: a real research network under live reconfiguration.

This loads a committed corpus topology (the Abilene research backbone),
solves its σ fixed point once, then replays a reconfiguration scenario
through a *warm* :class:`repro.session.RoutingSession`: two link flaps
followed by a node failure and recovery, with the re-convergence cost
(rounds and routing-table churn) measured after every phase.

The point to notice: the warm session re-solves each phase starting
from the previous fixed point, so the incremental engine only touches
the routes the mutation actually disturbed — the churn column is the
blast radius of each event, not the size of the network.

Run:  python examples/scenario_replay.py
"""

from repro import EngineSpec, RoutingSession
from repro.cli import ALGEBRAS
from repro.scenarios import (
    LinkFlap,
    NodeFailure,
    load_corpus_topology,
    replay_events,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Load a committed corpus topology (no network access needed).
    # ------------------------------------------------------------------
    topo = load_corpus_topology("abilene")
    print(f"corpus topology: {topo.name}  "
          f"({topo.n} nodes, {topo.edges} links)")
    print(f"nodes: {', '.join(topo.node_names)}")

    alg, factory, _finite, _is_path = ALGEBRAS["hop-count"]()
    net = topo.build(alg, factory, seed=7)

    # ------------------------------------------------------------------
    # 2. Replay a reconfiguration scenario through one warm session.
    # ------------------------------------------------------------------
    events = [LinkFlap(), LinkFlap(), NodeFailure()]
    with RoutingSession(net, EngineSpec("auto")) as session:
        report = replay_events(session, events, factory, seed=7)

    print(f"\nengine: {report.resolution.chosen}")
    print(f"\n{'phase':<16} {'mutations':>9} {'rounds':>6} {'churn':>6}")
    prev = None
    for step in report.steps:
        delta = "" if prev is None else f"  (Δrounds {step.rounds - prev})"
        print(f"{step.label:<16} {step.mutations:>9} {step.rounds:>6} "
              f"{step.churn:>6}{delta}")
        prev = step.rounds

    # ------------------------------------------------------------------
    # 3. The scenario's total cost.
    # ------------------------------------------------------------------
    print(f"\nphases: {report.phases}   all converged: "
          f"{report.all_converged}")
    print(f"total churn: {report.total_churn} route changes over "
          f"{report.total_rounds} rounds")


if __name__ == "__main__":
    main()
