#!/usr/bin/env python3
"""The Section 7 safe-by-design algebra, end to end.

BGPLite has local preferences, communities, path filtering and a
conditional policy language — "most of the features of BGP" — yet it is
*impossible* to write a policy that endangers convergence: every
expressible policy is increasing, so Theorem 11 guarantees absolute
convergence no matter what the operators configure.

The demo:

1. writes the paper's style of conditional policy by hand;
2. generates hundreds of adversarial random policies and law-checks
   the resulting algebra;
3. runs a 12-node network full of hostile random policies over lossy,
   duplicating, reordering channels — and shows every run lands on the
   same fixed point;
4. flips one edge to the *unsafe* ``SetPref`` (real BGP's import-time
   local-pref overwrite) and shows the increasing law break.

Run:  python examples/safe_by_design_bgp.py
"""

import random

from repro.algebras import (
    And,
    BGPLiteAlgebra,
    Compose,
    If,
    InComm,
    IncrPrefBy,
    InPath,
    Not,
    Reject,
    SetPref,
    random_policy,
    valid,
)
from repro.core import synchronous_fixed_point
from repro import RoutingSession
from repro.protocols import HOSTILE
from repro.topologies import bgp_policy_factory, erdos_renyi
from repro.verification import verify_algebra, verify_network


def main() -> None:
    alg = BGPLiteAlgebra(n_nodes=12)

    # ------------------------------------------------------------------
    # 1. Hand-written policy: "if the route carries community 17 or
    #    transits AS 3, depreference it by 4; drop routes tagged 6".
    # ------------------------------------------------------------------
    policy = Compose(
        If(And(InComm(17), Not(InPath(4))), IncrPrefBy(4)),
        If(InComm(6), Reject()),
    )
    r = valid(lp=0, communities={17}, path=(2, 0))
    print("hand-written policy on", r)
    print("  →", policy.apply(r))

    # ------------------------------------------------------------------
    # 2. Adversarial generation: hundreds of random policies, all safe.
    # ------------------------------------------------------------------
    rng = random.Random(0)
    edges = [alg.sample_edge_function(rng) for _ in range(200)]
    report = verify_algebra(alg, edge_functions=edges, rng=rng, samples=60)
    print()
    print(f"law check over {len(edges)} random policies:")
    print(f"  routing algebra: {report.is_routing_algebra}")
    print(f"  strictly increasing: {report.is_strictly_increasing}")
    print(f"  distributive: {report.is_distributive} "
          "(False = policy-rich, as intended)")

    # ------------------------------------------------------------------
    # 3. A hostile network: random policies on a random topology over
    #    channels that lose 20% and duplicate 10% of messages.
    # ------------------------------------------------------------------
    net = erdos_renyi(alg, 12, 0.35,
                      bgp_policy_factory(alg, allow_reject=False), seed=1)
    net_report = verify_network(net, samples=30)
    print()
    print(f"deployed network {net.name}: strictly increasing = "
          f"{net_report.is_strictly_increasing}")
    reference = synchronous_fixed_point(net)
    outcomes = set()
    with RoutingSession(net) as session:
        for seed in range(3):
            sim = session.simulate(seed=seed, link_config=HOSTILE,
                                   refresh_interval=5.0, quiet_period=25.0)
            same = sim.final_state.equals(reference, alg)
            outcomes.add(same)
            print(f"  run seed={seed}: converged={sim.converged}, "
                  f"lost={sim.stats.lost}, dup={sim.stats.duplicated}, "
                  f"same fixed point={same}")
    assert outcomes == {True}

    # ------------------------------------------------------------------
    # 4. The unsafe extension: one SetPref policy breaks the guarantee.
    # ------------------------------------------------------------------
    unsafe = alg.edge(2, 1, SetPref(0))
    unsafe_report = verify_algebra(alg, edge_functions=[unsafe],
                                   rng=rng, samples=60)
    check = unsafe_report.check("F increasing")
    print()
    print("with real BGP's SetPref(0) on one edge:")
    print(f"  increasing: {check.holds}")
    print(f"  counterexample: {check.counterexample}")
    print("  → this is why today's BGP admits wedgies (Section 8.2)")


if __name__ == "__main__":
    main()
