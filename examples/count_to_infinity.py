#!/usr/bin/env python3
"""Count-to-infinity, and how path-vector kills it (Section 5).

Plain shortest-path distance-vector is strictly increasing but its
carrier ℕ∞ is infinite, so Theorem 7 does not apply — and indeed, after
a link failure the stale state makes nodes 1 and 2 bounce ever-growing
distances off each other forever.

Three cures, all demonstrated:

1. RIP's: bound the metric (hop count ≤ 16) — finiteness restored,
   Theorem 7 applies; convergence to "unreachable" takes O(bound)
   rounds (why RIP convergence is slow!).
2. The paper's: track paths (AddPaths lift) — loop rejection makes the
   stale routes *inconsistent*, they are flushed within n rounds, and
   Theorem 11 applies.
3. Run it live: the event-driven simulator with a mid-run link failure.

Run:  python examples/count_to_infinity.py
"""

from repro.algebras import HopCountAlgebra
from repro import RoutingSession
from repro.core import Network, RoutingState
from repro.protocols import ChangeScript, Simulator, fail_link
from repro.topologies import count_to_infinity, count_to_infinity_pv


def main() -> None:
    # ------------------------------------------------------------------
    # The disease.
    # ------------------------------------------------------------------
    net, stale = count_to_infinity()
    print("plain shortest-path DV after the (1,0) link dies,")
    print("starting from the stale pre-failure fixed point:")
    with RoutingSession(net) as session:
        res = session.sigma(stale, max_rounds=25, keep_trajectory=True)
    dist = [s.get(1, 0) for s in res.trajectory]
    print(f"  node 1's distance to 0 per round: {dist[:10]} ...")
    print(f"  converged after 25 rounds? {res.converged}  "
          "(it never will — distances grow forever)")

    # ------------------------------------------------------------------
    # Cure 1: RIP's bounded metric.
    # ------------------------------------------------------------------
    alg = HopCountAlgebra(16)
    rip = Network(alg, 3, name="rip")
    rip.set_edge(1, 2, alg.edge(1))
    rip.set_edge(2, 1, alg.edge(1))
    rip_stale = RoutingState([[0, 16, 16], [1, 0, 1], [2, 1, 0]])
    with RoutingSession(rip) as session:
        res = session.sigma(rip_stale)
    print()
    print(f"RIP (hop count ≤ 16): converged in {res.rounds} rounds —")
    print(f"  node 1's route to 0: {res.state.get(1, 0)} (= unreachable)")
    print("  note the rounds ≈ the bound: counting-to-16 is why RIP is slow")

    # ------------------------------------------------------------------
    # Cure 2: the path-vector lift (Theorem 11).
    # ------------------------------------------------------------------
    pv_net, pv_stale = count_to_infinity_pv()
    with RoutingSession(pv_net) as session:
        res = session.sigma(pv_stale)
    print()
    print(f"path-vector lift: converged in {res.rounds} rounds —")
    print(f"  node 1's route to 0: {res.state.get(1, 0)}")
    print("  loop rejection (P3) stops 1 and 2 laundering each other's "
          "dead routes")

    # ------------------------------------------------------------------
    # Cure 3 live: a simulator run with the failure injected mid-flight.
    # ------------------------------------------------------------------
    from repro.algebras import AddPaths, ShortestPathsAlgebra

    base = ShortestPathsAlgebra()
    palg = AddPaths(base, n_nodes=4)
    live = Network(palg, 4, name="live")
    for (i, j, w) in [(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 1, 1),
                      (2, 3, 1), (3, 2, 1)]:
        live.set_edge(i, j, palg.edge(i, j, base.edge(w)))
    sim = Simulator(live, seed=4, refresh_interval=5.0, quiet_period=20.0)
    script = ChangeScript(sim, fail_link(0, 1, time=50.0))
    result = script.run()
    print()
    print("live run with the (0,1) link failing at t=50:")
    print(f"  converged: {result.converged} at t={result.convergence_time:.1f}")
    print(f"  node 3's route to 0 after the partition: "
          f"{result.final_state.get(3, 0)}")


if __name__ == "__main__":
    main()
