#!/usr/bin/env python3
"""Quickstart: define a network, verify its algebra, and watch it converge.

This walks the full pipeline of the library on the paper's "practical
implication" example (Section 4.2): a RIP-like hop-count protocol with
a policy-rich conditional route map, running over an asynchronous
network where messages are delayed, reordered, lost and duplicated.

Run:  python examples/quickstart.py
"""

from repro.algebras import ConditionalHopEdge, HopCountAlgebra
from repro.analysis import run_absolute_convergence
from repro.core import (
    Network,
    RandomSchedule,
    RoutingState,
    delta_run,
    synchronous_fixed_point,
)
from repro.protocols import HOSTILE, simulate
from repro.verification import convergence_guarantee, verify_network


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Pick a routing algebra: RIP's bounded hop count (Section 4.2).
    # ------------------------------------------------------------------
    alg = HopCountAlgebra(bound=16)
    print(f"algebra: {alg.name}   0̄={alg.trivial}  ∞̄={alg.invalid}")

    # ------------------------------------------------------------------
    # 2. Build a topology.  Edge (i, k) is the policy node i applies to
    #    routes learned from k.  One edge carries a conditional route
    #    map — the paper's Eq. 2 — charging distant routes extra.
    # ------------------------------------------------------------------
    net = Network(alg, 5, name="quickstart-ring")
    for i in range(5):
        for j in ((i + 1) % 5, (i - 1) % 5):
            net.set_edge(i, j, alg.edge(1))
    net.set_edge(0, 1, ConditionalHopEdge(
        lambda a: a >= 2, then_weight=3, else_weight=1, bound=16,
        label="a>=2"))

    # ------------------------------------------------------------------
    # 3. Verify the algebra laws *against the installed edges* and map
    #    them onto the paper's theorems.
    # ------------------------------------------------------------------
    report = verify_network(net)
    print()
    print(report.table())
    print()
    print("guarantee:",
          convergence_guarantee(report, finite_carrier=True,
                                path_algebra=False))

    # ------------------------------------------------------------------
    # 4. Synchronous fixed point (the σ iteration of Section 2.3).
    # ------------------------------------------------------------------
    fixed_point = synchronous_fixed_point(net)
    print()
    print("synchronous fixed point:")
    print(fixed_point.pretty(6))

    # ------------------------------------------------------------------
    # 5. The same computation under the abstract asynchronous model δ
    #    (Section 3.1) from an arbitrary garbage starting state.
    # ------------------------------------------------------------------
    garbage = RoutingState.filled(7, 5)
    result = delta_run(net, RandomSchedule(5, seed=1), garbage)
    print(f"δ from garbage state: converged={result.converged} "
          f"at step {result.converged_at}; "
          f"same fixed point: "
          f"{result.state.equals(fixed_point, alg)}")

    # ------------------------------------------------------------------
    # 6. And as a real message-passing protocol over hostile channels
    #    (20% loss, 10% duplication, heavy reordering).
    # ------------------------------------------------------------------
    sim = simulate(net, seed=2, link_config=HOSTILE,
                   refresh_interval=5.0, quiet_period=25.0)
    print(f"simulator over hostile links: converged={sim.converged}; "
          f"stats={sim.stats.as_dict()}")
    print(f"same fixed point: {sim.final_state.equals(fixed_point, alg)}")

    # ------------------------------------------------------------------
    # 7. The Theorem 7 experiment: many starts × many schedules must all
    #    land on one state (absolute convergence, Definition 8).
    # ------------------------------------------------------------------
    exp = run_absolute_convergence(net, n_starts=5, seed=3)
    print(f"absolute-convergence experiment: {exp.runs} runs, "
          f"{len(exp.distinct_fixed_points)} distinct fixed point(s), "
          f"absolute={exp.absolute}")


if __name__ == "__main__":
    main()
