#!/usr/bin/env python3
"""Quickstart: one `RoutingSession` drives the whole pipeline.

This walks the full pipeline of the library on the paper's "practical
implication" example (Section 4.2): a RIP-like hop-count protocol with
a policy-rich conditional route map, running over an asynchronous
network where messages are delayed, reordered, lost and duplicated.

Everything goes through the one public entry point,
:class:`repro.session.RoutingSession`: the session negotiates which of
the five execution engines runs each operation (and tells you why, via
the resolution's reason chain), owns every pool and cache, and returns
typed reports.

Run:  python examples/quickstart.py
"""

from repro import EngineSpec, RoutingSession
from repro.algebras import ConditionalHopEdge, HopCountAlgebra
from repro.core import Network, RandomSchedule, RoutingState
from repro.protocols import HOSTILE
from repro.verification import convergence_guarantee


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Pick a routing algebra: RIP's bounded hop count (Section 4.2).
    # ------------------------------------------------------------------
    alg = HopCountAlgebra(bound=16)
    print(f"algebra: {alg.name}   0̄={alg.trivial}  ∞̄={alg.invalid}")

    # ------------------------------------------------------------------
    # 2. Build a topology.  Edge (i, k) is the policy node i applies to
    #    routes learned from k.  One edge carries a conditional route
    #    map — the paper's Eq. 2 — charging distant routes extra.
    # ------------------------------------------------------------------
    net = Network(alg, 5, name="quickstart-ring")
    for i in range(5):
        for j in ((i + 1) % 5, (i - 1) % 5):
            net.set_edge(i, j, alg.edge(1))
    net.set_edge(0, 1, ConditionalHopEdge(
        lambda a: a >= 2, then_weight=3, else_weight=1, bound=16,
        label="a>=2"))

    # ------------------------------------------------------------------
    # 3. Open the session.  EngineSpec("auto") negotiates the fastest
    #    capable engine per operation; the context manager releases any
    #    pools or shared memory it builds.
    # ------------------------------------------------------------------
    with RoutingSession(net, EngineSpec("auto")) as session:
        # --------------------------------------------------------------
        # 4. Verify the algebra laws *against the installed edges* and
        #    map them onto the paper's theorems.
        # --------------------------------------------------------------
        report = session.verify()
        print()
        print(report.table())
        print()
        print("guarantee:",
              convergence_guarantee(report, finite_carrier=True,
                                    path_algebra=False))

        # --------------------------------------------------------------
        # 5. Synchronous fixed point (the σ iteration of Section 2.3).
        #    The report says which engine ran, and why.
        # --------------------------------------------------------------
        sync = session.sigma()
        print()
        print(f"σ engine: {sync.resolution.explain()}")
        print("synchronous fixed point:")
        print(sync.fixed_point.pretty(6))

        # --------------------------------------------------------------
        # 6. The same computation under the abstract asynchronous model
        #    δ (Section 3.1) from an arbitrary garbage starting state.
        # --------------------------------------------------------------
        garbage = RoutingState.filled(7, 5)
        dr = session.delta(RandomSchedule(5, seed=1), garbage)
        print(f"δ from garbage state: converged={dr.converged} "
              f"at step {dr.converged_at} "
              f"(engine={dr.resolution.chosen}, "
              f"schedule seeds v{dr.schedule_seed_version}); "
              f"same fixed point: "
              f"{dr.state.equals(sync.fixed_point, alg)}")

        # --------------------------------------------------------------
        # 7. And as a real message-passing protocol over hostile
        #    channels (20% loss, 10% duplication, heavy reordering).
        # --------------------------------------------------------------
        sim = session.simulate(seed=2, link_config=HOSTILE,
                               refresh_interval=5.0, quiet_period=25.0)
        print(f"simulator over hostile links: converged={sim.converged}; "
              f"stats={sim.stats.as_dict()}")
        print(f"same fixed point: "
              f"{sim.final_state.equals(sync.fixed_point, alg)}")

        # --------------------------------------------------------------
        # 8. The Theorem 7 experiment: many starts × many schedules must
        #    all land on one state (absolute convergence, Definition 8).
        #    verify=True ties the verdict back to the paper's theorems.
        # --------------------------------------------------------------
        exp = session.converges(n_starts=5, seed=3, verify=True)
        print(f"absolute-convergence experiment: {exp.runs} runs, "
              f"{len(exp.distinct_fixed_points)} distinct fixed point(s), "
              f"absolute={exp.absolute}")
        print(f"  grid engine: {exp.grid.resolution.chosen}; "
              f"guarantee: {exp.guarantee}")


if __name__ == "__main__":
    main()
