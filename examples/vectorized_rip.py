#!/usr/bin/env python3
"""Engine selection on the RIP algebra: naive vs incremental vs vectorized.

RIP's 16-hop ceiling makes its carrier *finite* (Section 4.2), and
finiteness is an implementation opportunity, not just a proof device:
routes encode as the ints 0..16, every edge policy becomes a 17-entry
lookup table, and the σ round collapses to a numpy table-gather
min-product (`repro.core.vectorized`).  This example runs the same
computation under all three engines, checks they land on the *same*
fixed point (the differential-oracle contract), and shows the
non-finite fallback.

Run:  python examples/vectorized_rip.py
"""

from repro import EngineSpec, RoutingSession
from repro.algebras import ConditionalHopEdge, HopCountAlgebra, \
    ShortestPathsAlgebra
from repro.core import (
    RandomSchedule,
    RoutingState,
    supports_vectorized,
)
from repro.topologies import erdos_renyi, uniform_weight_factory

ENGINES = ("naive", "incremental", "vectorized")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A policy-rich RIP network: bounded hop count with a conditional
    #    route map (Eq. 2) on one edge — still finite, still safe.
    # ------------------------------------------------------------------
    alg = HopCountAlgebra(bound=16)
    net = erdos_renyi(alg, 60, 0.2, uniform_weight_factory(alg, 1, 3),
                      seed=7)
    net.set_edge(0, 1, ConditionalHopEdge(
        lambda a: a >= 4, then_weight=3, else_weight=1, bound=16,
        label="a>=4"))
    print(f"network: {net.name}  algebra: {alg.name}  "
          f"vectorizable: {supports_vectorized(alg)}")

    # ------------------------------------------------------------------
    # 2. The same σ fixed point under each engine, timed.
    # ------------------------------------------------------------------
    start = RoutingState.identity(alg, net.n)
    results = {}
    for engine in ENGINES:
        with RoutingSession(net, EngineSpec(engine)) as session:
            results[engine] = res = session.sigma(start)
        print(f"  σ engine={engine:<11} rounds={res.rounds:>3} "
              f"time={res.elapsed_s * 1e3:8.2f} ms")
    ref = results["naive"]
    agree = all(r.rounds == ref.rounds and r.state.equals(ref.state, alg)
                for r in results.values())
    print(f"engines agree: {agree}")

    # ------------------------------------------------------------------
    # 3. Asynchronous δ under a lossy random schedule: the vectorized
    #    run keeps the same bounded-history semantics.
    # ------------------------------------------------------------------
    sched = RandomSchedule(net.n, seed=3, max_delay=5)
    with RoutingSession(net, EngineSpec("incremental")) as session:
        bounded = session.delta(sched, start, max_steps=2_000)
    with RoutingSession(net, EngineSpec("vectorized")) as session:
        vector = session.delta(sched, start, max_steps=2_000)
    print(f"δ incremental: converged at {bounded.converged_at}, "
          f"history retained {bounded.history_retained}")
    print(f"δ vectorized : converged at {vector.converged_at}, "
          f"history retained {vector.history_retained}")
    print(f"δ engines agree: {vector.state.equals(bounded.state, alg)}")

    # ------------------------------------------------------------------
    # 4. Non-finite algebras fall down the ladder — and the resolution
    #    records exactly why (no more silent fallback).
    # ------------------------------------------------------------------
    sp = ShortestPathsAlgebra()
    sp_net = erdos_renyi(sp, 20, 0.2, uniform_weight_factory(sp, 1, 5),
                         seed=8)
    with RoutingSession(sp_net, EngineSpec("vectorized")) as session:
        res = session.sigma(RoutingState.identity(sp, sp_net.n))
    print(f"shortest-paths (infinite carrier) vectorizable: "
          f"{supports_vectorized(sp)}; negotiated "
          f"{res.resolution.explain()} and "
          f"converged in {res.rounds} rounds")


if __name__ == "__main__":
    main()
