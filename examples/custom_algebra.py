#!/usr/bin/env python3
"""Bring your own algebra: the library as a safe-protocol design kit.

The paper's closing pitch is that protocol designers should *prove*
their policy language increasing and get convergence for free.  This
example plays protocol designer: we invent a small "latency class +
expiry budget" algebra, make a mistake, get caught by the law checker,
fix it, and collect the Theorem 7 guarantee.

Routes are ``(latency_class, ttl_budget)``:

* ``latency_class ∈ {0 gold, 1 silver, 2 bronze, 3 = unreachable}``,
* ``ttl_budget ∈ {0..8}`` — how much of the end-to-end delay budget the
  path has *consumed* (higher is worse).

Run:  python examples/custom_algebra.py
"""

import random
from typing import Iterator

from repro.algebras import KeyOrderedAlgebra
from repro import RoutingSession
from repro.analysis import dv_bounds
from repro.core import EdgeFunction, Network
from repro.verification import convergence_guarantee, verify_algebra

CLASSES = 3       # 0, 1, 2 usable; 3 = unreachable
BUDGET = 8


class LatencyClassAlgebra(KeyOrderedAlgebra):
    """Finite two-criterion algebra: class first, then consumed budget."""

    name = "latency-class"
    is_finite = True

    @property
    def trivial(self):
        return (0, 0)

    @property
    def invalid(self):
        return (CLASSES, BUDGET)

    def preference_key(self, route):
        return route

    def routes(self) -> Iterator:
        for c in range(CLASSES):
            for b in range(BUDGET + 1):
                yield (c, b)
        yield self.invalid

    def sample_edge_function(self, rng):
        return GoodLink(rng.randint(1, 3), rng.random() < 0.3)


class BuggyLink(EdgeFunction):
    """First attempt: add delay; *upgrade* the class on premium links.

    Upgrading the class makes a route more preferred — a paid-peering
    "optimisation" that breaks the increasing law.
    """

    def __init__(self, delay: int, premium: bool):
        self.delay = delay
        self.premium = premium

    def __call__(self, route):
        cls, budget = route
        if cls >= CLASSES:
            return (CLASSES, BUDGET)
        new_budget = min(budget + self.delay, BUDGET)
        new_cls = max(cls - 1, 0) if self.premium else cls   # BUG
        if new_budget >= BUDGET:
            return (CLASSES, BUDGET)
        return (new_cls, new_budget)


class GoodLink(EdgeFunction):
    """The fix: classes may only *degrade* (or stay); delay always adds."""

    def __init__(self, delay: int, degrade: bool):
        if delay < 1:
            raise ValueError("links must consume budget")
        self.delay = delay
        self.degrade = degrade

    def __call__(self, route):
        cls, budget = route
        if cls >= CLASSES:
            return (CLASSES, BUDGET)
        new_budget = budget + self.delay
        new_cls = min(cls + 1, CLASSES - 1) if self.degrade else cls
        if new_budget > BUDGET or (new_cls == cls == CLASSES - 1
                                   and new_budget >= BUDGET):
            return (CLASSES, BUDGET)
        return (new_cls, new_budget)


def main() -> None:
    alg = LatencyClassAlgebra()
    rng = random.Random(1)

    # ------------------------------------------------------------------
    # Round 1: the buggy design.  The checker names the counterexample.
    # ------------------------------------------------------------------
    buggy = [BuggyLink(2, premium=True), BuggyLink(1, premium=False)]
    report = verify_algebra(alg, edge_functions=buggy, rng=rng)
    print("buggy design:")
    print(" ", report.check("F increasing").describe())
    print(" ", convergence_guarantee(report, finite_carrier=True,
                                     path_algebra=False))

    # ------------------------------------------------------------------
    # Round 2: the fixed design.
    # ------------------------------------------------------------------
    good = [GoodLink(d, dg) for d in (1, 2, 3) for dg in (False, True)]
    report = verify_algebra(alg, edge_functions=good, rng=rng)
    print()
    print("fixed design:")
    for law in ("F increasing", "F strictly increasing",
                "F distributes over ⊕"):
        print(" ", report.check(law).describe())
    print(" ", convergence_guarantee(report, finite_carrier=True,
                                     path_algebra=False))

    # ------------------------------------------------------------------
    # Collect the reward: certified bounds + an absolute-convergence run.
    # ------------------------------------------------------------------
    bounds = dv_bounds(alg)
    print()
    print(f"certified quantities: {bounds.describe()}")

    net = Network(alg, 5, name="latency-mesh")
    for i in range(5):
        for j in range(5):
            if i != j and rng.random() < 0.6:
                net.set_edge(i, j, GoodLink(rng.randint(1, 2),
                                            rng.random() < 0.3))
    for i in range(5):           # ring backbone for connectivity
        if not net.adjacency.has_edge(i, (i + 1) % 5):
            net.set_edge(i, (i + 1) % 5, GoodLink(1, False))
        if not net.adjacency.has_edge((i + 1) % 5, i):
            net.set_edge((i + 1) % 5, i, GoodLink(1, False))
    with RoutingSession(net) as session:
        exp = session.converges(n_starts=4, seed=2)
    print(f"absolute convergence on a random mesh: {exp.absolute} "
          f"({exp.runs} runs, worst {exp.grid.max_steps} steps)")


if __name__ == "__main__":
    main()
