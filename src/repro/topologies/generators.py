"""Topology generators.

Every generator returns a :class:`~repro.core.state.Network` built from
an algebra and an *edge factory* — a callable ``factory(rng, i, j)``
producing the edge function installed on the directed edge ``(i, j)``.
Keeping weight/policy synthesis in the factory keeps generators fully
algebra-agnostic, exactly as the paper's theorems are.

Helpers at the bottom build the standard factories for the shipped
algebras (uniform random weights, random BGPLite policies, lifted
path-algebra edges, ...).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.algebra import EdgeFunction, RoutingAlgebra
from ..core.state import Network

EdgeFactory = Callable[[random.Random, int, int], EdgeFunction]


def build_network(algebra: RoutingAlgebra, n: int,
                  arcs: Iterable[Tuple[int, int]], factory: EdgeFactory,
                  seed: int = 0, name: str = "network") -> Network:
    """Assemble a network by running ``factory`` over ``arcs``."""
    rng = random.Random(seed)
    net = Network(algebra, n, name=name)
    for (i, j) in arcs:
        net.set_edge(i, j, factory(rng, i, j))
    return net


def _both_ways(pairs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    out: List[Tuple[int, int]] = []
    for (i, j) in pairs:
        out.append((i, j))
        out.append((j, i))
    return out


# ----------------------------------------------------------------------
# Deterministic families
# ----------------------------------------------------------------------


def line(algebra: RoutingAlgebra, n: int, factory: EdgeFactory,
         seed: int = 0) -> Network:
    """The path graph 0 — 1 — ... — (n-1), both directions."""
    return build_network(algebra, n,
                         _both_ways((i, i + 1) for i in range(n - 1)),
                         factory, seed, name=f"line-{n}")


def ring(algebra: RoutingAlgebra, n: int, factory: EdgeFactory,
         seed: int = 0) -> Network:
    """The cycle on n nodes, both directions."""
    return build_network(algebra, n,
                         _both_ways((i, (i + 1) % n) for i in range(n)),
                         factory, seed, name=f"ring-{n}")


def star(algebra: RoutingAlgebra, n: int, factory: EdgeFactory,
         seed: int = 0) -> Network:
    """Node 0 at the hub, nodes 1..n-1 as spokes."""
    return build_network(algebra, n,
                         _both_ways((0, i) for i in range(1, n)),
                         factory, seed, name=f"star-{n}")


def complete(algebra: RoutingAlgebra, n: int, factory: EdgeFactory,
             seed: int = 0) -> Network:
    """The complete directed graph (every ordered pair)."""
    arcs = [(i, j) for i in range(n) for j in range(n) if i != j]
    return build_network(algebra, n, arcs, factory, seed, name=f"complete-{n}")


def grid(algebra: RoutingAlgebra, rows: int, cols: int, factory: EdgeFactory,
         seed: int = 0) -> Network:
    """A rows×cols mesh (4-neighbour), both directions."""
    def nid(r: int, c: int) -> int:
        return r * cols + c

    pairs = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                pairs.append((nid(r, c), nid(r, c + 1)))
            if r + 1 < rows:
                pairs.append((nid(r, c), nid(r + 1, c)))
    return build_network(algebra, rows * cols, _both_ways(pairs), factory,
                         seed, name=f"grid-{rows}x{cols}")


# ----------------------------------------------------------------------
# Random families (via networkx)
# ----------------------------------------------------------------------


def erdos_renyi(algebra: RoutingAlgebra, n: int, p: float,
                factory: EdgeFactory, seed: int = 0,
                ensure_connected: bool = True) -> Network:
    """G(n, p) random graph, symmetrised, optionally patched to be connected."""
    g = nx.gnp_random_graph(n, p, seed=seed)
    if ensure_connected:
        comps = [sorted(c) for c in nx.connected_components(g)]
        for a, b in zip(comps, comps[1:]):
            g.add_edge(a[0], b[0])
    return build_network(algebra, n, _both_ways(g.edges()), factory, seed,
                         name=f"gnp-{n}-{p}")


def barabasi_albert(algebra: RoutingAlgebra, n: int, m: int,
                    factory: EdgeFactory, seed: int = 0) -> Network:
    """Preferential-attachment graph (Internet-ish degree distribution)."""
    g = nx.barabasi_albert_graph(n, m, seed=seed)
    return build_network(algebra, n, _both_ways(g.edges()), factory, seed,
                         name=f"ba-{n}-{m}")


# ----------------------------------------------------------------------
# Data-center fabric (Section 8.3 motivation)
# ----------------------------------------------------------------------


def fat_tree(algebra: RoutingAlgebra, k: int, factory: EdgeFactory,
             seed: int = 0) -> Network:
    """A k-ary fat-tree fabric (k even): the BGP-in-the-data-center setting.

    Layout: (k/2)² core switches, k pods of k/2 aggregation + k/2 edge
    switches.  Node ids: cores first, then per pod aggregation then
    edge.  Hosts are not modelled (routing happens between switches).
    """
    if k % 2:
        raise ValueError("fat-tree arity k must be even")
    half = k // 2
    n_core = half * half
    n = n_core + k * k  # per pod: k/2 agg + k/2 edge

    def agg(pod: int, idx: int) -> int:
        return n_core + pod * k + idx

    def edge_sw(pod: int, idx: int) -> int:
        return n_core + pod * k + half + idx

    pairs = []
    for pod in range(k):
        for a in range(half):
            # aggregation a connects to cores [a*half, (a+1)*half)
            for c in range(a * half, (a + 1) * half):
                pairs.append((agg(pod, a), c))
            for e in range(half):
                pairs.append((agg(pod, a), edge_sw(pod, e)))
    return build_network(algebra, n, _both_ways(pairs), factory, seed,
                         name=f"fat-tree-{k}")


# ----------------------------------------------------------------------
# Gao–Rexford hierarchies
# ----------------------------------------------------------------------


def gao_rexford_hierarchy(n_tier1: int = 2, n_tier2: int = 4, n_tier3: int = 8,
                          peer_prob: float = 0.5, seed: int = 0):
    """A three-tier customer/provider hierarchy with tier-internal peering.

    Returns ``(network, relationships)`` where the network uses
    :class:`~repro.algebras.gao_rexford.GaoRexfordAlgebra` and
    ``relationships[(i, j)]`` records what ``j`` is to ``i``.

    * tier-1 nodes peer with each other (full mesh);
    * each tier-2 node buys transit from 1–2 tier-1 providers;
    * each tier-3 node buys transit from 1–2 tier-2 providers;
    * same-tier nodes peer with probability ``peer_prob``.
    """
    from ..algebras.gao_rexford import GaoRexfordAlgebra, Rel

    rng = random.Random(seed)
    n = n_tier1 + n_tier2 + n_tier3
    tier1 = list(range(n_tier1))
    tier2 = list(range(n_tier1, n_tier1 + n_tier2))
    tier3 = list(range(n_tier1 + n_tier2, n))
    algebra = GaoRexfordAlgebra(n_nodes=n)
    net = Network(algebra, n, name=f"gr-hierarchy-{n}")
    rels = {}

    def connect(customer: int, provider: int) -> None:
        # customer imports from provider; provider imports from customer
        rels[(customer, provider)] = Rel.PROVIDER
        rels[(provider, customer)] = Rel.CUSTOMER
        net.set_edge(customer, provider,
                     algebra.edge(customer, provider, Rel.PROVIDER))
        net.set_edge(provider, customer,
                     algebra.edge(provider, customer, Rel.CUSTOMER))

    def peer(a: int, b: int) -> None:
        rels[(a, b)] = Rel.PEER
        rels[(b, a)] = Rel.PEER
        net.set_edge(a, b, algebra.edge(a, b, Rel.PEER))
        net.set_edge(b, a, algebra.edge(b, a, Rel.PEER))

    for idx, a in enumerate(tier1):
        for b in tier1[idx + 1:]:
            peer(a, b)
    for c in tier2:
        for p in rng.sample(tier1, rng.randint(1, min(2, len(tier1)))):
            connect(c, p)
    for c in tier3:
        for p in rng.sample(tier2, rng.randint(1, min(2, len(tier2)))):
            connect(c, p)
    for tier in (tier2, tier3):
        for idx, a in enumerate(tier):
            for b in tier[idx + 1:]:
                if rng.random() < peer_prob and (a, b) not in rels:
                    peer(a, b)
    return net, rels


# ----------------------------------------------------------------------
# AS-level scale-free graphs (Elmokashfi et al. style)
# ----------------------------------------------------------------------


def _weighted_distinct(rng: random.Random, candidates: Sequence[int],
                       weights: Sequence[float], k: int) -> List[int]:
    """``k`` distinct draws from ``candidates``, probability ∝ weight
    (sequential draws with removal; deterministic in ``rng``)."""
    pool = list(candidates)
    pw = list(weights)
    out: List[int] = []
    for _ in range(min(k, len(pool))):
        total = sum(pw)
        mark = rng.random() * total
        acc = 0.0
        idx = len(pool) - 1
        for pos, w in enumerate(pw):
            acc += w
            if mark < acc:
                idx = pos
                break
        out.append(pool.pop(idx))
        pw.pop(idx)
    return out


def elmokashfi_as_graph(algebra: RoutingAlgebra, n: int,
                        factory: EdgeFactory, seed: int = 0,
                        peer_prob: float = 0.2) -> Network:
    """A scale-free AS-level topology in the style of Elmokashfi et al.

    Three populations: a small tier-1 clique (~1 % of ``n``, at least
    three), a mid-tier (~15 %) whose members multihome to two providers
    chosen preferentially by current degree, and stub ASes buying
    transit from one or two mid-tier providers (again
    degree-preferential).  Same-population mid-tier pairs peer with
    probability ``peer_prob``.  Structure and edge draws are both
    deterministic in ``seed``.
    """
    if n < 8:
        raise ValueError("elmokashfi_as_graph needs n >= 8")
    rng = random.Random(seed)
    n_t1 = max(3, round(0.01 * n))
    n_mid = max(2, round(0.15 * n))
    tier1 = list(range(n_t1))
    mid = list(range(n_t1, n_t1 + n_mid))
    stubs = list(range(n_t1 + n_mid, n))
    degree = [0] * n
    pairs: List[Tuple[int, int]] = []

    def link(a: int, b: int) -> None:
        pairs.append((a, b))
        degree[a] += 1
        degree[b] += 1

    for idx, a in enumerate(tier1):
        for b in tier1[idx + 1:]:
            link(a, b)
    for m in mid:
        providers = tier1 + [x for x in mid if x < m]
        for p in _weighted_distinct(rng, providers,
                                    [degree[x] + 1 for x in providers], 2):
            link(m, p)
    for s in stubs:
        k = rng.randint(1, 2)
        for p in _weighted_distinct(rng, mid,
                                    [degree[x] + 1 for x in mid], k):
            link(s, p)
    for idx, a in enumerate(mid):
        for b in mid[idx + 1:]:
            if rng.random() < peer_prob and (a, b) not in pairs:
                link(a, b)
    return build_network(algebra, n, _both_ways(pairs), factory, seed,
                         name=f"elmokashfi-{n}")


# ----------------------------------------------------------------------
# iBGP route-reflector overlays
# ----------------------------------------------------------------------


def route_reflector_hierarchy(algebra: RoutingAlgebra, factory: EdgeFactory,
                              n_core: int = 3, n_rr: int = 4,
                              clients_per_rr: int = 3, redundancy: int = 2,
                              seed: int = 0) -> Network:
    """An iBGP route-reflector overlay as a topology family.

    Motivated by *iBGP and Constrained Connectivity*: the signalling
    graph of a reflector deployment is itself a routing topology.
    Layout — a full mesh of ``n_core`` top-level reflectors, ``n_rr``
    second-level reflectors each homed to ``redundancy`` core
    reflectors, and ``clients_per_rr`` clients per second-level
    reflector, each homed to ``redundancy`` reflectors (its own plus
    randomly drawn backups).  Node ids: cores, then reflectors, then
    clients.  Algebra-agnostic: sessions become edges through
    ``factory`` exactly as every other family.
    """
    if n_core < 1 or n_rr < 1 or clients_per_rr < 0:
        raise ValueError("route_reflector_hierarchy needs positive tiers")
    rng = random.Random(seed)
    cores = list(range(n_core))
    rrs = list(range(n_core, n_core + n_rr))
    n = n_core + n_rr + n_rr * clients_per_rr
    pairs: List[Tuple[int, int]] = []
    for idx, a in enumerate(cores):
        for b in cores[idx + 1:]:
            pairs.append((a, b))
    for rr in rrs:
        for core in rng.sample(cores, min(redundancy, n_core)):
            pairs.append((rr, core))
    client = n_core + n_rr
    for rr in rrs:
        for _ in range(clients_per_rr):
            homes = {rr}
            backups = [x for x in rrs if x != rr]
            while len(homes) < min(redundancy, n_rr) and backups:
                homes.add(backups.pop(rng.randrange(len(backups))))
            for home in sorted(homes):
                pairs.append((client, home))
            client += 1
    return build_network(algebra, n, _both_ways(pairs), factory, seed,
                         name=f"rr-{n_core}-{n_rr}-{clients_per_rr}")


def ibgp_gao_rexford(n_core: int = 3, n_rr: int = 4, clients_per_rr: int = 3,
                     redundancy: int = 2, seed: int = 0):
    """A route-reflector overlay over the Gao–Rexford algebra.

    Same layout as :func:`route_reflector_hierarchy`, with economics
    mapped onto the hierarchy: core reflectors peer, and every
    reflector/client is a customer of the level above it.  Returns
    ``(network, relationships)`` exactly as
    :func:`gao_rexford_hierarchy` does.
    """
    from ..algebras.gao_rexford import GaoRexfordAlgebra, Rel

    rng = random.Random(seed)
    cores = list(range(n_core))
    rrs = list(range(n_core, n_core + n_rr))
    n = n_core + n_rr + n_rr * clients_per_rr
    algebra = GaoRexfordAlgebra(n_nodes=n)
    net = Network(algebra, n, name=f"ibgp-gr-{n_core}-{n_rr}-{clients_per_rr}")
    rels = {}

    def connect(customer: int, provider: int) -> None:
        rels[(customer, provider)] = Rel.PROVIDER
        rels[(provider, customer)] = Rel.CUSTOMER
        net.set_edge(customer, provider,
                     algebra.edge(customer, provider, Rel.PROVIDER))
        net.set_edge(provider, customer,
                     algebra.edge(provider, customer, Rel.CUSTOMER))

    def peer(a: int, b: int) -> None:
        rels[(a, b)] = Rel.PEER
        rels[(b, a)] = Rel.PEER
        net.set_edge(a, b, algebra.edge(a, b, Rel.PEER))
        net.set_edge(b, a, algebra.edge(b, a, Rel.PEER))

    for idx, a in enumerate(cores):
        for b in cores[idx + 1:]:
            peer(a, b)
    for rr in rrs:
        for core in rng.sample(cores, min(redundancy, n_core)):
            connect(rr, core)
    client = n_core + n_rr
    for rr in rrs:
        for _ in range(clients_per_rr):
            homes = {rr}
            backups = [x for x in rrs if x != rr]
            while len(homes) < min(redundancy, n_rr) and backups:
                homes.add(backups.pop(rng.randrange(len(backups))))
            for home in sorted(homes):
                connect(client, home)
            client += 1
    return net, rels


# ----------------------------------------------------------------------
# Standard factories for the shipped algebras
# ----------------------------------------------------------------------


def uniform_weight_factory(algebra, lo: int = 1, hi: int = 5) -> EdgeFactory:
    """Edges via ``algebra.edge(w)`` with w ~ U{lo..hi} (numeric algebras)."""
    def factory(rng: random.Random, _i: int, _j: int) -> EdgeFunction:
        return algebra.edge(rng.randint(lo, hi))

    return factory


def lifted_weight_factory(path_algebra, lo: int = 1, hi: int = 5) -> EdgeFactory:
    """Edges for :class:`~repro.algebras.add_paths.AddPaths` networks:
    lift a random base weight onto each located edge."""
    def factory(rng: random.Random, i: int, j: int) -> EdgeFunction:
        return path_algebra.edge(i, j, path_algebra.base.edge(rng.randint(lo, hi)))

    return factory


def bgp_policy_factory(bgp_algebra, allow_reject: bool = True,
                       depth: int = 3) -> EdgeFactory:
    """Random safe BGPLite policies on every edge (Section 7 workloads)."""
    from ..algebras.bgplite import random_policy

    def factory(rng: random.Random, i: int, j: int) -> EdgeFunction:
        pol = random_policy(rng, bgp_algebra.community_universe,
                            bgp_algebra.n_nodes, depth=depth,
                            allow_reject=allow_reject)
        return bgp_algebra.edge(i, j, pol)

    return factory
