"""The gadget zoo: small networks that witness the paper's phenomena.

* :func:`count_to_infinity` — plain shortest-path DV diverging from a
  stale state (the Section 5 opening motivation), plus its path-vector
  repair :func:`count_to_infinity_pv`.
* :func:`wedgie_bgplite` — the RFC 4264 backup-link scenario written in
  the safe Section 7 policy language, where the wedgie *cannot* occur.
* :func:`exploration_clique` / :func:`preference_cascade` — slow-
  convergence families for the Section 8.1 rate experiments.

(The SPP gadgets DISAGREE / BAD GADGET / GOOD GADGET live in
:mod:`repro.algebras.spp` next to their algebra.)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebras.add_paths import AddPaths
from ..algebras.bgplite import (
    AddComm,
    BGPLiteAlgebra,
    Compose,
    If,
    InComm,
    IncrPrefBy,
)
from ..algebras.shortest_paths import ShortestPathsAlgebra
from ..algebras.spp import SPPAlgebra
from ..core.state import Network, RoutingState


# ----------------------------------------------------------------------
# Count to infinity
# ----------------------------------------------------------------------


def count_to_infinity() -> Tuple[Network, RoutingState]:
    """The classic divergence gadget for plain shortest-path DV.

    Topology *after* the failure: nodes 1 and 2 are connected to each
    other but node 0 (the destination) is unreachable — the link
    (1, 0) just died.  The returned starting state is the fixed point
    of the *pre-failure* network, so nodes 1 and 2 still hold stale
    routes to 0.  Running any engine on (network, state) exhibits
    count-to-infinity: 1 and 2 bounce ever-growing distances off each
    other forever.  Theorem 7 does not apply because S = ℕ∞ is
    infinite; the PV repair below is Theorem 11's fix.
    """
    alg = ShortestPathsAlgebra()
    net = Network(alg, 3, name="count-to-infinity")
    # post-failure topology: only the 1 <-> 2 link remains
    net.set_edge(1, 2, alg.edge(1))
    net.set_edge(2, 1, alg.edge(1))
    # pre-failure fixed point: 1 reached 0 directly (cost 1), 2 via 1 (cost 2)
    stale = RoutingState([
        [0, alg.invalid, alg.invalid],
        [1, 0, 1],
        [2, 1, 0],
    ])
    return net, stale


def count_to_infinity_pv() -> Tuple[Network, RoutingState]:
    """The same gadget lifted to a path algebra (Theorem 11 applies).

    Routes carry their paths, so the stale routes to 0 are *inconsistent*
    in the new topology — the loop-rejection of P3 prevents 1 and 2 from
    laundering each other's dead routes, and the protocol converges to
    "0 unreachable" from the same stale start.
    """
    base = ShortestPathsAlgebra()
    alg = AddPaths(base, n_nodes=3)
    net = Network(alg, 3, name="count-to-infinity-pv")
    net.set_edge(1, 2, alg.edge(1, 2, base.edge(1)))
    net.set_edge(2, 1, alg.edge(2, 1, base.edge(1)))
    stale = RoutingState([
        [alg.trivial, alg.invalid, alg.invalid],
        [(1, (1, 0)), alg.trivial, (1, (1, 2))],
        [(2, (2, 1, 0)), (1, (2, 1)), alg.trivial],
    ])
    return net, stale


# ----------------------------------------------------------------------
# The RFC 4264 backup-link scenario in safe BGPLite
# ----------------------------------------------------------------------

#: community tag meaning "this route came over a backup link"
BACKUP_COMMUNITY = 17


def wedgie_bgplite() -> Tuple[Network, BGPLiteAlgebra]:
    """The BGP-wedgie topology, written in the Section 7 safe language.

    Node 0 is the destination AS; node 3 is its customer with a primary
    link via provider 2 and a *backup* link via provider 1.  The backup
    edge tags routes with community 17 and raises the preference level;
    everyone else penalises routes carrying the tag (the conditional
    policy of Eq. 2).  In real BGP the analogous configuration has two
    stable states (the wedgie, RFC 4264); in the increasing algebra the
    benches show exactly one fixed point survives — primary wins —
    and re-convergence after failures is deterministic.
    """
    alg = BGPLiteAlgebra(n_nodes=4)
    net = Network(alg, 4, name="wedgie-bgplite")
    plain = IncrPrefBy(0)
    backup = Compose(AddComm(BACKUP_COMMUNITY), IncrPrefBy(4))
    penalise_backup = If(InComm(BACKUP_COMMUNITY), IncrPrefBy(4))

    # 0 <-> 3: the backup link (dest <-> customer, tagged + penalised)
    net.set_edge(3, 0, alg.edge(3, 0, backup))
    net.set_edge(0, 3, alg.edge(0, 3, backup))
    # 0 <-> 2 and 2 <-> 3: the primary route via provider 2
    net.set_edge(2, 0, alg.edge(2, 0, plain))
    net.set_edge(0, 2, alg.edge(0, 2, plain))
    net.set_edge(3, 2, alg.edge(3, 2, plain))
    net.set_edge(2, 3, alg.edge(2, 3, plain))
    # 1 is a second provider hanging off 2 (propagates the tag penalty)
    net.set_edge(1, 2, alg.edge(1, 2, penalise_backup))
    net.set_edge(2, 1, alg.edge(2, 1, penalise_backup))
    net.set_edge(1, 3, alg.edge(1, 3, penalise_backup))
    net.set_edge(3, 1, alg.edge(3, 1, penalise_backup))
    return net, alg


# ----------------------------------------------------------------------
# Slow-convergence families (Section 8.1)
# ----------------------------------------------------------------------


def exploration_clique(n: int) -> Network:
    """Path exploration on a clique: the BGP "path hunting" stress case.

    Every node may use every simple path to destination 0 and ranks
    them by (length, lexicographic) — an *increasing* SPP instance, so
    Theorem 11 guarantees convergence; the interesting question
    (Section 8.1) is how many synchronous rounds σ needs as n grows.
    """
    rankings: Dict[int, Dict[Tuple[int, ...], int]] = {}

    def all_paths(node: int, remaining: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        out = []
        for nxt in remaining:
            if nxt == 0:
                out.append((node, 0))
            else:
                rest = tuple(r for r in remaining if r != nxt)
                out.extend((node,) + p for p in all_paths(nxt, rest))
        return out

    for i in range(1, n):
        others = tuple(x for x in range(n) if x != i)
        paths = all_paths(i, others)
        ranked = sorted(paths, key=lambda p: (len(p), p))
        rankings[i] = {p: r for r, p in enumerate(ranked)}
    algebra = SPPAlgebra(rankings, n)
    net = Network(algebra, n, name=f"exploration-clique-{n}")
    for i in range(n):
        for j in range(n):
            if i != j:
                net.set_edge(i, j, algebra.edge(i, j))
    return net


def preference_cascade(n: int) -> Network:
    """A line with shortcuts engineered for serial route adoption.

    Node ``i`` sits on the spine ``0 - 1 - ... - n-1`` and also has a
    direct edge to 0.  Ranks are chosen (increasing in path length, so
    the algebra is increasing) such that each node first adopts its
    direct route, then upgrades to the spine route only after its
    upstream neighbour has — the information wave crosses the whole
    line node by node, giving convergence time Θ(n) with Θ(n) total
    route changes *per node pair*, the super-diameter regime the rate
    bench measures.
    """
    rankings: Dict[int, Dict[Tuple[int, ...], int]] = {}
    for i in range(1, n):
        table: Dict[Tuple[int, ...], int] = {}
        spine = tuple(range(i, -1, -1))          # (i, i-1, ..., 0)
        table[spine] = len(spine) - 1            # rank grows with length
        if i != 1:
            table[(i, 0)] = n + i                # direct fallback, worse
        rankings[i] = table
    algebra = SPPAlgebra(rankings, n)
    net = Network(algebra, n, name=f"preference-cascade-{n}")
    for i in range(1, n):
        net.set_edge(i, i - 1, algebra.edge(i, i - 1))
        net.set_edge(i - 1, i, algebra.edge(i - 1, i))
        if i != 1:
            net.set_edge(i, 0, algebra.edge(i, 0))
            net.set_edge(0, i, algebra.edge(0, i))
    return net
