"""Topology generators and the gadget zoo."""

from .gadgets import (
    BACKUP_COMMUNITY,
    count_to_infinity,
    count_to_infinity_pv,
    exploration_clique,
    preference_cascade,
    wedgie_bgplite,
)
from .generators import (
    EdgeFactory,
    barabasi_albert,
    bgp_policy_factory,
    build_network,
    complete,
    erdos_renyi,
    fat_tree,
    gao_rexford_hierarchy,
    grid,
    lifted_weight_factory,
    line,
    ring,
    star,
    uniform_weight_factory,
)

__all__ = [
    "BACKUP_COMMUNITY",
    "EdgeFactory",
    "barabasi_albert",
    "bgp_policy_factory",
    "build_network",
    "complete",
    "count_to_infinity",
    "count_to_infinity_pv",
    "erdos_renyi",
    "exploration_clique",
    "fat_tree",
    "gao_rexford_hierarchy",
    "grid",
    "lifted_weight_factory",
    "line",
    "preference_cascade",
    "ring",
    "star",
    "uniform_weight_factory",
    "wedgie_bgplite",
]
