"""`RoutingSession`: the one public entry point to the σ/δ machinery.

The paper's message is that a single algebraic object ``(A, ⊕, F)``
determines both the synchronous σ-iteration and the asynchronous δ-run.
The library grew six execution engines for that object (naive →
incremental → vectorized → parallel → batched → remote), and with them a sprawl
of free functions each re-threading ``engine=``/``workers=`` strings
and silently falling a rung down the ladder on unsupported
configurations.  This module replaces the sprawl with one negotiated
facade:

>>> from repro.session import EngineSpec, RoutingSession
>>> with RoutingSession(net, EngineSpec("auto")) as s:
...     report = s.sigma()                  # SigmaReport
...     print(report.resolution.explain())  # which rung ran, and why
...     dr = s.delta(schedule)              # DeltaReport
...     grid = s.delta_grid(trials)         # GridReport
...     verdict = s.converges()             # ConvergenceReport

What the session owns:

* **Capability-negotiated engine resolution** — every entry point
  resolves its rung through
  :func:`repro.core.capabilities.resolve_engine` against the engines'
  advertised :class:`~repro.core.capabilities.Capabilities`; the
  resulting :class:`~repro.core.capabilities.EngineResolution` (chosen
  rung + machine-readable reason chain for every skipped rung) rides on
  every report.  ``EngineSpec(strict=True)`` raises
  :class:`~repro.core.capabilities.UnsupportedEngineError` instead of
  falling back.
* **Managed resources** — vectorized/batched engines, the parallel
  worker pool (processes + shared-memory segments) and the remote
  rung's TCP connections (plus any loopback worker subprocesses) are
  built lazily, reused across calls, and released by :meth:`close` /
  the context manager / a ``weakref.finalize`` backstop.  The remote
  engine's snapshot cannot follow topology mutations, so the session
  rebuilds it (fresh connections, fresh snapshot) when
  ``adjacency.version`` moves.
* **Schedule compilation caching** — compiled α/β forms
  (:class:`~repro.core.schedule.CompiledSchedule`) are cached per
  schedule object and reused across δ runs and grids.
* **Structured run reports** — every entry point returns a typed
  dataclass (:class:`SigmaReport`, :class:`DeltaReport`,
  :class:`GridReport`, :class:`ConvergenceReport`,
  :class:`SimulationReport`) carrying the fixed point, rounds/steps,
  churn, IPC counters, wall-clock timing, the engine resolution, and —
  for δ — the :class:`~repro.core.schedule.RandomSchedule` seed-mapping
  version the run's schedules assume.

The legacy free functions (``iterate_sigma``, ``delta_run``,
``absolute_convergence_experiment``, ``run_absolute_convergence``,
``simulate``) survive as deprecation shims that delegate here;
``tests/core/test_session_api.py`` holds them bit-identical.
"""

from __future__ import annotations

import random
import weakref
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core.algebra import PathAlgebra
from .core.asynchronous import (
    AsyncResult,
    _delta_run_resolved,
    random_state,
)
from .core.capabilities import (
    EngineResolution,
    LADDER,
    resolve_engine,
)
from .core.schedule import (
    CompiledSchedule,
    RandomSchedule,
    Schedule,
    schedule_zoo,
)
from .core.state import Network, RoutingState
from .core.synchronous import SyncResult, _iterate_sigma_resolved
from .core.vectorized import sigma_churn, supports_vectorized
from .core.wire import WireStats


def schedule_seed_version(schedules) -> Optional[int]:
    """The :data:`~repro.core.schedule.RandomSchedule.SCHEDULE_SEED_VERSION`
    a run's schedules assume, or ``None`` when no schedule derives its
    draws from a seed (structured schedules denote the same schedule
    under every version).  Compiled wrappers are unwrapped to their
    source.
    """
    for sched in schedules:
        if isinstance(sched, CompiledSchedule):
            sched = sched.source
        if isinstance(sched, RandomSchedule):
            return RandomSchedule.SCHEDULE_SEED_VERSION
    return None


@dataclass(frozen=True)
class EngineSpec:
    """How a session wants its engines resolved.

    ``engine`` is a ladder rung name or ``"auto"`` (grids start the
    negotiation at the batched rung, single runs at the parallel rung,
    each falling down the ladder as capabilities require).
    ``strict=True`` turns any fallback from a concrete request into an
    :class:`~repro.core.capabilities.UnsupportedEngineError` carrying
    the reason chain.  ``history`` is the default δ history policy:
    ``"bounded"`` (ring buffer), ``"full"`` (retain and return every
    state), or ``"literal"`` (the strict paper recursion — always the
    naive rung).  ``workers`` sizes the parallel pool, ``window`` the
    parallel δ IPC window, and ``batch_dtype`` forces the batched
    engine's stacked-tensor dtype (e.g. ``"int32"``; default: the
    narrowest dtype that fits the carrier).

    The remote rung needs a transport: ``endpoints`` (``"host:port"``
    strings or ``(host, port)`` pairs, one shard each) or
    ``remote_workers`` (spawn that many loopback subprocess workers —
    the single-host testing mode).  Without either, ``engine="remote"``
    resolves with the ``no-remote-endpoints`` skip (or raises under
    ``strict``).  ``socket_timeout`` bounds every coordinator socket
    operation so a dead worker surfaces as a typed
    :class:`~repro.core.remote.RemoteWorkerError`, never a hang.

    A non-strict remote session *supervises* its workers: shard faults
    are healed (respawn / reconnect / re-shard, bounded retries; dead
    endpoints are parked on probation and re-admitted when a liveness
    probe succeeds — ``endpoint-probation`` / ``endpoint-rejoined``)
    and reported as :class:`~repro.core.capabilities.DegradedEvent`
    entries on the run report's ``degraded`` field; δ runs checkpoint
    at window barriers so a heal replays O(window) steps, not the whole
    run.  ``strict=True`` disables healing and surfaces the original
    typed error immediately.
    ``fault_plan`` (a :class:`~repro.core.faults.FaultPlan`, its dict
    form, or a JSON string) deterministically injects frame-level
    faults into the coordinator's connections for chaos testing.
    """

    engine: str = "auto"
    workers: Optional[int] = None
    window: Optional[int] = None
    batch_dtype: Optional[str] = None
    history: str = "bounded"
    strict: bool = False
    remote_workers: Optional[int] = None
    endpoints: Optional[Tuple] = None
    socket_timeout: Optional[float] = None
    #: seeded :class:`~repro.core.faults.FaultPlan` (or its JSON/dict
    #: form) injected into the remote rung's coordinator-side
    #: connections — chaos testing; ``None`` (default) injects nothing
    fault_plan: Optional[object] = None

    def __post_init__(self):
        if self.engine != "auto" and self.engine not in LADDER:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from "
                f"{('auto',) + LADDER}")
        if self.history not in ("bounded", "full", "literal"):
            raise ValueError(
                f"unknown history policy {self.history!r}; choose from "
                "('bounded', 'full', 'literal')")
        if self.endpoints is not None:
            object.__setattr__(self, "endpoints", tuple(self.endpoints))
        if self.socket_timeout is not None and self.socket_timeout <= 0:
            raise ValueError("socket_timeout must be positive")

    @property
    def remote_transport(self):
        """What :func:`~repro.core.capabilities.resolve_engine` receives
        as the remote rung's transport (endpoints win over a loopback
        worker count); ``None`` when no transport is configured."""
        return self.endpoints or self.remote_workers


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class SigmaReport:
    """Outcome of :meth:`RoutingSession.sigma`."""

    converged: bool
    rounds: int                       #: σ applications to reach the result
    state: RoutingState               #: final state reached
    resolution: EngineResolution      #: which rung ran, and why
    elapsed_s: float                  #: wall-clock seconds
    trajectory: Optional[List[RoutingState]] = field(default=None, repr=False)
    churn: Optional[int] = None       #: total entry changes (measure_churn)
    #: remote rung: per-run wire traffic (bytes/round, compression ratio)
    wire: Optional[WireStats] = field(default=None, repr=False)
    #: remote rung: healing events this run survived (empty = clean run)
    degraded: Optional[Tuple] = None
    result: SyncResult = field(default=None, repr=False)

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("iteration did not converge; no fixed point")
        return self.state


@dataclass
class DeltaReport:
    """Outcome of :meth:`RoutingSession.delta`."""

    converged: bool
    steps: int                        #: total δ steps simulated
    state: RoutingState               #: state at the final step
    resolution: EngineResolution
    elapsed_s: float
    converged_at: Optional[int] = None  #: first step the state stayed fixed
    history: Optional[List[RoutingState]] = field(default=None, repr=False)
    history_retained: Optional[int] = None  #: states actually held in memory
    ipc_commands: Optional[int] = None  #: parallel/remote: worker commands sent
    ipc_steps: Optional[int] = None     #: parallel/remote: δ steps they carried
    #: remote rung: per-run wire traffic (bytes/round, compression ratio)
    wire: Optional[WireStats] = field(default=None, repr=False)
    #: remote rung: healing events this run survived (empty = clean run)
    degraded: Optional[Tuple] = None
    #: seed → schedule mapping version the run's schedule assumes
    #: (:data:`~repro.core.schedule.RandomSchedule.SCHEDULE_SEED_VERSION`),
    #: ``None`` for seed-free schedules.
    schedule_seed_version: Optional[int] = None
    result: AsyncResult = field(default=None, repr=False)

    @property
    def fixed_point(self) -> RoutingState:
        if not self.converged:
            raise ValueError("δ run did not converge; no fixed point")
        return self.state

    @property
    def metadata(self) -> Dict[str, Any]:
        """Machine-readable run metadata for recorded experiments."""
        meta = {
            "engine": self.resolution.chosen,
            "schedule_seed_version": self.schedule_seed_version,
            "ipc_commands": self.ipc_commands,
            "ipc_steps": self.ipc_steps,
        }
        if self.wire is not None:
            meta["wire"] = self.wire.as_dict()
        if self.degraded:
            meta["degraded"] = [ev.as_dict() for ev in self.degraded]
        return meta


@dataclass
class GridReport:
    """Outcome of :meth:`RoutingSession.delta_grid` — the Definition 8
    absolute-convergence quantity over a (schedule, start) trial grid."""

    runs: int
    all_converged: bool
    distinct_fixed_points: List[RoutingState]
    convergence_steps: List[int]
    resolution: EngineResolution
    elapsed_s: float
    schedule_seed_version: Optional[int] = None
    #: remote rung: wire traffic summed over the whole grid
    wire: Optional[WireStats] = field(default=None, repr=False)
    #: remote rung: healing events over the whole grid (empty = clean)
    degraded: Optional[Tuple] = None
    results: Optional[List[AsyncResult]] = field(default=None, repr=False)

    @property
    def absolute(self) -> bool:
        """True when every run converged to one common fixed point."""
        return self.all_converged and len(self.distinct_fixed_points) == 1

    @property
    def max_steps(self) -> int:
        return max(self.convergence_steps) if self.convergence_steps else 0

    @property
    def mean_steps(self) -> float:
        if not self.convergence_steps:
            return 0.0
        return sum(self.convergence_steps) / len(self.convergence_steps)

    @property
    def metadata(self) -> Dict[str, Any]:
        """Machine-readable grid metadata for recorded experiments."""
        meta = {
            "engine": self.resolution.chosen,
            "schedule_seed_version": self.schedule_seed_version,
            "runs": self.runs,
        }
        if self.wire is not None:
            meta["wire"] = self.wire.as_dict()
        if self.degraded:
            meta["degraded"] = [ev.as_dict() for ev in self.degraded]
        return meta


@dataclass
class ConvergenceReport:
    """Outcome of :meth:`RoutingSession.converges`: the sampled
    Theorem 7/11 experiment, optionally tied back to the paper's
    sufficient conditions."""

    absolute: bool                    #: one fixed point across the grid
    grid: GridReport                  #: the underlying experiment
    #: which theorem (if any) the verified laws deliver — only when the
    #: session ran the law suite (``verify=True``)
    guarantee: Optional[str] = None
    law_report: Optional[object] = field(default=None, repr=False)

    @property
    def runs(self) -> int:
        return self.grid.runs

    @property
    def distinct_fixed_points(self) -> List[RoutingState]:
        return self.grid.distinct_fixed_points

    @property
    def resolution(self) -> EngineResolution:
        return self.grid.resolution


@dataclass
class ReplayStep:
    """One measured phase of :meth:`RoutingSession.replay`: the σ
    re-convergence after a batch of topology mutations landed."""

    label: str                        #: phase label ("initial", "link-down", ...)
    mutations: int                    #: mutations applied before this solve
    version: int                      #: adjacency version the solve ran at
    converged: bool
    rounds: int                       #: σ rounds to re-converge
    churn: Optional[int]              #: entry changes during re-convergence
    elapsed_s: float
    state: RoutingState = field(default=None, repr=False)


@dataclass
class ReplayReport:
    """Outcome of :meth:`RoutingSession.replay`: per-event convergence
    and churn over a timed mutation stream (the scenario harness's
    measurement primitive)."""

    steps: List[ReplayStep]
    resolution: EngineResolution
    elapsed_s: float

    @property
    def all_converged(self) -> bool:
        return all(step.converged for step in self.steps)

    @property
    def total_churn(self) -> int:
        """Entry changes summed over every post-mutation re-convergence
        (the initial solve is establishment, not churn)."""
        return sum(step.churn or 0 for step in self.steps[1:])

    @property
    def total_rounds(self) -> int:
        """σ rounds summed over every post-mutation re-convergence
        (like :attr:`total_churn`, the initial solve is excluded)."""
        return sum(step.rounds for step in self.steps[1:])

    @property
    def final_state(self) -> RoutingState:
        if not self.steps[-1].converged:
            raise ValueError("replay did not re-converge; no fixed point")
        return self.steps[-1].state

    @property
    def phases(self) -> int:
        """Mutation phases replayed (excludes the initial solve)."""
        return len(self.steps) - 1


@dataclass
class SimulationReport:
    """Outcome of :meth:`RoutingSession.simulate`: the event-driven
    protocol run plus the negotiated σ-stability check."""

    result: object                    #: the protocol SimulationResult
    resolution: EngineResolution      #: rung used for the σ-check
    elapsed_s: float

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def final_state(self) -> RoutingState:
        return self.result.final_state

    @property
    def stats(self):
        return self.result.stats

    @property
    def trace(self):
        return self.result.trace

    @property
    def convergence_time(self) -> float:
        return self.result.convergence_time


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------


class RoutingSession:
    """One managed computation context over ``(algebra, adjacency)``.

    Construct from a :class:`~repro.core.state.Network` (which *is* the
    paper's pair) or from the parts::

        s = RoutingSession(net, EngineSpec("auto"))
        s = RoutingSession.from_parts(algebra, adjacency)

    The session is a context manager; leaving it (or calling
    :meth:`close`) releases every engine it built — in particular the
    parallel rung's worker processes and shared-memory segments.  A
    ``weakref.finalize`` backstop covers sessions that are simply
    dropped.  Topology mutation through the shared adjacency matrix is
    safe mid-session: the engines re-snapshot via ``adjacency.version``.
    """

    def __init__(self, network: Network, spec: Optional[EngineSpec] = None):
        if isinstance(spec, str):
            spec = EngineSpec(spec)
        self.network = network
        self.spec = spec or EngineSpec()
        self._engines: Dict[str, object] = {}
        self._compiled: Dict[int, Tuple[Schedule, CompiledSchedule]] = {}
        self._closed = False
        self._finalizer = weakref.finalize(self, _close_engines,
                                           self._engines)

    @classmethod
    def from_parts(cls, algebra, adjacency, spec: Optional[EngineSpec] = None,
                   name: str = "session") -> "RoutingSession":
        """Build a session over an existing adjacency matrix (shared
        live — mutations are seen by the session's engines)."""
        network = Network(algebra, adjacency.n, name=name)
        network.adjacency = adjacency
        return cls(network, spec)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release every engine the session built (idempotent)."""
        self._closed = True
        self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RoutingSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed; build a new one")

    # -- negotiation ----------------------------------------------------

    def resolve(self, op: str = "sigma", schedule: Optional[Schedule] = None,
                keep_history: bool = False,
                literal: bool = False) -> EngineResolution:
        """Negotiate the rung this session would use for ``op``.

        Public so callers (and the CLI) can inspect the reason chain
        without running anything; ``spec.strict`` applies here too.
        """
        return resolve_engine(self.network, self.spec.engine, op,
                              workers=self.spec.workers,
                              strict=self.spec.strict,
                              keep_history=keep_history, literal=literal,
                              schedule=schedule,
                              remote=self.spec.remote_transport)

    # -- managed engines ------------------------------------------------

    def _engine_obj(self, resolution: EngineResolution):
        """The managed engine instance for a resolution's rung (``None``
        for the object-model rungs)."""
        rung = resolution.chosen
        if rung in ("naive", "incremental"):
            return None
        eng = self._engines.get(rung)
        if rung == "remote" and eng is not None and eng.stale_topology():
            # the remote snapshot cannot follow topology mutations
            # (supports_topology_mutation=False): rebuild the engine —
            # fresh connections, fresh worker-side snapshot
            eng.close()
            del self._engines[rung]
            eng = None
        if eng is None:
            if rung == "vectorized":
                from .core.vectorized import VectorizedEngine
                eng = VectorizedEngine(self.network)
            elif rung == "batched":
                from .core.vectorized import BatchedVectorizedEngine
                eng = BatchedVectorizedEngine(self.network)
                if self.spec.batch_dtype is not None:
                    eng.batch_dtype_override = _validated_dtype(
                        self.spec.batch_dtype, eng.encoding.size)
            elif rung == "remote":
                from .core.remote import RemoteVectorizedEngine
                eng = RemoteVectorizedEngine(
                    self.network, endpoints=self.spec.endpoints,
                    workers=self.spec.remote_workers,
                    socket_timeout=self.spec.socket_timeout,
                    strict=self.spec.strict,
                    fault_plan=self.spec.fault_plan)
            else:
                from .core.parallel import ParallelVectorizedEngine
                eng = ParallelVectorizedEngine(self.network,
                                               workers=resolution.workers)
            self._engines[rung] = eng
        return eng

    def _wire_snapshot(self, resolution: EngineResolution):
        """Per-run :class:`~repro.core.wire.WireStats` copy when the
        remote rung ran; ``None`` for every local rung."""
        if resolution.chosen != "remote":
            return None
        eng = self._engines.get("remote")
        return eng.wire_stats.copy() if eng is not None else None

    def _degraded_snapshot(self, resolution: EngineResolution):
        """Per-run tuple of
        :class:`~repro.core.capabilities.DegradedEvent` when the remote
        rung ran (empty for a clean run); ``None`` for local rungs."""
        if resolution.chosen != "remote":
            return None
        eng = self._engines.get("remote")
        return tuple(eng.degraded) if eng is not None else None

    def compile_schedule(self, schedule: Schedule,
                         horizon: int) -> CompiledSchedule:
        """The session-cached compiled form of ``schedule`` (recompiled
        only when a longer horizon is requested)."""
        key = id(schedule)
        entry = self._compiled.get(key)
        if entry is not None and entry[1].horizon >= horizon:
            return entry[1]
        comp = CompiledSchedule.ensure(schedule, horizon)
        # the schedule object is retained alongside so the id() key can
        # never be recycled by the allocator while the cache is alive
        self._compiled[key] = (schedule, comp)
        return comp

    # -- σ ---------------------------------------------------------------

    def sigma(self, start: Optional[RoutingState] = None, *,
              max_rounds: int = 10_000, keep_trajectory: bool = False,
              detect_cycles: bool = False,
              measure_churn: bool = False) -> SigmaReport:
        """Iterate σ to a fixed point; returns a :class:`SigmaReport`.

        ``start`` defaults to the identity matrix (the clean start).
        ``detect_cycles`` stops early on a repeated state (limit
        cycle), reporting ``converged=False``.  ``measure_churn``
        additionally counts total entry changes over the run — on
        finite algebras via the code-diff fast path (the trajectory is
        never materialised), otherwise from the object trajectory.
        """
        self._check_open()
        net = self.network
        if start is None:
            start = RoutingState.identity(net.algebra, net.n)
        resolution = self.resolve("sigma")
        t0 = perf_counter()
        churn: Optional[int] = None
        wire: Optional[WireStats] = None
        degraded: Optional[Tuple] = None
        # the code-diff churn fast path is only taken when the session
        # negotiated a codes-based rung anyway — a spec pinned to
        # "naive"/"incremental" keeps the object path, so the report's
        # resolution never misstates which engine family ran.  (For the
        # parallel/batched rungs the measurement runs on the serial
        # vectorized kernel of the same encoding — identical counts.)
        if measure_churn and not keep_trajectory and not detect_cycles \
                and resolution.chosen in ("vectorized", "parallel",
                                          "batched", "remote") \
                and supports_vectorized(net.algebra):
            from .core.vectorized import VectorizedEngine
            eng = self._engines.get("vectorized")
            if eng is None:
                eng = self._engines["vectorized"] = VectorizedEngine(net)
            converged, rounds, churn, state = sigma_churn(
                net, start, max_rounds=max_rounds, engine=eng)
            result = SyncResult(converged, rounds, state, None)
        else:
            result = _iterate_sigma_resolved(
                net, start, resolution.chosen, max_rounds=max_rounds,
                keep_trajectory=keep_trajectory or measure_churn,
                detect_cycles=detect_cycles,
                workers=resolution.workers,
                engine_obj=self._engine_obj(resolution))
            wire = self._wire_snapshot(resolution)
            degraded = self._degraded_snapshot(resolution)
            if measure_churn:
                alg = net.algebra
                churn = 0
                trajectory = result.trajectory or []
                for prev, cur in zip(trajectory, trajectory[1:]):
                    for i in range(net.n):
                        for j in range(net.n):
                            if not alg.equal(prev.get(i, j), cur.get(i, j)):
                                churn += 1
        return SigmaReport(
            converged=result.converged, rounds=result.rounds,
            state=result.state, resolution=resolution,
            elapsed_s=perf_counter() - t0,
            trajectory=result.trajectory if keep_trajectory else None,
            churn=churn, wire=wire, degraded=degraded, result=result)

    # -- δ ---------------------------------------------------------------

    def delta(self, schedule: Schedule,
              start: Optional[RoutingState] = None, *,
              max_steps: int = 2_000, stability_window: Optional[int] = None,
              keep_history: Optional[bool] = None,
              strict: Optional[bool] = None,
              window: Optional[int] = None) -> DeltaReport:
        """Run δ under ``schedule``; returns a :class:`DeltaReport`.

        ``keep_history`` / ``strict`` default from the spec's history
        policy (``"full"`` / ``"literal"``); ``window`` overrides the
        parallel/remote rung's IPC window for this run.
        """
        self._check_open()
        net = self.network
        if start is None:
            start = RoutingState.identity(net.algebra, net.n)
        if keep_history is None:
            keep_history = self.spec.history == "full"
        if strict is None:
            strict = self.spec.history == "literal"
        resolution = self.resolve("delta", schedule=schedule,
                                  keep_history=keep_history, literal=strict)
        t0 = perf_counter()
        sched = schedule
        if resolution.chosen == "batched":
            sched = self.compile_schedule(schedule, max_steps)
        result = _delta_run_resolved(
            net, sched, start, resolution.chosen, max_steps=max_steps,
            stability_window=stability_window, keep_history=keep_history,
            workers=resolution.workers,
            engine_obj=self._engine_obj(resolution),
            window=window if window is not None else self.spec.window)
        ipc_commands = ipc_steps = None
        if resolution.chosen in ("parallel", "remote"):
            pool = self._engines.get(resolution.chosen)
            if pool is not None:
                ipc_commands = pool.delta_ipc_commands
                ipc_steps = pool.delta_ipc_steps
        return DeltaReport(
            converged=result.converged, steps=result.steps,
            state=result.state, resolution=resolution,
            elapsed_s=perf_counter() - t0,
            converged_at=result.converged_at, history=result.history,
            history_retained=result.history_retained,
            ipc_commands=ipc_commands, ipc_steps=ipc_steps,
            schedule_seed_version=schedule_seed_version([schedule]),
            wire=self._wire_snapshot(resolution),
            degraded=self._degraded_snapshot(resolution), result=result)

    def delta_grid(self, trials: Sequence[Tuple[Schedule, RoutingState]], *,
                   max_steps: int = 2_000,
                   stability_window: Optional[int] = None,
                   batch_size: Optional[int] = 64,
                   keep_results: bool = False) -> GridReport:
        """Run δ for every ``(schedule, start)`` trial as one negotiated
        workload; returns a :class:`GridReport`.

        On the batched rung the whole grid is stacked into one
        ``(B, n, n)`` tensor (``batch_size`` chunks the batch axis);
        lower rungs loop trials against one shared engine — the
        parallel rung reuses a single worker pool across the grid.
        The spec's ``history`` policy applies to every trial
        (``"literal"`` runs the strict paper recursion per trial,
        ``"full"`` retains each trial's history — visible with
        ``keep_results``).  ``keep_results`` retains the per-trial
        :class:`~repro.core.asynchronous.AsyncResult` list on the
        report.

        On the parallel rung, a trial whose schedule declares no
        staleness bound delegates to the serial vectorized engine
        (logged on ``repro.engine``) — unless the spec is ``strict``,
        in which case the trial raises
        :class:`~repro.core.capabilities.UnsupportedEngineError`
        exactly as :meth:`delta` would.
        """
        self._check_open()
        net = self.network
        trials = list(trials)
        keep_history = self.spec.history == "full"
        literal = self.spec.history == "literal"
        resolution = self.resolve("grid", keep_history=keep_history,
                                  literal=literal)
        t0 = perf_counter()
        results: List[AsyncResult] = []
        wire_base = None
        degraded_base = None
        if resolution.chosen == "remote" and trials:
            # snapshot the engine's monotonic totals so the report can
            # carry exactly this grid's traffic (per-run wire_stats
            # resets on every trial); ditto the healing-event log
            eng = self._engine_obj(resolution)
            wire_base = eng.wire_totals.copy()
            degraded_base = len(eng.degraded_total)
        if resolution.chosen == "batched" and trials:
            eng = self._engine_obj(resolution)
            compiled = [(self.compile_schedule(sched, max_steps), start)
                        for (sched, start) in trials]
            chunk = len(compiled) if not batch_size else max(1,
                                                             int(batch_size))
            for lo in range(0, len(compiled), chunk):
                results.extend(eng.delta_grid(
                    compiled[lo:lo + chunk], max_steps=max_steps,
                    stability_window=stability_window))
        else:
            eng = self._engine_obj(resolution)
            for sched, start in trials:
                if resolution.chosen in ("parallel", "remote") \
                        and self.spec.strict:
                    # strict means no silent per-trial delegation either:
                    # re-negotiate the trial as a single δ run, which
                    # raises with the exact unbounded-schedule chain
                    self.resolve("delta", schedule=sched)
                results.append(_delta_run_resolved(
                    net, sched, start, resolution.chosen,
                    max_steps=max_steps, stability_window=stability_window,
                    keep_history=keep_history,
                    workers=resolution.workers, engine_obj=eng,
                    window=self.spec.window))
        alg = net.algebra
        fixed_points: List[RoutingState] = []
        steps: List[int] = []
        all_converged = True
        for res in results:
            if not res.converged:
                all_converged = False
                continue
            steps.append(res.converged_at or res.steps)
            if not any(res.state.equals(fp, alg) for fp in fixed_points):
                fixed_points.append(res.state)
        wire = None
        degraded = None
        if wire_base is not None:
            eng = self._engines.get("remote")
            if eng is not None:
                wire = eng.wire_totals - wire_base
                degraded = tuple(eng.degraded_total[degraded_base:])
        return GridReport(
            runs=len(trials), all_converged=all_converged,
            distinct_fixed_points=fixed_points, convergence_steps=steps,
            resolution=resolution, elapsed_s=perf_counter() - t0,
            schedule_seed_version=schedule_seed_version(
                [sched for (sched, _start) in trials]),
            wire=wire, degraded=degraded,
            results=results if keep_results else None)

    # -- event replay ----------------------------------------------------

    def replay(self, phases, *, start: Optional[RoutingState] = None,
               max_rounds: int = 10_000,
               measure_churn: bool = True) -> ReplayReport:
        """Replay a timed mutation stream, measuring re-convergence
        after every phase; returns a :class:`ReplayReport`.

        ``phases`` is an iterable whose items are either *phase*
        objects (duck-typed: ``.label`` plus ``.mutations``, each
        mutation applying itself via ``mutation.apply(network)``) or
        callables ``(network, fixed_point) -> iterable of phases`` —
        the lazy form state-dependent events (``del-best-route``)
        compile through, since their mutations depend on the topology
        and fixed point left behind by earlier phases.

        The session first solves the unmodified topology (the
        ``"initial"`` step), then for each phase applies its mutations
        to the shared adjacency — bumping ``adjacency.version``, so the
        incremental engines see exactly the dirty entries — and
        re-solves σ *warm-started from the previous fixed point*.
        ``measure_churn`` counts entry changes per re-convergence (the
        code-diff fast path on codes-based rungs).
        """
        self._check_open()
        t0 = perf_counter()
        report = self.sigma(start, max_rounds=max_rounds,
                            measure_churn=measure_churn)
        steps = [ReplayStep(
            label="initial", mutations=0,
            version=self.network.adjacency.version,
            converged=report.converged, rounds=report.rounds,
            churn=report.churn, elapsed_s=report.elapsed_s,
            state=report.state)]
        resolution = report.resolution
        for item in phases:
            compiled = item(self.network, steps[-1].state) \
                if callable(item) else [item]
            for phase in compiled:
                for mutation in phase.mutations:
                    mutation.apply(self.network)
                report = self.sigma(steps[-1].state, max_rounds=max_rounds,
                                    measure_churn=measure_churn)
                steps.append(ReplayStep(
                    label=phase.label, mutations=len(phase.mutations),
                    version=self.network.adjacency.version,
                    converged=report.converged, rounds=report.rounds,
                    churn=report.churn, elapsed_s=report.elapsed_s,
                    state=report.state))
                resolution = report.resolution
        return ReplayReport(steps=steps, resolution=resolution,
                            elapsed_s=perf_counter() - t0)

    # -- experiments -----------------------------------------------------

    def converges(self, n_starts: int = 5,
                  schedules: Optional[Sequence[Schedule]] = None,
                  seed: int = 0, max_steps: int = 2_000, *,
                  verify: bool = False,
                  samples: int = 40) -> ConvergenceReport:
        """The Theorem 7/11 absolute-convergence experiment with
        sensible defaults; returns a :class:`ConvergenceReport`.

        Samples ``n_starts`` arbitrary states (plus the clean start)
        against the schedule zoo and runs the full grid.  With
        ``verify=True`` the algebra laws are additionally checked
        against the installed edges and mapped onto the paper's
        theorems (``report.guarantee``).
        """
        self._check_open()
        net = self.network
        if schedules is None:
            schedules = schedule_zoo(net.n, seeds=(seed, seed + 17))
        rng = random.Random(seed)
        starts: List[RoutingState] = [
            RoutingState.identity(net.algebra, net.n)]
        for _ in range(n_starts):
            starts.append(random_state(net.algebra, net.n, rng))
        grid = self.delta_grid(
            [(sched, start) for start in starts for sched in schedules],
            max_steps=max_steps)
        guarantee = law_report = None
        if verify:
            from .verification import convergence_guarantee, verify_network
            law_report = verify_network(net, samples=samples)
            guarantee = convergence_guarantee(
                law_report,
                finite_carrier=bool(getattr(net.algebra, "is_finite",
                                            False)),
                path_algebra=isinstance(net.algebra, PathAlgebra))
        return ConvergenceReport(absolute=grid.absolute, grid=grid,
                                 guarantee=guarantee, law_report=law_report)

    def verify(self, samples: int = 40, rng=None):
        """Law-check the algebra against the installed edges (the
        Table 1 / P1–P3 suite); returns the
        :class:`~repro.verification.properties.AlgebraReport`."""
        self._check_open()
        from .verification import verify_network
        return verify_network(self.network, rng=rng, samples=samples)

    # -- protocol simulation --------------------------------------------

    def simulate(self, start: Optional[RoutingState] = None, *,
                 seed: int = 0, link_config=None,
                 refresh_interval: float = 10.0, quiet_period: float = 30.0,
                 max_time: float = 10_000.0) -> SimulationReport:
        """One event-driven protocol run
        (:class:`~repro.protocols.simulator.Simulator`); returns a
        :class:`SimulationReport`.

        The final σ-stability verdict runs on the session's negotiated
        stability engine (a lone check has no trial grid, so the
        batched rung falls one rung down); the simulator borrows the
        session's managed engine instance and never closes it.
        """
        self._check_open()
        from .protocols.simulator import Simulator
        resolution = self.resolve("stability")
        t0 = perf_counter()
        sim = Simulator(self.network, seed=seed, link_config=link_config,
                        refresh_interval=refresh_interval,
                        quiet_period=quiet_period,
                        engine=self.spec.engine, workers=self.spec.workers,
                        stability_engine=self._engine_obj(resolution),
                        stability_resolution=resolution)
        try:
            result = sim.run(start, max_time=max_time)
        finally:
            sim.close()
        return SimulationReport(result=result, resolution=resolution,
                                elapsed_s=perf_counter() - t0)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"RoutingSession({self.network!r}, "
                f"engine={self.spec.engine!r}, {state})")


def _close_engines(engines: Dict[str, object]) -> None:
    """Finalizer target: release every engine holding OS resources.

    Module-level (not a bound method) so the ``weakref.finalize`` hook
    never keeps the session alive.
    """
    for eng in engines.values():
        close = getattr(eng, "close", None)
        if close is not None:
            close()
    engines.clear()


def _validated_dtype(name: str, carrier_size: int):
    """Parse a spec's ``batch_dtype`` and check the carrier fits (with
    the affine fast path's ``2 ×`` headroom)."""
    import numpy as np
    dtype = np.dtype(name)
    if dtype.kind not in "iu":
        raise ValueError(f"batch_dtype must be an integer dtype, got {name!r}")
    if np.iinfo(dtype).max < 2 * carrier_size:
        raise ValueError(
            f"batch_dtype {name!r} cannot hold a {carrier_size}-route "
            "carrier (needs 2× headroom for the affine fast path)")
    return dtype
