"""Routing state matrices, adjacency matrices and networks (Section 2.2).

The paper represents the *global routing state* as an ``n × n`` matrix
``X`` over the route set ``S`` — row ``i`` is node ``i``'s routing table
and ``X[i][j]`` is node ``i``'s best current route to destination ``j``.
The *topology* is an ``n × n`` adjacency matrix ``A`` over the edge
functions ``F`` — ``A[i][k]`` is the policy function applied by node
``i`` to routes learned from neighbour ``k``; a missing edge is the
constant-∞̄ function.

:class:`Network` bundles the algebra with the adjacency matrix; the
synchronous operator σ and the asynchronous operator δ are defined over
networks in :mod:`repro.core.synchronous` / :mod:`repro.core.asynchronous`.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .algebra import ConstantEdge, EdgeFunction, Route, RoutingAlgebra


class NetworkTopology:
    """Immutable per-node neighbour snapshot of an adjacency matrix.

    Precomputes, in one pass over the edge set,

    * ``in_neighbours[i]`` — the nodes ``k`` that ``i`` imports from
      (``A[i][k]`` present), ascending;
    * ``out_neighbours[k]`` — the nodes ``i`` that import from ``k``,
      ascending;
    * ``in_edges[i]`` — ``(k, A[i][k])`` pairs, ascending in ``k``, so
      engines fold σ's big-⊕ without any per-entry dict lookups.

    Snapshots are cached on the adjacency matrix and rebuilt lazily on
    the next ``.topology`` access after any :meth:`AdjacencyMatrix.set`
    / :meth:`AdjacencyMatrix.remove`.  A snapshot held *across* a
    mutation is not auto-refreshed — re-read ``.topology`` after
    topology changes (the engines do this every round); ``version`` can
    be compared against ``adjacency.version`` to check freshness.
    """

    __slots__ = ("n", "version", "in_neighbours", "out_neighbours", "in_edges")

    def __init__(self, adjacency: "AdjacencyMatrix"):
        n = adjacency.n
        self.n = n
        self.version = adjacency.version
        ins: List[List[int]] = [[] for _ in range(n)]
        outs: List[List[int]] = [[] for _ in range(n)]
        in_edges: List[List[Tuple[int, EdgeFunction]]] = [[] for _ in range(n)]
        for (i, k) in adjacency.present_edges():   # sorted by (i, k)
            ins[i].append(k)
            outs[k].append(i)
            in_edges[i].append((k, adjacency(i, k)))
        self.in_neighbours = ins
        self.out_neighbours = outs
        self.in_edges = in_edges


class AdjacencyMatrix:
    """An ``n × n`` matrix of edge functions.

    Only present edges are stored; ``self(i, k)`` returns the constant
    invalid function for absent entries, implementing the paper's
    "missing edges are the constant function f(a) = ∞̄".

    The sorted edge view and the :class:`NetworkTopology` neighbour
    snapshot are cached and invalidated on mutation, so engines pay for
    neighbour derivation once per topology rather than once per call.
    """

    def __init__(self, n: int, algebra: RoutingAlgebra,
                 edges: Optional[Dict[Tuple[int, int], EdgeFunction]] = None):
        if n <= 0:
            raise ValueError("a network needs at least one node")
        self.n = n
        self.algebra = algebra
        self._absent = ConstantEdge(algebra.invalid)
        self._edges: Dict[Tuple[int, int], EdgeFunction] = {}
        self._version = 0
        self._sorted: Optional[List[Tuple[int, int]]] = None
        self._topology: Optional[NetworkTopology] = None
        if edges:
            for (i, k), fn in edges.items():
                self.set(i, k, fn)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped by every set/remove."""
        return self._version

    def _invalidate(self) -> None:
        self._version += 1
        self._sorted = None
        self._topology = None

    def set(self, i: int, k: int, fn: EdgeFunction) -> None:
        """Install edge function ``A[i][k] = fn`` (i imports from k)."""
        self._check(i, k)
        self._edges[(i, k)] = fn
        self._invalidate()

    def remove(self, i: int, k: int) -> None:
        """Delete the edge ``(i, k)``; it reverts to the constant-∞̄ map."""
        self._check(i, k)
        if self._edges.pop((i, k), None) is not None:
            self._invalidate()

    def __call__(self, i: int, k: int) -> EdgeFunction:
        """``A[i][k]``: the edge function, constant-∞̄ when absent."""
        self._check(i, k)
        return self._edges.get((i, k), self._absent)

    def has_edge(self, i: int, k: int) -> bool:
        """True when an explicit (non-∞̄) edge function is installed."""
        return (i, k) in self._edges

    def present_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over the (i, k) pairs with an installed edge function.

        The sorted view is cached; mutation invalidates it, so repeated
        calls on a stable topology are O(1) rather than O(E log E).
        """
        if self._sorted is None:
            self._sorted = sorted(self._edges)
        return iter(self._sorted)

    @property
    def topology(self) -> NetworkTopology:
        """The cached :class:`NetworkTopology` snapshot (rebuilt lazily)."""
        if self._topology is None:
            self._topology = NetworkTopology(self)
        return self._topology

    def _check(self, i: int, k: int) -> None:
        if not (0 <= i < self.n and 0 <= k < self.n):
            raise IndexError(f"edge ({i}, {k}) out of range for n={self.n}")

    def __repr__(self) -> str:
        return (f"AdjacencyMatrix(n={self.n}, algebra={self.algebra.name}, "
                f"edges={len(self._edges)})")


class Network:
    """A routing problem instance: an algebra plus an adjacency matrix.

    This is the paper's pair ``(A, (S, ⊕, F, 0̄, ∞̄))``.  All engines
    (σ, δ, the event simulator) take a network and never look inside
    the algebra beyond its public interface.
    """

    def __init__(self, algebra: RoutingAlgebra, n: int,
                 edges: Optional[Dict[Tuple[int, int], EdgeFunction]] = None,
                 name: str = "network"):
        self.algebra = algebra
        self.n = n
        self.adjacency = AdjacencyMatrix(n, algebra, edges)
        self.name = name

    # -- delegation -----------------------------------------------------

    def edge(self, i: int, k: int) -> EdgeFunction:
        """``A[i][k]`` — the policy node ``i`` applies to routes from ``k``."""
        return self.adjacency(i, k)

    def set_edge(self, i: int, k: int, fn: EdgeFunction) -> None:
        self.adjacency.set(i, k, fn)

    def remove_edge(self, i: int, k: int) -> None:
        self.adjacency.remove(i, k)

    def present_edges(self) -> Iterator[Tuple[int, int]]:
        return self.adjacency.present_edges()

    @property
    def topology(self) -> NetworkTopology:
        """Cached per-node neighbour snapshot (see :class:`NetworkTopology`)."""
        return self.adjacency.topology

    def neighbours_in(self, i: int) -> List[int]:
        """Nodes ``k`` that node ``i`` imports routes from (A[i][k] present)."""
        return list(self.adjacency.topology.in_neighbours[i])

    def neighbours_out(self, k: int) -> List[int]:
        """Nodes ``i`` that import routes from ``k`` (A[i][k] present)."""
        return list(self.adjacency.topology.out_neighbours[k])

    def copy(self) -> "Network":
        """Shallow-copy the topology (edge functions are shared; they are
        immutable by convention)."""
        clone = Network(self.algebra, self.n, name=self.name)
        for (i, k) in self.adjacency.present_edges():
            clone.set_edge(i, k, self.adjacency(i, k))
        return clone

    def __repr__(self) -> str:
        return f"Network({self.name!r}, n={self.n}, algebra={self.algebra.name})"


class RoutingState:
    """An ``n × n`` matrix of routes: the global routing state ``X``.

    Row ``i`` is node ``i``'s routing table.  States are value objects:
    equality is element-wise route equality; engines never mutate a
    state they were given (they build successors).  Successors built by
    the incremental engines *share* unchanged row objects with their
    predecessor (:meth:`adopt`), so treat every engine-produced state as
    frozen — use :meth:`copy` before calling :meth:`set`.
    """

    __slots__ = ("n", "rows")

    def __init__(self, rows: Sequence[Sequence[Route]]):
        self.n = len(rows)
        self.rows: List[List[Route]] = [list(r) for r in rows]
        for r in self.rows:
            if len(r) != self.n:
                raise ValueError("routing state must be a square matrix")

    # -- constructors ----------------------------------------------------

    @classmethod
    def identity(cls, algebra: RoutingAlgebra, n: int) -> "RoutingState":
        """The matrix ``I``: 0̄ on the diagonal, ∞̄ elsewhere."""
        return cls([[algebra.trivial if i == j else algebra.invalid
                     for j in range(n)] for i in range(n)])

    @classmethod
    def filled(cls, value: Route, n: int) -> "RoutingState":
        """A state with every entry equal to ``value``."""
        return cls([[value for _ in range(n)] for _ in range(n)])

    @classmethod
    def from_function(cls, fn, n: int) -> "RoutingState":
        """Build a state entry-wise from ``fn(i, j)``."""
        return cls([[fn(i, j) for j in range(n)] for i in range(n)])

    @classmethod
    def adopt(cls, rows: List[List[Route]]) -> "RoutingState":
        """Wrap ``rows`` *without copying* (engine fast path).

        The incremental engines build successors that share unchanged
        row objects with their predecessor, so the square-matrix copy in
        ``__init__`` would defeat the point.  Callers hand over
        ownership: adopted rows (including rows shared from earlier
        states) must never be mutated afterwards — states are immutable
        by convention.
        """
        state = cls.__new__(cls)
        state.n = len(rows)
        state.rows = rows
        return state

    # -- access ----------------------------------------------------------

    def get(self, i: int, j: int) -> Route:
        return self.rows[i][j]

    def set(self, i: int, j: int, route: Route) -> None:
        """Overwrite one entry **in place**.

        Only call this on a state you built yourself (or obtained via
        :meth:`copy`).  States produced by the engines share unchanged
        row objects with their predecessors (see :meth:`adopt`), so
        mutating one would silently corrupt every state in the
        trajectory/history that shares the row.
        """
        self.rows[i][j] = route

    def row(self, i: int) -> List[Route]:
        """Node ``i``'s routing table (a copy)."""
        return list(self.rows[i])

    def column(self, j: int) -> List[Route]:
        """All nodes' routes towards destination ``j`` (a copy)."""
        return [self.rows[i][j] for i in range(self.n)]

    def entries(self) -> Iterator[Tuple[int, int, Route]]:
        for i in range(self.n):
            for j in range(self.n):
                yield i, j, self.rows[i][j]

    def copy(self) -> "RoutingState":
        return RoutingState(self.rows)

    # -- algebra-aware helpers --------------------------------------------

    def equals(self, other: "RoutingState", algebra: RoutingAlgebra) -> bool:
        """Element-wise equality under the algebra's route equality.

        Returns on the first mismatch; the bound ``algebra.equal`` is
        hoisted out of the loop, and rows shared structurally between
        the two states (common under the incremental engines) are
        skipped by identity without touching their entries.
        """
        if self is other:
            return True
        if self.n != other.n:
            return False
        equal = algebra.equal
        for mine, theirs in zip(self.rows, other.rows):
            if mine is theirs:
                continue
            for a, b in zip(mine, theirs):
                if not equal(a, b):
                    return False
        return True

    def choice(self, other: "RoutingState", algebra: RoutingAlgebra) -> "RoutingState":
        """Element-wise ⊕: ``(X ⊕ Y)[i][j] = X[i][j] ⊕ Y[i][j]``."""
        return RoutingState([[algebra.choice(self.rows[i][j], other.rows[i][j])
                              for j in range(self.n)] for i in range(self.n)])

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return isinstance(other, RoutingState) and self.rows == other.rows

    def __hash__(self):
        return hash(tuple(tuple(r) for r in self.rows))

    def __repr__(self) -> str:
        return f"RoutingState(n={self.n})"

    def pretty(self, cell_width: int = 18) -> str:
        """Tabular rendering for debugging and example scripts."""
        lines = []
        header = " " * 6 + "".join(f"to {j:<{cell_width - 3}}" for j in range(self.n))
        lines.append(header)
        for i in range(self.n):
            cells = "".join(f"{str(self.rows[i][j]):<{cell_width}}"
                            for j in range(self.n))
            lines.append(f"node {i:<2}{cells}")
        return "\n".join(lines)
