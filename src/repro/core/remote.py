"""Remote σ/δ engine: destination-column sharding over TCP.

The sixth ladder rung takes the parallel engine's column-sharding
protocol across an address-space boundary: a coordinator (the engine)
connects to TCP *workers*, ships each one a topology snapshot plus a
contiguous block of destination columns, and drives the same two
protocols the shared-memory pool runs —

* **σ**: per round the coordinator broadcasts one command; each worker
  gather-reduces its dirty columns locally (dirty tracking is
  block-local, so rounds need zero cross-worker synchronisation) and
  replies with a delta-encoded summary of the columns that changed,
  which the coordinator applies to a local mirror of the full matrix.
  An empty union of changed columns is σ-stability, as everywhere else.
* **δ**: the coordinator computes windowed activation commands exactly
  like :meth:`ParallelVectorizedEngine.delta` (same
  :data:`~repro.core.parallel.DELTA_WINDOW`, same ring sizing, same
  staleness guard), the workers execute them against local history
  rings and reply per-step changed flags; when the convergence counter
  fills, the coordinator *fetches* the candidate state (delta-encoded
  against the last fetch) and probes σ-stability on its local snapshot
  — so convergence decisions, round counts, and final states are
  bit-identical to the serial engines.

Everything on the socket uses :mod:`repro.core.wire`: framed, versioned
messages whose state payloads are delta-encoded and quantized (narrowest
carrier dtype).  The engine's :attr:`~RemoteVectorizedEngine.wire_stats`
records bytes/round, commands/round and the compression ratio against
naive full-block transfer; the session surfaces them on reports and the
benchmark harness regression-gates them.

Workers are plain functions over TCP (:func:`serve_worker`), launchable
as ``python -m repro.cli worker`` on any host, or spawned as local
subprocesses for single-host testing (``workers=k``).  Failure handling
is deterministic: a dropped, dead, or silent worker surfaces as a typed
:class:`RemoteWorkerError` carrying the shard id and the last fully
acknowledged protocol round — never a hang (every coordinator socket
has a configurable timeout) — while malformed or version-skewed peers
raise :class:`~repro.core.wire.WireFormatError` /
:class:`~repro.core.wire.WireVersionError`.

The engine advertises ``supports_topology_mutation=False``: the snapshot
shipped at load time is never republished, and :meth:`refresh` raises
:class:`RemoteError` if the network mutated underneath it.
:class:`~repro.session.RoutingSession` turns that into a managed
lifecycle by rebuilding the engine (fresh connections, fresh snapshot)
when the topology version moves.
"""

from __future__ import annotations

import random
import socket
import struct
import time
import weakref
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:                      # pragma: no cover - numpy is baked in
    np = None

from .algebra import UnsupportedAlgebraError
from .asynchronous import AsyncResult
from .capabilities import (
    Capabilities,
    DegradedEvent,
    logger as _engine_log,
    register_engine,
)
from .faults import FaultPlan
from .parallel import DELTA_WINDOW, _mp_context
from .schedule import Schedule
from .state import Network, RoutingState
from .synchronous import SyncResult
from .vectorized import (
    _DTYPE,
    VectorizedEngine,
    fold_edge_tables,
    gather_min_reduce,
    supports_vectorized,
)
from .wire import (
    MSG_ACK,
    MSG_CKPT,
    MSG_DELTA_INIT,
    MSG_DELTA_STEPS,
    MSG_ERROR,
    MSG_FETCH,
    MSG_FLAGS,
    MSG_LOAD,
    MSG_PING,
    MSG_SIGMA_INIT,
    MSG_SIGMA_ROUND,
    MSG_STOP,
    MSG_UPDATE,
    FrameConnection,
    WireClosedError,
    WireError,
    WireFormatError,
    WireStats,
    WireVersionError,
    decode_update,
    encode_update,
    naive_update_bytes,
    pack_payload,
    unpack_payload,
)

__all__ = [
    "REMOTE_MIN_N",
    "REMOTE_TIMEOUT",
    "REMOTE_MAX_RETRIES",
    "RemoteError",
    "RemoteWorkerError",
    "RemoteVectorizedEngine",
    "serve_worker",
    "spawn_loopback_workers",
    "supports_remote",
    "iterate_sigma_remote",
    "delta_run_remote",
]

#: below this many destinations the wire fan-out cannot pay; unlike the
#: parallel engine's auto-mode floor this gate applies even to explicit
#: requests (remote is never chosen by auto mode at all), because a
#: 2-column shard per round-trip is pure overhead at any batch size.
REMOTE_MIN_N = 4

#: default coordinator socket timeout (seconds): a worker that neither
#: replies nor closes within this window is declared dead.
REMOTE_TIMEOUT = 120.0

#: how many recoveries the supervisor attempts per run before the
#: original typed error surfaces (``strict=True`` attempts zero).
REMOTE_MAX_RETRIES = 3

#: exponential-backoff schedule for recovery attempts: the k-th retry
#: sleeps ``min(BASE * 2**(k-1), CAP)`` seconds, jittered into
#: ``[0.5x, 1.0x]`` so respawned fleets never thunder in lockstep.
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_CAP = 1.0

#: endpoint probation: a dead endpoint is parked and re-probed (one
#: lightweight MSG_PING hello on a fresh socket) no sooner than
#: ``min(BASE * 2**(k-1), CAP)`` seconds after its k-th failure; a
#: successful probe re-admits it and the next pool build re-shards back
#: towards the original column layout.
PROBATION_BASE = 0.25
PROBATION_CAP = 30.0

#: capture a δ checkpoint every this many windows (when the retry
#: budget is live): the worker ring tail travels to the coordinator so
#: a heal resumes from the last checkpoint instead of replaying the
#: whole run — O(window) recovery instead of O(steps).
DELTA_CKPT_EVERY = 4


class RemoteError(RuntimeError):
    """Remote-engine failure that is not attributable to one worker."""


class RemoteWorkerError(RemoteError):
    """A specific shard failed: died, hung past the timeout, or relayed
    a worker-side exception.

    Carries the shard id, its endpoint, and the last protocol round the
    coordinator had fully acknowledged before the failure, so callers
    know exactly how far the run provably progressed.
    """

    def __init__(self, message: str, shard_id: Optional[int] = None,
                 endpoint: Optional[Tuple[str, int]] = None,
                 last_acked_round: Optional[int] = None):
        super().__init__(message)
        self.shard_id = shard_id
        self.endpoint = endpoint
        self.last_acked_round = last_acked_round


class _ShardFault(Exception):
    """Internal signal: one shard failed mid-protocol.

    Raised by the coordinator's wire plumbing instead of a terminal
    error so the supervisor loop can decide — heal (rebuild the pool,
    resume from the last barrier-consistent state) or surface the same
    typed error the pre-supervision engine raised (``strict=True``, or
    retries exhausted).  Never escapes the engine's public API.

    ``kind`` classifies the failure for terminal re-raising:
    ``conn`` (closed/refused/timed out), ``format`` (corrupt or torn
    frames/payloads), ``protocol`` (well-formed but out-of-discipline
    reply), ``worker-error`` (a relayed :data:`MSG_ERROR`).
    """

    def __init__(self, idx: Optional[int], exc: BaseException,
                 kind: str = "conn", message: Optional[str] = None):
        super().__init__(str(exc))
        self.idx = idx
        self.exc = exc
        self.kind = kind
        self.message = message

    def describe(self) -> str:
        return f"{self.kind} fault ({type(self.exc).__name__}: {self.exc})"


def supports_remote(algebra) -> bool:
    """Capability check: the remote rung needs a finite encoding (codes
    must travel as small integers) and working sockets (always true on
    the supported platforms)."""
    return supports_vectorized(algebra)


def _split_columns(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous column blocks, one per worker — identical layout to
    :meth:`ParallelVectorizedEngine._split_columns`."""
    base, extra = divmod(n, workers)
    blocks = []
    lo = 0
    for w in range(workers):
        hi = lo + base + (1 if w < extra else 0)
        blocks.append((lo, hi))
        lo = hi
    return blocks


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _ShardState:
    """Everything one TCP worker holds for its column block ``[lo, hi)``.

    Unlike the shared-memory pool, nothing here aliases coordinator
    state: the block, the δ ring and the edge tables are private
    arrays, synchronised purely through delta-encoded wire updates.
    ``baseline`` is the block as the coordinator last acknowledged it —
    the reference every outgoing update is encoded against.
    """

    def __init__(self):
        self.n = 0
        self.lo = 0
        self.hi = 0
        self.trivial = 0
        self.invalid = 0
        self.carrier = 0
        self.tables = None
        self.src = None
        self.erange = None
        self.importers = None
        self.starts = None
        self.offsets = {}
        self.degrees = {}
        self.C = None                    # (n, width) σ block
        self.dirty = None                # (width,) bool, block-local
        self.baseline = None             # (n, width) last acked block
        self.ring: List = []             # δ history ring of (n, width)
        self.window = 0

    @property
    def width(self) -> int:
        return self.hi - self.lo


def _shard_load(state: _ShardState, meta: dict, tail: bytes) -> None:
    """Install the topology snapshot: JSON meta + raw int32 tables."""
    state.n = int(meta["n"])
    state.lo, state.hi = (int(v) for v in meta["block"])
    state.trivial = int(meta["trivial"])
    state.invalid = int(meta["invalid"])
    state.carrier = int(meta["carrier"])
    n_edges, size = (int(v) for v in meta["tables_shape"])
    if len(tail) != n_edges * size * 4:
        raise WireFormatError(
            f"table blob is {len(tail)} bytes, expected "
            f"{n_edges * size * 4} for shape ({n_edges}, {size})")
    state.tables = np.frombuffer(tail, dtype="<i4").reshape(
        n_edges, size).astype(_DTYPE)
    state.src = np.asarray(meta["src"], dtype=np.intp)
    state.importers = np.asarray(meta["importers"], dtype=np.intp)
    state.starts = np.asarray(meta["starts"], dtype=np.intp)
    state.erange = np.arange(n_edges)[:, None]
    # JSON turns int keys into strings; undo it
    state.offsets = {int(k): int(v) for k, v in meta["offsets"].items()}
    state.degrees = {int(k): int(v) for k, v in meta["degrees"].items()}


def _invalid_block(state: _ShardState) -> "np.ndarray":
    """The all-invalid block every state install is delta-encoded
    against (identity starts diff only on the diagonal, so installs are
    nearly free on the wire)."""
    return np.full((state.n, state.width), state.invalid, dtype=_DTYPE)


def _shard_sigma_init(state: _ShardState, blob: bytes) -> None:
    state.C = _invalid_block(state)
    decode_update(blob, state.C)
    state.baseline = state.C.copy()
    state.dirty = np.zeros(state.width, dtype=bool)


def _shard_sigma_round(state: _ShardState, full: bool) -> Tuple[int, bytes]:
    """One σ round over the block's dirty columns.

    Same kernel and dirty discipline as the shared-memory pool's
    ``_worker_sigma``, but the dirty set lives here (column ownership is
    exclusive, so no other process ever needs it) and the changed
    columns travel back as a delta-encoded update instead of being
    written in place.
    """
    if state.C is None:
        raise RemoteError("sigma round before sigma init")
    width = state.width
    if full:
        cols = np.arange(width)
    else:
        cols = np.nonzero(state.dirty)[0]
    state.dirty = np.zeros(width, dtype=bool)
    changed_count = 0
    if cols.size:
        sub = state.C[:, cols]           # copy: the round's frozen input
        new = gather_min_reduce(sub, state.tables, state.src, state.erange,
                                state.importers, state.starts, state.invalid)
        new[state.lo + cols, np.arange(cols.size)] = state.trivial
        changed = (new != sub).any(axis=0)
        if changed.any():
            changed_cols = cols[changed]
            state.C[:, changed_cols] = new[:, changed]
            state.dirty[changed_cols] = True
            changed_count = int(changed_cols.size)
    blob = encode_update(state.baseline, state.C, state.carrier)
    state.baseline[:] = state.C
    return changed_count, blob


def _split_chained_blobs(tail: bytes, count: int) -> List[bytes]:
    """Split a checkpoint tail: ``count`` length-prefixed update blobs,
    each delta-encoded against the decoded form of the previous one."""
    blobs: List[bytes] = []
    pos = 0
    for _ in range(count):
        if pos + 4 > len(tail):
            raise WireFormatError(
                f"checkpoint tail truncated at byte {pos} of {len(tail)}")
        (length,) = struct.unpack_from("!I", tail, pos)
        pos += 4
        if pos + length > len(tail):
            raise WireFormatError(
                f"checkpoint blob overruns tail ({pos + length} > "
                f"{len(tail)})")
        blobs.append(tail[pos:pos + length])
        pos += length
    if pos != len(tail):
        raise WireFormatError(
            f"{len(tail) - pos} stray byte(s) after {count} "
            "checkpoint blob(s)")
    return blobs


def _shard_delta_init(state: _ShardState, meta: dict, tail: bytes) -> None:
    """Install the δ ring.

    Two payload shapes share this command:

    * fresh start — ``{"window": W}`` plus one blob: the start state,
      delta-encoded against all-invalid, installed at ring slot 0;
    * checkpoint resume — ``{"window": W, "slots": [t, ...]}`` plus a
      chained tail (see :func:`_split_chained_blobs`): each decoded
      slot lands at ``ring[t % W]``, oldest first, and ``baseline``
      becomes the newest — exactly the state a mid-run worker held
      when the checkpoint was captured.
    """
    state.window = int(meta["window"])
    state.ring = [
        _invalid_block(state) for _ in range(state.window)]
    slots = meta.get("slots")
    if slots is None:
        blob = tail
        decode_update(blob, state.ring[0])
        state.baseline = state.ring[0].copy()
        return
    blobs = _split_chained_blobs(tail, len(slots))
    prev = _invalid_block(state)
    for t, blob in zip(slots, blobs):
        decode_update(blob, prev)
        state.ring[int(t) % state.window][:] = prev
    state.baseline = state.ring[int(slots[-1]) % state.window].copy()


def _shard_ckpt(state: _ShardState, t: int, depth: int) -> Tuple[List[int],
                                                                 bytes]:
    """Capture ring slots ``t - depth + 1 .. t`` for a coordinator
    checkpoint: chained delta blobs (first vs ``baseline``, each next vs
    the previous slot), length-prefixed and concatenated.  ``baseline``
    advances to slot ``t`` — the coordinator now provably holds it.
    """
    if not state.ring:
        raise RemoteError("checkpoint before delta init")
    t = int(t)
    depth = max(1, min(int(depth), state.window))
    ts = list(range(t - depth + 1, t + 1))
    parts: List[bytes] = []
    prev = state.baseline
    for slot_t in ts:
        slot = state.ring[slot_t % state.window]
        blob = encode_update(prev, slot, state.carrier)
        parts.append(struct.pack("!I", len(blob)) + blob)
        prev = slot
    state.baseline = state.ring[t % state.window].copy()
    return ts, b"".join(parts)


def _shard_delta_steps(state: _ShardState, steps: Sequence) -> List[bool]:
    """One window of δ steps on the local ring — the pool's
    ``_worker_delta`` re-expressed over private (n, width) blocks."""
    if not state.ring:
        raise RemoteError("delta steps before delta init")
    W = state.window
    lo, hi = state.lo, state.hi
    width = state.width
    flags: List[bool] = []
    for t, acts in steps:
        t = int(t)
        prev = state.ring[(t - 1) % W]
        nxt = state.ring[t % W]
        nxt[:] = prev
        changed = False
        for i, times in acts:
            i = int(i)
            degree = state.degrees.get(i, 0)
            if degree:
                offset = state.offsets[i]
                gathered = np.empty((degree, width), dtype=_DTYPE)
                for idx in range(degree):
                    k = int(state.src[offset + idx])
                    gathered[idx] = state.ring[int(times[idx]) % W][k]
                row = fold_edge_tables(state.tables[offset:offset + degree],
                                       gathered)
            else:
                row = np.full(width, state.invalid, dtype=_DTYPE)
            if lo <= i < hi:
                row[i - lo] = state.trivial
            if not changed and not np.array_equal(row, prev[i]):
                changed = True
            nxt[i] = row
        flags.append(changed)
    return flags


def _shard_fetch(state: _ShardState, t: int) -> bytes:
    """Ship ring slot ``t`` as a delta against the last acked state."""
    if not state.ring:
        raise RemoteError("fetch before delta init")
    slot = state.ring[int(t) % state.window]
    blob = encode_update(state.baseline, slot, state.carrier)
    state.baseline[:] = slot
    return blob


def _dispatch(state: _ShardState, msg_type: int,
              payload: bytes) -> Tuple[int, bytes]:
    """Handle one coordinator command; returns the reply frame."""
    if msg_type == MSG_LOAD:
        meta, tail = unpack_payload(payload)
        _shard_load(state, meta, tail)
        return MSG_ACK, b""
    if msg_type == MSG_SIGMA_INIT:
        _obj, blob = unpack_payload(payload)
        _shard_sigma_init(state, blob)
        return MSG_ACK, b""
    if msg_type == MSG_SIGMA_ROUND:
        obj, _tail = unpack_payload(payload)
        changed, blob = _shard_sigma_round(state, bool(obj["full"]))
        return MSG_UPDATE, pack_payload({"changed": changed}, blob)
    if msg_type == MSG_DELTA_INIT:
        obj, blob = unpack_payload(payload)
        _shard_delta_init(state, obj, blob)
        return MSG_ACK, b""
    if msg_type == MSG_DELTA_STEPS:
        obj, _tail = unpack_payload(payload)
        flags = _shard_delta_steps(state, obj["steps"])
        return MSG_FLAGS, pack_payload({"flags": flags})
    if msg_type == MSG_FETCH:
        obj, _tail = unpack_payload(payload)
        blob = _shard_fetch(state, obj["t"])
        return MSG_UPDATE, pack_payload({"t": obj["t"]}, blob)
    if msg_type == MSG_CKPT:
        obj, _tail = unpack_payload(payload)
        ts, tail = _shard_ckpt(state, obj["t"], obj["depth"])
        return MSG_UPDATE, pack_payload({"slots": ts}, tail)
    if msg_type == MSG_PING:
        # probation re-probe: liveness only, touches no shard state
        return MSG_ACK, b""
    raise WireFormatError(f"unknown command frame type {msg_type}")


def _try_send(fc: FrameConnection, msg_type: int, payload: bytes) -> None:
    try:
        fc.send(msg_type, payload)
    except (WireError, OSError):         # peer already gone
        pass


def _serve_connection(sock, injector=None) -> None:
    """Serve one coordinator session on an accepted socket.

    Handler exceptions are relayed as :data:`MSG_ERROR` frames (the
    worker stays usable), a version-skewed peer gets one error frame
    before the connection drops, and anything malformed ends the
    session — the server loop then goes back to ``accept``.
    ``injector`` is the worker-side chaos hook (every frame in either
    direction passes through it).
    """
    fc = FrameConnection(sock, injector=injector)
    state = _ShardState()
    try:
        while True:
            try:
                msg_type, payload = fc.recv()
            except WireVersionError as exc:
                _try_send(fc, MSG_ERROR,
                          pack_payload({"message": str(exc)}))
                return
            except WireError:
                return                   # peer closed or stream is garbage
            except OSError:
                return                   # socket reset / torn down under us
            if msg_type == MSG_STOP:
                _try_send(fc, MSG_ACK, b"")
                return
            try:
                reply_type, reply_payload = _dispatch(state, msg_type,
                                                      payload)
            except (WireError, RemoteError, OSError, ValueError,
                    LookupError, TypeError, ArithmeticError) as exc:
                # expected handler failures (bad payloads, protocol
                # discipline, compute errors): relay as a typed error
                # frame instead of dying — the worker stays usable.
                _engine_log.warning(
                    "worker relaying %s to coordinator: %s",
                    type(exc).__name__, exc)
                _try_send(fc, MSG_ERROR, pack_payload(
                    {"message": f"{type(exc).__name__}: {exc}"}))
                continue
            except Exception as exc:
                # genuinely unexpected: tell the coordinator, then let
                # it propagate — a silent catch-all here masked bugs.
                _engine_log.warning(
                    "worker hit unexpected %s handling msg_type=%d: %s",
                    type(exc).__name__, msg_type, exc)
                _try_send(fc, MSG_ERROR, pack_payload(
                    {"message": f"{type(exc).__name__}: {exc}"}))
                raise
            fc.send(reply_type, reply_payload)
    finally:
        fc.close()


def serve_worker(host: str = "127.0.0.1", port: int = 0, *,
                 once: bool = False, ready_callback=None,
                 announce: bool = False, fault_plan=None) -> None:
    """Run a remote σ/δ worker: accept coordinators, one at a time.

    ``port=0`` binds an ephemeral port; ``ready_callback(host, port)``
    fires once the socket is listening (subprocess spawners use it to
    learn the port), and ``announce`` prints a parseable
    ``listening on host:port`` line for the CLI path.  ``once`` exits
    after the first coordinator session — the spawned loopback workers
    use it so a closed engine cannot leak server processes.
    ``fault_plan`` (a :class:`~repro.core.faults.FaultPlan`, dict or
    JSON string — the CLI's ``--fault-plan``) injects seeded faults
    into every frame this worker sends or receives.
    """
    plan = FaultPlan.parse(fault_plan) if fault_plan is not None else None
    srv = socket.create_server((host, port))
    bound = srv.getsockname()[1]
    if ready_callback is not None:
        ready_callback(host, bound)
    if announce:
        print(f"repro remote worker listening on {host}:{bound}", flush=True)
    try:
        while True:
            conn, _addr = srv.accept()
            injector = plan.injector("worker") if plan is not None else None
            _serve_connection(conn, injector=injector)
            if once:
                return
    finally:
        srv.close()


def _spawned_worker_main(pipe, host: str, fault_plan=None) -> None:
    """Subprocess entry point for loopback workers."""
    try:
        def ready(h, p):
            pipe.send((h, p))
            pipe.close()
        serve_worker(host, 0, once=True, ready_callback=ready,
                     fault_plan=fault_plan)
    except (OSError, WireError) as exc:  # pragma: no cover - spawn failure
        # expected startup/session failures (bind refused, peer sent
        # garbage): report failure on the pipe and exit quietly.
        _engine_log.warning("loopback worker exiting on %s: %s",
                            type(exc).__name__, exc)
        try:
            pipe.send(None)
        except (OSError, ValueError):    # parent already gone
            pass
    except Exception:                    # pragma: no cover - worker bug
        # unexpected: still unblock the parent's port wait, but let the
        # error propagate so the subprocess dies loudly (non-zero exit)
        # instead of being silently eaten.
        try:
            pipe.send(None)
        except (OSError, ValueError):
            pass
        raise


def _spawn_one_worker(ctx, host: str, timeout: float, fault_plan=None):
    """Spawn a single loopback worker; returns ``(proc, endpoint)``.

    On failure the dead subprocess is reaped here and a
    :class:`RemoteError` raised — the caller decides whether to retry.
    """
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_spawned_worker_main,
                       args=(child, host, fault_plan), daemon=True,
                       name="repro-remote-worker")
    proc.start()
    child.close()
    try:
        if not parent.poll(timeout):
            raise RemoteError(
                "loopback worker did not report its port within "
                f"{timeout}s")
        try:
            reported = parent.recv()
        except EOFError:
            raise RemoteError(
                "loopback worker died before reporting its port")
        if reported is None:
            raise RemoteError("loopback worker failed to start")
    except RemoteError:
        proc.terminate()
        _reap_workers([proc])
        raise
    finally:
        parent.close()
    return proc, (reported[0], reported[1])


def spawn_loopback_workers(count: int, host: str = "127.0.0.1",
                           timeout: float = 30.0, fault_plan=None):
    """Spawn ``count`` single-session worker subprocesses on ``host``.

    Returns ``(procs, endpoints)``.  Used by the engine's
    ``workers=k`` mode, tests and CI: real TCP, one machine.

    A worker that fails to come up (a transient bind race on the
    ephemeral port, a slow fork under load) is retried **once** with a
    fresh process before the whole build is declared failed — one flaky
    ephemeral port must not cost an engine build.
    """
    ctx = _mp_context()
    if ctx is None:
        raise UnsupportedAlgebraError(
            "remote engine cannot spawn loopback workers: no "
            "multiprocessing start method on this platform; pass "
            "explicit endpoints instead")
    procs = []
    endpoints = []
    try:
        for _ in range(count):
            try:
                proc, endpoint = _spawn_one_worker(ctx, host, timeout,
                                                   fault_plan)
            except RemoteError as exc:
                _engine_log.warning(
                    "loopback worker spawn failed (%s); retrying once "
                    "with a fresh ephemeral port", exc)
                proc, endpoint = _spawn_one_worker(ctx, host, timeout,
                                                   fault_plan)
            procs.append(proc)
            endpoints.append(endpoint)
    except Exception as exc:
        # reap every already-spawned worker deterministically before
        # re-raising — a failed spawn must not leak subprocesses.
        _engine_log.warning(
            "loopback spawn failed (%s: %s); reaping %d spawned workers",
            type(exc).__name__, exc, len(procs))
        for proc in procs:
            proc.terminate()
        _reap_workers(procs)
        raise
    return procs, endpoints


def _reap_workers(procs) -> None:
    """Join worker subprocesses, escalating terminate → kill so the
    caller always returns with every child reaped (no zombies, no
    leaked sentinels) — never a hang on a stuck worker."""
    for proc in procs:
        proc.join(timeout=2.0)
    for proc in procs:
        if proc.is_alive():              # pragma: no cover - stuck worker
            _engine_log.warning(
                "worker %s (pid=%s) ignored stop; terminating",
                proc.name, proc.pid)
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():              # pragma: no cover - unkillable
            _engine_log.warning(
                "worker %s (pid=%s) survived terminate; killing",
                proc.name, proc.pid)
            proc.kill()
            proc.join(timeout=2.0)
        try:
            proc.close()                 # release the sentinel now
        except ValueError:               # pragma: no cover - still alive
            pass


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _RemoteResources:
    """Sockets and spawned worker processes, detached from the engine
    so a ``weakref.finalize`` can release them (idempotently, also on
    interpreter shutdown)."""

    def __init__(self):
        self.conns: List[FrameConnection] = []
        self.procs: List = []

    def close(self) -> None:
        for fc in self.conns:
            try:
                fc.send(MSG_STOP)
            except (WireError, OSError):
                pass
            fc.close()
        _reap_workers(self.procs)
        self.conns = []
        self.procs = []


def _parse_endpoint(spec) -> Tuple[str, int]:
    """``"host:port"`` strings or ``(host, port)`` pairs."""
    if isinstance(spec, str):
        host, sep, port = spec.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"endpoint {spec!r} is not of the form 'host:port'")
        return host, int(port)
    host, port = spec
    return str(host), int(port)


class RemoteVectorizedEngine(VectorizedEngine):
    """Column-sharded σ/δ over TCP workers (coordinator side).

    Extends :class:`~repro.core.vectorized.VectorizedEngine`: the
    encoding, codecs, and the coordinator's local edge snapshot (used
    for δ σ-stability probes on fetched candidates) are inherited; this
    class adds the wire protocol, a full-matrix mirror kept in sync via
    delta-encoded updates, and per-run :class:`~repro.core.wire.WireStats`.

    Connect with explicit ``endpoints`` (``"host:port"`` strings or
    ``(host, port)`` pairs, one shard each) or ``workers=k`` to spawn
    ``k`` loopback subprocess workers.  Connections open lazily on the
    first σ/δ entry and close via :meth:`close` (idempotent, context
    manager, ``weakref.finalize`` backstop).
    """

    #: honest advertisement for the resolver: finite algebras only, an
    #: explicitly configured transport (no endpoints → machine-readable
    #: skip, never an implicit network dependency), a minimum problem
    #: size, and *no* topology mutation — the snapshot is shipped once;
    #: RoutingSession rebuilds the engine when the version moves.
    capabilities = register_engine(Capabilities(
        rung="remote",
        requires_finite_algebra=True,
        requires_remote_endpoints=True,
        min_n=REMOTE_MIN_N,
        min_workers=2,
        supports_topology_mutation=False,
        supports_unbounded_schedules=False,
        supports_kept_history=False,
    ))

    def __init__(self, network: Network,
                 endpoints: Optional[Sequence] = None,
                 workers: Optional[int] = None,
                 socket_timeout: Optional[float] = None,
                 strict: bool = False,
                 max_retries: int = REMOTE_MAX_RETRIES,
                 fault_plan=None):
        self._res = _RemoteResources()
        self._finalizer = weakref.finalize(self, self._res.close)
        super().__init__(network)        # raises for non-finite algebras
        if endpoints:
            self._endpoints = [_parse_endpoint(e) for e in endpoints]
            self._spawn = 0
            shards = min(len(self._endpoints), network.n)
            self._endpoints = self._endpoints[:shards]
        elif workers:
            self._spawn = min(int(workers), network.n)
            self._endpoints = []
            shards = self._spawn
        else:
            raise ValueError(
                "remote engine needs a transport: pass endpoints=[...] "
                "or workers=<count> for loopback subprocesses")
        if shards < 2:
            raise UnsupportedAlgebraError(
                f"remote engine needs >= 2 shards (resolved {shards}); "
                "use the vectorized engine instead")
        self._timeout = REMOTE_TIMEOUT if socket_timeout is None \
            else float(socket_timeout)
        self._blocks = _split_columns(network.n, shards)
        self.workers = shards
        #: supervision: ``strict=True`` surfaces every worker fault as
        #: the typed error immediately (no healing); otherwise up to
        #: ``max_retries`` recoveries per run, recorded in ``degraded``.
        self._strict = bool(strict)
        self._max_retries = 0 if strict else max(0, int(max_retries))
        self._retries_left = self._max_retries
        self._fresh_stats = False
        self._plan = FaultPlan.parse(fault_plan) \
            if fault_plan is not None else None
        #: the endpoint working set (shrinks when healing re-shards)
        self._active_endpoints = list(self._endpoints)
        self._shard_endpoints: List[Tuple[str, int]] = []
        #: probation ledger: endpoint -> {"failures": k, "next_probe": t}
        #: (monotonic deadline for the next MSG_PING re-probe)
        self._parked: dict = {}
        #: machine-readable recovery chain of the most recent run /
        #: since construction (:class:`~repro.core.capabilities.DegradedEvent`)
        self.degraded: List[DegradedEvent] = []
        self.degraded_total: List[DegradedEvent] = []
        #: wire volume of the most recent run / since construction
        self.wire_stats = WireStats()
        self.wire_totals = WireStats()
        #: IPC amortisation achieved by the most recent δ run
        self.delta_ipc_commands = 0
        self.delta_ipc_steps = 0
        self._acked = 0                  # fully collected barriers (run)
        #: δ mid-run checkpointing: cadence (windows between captures,
        #: 0 disables) and the most recent run's save/resume counters
        self.delta_ckpt_every = DELTA_CKPT_EVERY
        self.delta_ckpt_saves = 0
        self.delta_ckpt_resumes = 0
        self.delta_resumed_from = 0      # step the last resume started past
        self._delta_ckpt = None          # {"t", "unchanged", "slots"}

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop the workers and drop every connection (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "RemoteVectorizedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def refresh(self) -> None:
        """Raise on topology mutation: the shipped snapshot is final.

        ``supports_topology_mutation=False`` is advertised to the
        resolver; direct users must build a new engine, and
        :class:`~repro.session.RoutingSession` does exactly that when
        ``adjacency.version`` moves.
        """
        if self._version is not None and \
                self._version != self.network.adjacency.version:
            self.close()
            raise RemoteError(
                "remote engine does not support topology mutation: the "
                "network changed after its snapshot was shipped to the "
                "workers; build a new engine (RoutingSession rebuilds "
                "one automatically)")
        super().refresh()

    def stale_topology(self) -> bool:
        """True when the network mutated after the snapshot was taken
        (the session's cue to rebuild rather than reuse)."""
        return self._version is not None and \
            self._version != self.network.adjacency.version

    # -- wire plumbing ---------------------------------------------------

    def _bump(self, commands: int = 0, rounds: int = 0,
              update: int = 0, naive: int = 0) -> None:
        for stats in (self.wire_stats, self.wire_totals):
            stats.commands += commands
            stats.rounds += rounds
            stats.update_bytes += update
            stats.naive_bytes += naive

    def _sync_bytes(self) -> None:
        """Fold the per-connection byte counters into the stats."""
        sent = sum(fc.bytes_sent for fc in self._res.conns)
        received = sum(fc.bytes_received for fc in self._res.conns)
        delta_sent = sent - self._bytes_base[0]
        delta_received = received - self._bytes_base[1]
        self._bytes_base = (sent, received)
        for stats in (self.wire_stats, self.wire_totals):
            stats.bytes_sent += delta_sent
            stats.bytes_received += delta_received

    def _run_reset(self) -> None:
        """Arm a run: fresh retry budget, empty recovery chain, and a
        deferred wire-stats reset (the *initial* pool build stays out of
        per-run stats, exactly as before supervision; heal rebuilds land
        in them — retry traffic is real traffic).  Parked endpoints
        whose probation expired are re-probed here, so every run starts
        on the widest healthy fleet."""
        self._retries_left = self._max_retries
        self.degraded = []
        self._fresh_stats = True
        self._maybe_rejoin()

    def _attempt_pool(self) -> None:
        """(Re)establish the pool inside the supervised retry loop."""
        self._ensure_pool()
        if self._fresh_stats:
            self.wire_stats = WireStats()
            self._acked = 0
            self._fresh_stats = False

    def _ensure_pool(self, allow_partial: bool = False) -> None:
        if self.closed:
            raise RuntimeError("engine is closed; build a new one")
        if self._res.conns:
            return
        if self._spawn:
            procs, endpoints = spawn_loopback_workers(self._spawn)
            self._res.procs = procs
            allow_partial = False
        else:
            # iterate the ORIGINAL endpoint order minus the probation
            # ledger: when every parked endpoint has rejoined, the
            # shards land back on the original column layout.
            endpoints = [e for e in self._endpoints
                         if tuple(e) not in self._parked]
        conns: List[FrameConnection] = []
        reachable: List[Tuple[str, int]] = []
        for host, port in endpoints:
            try:
                sock = socket.create_connection((host, port),
                                                timeout=self._timeout)
            except OSError as exc:
                if allow_partial:
                    self._park((host, port), len(conns),
                               f"{type(exc).__name__}: {exc}")
                    continue
                self.close()
                raise RemoteError(
                    f"cannot connect to remote worker {host}:{port}: "
                    f"{exc}") from exc
            sock.settimeout(self._timeout)
            injector = self._plan.injector("coordinator", len(conns)) \
                if self._plan is not None else None
            conns.append(FrameConnection(sock, injector=injector))
            reachable.append((host, port))
        if not conns:
            self.close()
            raise RemoteError(
                "no remote workers reachable after loss: every endpoint "
                f"in {endpoints or list(self._parked)} refused the "
                "reconnect or is parked on probation")
        self._res.conns = conns
        self._shard_endpoints = reachable
        if not self._spawn:
            self._active_endpoints = reachable
        self._blocks = _split_columns(self._n, len(conns))
        self.workers = len(conns)
        self._bytes_base = (0, 0)
        tables_blob = np.ascontiguousarray(
            self._tables, dtype="<i4").tobytes()
        base = dict(
            n=self._n, trivial=self.trivial_code, invalid=self.invalid_code,
            carrier=self.encoding.size,
            tables_shape=list(self._tables.shape),
            src=self._src.tolist(),
            importers=self._importers.tolist(),
            starts=self._starts.tolist(),
            offsets=self._offsets,
            degrees=self._degrees,
        )
        for idx, (lo, hi) in enumerate(self._blocks):
            self._send(idx, MSG_LOAD,
                       pack_payload(dict(base, block=[lo, hi]), tables_blob))
        self._collect_acks()

    def _send(self, idx: int, msg_type: int, payload: bytes = b"") -> None:
        fc = self._res.conns[idx]
        try:
            fc.send(msg_type, payload)
        except (WireClosedError, OSError) as exc:
            raise _ShardFault(idx, exc) from exc
        self._bump(commands=1)
        self._sync_bytes()

    def _recv(self, idx: int) -> Tuple[int, bytes]:
        fc = self._res.conns[idx]
        try:
            msg_type, payload = fc.recv()
        except WireVersionError:
            # version skew is never a transient fault: healing would
            # reconnect to the same skewed peer forever
            self.close()
            raise
        except WireFormatError as exc:
            raise _ShardFault(idx, exc, kind="format") from exc
        except (WireClosedError, OSError) as exc:
            raise _ShardFault(idx, exc) from exc
        self._sync_bytes()
        if msg_type == MSG_ERROR:
            try:
                obj, _ = unpack_payload(payload)
                message = obj.get("message", "unknown worker error")
            except WireError:
                message = "undecodable worker error"
            raise _ShardFault(idx, RemoteError(message),
                              kind="worker-error", message=message)
        return msg_type, payload

    def _expect(self, idx: int, expected: int):
        msg_type, payload = self._recv(idx)
        if msg_type != expected:
            exc = WireFormatError(
                f"remote worker {idx} replied frame type {msg_type}, "
                f"expected {expected}")
            raise _ShardFault(idx, exc, kind="protocol")
        try:
            return unpack_payload(payload) if payload else ({}, b"")
        except WireError as exc:
            raise _ShardFault(idx, exc, kind="format") from exc

    def _barrier(self) -> None:
        """One fully collected broadcast/collect cycle: bump the round
        counters and tell the fault injectors (rules key on rounds)."""
        self._bump(rounds=1)
        self._acked += 1
        if self._plan is not None:
            for fc in self._res.conns:
                if fc.injector is not None:
                    fc.injector.round = self._acked

    def _collect_acks(self) -> None:
        for idx in range(len(self._res.conns)):
            self._expect(idx, MSG_ACK)
        self._barrier()

    # -- supervision -----------------------------------------------------

    def _degraded_event(self, code: str, shard: Optional[int],
                        detail: str, heal_ms: float) -> None:
        event = DegradedEvent(code=code, shard=shard, detail=detail,
                              heal_ms=heal_ms)
        self.degraded.append(event)
        self.degraded_total.append(event)
        _engine_log.warning("remote degraded [%s] shard=%s: %s "
                            "(healed in %.1fms)", code, shard, detail,
                            heal_ms)

    def _heal(self, fault: _ShardFault) -> None:
        """Recover from a shard fault or surface the typed error.

        Strict engines and exhausted retry budgets raise exactly what
        the pre-supervision engine raised.  Otherwise: tear the pool
        down, back off (exponential + jitter), rebuild — respawning
        loopback workers or re-sharding onto surviving endpoints — and
        return so the caller resumes from its last barrier-consistent
        state.  Faults *during* the rebuild consume further retries, so
        a permanently sick fleet still terminates in bounded time.
        """
        while True:
            if self._strict or self._retries_left <= 0:
                self._raise_terminal(fault)
            self._retries_left -= 1
            attempt = self._max_retries - self._retries_left
            _engine_log.warning(
                "remote shard %s %s; recovery attempt %d/%d",
                fault.idx, fault.describe(), attempt, self._max_retries)
            self._res.close()            # sever all conns, reap dead procs
            delay = min(RETRY_BACKOFF_BASE * (2 ** (attempt - 1)),
                        RETRY_BACKOFF_CAP)
            time.sleep(delay * (0.5 + random.random() * 0.5))
            t0 = perf_counter()
            try:
                self._rebuild_pool(fault, t0)
                return
            except _ShardFault as again:
                fault = again
            except RemoteError:
                # the fleet is gone (respawn failed / nothing reachable):
                # surface the ORIGINAL fault — it names the root cause
                self._raise_terminal(fault)

    # -- endpoint probation / rejoin -------------------------------------

    def _park(self, endpoint: Tuple[str, int], idx: Optional[int],
              why: str) -> None:
        """Put a dead endpoint on probation (exponential re-probe
        backoff).  The ``endpoint-probation`` event fires on the FIRST
        park only; repeat failures just push the probe deadline out."""
        endpoint = tuple(endpoint)
        info = self._parked.get(endpoint)
        first = info is None
        failures = 1 if first else info["failures"] + 1
        delay = min(PROBATION_BASE * (2 ** (failures - 1)), PROBATION_CAP)
        self._parked[endpoint] = {
            "failures": failures,
            "next_probe": time.monotonic() + delay,
        }
        if first:
            self._degraded_event(
                "endpoint-probation", idx,
                f"endpoint {endpoint[0]}:{endpoint[1]} parked on "
                f"probation after {why}; next probe in {delay:.2f}s",
                heal_ms=0.0)
        else:
            _engine_log.info(
                "endpoint %s:%s probe failed (%d failure(s)); next "
                "probe in %.2fs", endpoint[0], endpoint[1], failures,
                delay)

    def _probe_endpoint(self, endpoint: Tuple[str, int]) -> bool:
        """One lightweight hello on a fresh socket: connect, MSG_PING,
        expect MSG_ACK, polite MSG_STOP.  Never raises."""
        host, port = endpoint
        try:
            sock = socket.create_connection(
                (host, port), timeout=min(self._timeout, 5.0))
        except OSError:
            return False
        fc = FrameConnection(sock)
        try:
            fc.send(MSG_PING, b"")
            msg_type, _payload = fc.recv()
            if msg_type != MSG_ACK:
                return False
            try:
                fc.send(MSG_STOP, b"")
                fc.recv()
            except (WireError, OSError):
                pass                     # the ping already proved liveness
            return True
        except (WireError, OSError):
            return False
        finally:
            fc.close()

    def _maybe_rejoin(self) -> None:
        """Probe parked endpoints whose probation expired; re-admit the
        live ones and force a re-shard so they get columns back."""
        if self._spawn or not self._parked:
            return
        now = time.monotonic()
        due = [ep for ep, info in self._parked.items()
               if info["next_probe"] <= now]
        rejoined = False
        for endpoint in due:
            if self._probe_endpoint(endpoint):
                del self._parked[endpoint]
                rejoined = True
                self._degraded_event(
                    "endpoint-rejoined", None,
                    f"endpoint {endpoint[0]}:{endpoint[1]} answered its "
                    "probation probe; re-admitted (columns re-shard "
                    "towards the original layout on the next pool build)",
                    heal_ms=0.0)
            else:
                self._park(endpoint, None, "a failed probation probe")
        if rejoined:
            self._active_endpoints = [
                e for e in self._endpoints if tuple(e) not in self._parked]
            if self._res.conns:
                # drop the live pool: the next _ensure_pool re-shards
                # over the re-admitted endpoint set
                self._res.close()

    def _rebuild_pool(self, fault: _ShardFault, t0: float) -> None:
        if self._spawn:
            self._ensure_pool()
            self._degraded_event(
                "worker-respawned", fault.idx,
                f"loopback worker pool respawned after {fault.describe()}; "
                "resumed from the last acked round",
                heal_ms=(perf_counter() - t0) * 1000)
            return
        self._maybe_rejoin()
        before = len(self._active_endpoints)
        self._ensure_pool(allow_partial=True)
        after = len(self._active_endpoints)
        if after < before:
            self._degraded_event(
                "reshard-after-loss", fault.idx,
                f"{before - after} endpoint(s) unreachable after "
                f"{fault.describe()}; {self._n} columns re-sharded onto "
                f"{after} surviving worker(s)",
                heal_ms=(perf_counter() - t0) * 1000)
        else:
            self._degraded_event(
                "worker-reconnected", fault.idx,
                f"endpoint reconnected after {fault.describe()}; "
                "resumed from the last acked round",
                heal_ms=(perf_counter() - t0) * 1000)

    def _raise_terminal(self, fault: _ShardFault) -> None:
        """Surface a fault as the pre-supervision typed error."""
        idx, exc = fault.idx, fault.exc
        endpoint = self._shard_endpoints[idx] \
            if idx is not None and idx < len(self._shard_endpoints) else None
        acked = self._acked
        self.close()
        if fault.kind in ("format", "protocol"):
            # corrupt streams and protocol-discipline violations keep
            # their typed wire errors
            raise exc
        where = endpoint and f"{endpoint[0]}:{endpoint[1]}"
        if fault.kind == "worker-error":
            raise RemoteWorkerError(
                f"remote worker {idx} ({where}) failed: {fault.message}; "
                f"last fully acked protocol round: {acked}",
                shard_id=idx, endpoint=endpoint, last_acked_round=acked)
        if isinstance(exc, TimeoutError):
            detail = (f"did not reply within {self._timeout}s "
                      "(socket timeout)")
        else:
            detail = f"connection failed: {exc}"
        raise RemoteWorkerError(
            f"remote worker {idx} ({where}) "
            f"{detail}; last fully acked protocol round: {acked}",
            shard_id=idx, endpoint=endpoint,
            last_acked_round=acked) from exc

    # -- σ ---------------------------------------------------------------

    def _load_state(self, M: "np.ndarray") -> None:
        """Install ``M`` on the shards, delta-encoded vs. all-invalid."""
        n = self._n
        for idx, (lo, hi) in enumerate(self._blocks):
            base = np.full((n, hi - lo), self.invalid_code, dtype=_DTYPE)
            blob = encode_update(base, M[:, lo:hi], self.encoding.size)
            self._bump(update=len(blob),
                       naive=naive_update_bytes(n, hi - lo))
            self._send(idx, MSG_SIGMA_INIT, pack_payload({}, blob))
        self._collect_acks()

    def _round(self, M: "np.ndarray", full: bool) -> int:
        """One σ round across the shards; applies the delta-encoded
        summaries to the mirror and returns the changed-column count."""
        head = pack_payload({"full": bool(full)})
        for idx in range(len(self._blocks)):
            self._send(idx, MSG_SIGMA_ROUND, head)
        total = 0
        for idx, (lo, hi) in enumerate(self._blocks):
            obj, blob = self._expect(idx, MSG_UPDATE)
            try:
                decode_update(blob, M[:, lo:hi])
                total += int(obj["changed"])
            except (WireError, LookupError, TypeError, ValueError) as exc:
                # a corrupt reply may half-apply before detection; the
                # supervisor restores the mirror from its barrier
                # snapshot, so flagging the shard is enough here
                raise _ShardFault(idx, exc, kind="format") from exc
            self._bump(update=len(blob),
                       naive=naive_update_bytes(self._n, hi - lo))
        self._barrier()
        return total

    def sigma(self, state: RoutingState) -> RoutingState:
        """One full σ round, computed by the workers (lockstep oracle)."""
        self.refresh()
        self._run_reset()
        M0 = self.encode_state(state)
        while True:
            try:
                self._attempt_pool()
                M = M0.copy()
                self._load_state(M)
                self._round(M, full=True)
                return self.decode_state(M)
            except _ShardFault as fault:
                self._heal(fault)

    def is_stable(self, state: RoutingState) -> bool:
        """Definition 4 over the wire: a full round, no changed column."""
        self.refresh()
        self._run_reset()
        M0 = self.encode_state(state)
        while True:
            try:
                self._attempt_pool()
                M = M0.copy()
                self._load_state(M)
                return self._round(M, full=True) == 0
            except _ShardFault as fault:
                self._heal(fault)

    def iterate(self, start: RoutingState, max_rounds: int = 10_000,
                keep_trajectory: bool = False,
                detect_cycles: bool = False) -> SyncResult:
        """σ fixed-point iteration with the standard ladder contract:
        first round full, later rounds dirty-only, empty union of
        changed columns is convergence — trajectories, round counts and
        fixed points are bit-identical to every other engine.

        Supervised: a shard fault mid-run rolls the mirror back to the
        last barrier-consistent round, heals the pool (respawn /
        reconnect / re-shard) and resumes from that round — sound
        because σ is column-independent and the mirror `M` holds exactly
        the fault-free round-k state at every barrier.  The resumed
        round runs full (worker dirty sets died with the pool), which
        recomputes clean columns to the same values — bit-identical.
        """
        self.refresh()
        self._run_reset()
        M = self.encode_state(start)
        snap = M.copy()                  # last barrier-consistent state
        trajectory: Optional[List[RoutingState]] = \
            [start] if keep_trajectory else None
        seen = {M.tobytes(): 0} if detect_cycles else None
        k = 0
        fresh = True
        full = True
        while k < max_rounds:
            try:
                self._attempt_pool()
                if fresh:
                    self._load_state(M)
                    snap[:] = M
                    fresh = False
                    full = True
                changed = self._round(M, full=full)
                full = False
                snap[:] = M
            except _ShardFault as fault:
                self._heal(fault)
                M[:] = snap
                fresh = True
                continue
            if keep_trajectory:
                trajectory.append(self.decode_state(M))
            if changed == 0:
                return SyncResult(True, k, self.decode_state(M), trajectory)
            if detect_cycles:
                key = M.tobytes()
                if key in seen:
                    return SyncResult(False, k + 1, self.decode_state(M),
                                      trajectory)
                seen[key] = k + 1
            k += 1
        return SyncResult(False, max_rounds, self.decode_state(M), trajectory)

    # -- δ ---------------------------------------------------------------

    def _fetch(self, M: "np.ndarray", t: int) -> None:
        """Pull ring slot ``t`` into the mirror (delta vs. last fetch)."""
        head = pack_payload({"t": int(t)})
        for idx in range(len(self._blocks)):
            self._send(idx, MSG_FETCH, head)
        for idx, (lo, hi) in enumerate(self._blocks):
            _obj, blob = self._expect(idx, MSG_UPDATE)
            try:
                decode_update(blob, M[:, lo:hi])
            except (WireError, LookupError, TypeError, ValueError) as exc:
                raise _ShardFault(idx, exc, kind="format") from exc
            self._bump(update=len(blob),
                       naive=naive_update_bytes(self._n, hi - lo))
        self._barrier()

    def _capture_delta_ckpt(self, M: "np.ndarray", t_bar: int,
                            read_window: int, unchanged: int) -> None:
        """Pull a δ checkpoint at the window barrier ending at ``t_bar``.

        Each worker ships the ring tail a resumed run could still read
        (``depth`` slots up to ``t_bar``), chained delta blobs starting
        from its acked baseline; the coordinator stores the decoded
        slots as full matrices (re-shardable) and only commits the new
        checkpoint once EVERY shard delivered — a fault mid-capture
        leaves the previous checkpoint intact.  Worker baselines advance
        to slot ``t_bar``, and the mirror follows.
        """
        depth = min(read_window, t_bar + 1)
        head = pack_payload({"t": int(t_bar), "depth": int(depth)})
        for idx in range(len(self._blocks)):
            self._send(idx, MSG_CKPT, head)
        n = self._n
        slot_ts: Optional[List[int]] = None
        shard_slots: List[List["np.ndarray"]] = []
        for idx, (lo, hi) in enumerate(self._blocks):
            obj, tail = self._expect(idx, MSG_UPDATE)
            try:
                ts = [int(t) for t in obj["slots"]]
                blobs = _split_chained_blobs(tail, len(ts))
                prev = M[:, lo:hi].copy()
                decoded = []
                for blob in blobs:
                    decode_update(blob, prev)
                    decoded.append(prev.copy())
            except (WireError, LookupError, TypeError, ValueError) as exc:
                raise _ShardFault(idx, exc, kind="format") from exc
            if slot_ts is None:
                slot_ts = ts
            elif ts != slot_ts:
                raise _ShardFault(
                    idx, WireFormatError(
                        f"checkpoint slots diverge across shards: "
                        f"{ts} vs {slot_ts}"), kind="protocol")
            shard_slots.append(decoded)
            self._bump(update=len(tail),
                       naive=naive_update_bytes(n, hi - lo) * len(ts))
        slots = []
        for j, t in enumerate(slot_ts):
            full = np.empty((n, n), dtype=_DTYPE)
            for idx, (lo, hi) in enumerate(self._blocks):
                full[:, lo:hi] = shard_slots[idx][j]
            slots.append((t, full))
        # the workers' baselines moved to slot t_bar; mirror them
        M[:] = slots[-1][1]
        self._delta_ckpt = {"t": int(t_bar), "unchanged": int(unchanged),
                            "slots": slots}
        self.delta_ckpt_saves += 1
        self._barrier()

    def delta(self, schedule: Schedule, start: RoutingState,
              max_steps: int = 2_000,
              stability_window: Optional[int] = None,
              window: Optional[int] = None) -> AsyncResult:
        """δ over the wire, windowed exactly like the shared-memory pool.

        The coordinator computes the same windowed activation commands
        (and the same staleness guard) as
        :meth:`ParallelVectorizedEngine.delta`; workers execute them on
        local rings and reply per-step changed flags.  Candidate states
        are *fetched* (delta-encoded against the previous fetch) and
        σ-probed on the coordinator's local snapshot, so convergence
        steps, final states and ``history_retained`` match the serial
        engines bit for bit.

        Supervised: a shard fault mid-run heals the pool and replays the
        δ protocol on the rebuilt shards — the worker history rings died
        with the pool, and schedules are pure deterministic functions,
        so the replay reproduces the fault-free run bit for bit (steps,
        convergence point, final state).  Every ``delta_ckpt_every``
        windows the coordinator captures a **checkpoint** (the ring tail
        each worker would need to continue, delta-encoded, via
        :data:`~repro.core.wire.MSG_CKPT`), so the replay restarts from
        the last checkpoint barrier instead of step 1: heal-time replay
        is O(window), not O(steps into the run).
        """
        max_read_back = schedule.max_read_back()
        if max_read_back is None:
            raise UnsupportedAlgebraError(
                "remote δ needs a bounded-staleness schedule "
                "(max_read_back() returned None); use "
                "delta_run(..., engine='vectorized') or strict=True")
        if stability_window is None:
            stability_window = (max_read_back or 1) + 2
        read_window = max_read_back + 2  # the BoundedHistory window
        w = DELTA_WINDOW if window is None else max(1, int(window))
        self.refresh()
        self._run_reset()
        self._delta_ckpt = None
        self.delta_ckpt_saves = 0
        self.delta_ckpt_resumes = 0
        self.delta_resumed_from = 0
        while True:
            try:
                self._attempt_pool()
                return self._delta_once(schedule, start, max_steps,
                                        stability_window, w, read_window)
            except _ShardFault as fault:
                self._heal(fault)

    def _delta_once(self, schedule: Schedule, start: RoutingState,
                    max_steps: int, stability_window: int, w: int,
                    read_window: int) -> AsyncResult:
        W = w + read_window
        n = self._n
        ckpt = self._delta_ckpt
        if ckpt is None:
            # fresh start: ship the start state at ring slot 0
            M = self.encode_state(start)
            for idx, (lo, hi) in enumerate(self._blocks):
                base = np.full((n, hi - lo), self.invalid_code,
                               dtype=_DTYPE)
                blob = encode_update(base, M[:, lo:hi],
                                     self.encoding.size)
                self._bump(update=len(blob),
                           naive=naive_update_bytes(n, hi - lo))
                self._send(idx, MSG_DELTA_INIT,
                           pack_payload({"window": W}, blob))
            unchanged = 0
            t0 = 1
        else:
            # checkpoint resume: re-install the captured ring tail on
            # the (possibly re-sharded) pool and continue past ckpt["t"]
            # — the slots are full (n, n) matrices, so any new column
            # layout just re-encodes its own blocks.
            slot_ts = [t for t, _full in ckpt["slots"]]
            for idx, (lo, hi) in enumerate(self._blocks):
                prev = np.full((n, hi - lo), self.invalid_code,
                               dtype=_DTYPE)
                parts = []
                for _t, full in ckpt["slots"]:
                    blob = encode_update(prev, full[:, lo:hi],
                                         self.encoding.size)
                    parts.append(struct.pack("!I", len(blob)) + blob)
                    prev = full[:, lo:hi]
                tail = b"".join(parts)
                self._bump(update=len(tail),
                           naive=naive_update_bytes(n, hi - lo)
                           * len(slot_ts))
                self._send(idx, MSG_DELTA_INIT,
                           pack_payload({"window": W, "slots": slot_ts},
                                        tail))
            M = ckpt["slots"][-1][1].copy()
            unchanged = int(ckpt["unchanged"])
            t0 = int(ckpt["t"]) + 1
            self.delta_ckpt_resumes += 1
            self.delta_resumed_from = int(ckpt["t"])
            _engine_log.info(
                "δ resume from checkpoint: t=%d (%d ring slot(s) "
                "re-installed; replay skipped %d step(s))",
                ckpt["t"], len(slot_ts), ckpt["t"])
        self._collect_acks()
        beta, alpha = schedule.beta, schedule.alpha
        in_neighbours = {
            i: [int(self._src[self._offsets[i] + d])
                for d in range(self._degrees[i])]
            for i in self._degrees}
        self.delta_ipc_commands = 0
        self.delta_ipc_steps = 0
        windows_done = 0
        while t0 <= max_steps:
            w_eff = min(w, max_steps - t0 + 1)
            steps = []
            stale_error: Optional[LookupError] = None
            for t in range(t0, t0 + w_eff):
                acts = []
                for i in sorted(alpha(t)):
                    times = []
                    for k in in_neighbours.get(i, ()):
                        s = beta(t, i, k)
                        # identical guard to the pool: s < 0 violates S2,
                        # s < t - read_window is a read BoundedHistory
                        # would refuse as evicted
                        if s < 0 or s >= t or t - s > read_window:
                            stale_error = LookupError(
                                f"δ history for time {s} is outside the "
                                f"worker ring (window={read_window}, t={t}); "
                                "the schedule reads further back than its "
                                "declared max_read_back — run "
                                "delta_run(..., strict=True) to keep the "
                                "full history")
                            break
                        times.append(int(s))
                    if stale_error is not None:
                        break
                    acts.append((int(i), times))
                if stale_error is not None:
                    # truncate at the offending step: the per-step
                    # protocol may converge before ever evaluating it
                    break
                steps.append((t, acts))
            if steps:
                head = pack_payload({"steps": steps})
                for idx in range(len(self._blocks)):
                    self._send(idx, MSG_DELTA_STEPS, head)
                self.delta_ipc_commands += 1
                self.delta_ipc_steps += len(steps)
                flags = []
                for idx in range(len(self._blocks)):
                    obj, _tail = self._expect(idx, MSG_FLAGS)
                    flags.append(obj["flags"])
                self._bump(rounds=1)
                self._acked += 1
                for off in range(len(steps)):
                    t = t0 + off
                    unchanged = 0 if any(f[off] for f in flags) \
                        else unchanged + 1
                    if unchanged >= stability_window:
                        self._fetch(M, t)
                        if np.array_equal(self._sigma_codes(M), M):
                            return AsyncResult(
                                True, t, self.decode_state(M),
                                t - unchanged, None,
                                history_retained=min(t + 1, read_window))
                windows_done += 1
                if stale_error is None and self.delta_ckpt_every > 0 \
                        and self._retries_left > 0 \
                        and windows_done % self.delta_ckpt_every == 0:
                    self._capture_delta_ckpt(M, t0 + len(steps) - 1,
                                             read_window, unchanged)
            if stale_error is not None:
                raise stale_error
            t0 += len(steps)
        self._fetch(M, max_steps)
        return AsyncResult(False, max_steps, self.decode_state(M), None,
                           None,
                           history_retained=min(max_steps + 1, read_window))


# ----------------------------------------------------------------------
# Drivers (SyncResult / AsyncResult compatible)
# ----------------------------------------------------------------------


def iterate_sigma_remote(network: Network, start: RoutingState,
                         max_rounds: int = 10_000,
                         keep_trajectory: bool = False,
                         detect_cycles: bool = False,
                         engine: Optional[RemoteVectorizedEngine] = None,
                         workers: Optional[int] = None,
                         endpoints: Optional[Sequence] = None,
                         socket_timeout: Optional[float] = None) -> SyncResult:
    """Remote drop-in for :func:`repro.core.synchronous.iterate_sigma`.

    Pass ``engine`` to reuse live worker connections across calls;
    without one, loopback workers (``workers``, default 2) or the given
    ``endpoints`` serve this call and are torn down in a ``finally``.
    """
    eng = engine if engine is not None \
        else RemoteVectorizedEngine(network, endpoints=endpoints,
                                    workers=workers or (0 if endpoints
                                                        else 2),
                                    socket_timeout=socket_timeout)
    try:
        return eng.iterate(start, max_rounds=max_rounds,
                           keep_trajectory=keep_trajectory,
                           detect_cycles=detect_cycles)
    finally:
        if engine is None:
            eng.close()


def delta_run_remote(network: Network, schedule: Schedule,
                     start: RoutingState, max_steps: int = 2_000,
                     stability_window: Optional[int] = None,
                     keep_history: bool = False,
                     engine: Optional[RemoteVectorizedEngine] = None,
                     workers: Optional[int] = None,
                     endpoints: Optional[Sequence] = None,
                     socket_timeout: Optional[float] = None,
                     window: Optional[int] = None) -> AsyncResult:
    """Remote drop-in for :func:`repro.core.asynchronous.delta_run`.

    ``keep_history`` and unbounded schedules delegate to the serial
    vectorized engine (full decoded histories cannot live in the
    workers' fixed rings) — a caller-supplied ``engine`` is reused even
    then, since a :class:`RemoteVectorizedEngine` *is* a
    :class:`~repro.core.vectorized.VectorizedEngine`.
    """
    if keep_history or schedule.max_read_back() is None:
        _engine_log.info(
            "engine-skip rung=remote code=%s op=delta requested=remote "
            "algebra=%s n=%d detail=per-run delegation to the serial "
            "vectorized engine (snapshot reused for encoding)",
            "keep-history" if keep_history else "unbounded-schedule",
            network.algebra.name, network.n)
        from .vectorized import delta_run_vectorized
        return delta_run_vectorized(network, schedule, start,
                                    max_steps=max_steps,
                                    stability_window=stability_window,
                                    keep_history=keep_history,
                                    engine=engine)
    eng = engine if engine is not None \
        else RemoteVectorizedEngine(network, endpoints=endpoints,
                                    workers=workers or (0 if endpoints
                                                        else 2),
                                    socket_timeout=socket_timeout)
    try:
        return eng.delta(schedule, start, max_steps=max_steps,
                         stability_window=stability_window, window=window)
    finally:
        if engine is None:
            eng.close()
