"""Framed, versioned, delta-encoded wire format for the remote rung.

The remote engine (:mod:`repro.core.remote`) shards destination columns
across TCP workers.  Everything that crosses the socket goes through
this module, which defines

* a **frame layout** — an 11-byte header ``!4sHBI`` carrying a magic
  marker, the protocol version, a message type, and the payload length,
  so a malformed peer (bad magic, torn frame, absurd length) or a
  version-skewed peer fails loudly with a typed error instead of a
  silent desync;
* a **column-update codec** — per-round state summaries are
  *delta-encoded* (a changed-column bitmask plus per-column diffs
  against the receiver's last acknowledged state) and *quantized*
  (values travel in the narrowest unsigned carrier that can hold the
  algebra's finite encoding, extending the batched engine's
  narrow-dtype trick to the wire); and
* **byte accounting** — :class:`WireStats` tracks bytes, commands, and
  protocol rounds, plus the naive-equivalent byte count (full-block
  ``int32`` transfer) so the compression ratio is measurable and
  regression-gated in the benchmark harness.

The codec is lossless: "quantized" here means dtype narrowing of exact
integer codes, never value truncation, so remote results stay
bit-identical to the single-process engines.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WIRE_VERSION",
    "MAGIC",
    "WireError",
    "WireFormatError",
    "WireVersionError",
    "WireClosedError",
    "MSG_LOAD",
    "MSG_SIGMA_INIT",
    "MSG_SIGMA_ROUND",
    "MSG_DELTA_INIT",
    "MSG_DELTA_STEPS",
    "MSG_FETCH",
    "MSG_STOP",
    "MSG_PING",
    "MSG_CKPT",
    "MSG_ACK",
    "MSG_UPDATE",
    "MSG_FLAGS",
    "MSG_ERROR",
    "encode_frame",
    "decode_frame_bytes",
    "FrameConnection",
    "pack_payload",
    "unpack_payload",
    "carrier_dtype",
    "encode_update",
    "decode_update",
    "naive_update_bytes",
    "WireStats",
]

#: Protocol version.  Bump on any incompatible change to the frame
#: layout, message vocabulary, or update-blob encoding; peers with a
#: different version are rejected with :class:`WireVersionError`.
WIRE_VERSION = 1

#: Frame magic.  Anything else at a frame boundary is a malformed peer.
MAGIC = b"RSDW"

#: ``magic (4s) | version (H) | msg type (B) | payload length (I)``
_HEADER = struct.Struct("!4sHBI")

#: Sanity bound on a single payload (1 GiB).  A length above this at a
#: frame boundary means the stream is garbage, not a big message.
MAX_PAYLOAD = 1 << 30

# Coordinator -> worker commands.
MSG_LOAD = 1          # topology snapshot (tables, sources, column block)
MSG_SIGMA_INIT = 2    # install a starting state (delta vs. all-invalid)
MSG_SIGMA_ROUND = 3   # run one synchronous round over the dirty columns
MSG_DELTA_INIT = 4    # install a delta ring (window size + start state)
MSG_DELTA_STEPS = 5   # execute a window of activation steps
MSG_FETCH = 6         # ship the block at ring slot t (delta vs. acked)
MSG_STOP = 7          # end of session
MSG_PING = 8          # liveness probe (probation re-admission hello)
MSG_CKPT = 9          # capture a delta checkpoint (ring tail vs baseline)

# Worker -> coordinator replies.
MSG_ACK = 16          # command done, nothing to report
MSG_UPDATE = 17       # delta-encoded column update (+ JSON summary)
MSG_FLAGS = 18        # per-step changed flags for a delta window
MSG_ERROR = 19        # worker-side failure, relayed as text


class WireError(RuntimeError):
    """Base class for wire-protocol failures."""


class WireFormatError(WireError):
    """Malformed peer: bad magic, truncated frame, or absurd length."""


class WireVersionError(WireError):
    """Version-skewed peer: frame header carries a different version."""


class WireClosedError(WireError):
    """Peer closed the connection (possibly mid-frame)."""


# ---------------------------------------------------------------------------
# Framing


def encode_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """Serialise one frame: header followed by the raw payload."""
    return _HEADER.pack(MAGIC, WIRE_VERSION, msg_type, len(payload)) + payload


def _parse_header(header: bytes) -> tuple[int, int]:
    """Validate an 11-byte header; return ``(msg_type, payload_len)``."""
    magic, version, msg_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}); "
            "peer is not speaking the repro wire protocol")
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"peer speaks wire version {version}, this side speaks "
            f"{WIRE_VERSION}; refusing to continue")
    if length > MAX_PAYLOAD:
        raise WireFormatError(
            f"frame declares a {length}-byte payload (> {MAX_PAYLOAD}); "
            "stream is corrupt")
    return msg_type, length


def decode_frame_bytes(data: bytes) -> tuple[int, bytes, bytes]:
    """Decode one frame from a byte string.

    Returns ``(msg_type, payload, remainder)``.  Raises
    :class:`WireFormatError` on a torn (truncated) frame and
    :class:`WireVersionError` on version skew.
    """
    if len(data) < _HEADER.size:
        raise WireFormatError(
            f"torn frame: {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    msg_type, length = _parse_header(data[:_HEADER.size])
    end = _HEADER.size + length
    if len(data) < end:
        raise WireFormatError(
            f"torn frame: header declares {length} payload bytes but only "
            f"{len(data) - _HEADER.size} are present")
    return msg_type, data[_HEADER.size:end], data[end:]


def _recv_exact(sock, size: int) -> bytes:
    """Read exactly ``size`` bytes or raise :class:`WireClosedError`."""
    chunks = []
    got = 0
    while got < size:
        chunk = sock.recv(size - got)
        if not chunk:
            if got:
                raise WireClosedError(
                    f"peer closed mid-frame after {got}/{size} bytes "
                    "(torn frame)")
            raise WireClosedError("peer closed the connection")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class FrameConnection:
    """A framed, counted view of one TCP socket.

    Owns byte counters (``bytes_sent`` / ``bytes_received``) so the
    coordinator can report wire volume per run without instrumenting
    call sites.

    ``injector`` (a :class:`repro.core.faults.FaultInjector`) is the
    chaos hook: every frame passes through it at the boundary, in both
    directions, so seeded fault plans can drop, delay, corrupt,
    truncate or sever exactly one deterministic frame.  ``None`` (the
    default) is a zero-overhead straight-through path.
    """

    def __init__(self, sock, injector=None):
        self.sock = sock
        self.injector = injector
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, msg_type: int, payload: bytes = b"") -> None:
        frame = encode_frame(msg_type, payload)
        if self.injector is not None:
            frame, close_after = self.injector.send_frame(msg_type, frame)
            if frame is not None:
                self.sock.sendall(frame)
                self.bytes_sent += len(frame)
            if close_after:
                self.close()
                raise WireClosedError(
                    "fault injection severed the connection at a send "
                    "boundary")
            return
        self.sock.sendall(frame)
        self.bytes_sent += len(frame)

    def recv(self) -> tuple[int, bytes]:
        while True:
            header = _recv_exact(self.sock, _HEADER.size)
            msg_type, length = _parse_header(header)
            payload = _recv_exact(self.sock, length) if length else b""
            self.bytes_received += _HEADER.size + length
            if self.injector is None:
                return msg_type, payload
            verdict, payload = self.injector.recv_frame(msg_type, payload)
            if verdict == "pass":
                return msg_type, payload
            if verdict == "close":
                self.close()
                raise WireClosedError(
                    "fault injection severed the connection at a recv "
                    "boundary")
            # "drop": discard this frame, wait for the next one

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Payload helpers: JSON head + raw binary tail


def pack_payload(obj, tail: bytes = b"") -> bytes:
    """``json-length (uint32) | json | tail`` — control head + bulk tail."""
    head = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return struct.pack("!I", len(head)) + head + tail


def unpack_payload(payload: bytes):
    """Inverse of :func:`pack_payload`: returns ``(obj, tail)``."""
    if len(payload) < 4:
        raise WireFormatError("payload shorter than its JSON length prefix")
    (hlen,) = struct.unpack_from("!I", payload)
    if len(payload) < 4 + hlen:
        raise WireFormatError("payload truncated inside its JSON head")
    try:
        obj = json.loads(payload[4:4 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"undecodable JSON head: {exc}") from None
    return obj, payload[4 + hlen:]


# ---------------------------------------------------------------------------
# Delta-encoded, quantized column updates

#: ``rows (I) | cols (I) | value-dtype code (B)``
_UPDATE_HEADER = struct.Struct("!IIB")

#: Per-column mode byte.
_MODE_SPARSE = 0
_MODE_DENSE = 1

_VALUE_DTYPES = (np.dtype("<u1"), np.dtype("<u2"), np.dtype("<i4"))


def carrier_dtype(carrier_size: int) -> np.dtype:
    """Narrowest unsigned dtype that can hold codes ``0..carrier_size-1``.

    This is the wire-level analogue of the batched engine's narrow-dtype
    trick: hop-count-16 codes travel as one byte, not four.
    """
    if carrier_size <= 1 << 8:
        return _VALUE_DTYPES[0]
    if carrier_size <= 1 << 16:
        return _VALUE_DTYPES[1]
    return _VALUE_DTYPES[2]


def _dtype_code(dtype: np.dtype) -> int:
    for code, d in enumerate(_VALUE_DTYPES):
        if d == dtype:
            return code
    raise ValueError(f"unsupported wire value dtype {dtype}")


def encode_update(prev: np.ndarray, cur: np.ndarray,
                  carrier_size: int) -> bytes:
    """Delta-encode ``cur`` against ``prev`` for one column block.

    Layout: update header, changed-column bitmask
    (``ceil(cols/8)`` bytes), then for each changed column in ascending
    order a mode byte followed by either the full column (dense) or a
    changed-row bitmask plus the changed values (sparse), values in the
    narrowest carrier dtype.  The per-column mode is chosen by exact
    byte cost, so the encoding is never larger than dense-narrow.
    """
    prev = np.asarray(prev)
    cur = np.asarray(cur)
    if prev.shape != cur.shape or prev.ndim != 2:
        raise ValueError(
            f"update blocks must be matching 2-D arrays, got "
            f"{prev.shape} vs {cur.shape}")
    rows, cols = cur.shape
    vdtype = carrier_dtype(carrier_size)
    diff = prev != cur
    col_changed = diff.any(axis=0)
    parts = [
        _UPDATE_HEADER.pack(rows, cols, _dtype_code(vdtype)),
        np.packbits(col_changed).tobytes(),
    ]
    row_mask_bytes = (rows + 7) // 8
    dense_cost = rows * vdtype.itemsize
    for c in np.nonzero(col_changed)[0]:
        mask = diff[:, c]
        k = int(mask.sum())
        if row_mask_bytes + k * vdtype.itemsize < dense_cost:
            parts.append(bytes((_MODE_SPARSE,)))
            parts.append(np.packbits(mask).tobytes())
            parts.append(np.ascontiguousarray(
                cur[mask, c], dtype=vdtype).tobytes())
        else:
            parts.append(bytes((_MODE_DENSE,)))
            parts.append(np.ascontiguousarray(
                cur[:, c], dtype=vdtype).tobytes())
    return b"".join(parts)


def decode_update(blob: bytes, out: np.ndarray) -> int:
    """Apply a delta-encoded update to ``out`` in place.

    ``out`` must hold the state the update was encoded against (the
    last acknowledged block).  Returns the number of changed columns.
    Raises :class:`WireFormatError` if the blob is truncated or its
    shape disagrees with ``out``.
    """
    if len(blob) < _UPDATE_HEADER.size:
        raise WireFormatError("update blob shorter than its header")
    rows, cols, dcode = _UPDATE_HEADER.unpack_from(blob)
    if dcode >= len(_VALUE_DTYPES):
        raise WireFormatError(f"unknown update value-dtype code {dcode}")
    vdtype = _VALUE_DTYPES[dcode]
    if out.shape != (rows, cols):
        raise WireFormatError(
            f"update is for a {rows}x{cols} block but the receiver holds "
            f"{out.shape[0]}x{out.shape[1]}")
    pos = _UPDATE_HEADER.size
    col_mask_bytes = (cols + 7) // 8
    row_mask_bytes = (rows + 7) // 8
    if len(blob) < pos + col_mask_bytes:
        raise WireFormatError("update blob truncated in its column bitmask")
    col_changed = np.unpackbits(
        np.frombuffer(blob, dtype=np.uint8, count=col_mask_bytes,
                      offset=pos))[:cols].astype(bool)
    pos += col_mask_bytes
    changed_cols = np.nonzero(col_changed)[0]
    for c in changed_cols:
        if len(blob) < pos + 1:
            raise WireFormatError("update blob truncated at a column mode")
        mode = blob[pos]
        pos += 1
        if mode == _MODE_DENSE:
            end = pos + rows * vdtype.itemsize
            if len(blob) < end:
                raise WireFormatError(
                    "update blob truncated inside a dense column")
            out[:, c] = np.frombuffer(blob, dtype=vdtype, count=rows,
                                      offset=pos)
            pos = end
        elif mode == _MODE_SPARSE:
            if len(blob) < pos + row_mask_bytes:
                raise WireFormatError(
                    "update blob truncated in a row bitmask")
            mask = np.unpackbits(
                np.frombuffer(blob, dtype=np.uint8, count=row_mask_bytes,
                              offset=pos))[:rows].astype(bool)
            pos += row_mask_bytes
            k = int(mask.sum())
            end = pos + k * vdtype.itemsize
            if len(blob) < end:
                raise WireFormatError(
                    "update blob truncated inside a sparse column")
            out[mask, c] = np.frombuffer(blob, dtype=vdtype, count=k,
                                         offset=pos)
            pos = end
        else:
            raise WireFormatError(f"unknown column mode byte {mode}")
    if pos != len(blob):
        raise WireFormatError(
            f"{len(blob) - pos} trailing bytes after the last column")
    return int(changed_cols.size)


def naive_update_bytes(rows: int, cols: int) -> int:
    """Bytes a naive protocol would ship: the full block as ``int32``."""
    return rows * cols * 4


# ---------------------------------------------------------------------------
# Byte accounting


@dataclass
class WireStats:
    """Wire-volume counters for one remote run (or an accumulation).

    ``rounds`` counts protocol barriers (σ rounds, δ windows, fetches —
    every broadcast/collect cycle).  ``update_bytes`` is the
    delta-encoded size of state-update payloads in either direction;
    ``naive_bytes`` is what the same updates would cost as full-block
    ``int32`` transfers, so ``compression_ratio`` measures the codec.
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    commands: int = 0
    rounds: int = 0
    update_bytes: int = 0
    naive_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    @property
    def bytes_per_round(self) -> float:
        return self.total_bytes / self.rounds if self.rounds else 0.0

    @property
    def commands_per_round(self) -> float:
        return self.commands / self.rounds if self.rounds else 0.0

    @property
    def compression_ratio(self) -> float:
        """How much smaller the delta encoding is than naive transfer."""
        return self.naive_bytes / self.update_bytes if self.update_bytes \
            else 0.0

    def copy(self) -> "WireStats":
        return WireStats(self.bytes_sent, self.bytes_received, self.commands,
                         self.rounds, self.update_bytes, self.naive_bytes)

    def __sub__(self, other: "WireStats") -> "WireStats":
        return WireStats(
            self.bytes_sent - other.bytes_sent,
            self.bytes_received - other.bytes_received,
            self.commands - other.commands,
            self.rounds - other.rounds,
            self.update_bytes - other.update_bytes,
            self.naive_bytes - other.naive_bytes,
        )

    def add(self, other: "WireStats") -> None:
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.commands += other.commands
        self.rounds += other.rounds
        self.update_bytes += other.update_bytes
        self.naive_bytes += other.naive_bytes

    def as_dict(self) -> dict:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "total_bytes": self.total_bytes,
            "commands": self.commands,
            "rounds": self.rounds,
            "bytes_per_round": round(self.bytes_per_round, 2),
            "commands_per_round": round(self.commands_per_round, 3),
            "update_bytes": self.update_bytes,
            "naive_bytes": self.naive_bytes,
            "compression_ratio": round(self.compression_ratio, 2),
        }
