"""Üresin–Dubois schedules: the model of asynchronicity (Section 3.1).

A schedule is a pair of functions over discrete time ``𝕋 = {1, 2, ...}``:

* ``α(t) ⊆ V`` — the *activation* function: the set of nodes that
  recompute their routing table at time ``t``;
* ``β(t, i, j) < t`` — the *data-flow* function: the time at which the
  information node ``i`` uses from node ``j`` at time ``t`` was sent.

subject to three axioms:

* **S1** every node activates infinitely often,
* **S2** information only travels forward in time (``β(t,i,j) < t``),
* **S3** stale information is eventually replaced (for every ``t``
  there is a ``t'`` after which ``β`` never returns ``t`` again).

Nothing forbids β from modelling *delayed, lost, reordered or
duplicated* messages: a value sent at time ``s`` that is never the β of
any later read was lost; reads out of order are reordering; the same
``s`` read at two different times is duplication.

Schedules here are deterministic objects (random ones derive all their
choices from a seed via counter-based hashing) so that δ runs are
reproducible and β can be re-queried at will.

:class:`CompiledSchedule` is the bridge between this object model and
the array engines (:mod:`repro.core.vectorized`,
:mod:`repro.core.parallel`): it precompiles any schedule over a finite
horizon into per-step activation bitmask rows and per-active-node β
read-time arrays, with an equivalence contract to the object form
(``alpha``/``beta`` answer identically) and a *derived*
``max_read_back`` for schedules that declare none.
"""

from __future__ import annotations

import hashlib
import itertools
from abc import ABC, abstractmethod
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

try:
    import numpy as _np
except ImportError:                      # pragma: no cover - numpy is baked in
    _np = None


def _hash_int(*parts) -> int:
    """Deterministic 64-bit hash of a tuple of ints/strings.

    Used as a counter-based PRNG: every (seed, t, i, j, tag) combination
    yields an independent, reproducible pseudo-random value.  This makes
    β a genuine *function* — querying it twice gives the same answer —
    which the δ recursion relies on.
    """
    data = ":".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


#: splitmix64 constants (Steele/Lea/Flood): the lane expander below is
#: the standard finalizer over a blake2b-derived row base.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def _splitmix_one(x: int) -> int:
    """One splitmix64 finalization of a 64-bit lane (pure-python path)."""
    z = x & _MASK64
    z = ((z ^ (z >> 30)) * _SM_MUL1) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_MUL2) & _MASK64
    return z ^ (z >> 31)


#: cached splitmix lane offsets ``arange(1, n+1) * γ`` per row width,
#: and pre-built uint64 scalar constants (numpy scalar construction is
#: surprisingly expensive in a per-step hot path).
_SM_LANES: Dict[int, "object"] = {}
if _np is not None:
    _U30, _U27, _U31 = _np.uint64(30), _np.uint64(27), _np.uint64(31)
    _UM1, _UM2 = _np.uint64(_SM_MUL1), _np.uint64(_SM_MUL2)


def _splitmix_row(base: int, count: int):
    """``count`` independent 64-bit draws from one row ``base``.

    The row-based form of counter hashing: one blake2b digest keys the
    row (collision-resistant across (seed, tag, t, i) counters), and a
    splitmix64 finalizer expands it into per-lane draws — numpy-
    vectorizable, so a whole row of schedule decisions costs one hash
    plus a handful of uint64 array ops instead of ``count`` digests.
    Returns a uint64 ndarray (or a python list when numpy is absent;
    both paths produce identical values).
    """
    if _np is not None:
        lanes = _SM_LANES.get(count)
        if lanes is None:
            lanes = _np.arange(1, count + 1,
                               dtype=_np.uint64) * _np.uint64(_SM_GAMMA)
            _SM_LANES[count] = lanes
        z = _np.uint64(base & _MASK64) + lanes
        z = (z ^ (z >> _U30)) * _UM1
        z = (z ^ (z >> _U27)) * _UM2
        return z ^ (z >> _U31)
    return [_splitmix_one(base + k * _SM_GAMMA)   # pragma: no cover
            for k in range(1, count + 1)]


class _PerStepMemo:
    """Sliding memo of per-step schedule draws, keyed by absolute time.

    Counter-based-hash schedules (:class:`RandomSchedule`) recompute an
    independent blake2b digest for every ``(t, i, j)`` query, but the δ
    recursion queries the *same* step many times over — the literal
    paper recursion asks β once per ``(t, i, k, j)`` (an ``n``-fold
    redundancy per read) and every engine re-asks ``alpha(t)`` at least
    once.  The memo keeps the draws of the last ``keep`` distinct steps
    (the recursion only ever looks at the current step, but interleaved
    validation/compilation may revisit a small neighbourhood) and
    evicts FIFO beyond that, so memory stays O(keep · n) however long
    the run is.
    """

    __slots__ = ("keep", "_rows", "_order")

    def __init__(self, keep: int = 8):
        self.keep = keep
        self._rows: Dict[int, dict] = {}
        self._order: deque = deque()

    def row(self, t: int) -> dict:
        row = self._rows.get(t)
        if row is None:
            row = {}
            self._rows[t] = row
            self._order.append(t)
            if len(self._order) > self.keep:
                self._rows.pop(self._order.popleft(), None)
        return row


class Schedule(ABC):
    """Abstract (α, β) schedule over ``n`` nodes."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("schedule needs n >= 1 nodes")
        self.n = n

    @abstractmethod
    def alpha(self, t: int) -> FrozenSet[int]:
        """The set of nodes that activate at time ``t`` (t >= 1)."""

    @abstractmethod
    def beta(self, t: int, i: int, j: int) -> int:
        """The send time of the data node ``i`` reads from ``j`` at ``t``.

        Must satisfy ``0 <= beta(t, i, j) < t`` (S2; time 0 is the
        initial state).
        """

    def beta_row(self, t: int, i: int) -> List[int]:
        """All of node ``i``'s read times at ``t``: ``[β(t,i,j) for j]``.

        The bulk form the schedule compiler and the array engines
        consume.  Uniform-β schedules (:meth:`beta_uniform`) answer
        with one constant fill — a single point of truth, so the fast
        paths that consult ``beta_uniform`` directly can never drift
        from the row form; everything else queries :meth:`beta` per
        source.
        """
        uniform = self.beta_uniform(t)
        if uniform is not None:
            return [uniform] * self.n
        beta = self.beta
        return [beta(t, i, j) for j in range(self.n)]

    def beta_uniform(self, t: int) -> Optional[int]:
        """The common read time at ``t`` when β is independent of
        ``(i, j)``, else ``None``.

        A structural fast path: the synchronous, round-robin,
        fixed-delay and adversarial-stale schedules all read every
        source at one uniform time per step, so a batched δ step can
        fill whole read-time blocks with one constant instead of
        querying β per (node, edge).  ``None`` (the base answer) simply
        means "no shortcut — ask β".
        """
        return None

    def max_read_back(self) -> Optional[int]:
        """Upper bound on ``t - β(t, i, j)``, or ``None`` if unknown.

        Bounded-staleness schedules declare how far back β can reach;
        ``delta_run`` sizes its ring-buffer history (and its default
        convergence window) from this.  The base implementation probes
        the conventional ``max_delay`` / ``delay`` attributes so that
        externally defined schedules keep working; subclasses with a
        known bound should override.
        """
        bound = getattr(self, "max_delay", None)
        if bound:
            return bound
        return getattr(self, "delay", None)

    # ------------------------------------------------------------------
    # Axiom validation over a finite window.
    # ------------------------------------------------------------------

    def validate(self, horizon: int) -> List[str]:
        """Check S1–S3 over ``t ∈ [1, horizon]``; return violation messages.

        S1 and S3 are liveness properties, so over a finite window they
        are checked in a bounded form: S1 requires every node to
        activate at least once in every window of length ``horizon``
        (callers pass a horizon much larger than the schedule's
        activation period); S3 requires that data sent at time ``t`` is
        no longer read by the end of the window once ``t`` has fallen
        ``horizon/2`` steps behind.
        """
        problems: List[str] = []
        activated: Set[int] = set()
        last_reads = {}
        for t in range(1, horizon + 1):
            act = self.alpha(t)
            if not act.issubset(range(self.n)):
                problems.append(f"alpha({t}) = {sorted(act)} not a subset of V")
            activated.update(act)
            for i in act:
                for j in range(self.n):
                    b = self.beta(t, i, j)
                    if not (0 <= b < t):
                        problems.append(f"S2 violated: beta({t},{i},{j}) = {b}")
                    last_reads[(i, j)] = max(last_reads.get((i, j), 0), t - b)
        missing = set(range(self.n)) - activated
        if missing:
            problems.append(f"S1 (bounded): nodes {sorted(missing)} never "
                            f"activate within horizon {horizon}")
        stale = {k: v for k, v in last_reads.items() if v > horizon // 2}
        if stale:
            problems.append(f"S3 (bounded): reads older than horizon/2 seen "
                            f"for pairs {sorted(stale)}")
        return problems

    def is_admissible(self, horizon: int = 200) -> bool:
        """True when no S1–S3 violation is found over the window."""
        return not self.validate(horizon)


class SynchronousSchedule(Schedule):
    """The degenerate schedule that recovers σ from δ.

    ``α(t) = V`` and ``β(t, i, j) = t - 1``: every node activates every
    step using everyone's previous-step data (Section 3.1, last
    paragraph).
    """

    def alpha(self, t: int) -> FrozenSet[int]:
        return frozenset(range(self.n))

    def beta(self, t: int, i: int, j: int) -> int:
        return t - 1

    def beta_uniform(self, t: int) -> Optional[int]:
        return t - 1

    def max_read_back(self) -> Optional[int]:
        return 1

    def __repr__(self) -> str:
        return f"SynchronousSchedule(n={self.n})"


class RoundRobinSchedule(Schedule):
    """One node activates per step, cyclically, reading latest data.

    The classic "Gauss–Seidel" schedule: node ``(t-1) mod n`` activates
    at ``t`` with β = t - 1.
    """

    def alpha(self, t: int) -> FrozenSet[int]:
        return frozenset({(t - 1) % self.n})

    def beta(self, t: int, i: int, j: int) -> int:
        return t - 1

    def beta_uniform(self, t: int) -> Optional[int]:
        return t - 1

    def max_read_back(self) -> Optional[int]:
        return 1

    def __repr__(self) -> str:
        return f"RoundRobinSchedule(n={self.n})"


class FixedDelaySchedule(Schedule):
    """Every node activates every step but reads data ``delay`` steps old.

    Models a network with uniform propagation delay.
    """

    def __init__(self, n: int, delay: int = 3):
        super().__init__(n)
        if delay < 1:
            raise ValueError("delay must be >= 1")
        self.delay = delay

    def alpha(self, t: int) -> FrozenSet[int]:
        return frozenset(range(self.n))

    def beta(self, t: int, i: int, j: int) -> int:
        return max(0, t - self.delay)

    def beta_uniform(self, t: int) -> Optional[int]:
        return max(0, t - self.delay)

    def __repr__(self) -> str:
        return f"FixedDelaySchedule(n={self.n}, delay={self.delay})"


class RandomSchedule(Schedule):
    """Seeded pseudo-random schedule with delays, reordering and duplication.

    * Each node activates at each step with probability
      ``activation_prob`` — but is *forced* to activate at least once
      every ``max_silence`` steps, guaranteeing S1.
    * ``β(t, i, j)`` is drawn uniformly from the window
      ``[t - max_delay, t - 1]`` (clamped at 0), guaranteeing S2 and,
      because the window is bounded, S3.

    Because β is sampled independently per (t, i, j), consecutive reads
    can go *backwards in send-time* (reordering) and the same send-time
    can be read repeatedly (duplication).  Data generated at times that
    are never sampled was, from the reader's perspective, lost.

    Draws are *row-hashed and memoized*: one blake2b digest keys each
    per-``t`` activation row / per-``(t, i)`` delay row, a splitmix64
    finalizer expands it into independent per-lane draws
    (:func:`_splitmix_row`, numpy-vectorized), and the rows of the
    last few distinct ``t`` values are cached (:class:`_PerStepMemo`)
    — so a whole row of schedule decisions costs one hash plus array
    ops, and the strict δ recursion's ``n``-fold redundant β queries
    hit the memo.  The schedule stays a deterministic pure function of
    its seed — but note the row-hash rework (PR 4) changed *which*
    schedule each seed denotes relative to the earlier per-(t, i, j)
    blake2b draws: experiments pinned to old seeds sample a different
    (equally admissible) schedule, and `BENCH_core.json` was
    regenerated accordingly.  :data:`SCHEDULE_SEED_VERSION` records
    that semantic break so recorded experiments can name which mapping
    their seeds assume.
    """

    #: version of the seed → schedule mapping.  1 = the original
    #: per-(t, i, j) blake2b draws; 2 = the PR 4 row-hashed draws (one
    #: blake2b per (t, i) row expanded by a splitmix64 finalizer) — the
    #: same seed denotes a *different* (equally admissible) schedule
    #: under the two versions.  Surfaced in
    #: :class:`~repro.session.DeltaReport` /
    #: :class:`~repro.session.GridReport` metadata so recorded
    #: experiments are reproducible across library versions.
    SCHEDULE_SEED_VERSION = 2

    def __init__(self, n: int, seed: int = 0, activation_prob: float = 0.5,
                 max_delay: int = 5, max_silence: int = 10):
        super().__init__(n)
        if not (0.0 < activation_prob <= 1.0):
            raise ValueError("activation_prob must be in (0, 1]")
        if max_delay < 1 or max_silence < 1:
            raise ValueError("max_delay and max_silence must be >= 1")
        self.seed = seed
        self.activation_prob = activation_prob
        self.max_delay = max_delay
        self.max_silence = max_silence
        self._alpha_memo = _PerStepMemo()
        self._beta_memo = _PerStepMemo()

    def alpha(self, t: int) -> FrozenSet[int]:
        memo = self._alpha_memo.row(t)
        cached = memo.get("alpha")
        if cached is not None:
            return cached
        draws = _splitmix_row(_hash_int(self.seed, "act", t), self.n)
        threshold = int(self.activation_prob * (2 ** 64))
        forced = t % self.max_silence     # keeps S1 true at tiny probabilities
        if _np is not None:
            if threshold > _MASK64:       # activation_prob == 1.0
                mask = _np.ones(self.n, dtype=bool)
            else:
                mask = draws < _np.uint64(threshold)
            mask |= (_np.arange(self.n) % self.max_silence) == forced
            result = frozenset(_np.nonzero(mask)[0].tolist())
        else:                            # pragma: no cover - numpy baked in
            result = frozenset(
                i for i in range(self.n)
                if draws[i] < threshold or i % self.max_silence == forced)
        memo["alpha"] = result
        return result

    def _delay_row(self, t: int, i: int):
        """Node ``i``'s per-source delay draws at ``t`` (cached per t)."""
        memo = self._beta_memo.row(t)
        row = memo.get(i)
        if row is None:
            draws = _splitmix_row(_hash_int(self.seed, "delay", t, i), self.n)
            if _np is not None:
                row = 1 + (draws % _np.uint64(self.max_delay)).astype(
                    _np.int64)
            else:                        # pragma: no cover - numpy baked in
                row = [1 + d % self.max_delay for d in draws]
            memo[i] = row
        return row

    def beta(self, t: int, i: int, j: int) -> int:
        return max(0, t - int(self._delay_row(t, i)[j]))

    def beta_row(self, t: int, i: int) -> List[int]:
        row = self._delay_row(t, i)
        if _np is not None:
            return _np.maximum(0, t - row).tolist()
        return [max(0, t - d) for d in row]  # pragma: no cover

    def beta_row_array(self, t: int, i: int):
        """``beta_row`` as an int64 ndarray, no list round-trip (the
        compiled hot path; values identical to :meth:`beta_row`)."""
        return _np.maximum(0, t - self._delay_row(t, i))

    def __repr__(self) -> str:
        return (f"RandomSchedule(n={self.n}, seed={self.seed}, "
                f"p={self.activation_prob}, max_delay={self.max_delay})")


class AdversarialStaleSchedule(Schedule):
    """A schedule engineered to keep information as stale as S3 allows.

    Nodes activate in staggered bursts; reads always reach back the full
    ``max_delay`` window.  Stress-tests absolute convergence claims: any
    dependence on freshness beyond S1–S3 shows up here first.
    """

    def __init__(self, n: int, max_delay: int = 8, burst: int = 3):
        super().__init__(n)
        self.max_delay = max_delay
        self.burst = burst

    def alpha(self, t: int) -> FrozenSet[int]:
        phase = (t // self.burst) % self.n
        return frozenset({phase})

    def beta(self, t: int, i: int, j: int) -> int:
        return max(0, t - self.max_delay)

    def beta_uniform(self, t: int) -> Optional[int]:
        return max(0, t - self.max_delay)

    def __repr__(self) -> str:
        return (f"AdversarialStaleSchedule(n={self.n}, "
                f"max_delay={self.max_delay}, burst={self.burst})")


class CompiledSchedule(Schedule):
    """A dense, precompiled form of any schedule over a finite horizon.

    The object model answers ``alpha``/``beta`` one query at a time,
    which is exactly what throttles the array engines: a batched δ step
    wants node ``i``'s activation bit and its whole β read-time row as
    arrays, for many trials at once.  ``CompiledSchedule`` materialises,
    per step ``t ∈ [1, horizon]``:

    * the activation set **and** an ``(n,)`` bitmask row
      (:meth:`alpha_mask` — stacked over steps this is the ``(T, n)``
      activation bitmask of the schedule);
    * for every *active* node, its β read-time row as an ``(n,)`` int
      array (:meth:`beta_times`) — the per-edge read-back arrays a δ
      activation gathers from.

    Equivalence contract (held by
    ``tests/core/test_compiled_schedule.py``): for every ``t`` in the
    horizon, ``alpha(t)`` and ``beta(t, i, j)`` answer exactly as the
    source schedule does (β of inactive nodes delegates to the source —
    the recursion never reads those), queries past the horizon delegate
    wholesale, and admissibility is preserved verbatim.

    ``max_read_back`` returns the source's declared bound when it has
    one; when the source declares none (β may reach arbitrarily far
    back *in general*), the compiled form **derives** the bound
    actually attained by the active reads inside the horizon — finite
    by construction — which is what lets ring-buffer engines run
    schedules the object form could only serve with a full history.

    Compilation is lazy, in blocks of ``block`` steps with a small
    sliding cache, so a run that converges after 60 steps never pays
    for a 2000-step horizon, and memory stays
    O(blocks_kept · block · |α| · n) however long the horizon is.
    """

    #: compiled blocks kept alive; the recursion walks t forward, so a
    #: handful covers current-step reads plus validation revisits.
    _KEEP_BLOCKS = 4

    def __init__(self, source: Schedule, horizon: int, block: int = 32):
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if block < 1:
            raise ValueError("block must be >= 1")
        super().__init__(source.n)
        self.source = source
        self.horizon = horizon
        self.block = block
        self._blocks = _PerStepMemo(keep=self._KEEP_BLOCKS)
        self._derived: Optional[int] = None

    @classmethod
    def ensure(cls, schedule: Schedule, horizon: int) -> "CompiledSchedule":
        """Wrap ``schedule`` unless it is already compiled far enough."""
        if isinstance(schedule, cls) and schedule.horizon >= horizon:
            return schedule
        source = schedule.source if isinstance(schedule, cls) else schedule
        return cls(source, horizon)

    # ------------------------------------------------------------------
    # Block compilation
    # ------------------------------------------------------------------

    def _step(self, t: int) -> tuple:
        """``(act set, mask row, full-row dict)``.

        α is compiled eagerly per step (it decides which rows exist at
        all); β rows are compiled **lazily per node** — an eager compile
        would pay O(|α| · n) hash work per step, most of which the δ
        recursion (which gathers only in-neighbour entries) never
        reads.
        """
        blk = self._blocks.row(t // self.block)
        step = blk.get(t)
        if step is None:
            src = self.source
            act = frozenset(src.alpha(t))
            if _np is not None:
                mask = _np.zeros(self.n, dtype=bool)
                if act:
                    mask[list(act)] = True
            else:                        # pragma: no cover - numpy baked in
                mask = [i in act for i in range(self.n)]
            step = (act, mask, {})
            blk[t] = step
        return step

    def _row(self, t: int, i: int):
        """Node ``i``'s full compiled read-time row at ``t`` (cached)."""
        rows = self._step(t)[2]
        row = rows.get(i)
        if row is None:
            array_form = getattr(self.source, "beta_row_array", None)
            if _np is not None and array_form is not None:
                row = array_form(t, i)
            else:
                row = self.source.beta_row(t, i)
                if _np is not None:
                    row = _np.asarray(row, dtype=_np.int64)
            rows[i] = row
        return row

    # ------------------------------------------------------------------
    # Schedule protocol (the equivalence contract)
    # ------------------------------------------------------------------

    def alpha(self, t: int) -> FrozenSet[int]:
        if not (1 <= t <= self.horizon):
            return self.source.alpha(t)
        return self._step(t)[0]

    def beta(self, t: int, i: int, j: int) -> int:
        if not (1 <= t <= self.horizon):
            return self.source.beta(t, i, j)
        return int(self._row(t, i)[j])

    def beta_row(self, t: int, i: int) -> List[int]:
        if not (1 <= t <= self.horizon):
            return self.source.beta_row(t, i)
        return [int(b) for b in self._row(t, i)]

    def beta_uniform(self, t: int) -> Optional[int]:
        return self.source.beta_uniform(t)

    # ------------------------------------------------------------------
    # Array forms (what the batched/parallel engines consume)
    # ------------------------------------------------------------------

    def alpha_mask(self, t: int):
        """``(n,)`` bool activation row for ``t`` (within the horizon)."""
        return self._step(t)[1]

    def beta_times(self, t: int, i: int):
        """Node ``i``'s ``(n,)`` int64 read-time row at ``t``."""
        if _np is None:                  # pragma: no cover - numpy baked in
            return self.source.beta_row(t, i)
        return self._row(t, i)

    def beta_times_for(self, t: int, i: int, sources):
        """Read times for the given source index array only.

        The δ hot path: an activation gathers exclusively from its
        in-neighbours.  Uniform-β schedules answer with one constant
        fill; everything else slices the cached full row — the slice
        is *not* cached because ``sources`` is a property of the
        caller's edge layout, not of the schedule (one compiled
        instance may serve engines over different networks, or the
        same network across topology mutations).
        """
        uniform = self.source.beta_uniform(t)
        if uniform is not None:
            return _np.full(len(sources), uniform, dtype=_np.int64)
        return self._row(t, i)[sources]

    # ------------------------------------------------------------------
    # Derived staleness bound
    # ------------------------------------------------------------------

    def max_read_back(self) -> Optional[int]:
        declared = self.source.max_read_back()
        if declared is not None:
            return declared
        return self.derived_max_read_back()

    def derived_max_read_back(self) -> int:
        """The staleness bound the *active reads* attain in the horizon.

        One full pass over the source (no rows are retained — only the
        running maximum), cached; O(horizon · |α| · n) β evaluations,
        paid once and only for schedules that declare no bound.
        """
        if self._derived is None:
            src = self.source
            worst = 1
            for t in range(1, self.horizon + 1):
                for i in src.alpha(t):
                    row = src.beta_row(t, i)
                    if row:
                        worst = max(worst, t - min(row))
            self._derived = worst
        return self._derived

    def __repr__(self) -> str:
        return (f"CompiledSchedule({self.source!r}, horizon={self.horizon}, "
                f"block={self.block})")


def schedule_zoo(n: int, seeds: Sequence[int] = (0, 1, 2)) -> List[Schedule]:
    """A representative collection of admissible schedules for experiments.

    Used by the absolute-convergence benches: the theorems quantify over
    *all* schedules, so experiments sample widely across qualitatively
    different ones.
    """
    zoo: List[Schedule] = [
        SynchronousSchedule(n),
        RoundRobinSchedule(n),
        FixedDelaySchedule(n, delay=2),
        FixedDelaySchedule(n, delay=5),
        AdversarialStaleSchedule(n, max_delay=6, burst=2),
    ]
    for s in seeds:
        zoo.append(RandomSchedule(n, seed=s, activation_prob=0.4, max_delay=4))
        zoo.append(RandomSchedule(n, seed=1000 + s, activation_prob=0.8,
                                  max_delay=7))
    return zoo
