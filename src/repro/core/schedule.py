"""Üresin–Dubois schedules: the model of asynchronicity (Section 3.1).

A schedule is a pair of functions over discrete time ``𝕋 = {1, 2, ...}``:

* ``α(t) ⊆ V`` — the *activation* function: the set of nodes that
  recompute their routing table at time ``t``;
* ``β(t, i, j) < t`` — the *data-flow* function: the time at which the
  information node ``i`` uses from node ``j`` at time ``t`` was sent.

subject to three axioms:

* **S1** every node activates infinitely often,
* **S2** information only travels forward in time (``β(t,i,j) < t``),
* **S3** stale information is eventually replaced (for every ``t``
  there is a ``t'`` after which ``β`` never returns ``t`` again).

Nothing forbids β from modelling *delayed, lost, reordered or
duplicated* messages: a value sent at time ``s`` that is never the β of
any later read was lost; reads out of order are reordering; the same
``s`` read at two different times is duplication.

Schedules here are deterministic objects (random ones derive all their
choices from a seed via counter-based hashing) so that δ runs are
reproducible and β can be re-queried at will.
"""

from __future__ import annotations

import hashlib
import itertools
from abc import ABC, abstractmethod
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple


def _hash_int(*parts) -> int:
    """Deterministic 64-bit hash of a tuple of ints/strings.

    Used as a counter-based PRNG: every (seed, t, i, j, tag) combination
    yields an independent, reproducible pseudo-random value.  This makes
    β a genuine *function* — querying it twice gives the same answer —
    which the δ recursion relies on.
    """
    data = ":".join(str(p) for p in parts).encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class Schedule(ABC):
    """Abstract (α, β) schedule over ``n`` nodes."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("schedule needs n >= 1 nodes")
        self.n = n

    @abstractmethod
    def alpha(self, t: int) -> FrozenSet[int]:
        """The set of nodes that activate at time ``t`` (t >= 1)."""

    @abstractmethod
    def beta(self, t: int, i: int, j: int) -> int:
        """The send time of the data node ``i`` reads from ``j`` at ``t``.

        Must satisfy ``0 <= beta(t, i, j) < t`` (S2; time 0 is the
        initial state).
        """

    def max_read_back(self) -> Optional[int]:
        """Upper bound on ``t - β(t, i, j)``, or ``None`` if unknown.

        Bounded-staleness schedules declare how far back β can reach;
        ``delta_run`` sizes its ring-buffer history (and its default
        convergence window) from this.  The base implementation probes
        the conventional ``max_delay`` / ``delay`` attributes so that
        externally defined schedules keep working; subclasses with a
        known bound should override.
        """
        bound = getattr(self, "max_delay", None)
        if bound:
            return bound
        return getattr(self, "delay", None)

    # ------------------------------------------------------------------
    # Axiom validation over a finite window.
    # ------------------------------------------------------------------

    def validate(self, horizon: int) -> List[str]:
        """Check S1–S3 over ``t ∈ [1, horizon]``; return violation messages.

        S1 and S3 are liveness properties, so over a finite window they
        are checked in a bounded form: S1 requires every node to
        activate at least once in every window of length ``horizon``
        (callers pass a horizon much larger than the schedule's
        activation period); S3 requires that data sent at time ``t`` is
        no longer read by the end of the window once ``t`` has fallen
        ``horizon/2`` steps behind.
        """
        problems: List[str] = []
        activated: Set[int] = set()
        last_reads = {}
        for t in range(1, horizon + 1):
            act = self.alpha(t)
            if not act.issubset(range(self.n)):
                problems.append(f"alpha({t}) = {sorted(act)} not a subset of V")
            activated.update(act)
            for i in act:
                for j in range(self.n):
                    b = self.beta(t, i, j)
                    if not (0 <= b < t):
                        problems.append(f"S2 violated: beta({t},{i},{j}) = {b}")
                    last_reads[(i, j)] = max(last_reads.get((i, j), 0), t - b)
        missing = set(range(self.n)) - activated
        if missing:
            problems.append(f"S1 (bounded): nodes {sorted(missing)} never "
                            f"activate within horizon {horizon}")
        stale = {k: v for k, v in last_reads.items() if v > horizon // 2}
        if stale:
            problems.append(f"S3 (bounded): reads older than horizon/2 seen "
                            f"for pairs {sorted(stale)}")
        return problems

    def is_admissible(self, horizon: int = 200) -> bool:
        """True when no S1–S3 violation is found over the window."""
        return not self.validate(horizon)


class SynchronousSchedule(Schedule):
    """The degenerate schedule that recovers σ from δ.

    ``α(t) = V`` and ``β(t, i, j) = t - 1``: every node activates every
    step using everyone's previous-step data (Section 3.1, last
    paragraph).
    """

    def alpha(self, t: int) -> FrozenSet[int]:
        return frozenset(range(self.n))

    def beta(self, t: int, i: int, j: int) -> int:
        return t - 1

    def max_read_back(self) -> Optional[int]:
        return 1

    def __repr__(self) -> str:
        return f"SynchronousSchedule(n={self.n})"


class RoundRobinSchedule(Schedule):
    """One node activates per step, cyclically, reading latest data.

    The classic "Gauss–Seidel" schedule: node ``(t-1) mod n`` activates
    at ``t`` with β = t - 1.
    """

    def alpha(self, t: int) -> FrozenSet[int]:
        return frozenset({(t - 1) % self.n})

    def beta(self, t: int, i: int, j: int) -> int:
        return t - 1

    def max_read_back(self) -> Optional[int]:
        return 1

    def __repr__(self) -> str:
        return f"RoundRobinSchedule(n={self.n})"


class FixedDelaySchedule(Schedule):
    """Every node activates every step but reads data ``delay`` steps old.

    Models a network with uniform propagation delay.
    """

    def __init__(self, n: int, delay: int = 3):
        super().__init__(n)
        if delay < 1:
            raise ValueError("delay must be >= 1")
        self.delay = delay

    def alpha(self, t: int) -> FrozenSet[int]:
        return frozenset(range(self.n))

    def beta(self, t: int, i: int, j: int) -> int:
        return max(0, t - self.delay)

    def __repr__(self) -> str:
        return f"FixedDelaySchedule(n={self.n}, delay={self.delay})"


class RandomSchedule(Schedule):
    """Seeded pseudo-random schedule with delays, reordering and duplication.

    * Each node activates at each step with probability
      ``activation_prob`` — but is *forced* to activate at least once
      every ``max_silence`` steps, guaranteeing S1.
    * ``β(t, i, j)`` is drawn uniformly from the window
      ``[t - max_delay, t - 1]`` (clamped at 0), guaranteeing S2 and,
      because the window is bounded, S3.

    Because β is sampled independently per (t, i, j), consecutive reads
    can go *backwards in send-time* (reordering) and the same send-time
    can be read repeatedly (duplication).  Data generated at times that
    are never sampled was, from the reader's perspective, lost.
    """

    def __init__(self, n: int, seed: int = 0, activation_prob: float = 0.5,
                 max_delay: int = 5, max_silence: int = 10):
        super().__init__(n)
        if not (0.0 < activation_prob <= 1.0):
            raise ValueError("activation_prob must be in (0, 1]")
        if max_delay < 1 or max_silence < 1:
            raise ValueError("max_delay and max_silence must be >= 1")
        self.seed = seed
        self.activation_prob = activation_prob
        self.max_delay = max_delay
        self.max_silence = max_silence

    def alpha(self, t: int) -> FrozenSet[int]:
        active = set()
        threshold = int(self.activation_prob * (2 ** 64))
        for i in range(self.n):
            if _hash_int(self.seed, "act", t, i) < threshold:
                active.add(i)
            elif t % self.max_silence == (i % self.max_silence):
                # forced activation keeps S1 true even at tiny probabilities
                active.add(i)
        return frozenset(active)

    def beta(self, t: int, i: int, j: int) -> int:
        delay = 1 + _hash_int(self.seed, "delay", t, i, j) % self.max_delay
        return max(0, t - delay)

    def __repr__(self) -> str:
        return (f"RandomSchedule(n={self.n}, seed={self.seed}, "
                f"p={self.activation_prob}, max_delay={self.max_delay})")


class AdversarialStaleSchedule(Schedule):
    """A schedule engineered to keep information as stale as S3 allows.

    Nodes activate in staggered bursts; reads always reach back the full
    ``max_delay`` window.  Stress-tests absolute convergence claims: any
    dependence on freshness beyond S1–S3 shows up here first.
    """

    def __init__(self, n: int, max_delay: int = 8, burst: int = 3):
        super().__init__(n)
        self.max_delay = max_delay
        self.burst = burst

    def alpha(self, t: int) -> FrozenSet[int]:
        phase = (t // self.burst) % self.n
        return frozenset({phase})

    def beta(self, t: int, i: int, j: int) -> int:
        return max(0, t - self.max_delay)

    def __repr__(self) -> str:
        return (f"AdversarialStaleSchedule(n={self.n}, "
                f"max_delay={self.max_delay}, burst={self.burst})")


def schedule_zoo(n: int, seeds: Sequence[int] = (0, 1, 2)) -> List[Schedule]:
    """A representative collection of admissible schedules for experiments.

    Used by the absolute-convergence benches: the theorems quantify over
    *all* schedules, so experiments sample widely across qualitatively
    different ones.
    """
    zoo: List[Schedule] = [
        SynchronousSchedule(n),
        RoundRobinSchedule(n),
        FixedDelaySchedule(n, delay=2),
        FixedDelaySchedule(n, delay=5),
        AdversarialStaleSchedule(n, max_delay=6, burst=2),
    ]
    for s in seeds:
        zoo.append(RandomSchedule(n, seed=s, activation_prob=0.4, max_delay=4))
        zoo.append(RandomSchedule(n, seed=1000 + s, activation_prob=0.8,
                                  max_delay=7))
    return zoo
