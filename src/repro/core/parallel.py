"""Shared-memory parallel σ/δ engine: destination-column sharding.

The top rung of the four-engine ladder (naive → incremental →
vectorized → **parallel**).  The vectorized engine already turned σ
into a numpy table-gather min-product over the dirty columns of an
``(n, n)`` int code matrix; this module distributes that product over a
persistent pool of worker *processes*, exploiting the same structural
fact one level up: entry ``(i, j)`` of σ(X) only ever reads **column
j** of ``X``, so destination columns are fully independent and can be
sharded with zero cross-worker synchronisation inside a round.

Architecture
------------

* The code matrix ``C``, the edge lookup tables, the per-round dirty /
  next-dirty bitmaps and (for δ) a ring of ``window`` historical code
  matrices live in :mod:`multiprocessing.shared_memory` segments; every
  process maps them as numpy views, so no matrix bytes are ever
  pickled.
* Each worker owns a contiguous block of destination columns
  ``[lo, hi)`` (``np.array_split`` layout).  One σ round is: read the
  shared dirty bitmap over the owned block, gather-reduce new values
  for those columns, write changed columns back **in place** (sound
  because no other worker reads them), and flag them in the shared
  next-dirty bitmap.  Only the tiny per-round command tuple and a
  changed-column count cross the pipe — the dirty/fixed-point bitmaps
  themselves live in shared memory.
* An empty union of per-worker dirty sets is exactly σ-stability
  (Definition 4), so fixed-point detection stays free, as in the
  incremental and vectorized engines.
* δ steps activate workers per ``(round, owned columns)``: the master
  sends the activation list and the β read-back times (computed once
  per ``(t, i, k)``), and each worker recomputes the active rows'
  entries *restricted to its column block* against the shared history
  ring — the row-sharded paper recursion re-expressed column-wise.
* δ commands are **windowed**: one IPC command carries a whole window
  of schedule steps (:data:`DELTA_WINDOW`, default 16) — the workers
  already hold the history ring, so nothing about a step depends on
  the master seeing its predecessor first — and the workers reply with
  per-step changed flags the master folds into the usual convergence
  counter.  This amortises the per-step pipe round-trip that dominated
  high-activation-rate schedules (the ring is widened by the window so
  a slot written inside a command can never alias a slot any of its
  steps, or the master's post-window σ-stability probes, still need);
  results are bit-identical to the per-step protocol because a run
  that satisfies the convergence criterion at step ``t`` provably
  cannot change at any later step the window already executed.

Fallback & selection
--------------------

``engine="parallel"`` is safe to request anywhere: the selectors call
:func:`parallel_workers`, which returns ``None`` (→ vectorized
fallback, which itself falls back to incremental for non-finite
algebras) when the algebra has no finite encoding, when shared memory
or the platform's process support is missing, when ``workers`` resolves
to ≤ 1, or — in auto mode (``workers=None``) — when the host has a
single CPU or the problem is too small (``n <`` :data:`PARALLEL_MIN_N`)
for process fan-out to pay.  Passing an explicit ``workers >= 2``
overrides the size heuristics (tests and benchmarks do), but never the
capability checks.  Constructing :class:`ParallelVectorizedEngine`
directly raises :class:`~repro.core.algebra.UnsupportedAlgebraError`
with the reason, mirroring :class:`~repro.core.vectorized.VectorizedEngine`.

Cache discipline & cleanup
--------------------------

Topology mutations are handled by the same ``adjacency.version``
contract as the vectorized engine: :meth:`ParallelVectorizedEngine.refresh`
(called at the top of every public entry point) rebuilds the edge-table
snapshot and **republishes** it — a fresh shared-memory segment plus a
``reload`` command to every worker, acknowledged before the old segment
is unlinked — so a mid-run ``set_edge`` / ``remove_edge`` can never
leave a worker computing against stale tables.

Worker processes and shared-memory segments are released by
:meth:`~ParallelVectorizedEngine.close` (idempotent; also a context
manager), by a ``weakref.finalize`` hook when the engine is garbage
collected, and by the driver functions' ``finally`` blocks for engines
they created themselves — an exception anywhere in a run must never
leak a segment or a process (``tests/core/test_parallel.py`` holds the
engine to that).
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:                      # pragma: no cover - numpy is baked in
    np = None

try:
    import multiprocessing as _mp
    from multiprocessing import shared_memory as _shm
except ImportError:                      # pragma: no cover - stdlib
    _mp = None
    _shm = None

from .algebra import UnsupportedAlgebraError
from .asynchronous import AsyncResult
from .capabilities import Capabilities, logger as _engine_log, register_engine
from .schedule import Schedule
from .state import Network, RoutingState
from .synchronous import SyncResult
from .vectorized import (
    _DTYPE,
    VectorizedEngine,
    fold_edge_tables,
    gather_min_reduce,
    supports_vectorized,
)

#: auto-mode floor: below this many destinations the per-round IPC and
#: process fan-out outweigh the numpy work being sharded — the
#: committed BENCH_core.json measures the pool *losing* to the serial
#: vectorized engine at n=200 (0.8×) and winning at n=400 (1.3×) on a
#: memory-bandwidth-limited host, so auto mode only engages from the
#: size class where the win is demonstrated.  Explicit ``workers``
#: overrides it (the differential tests and benchmarks do).
PARALLEL_MIN_N = 256

#: seconds to wait on a worker reply before declaring the pool dead.
_REPLY_TIMEOUT = 120.0

#: default number of δ schedule steps shipped per worker command; at 16
#: the per-step IPC command count drops ≥ 8× on any run longer than a
#: couple of windows (the ISSUE 4 acceptance point), and the widened
#: ring costs only ``window`` extra shared (n, n) slots.
DELTA_WINDOW = 16


def _mp_context():
    """Fork where available (cheap, inherits the numpy import), else
    spawn; ``None`` when multiprocessing is unusable on this platform."""
    if _mp is None or _shm is None:
        return None
    try:
        methods = _mp.get_all_start_methods()
    except Exception:                    # pragma: no cover - exotic platforms
        return None
    if "fork" in methods:
        return _mp.get_context("fork")
    if "spawn" in methods:               # pragma: no cover - non-posix
        return _mp.get_context("spawn")
    return None                          # pragma: no cover - no methods


def supports_parallel(algebra) -> bool:
    """True when the parallel engine *could* run this algebra here.

    Capability only (finite encoding + numpy + shared memory + a
    process start method); whether fan-out is worthwhile for a given
    ``(n, workers)`` is decided by :func:`parallel_workers`.
    """
    return _mp_context() is not None and supports_vectorized(algebra)


def parallel_workers(network: Network,
                     workers: Optional[int] = None) -> Optional[int]:
    """Resolve the effective worker count, or ``None`` to fall back.

    ``None`` means "the selector should silently drop to the vectorized
    engine": no capability, an explicit ``workers=1`` request, or auto
    mode on a single-CPU host / a problem smaller than
    :data:`PARALLEL_MIN_N`.  Explicit ``workers >= 2`` skips the size
    heuristics but is still clamped to ``n`` (every worker needs at
    least one column).

    Caveat: auto mode trusts ``os.cpu_count()``, which containers
    routinely clamp to 1 even when the hypervisor schedules several
    vCPUs (the benchmark harness's ``usable_cpus()`` probe measures the
    difference empirically — too slow to run inside a library call).
    On such hosts pass an explicit ``workers`` count to engage the
    pool.
    """
    if not supports_parallel(network.algebra):
        return None
    if workers is None:
        cpus = os.cpu_count() or 1
        if cpus < 2 or network.n < PARALLEL_MIN_N:
            return None
        workers = cpus
    workers = min(int(workers), network.n)
    return workers if workers >= 2 else None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerState:
    """Everything one worker holds: shm attachments + numpy views."""

    def __init__(self):
        self.segments: Dict[str, "_shm.SharedMemory"] = {}
        self.C = None                    # (n, n) view of the code matrix
        self.dirty = None                # (n,) uint8 view (round input)
        self.next_dirty = None           # (n,) uint8 view (round output)
        self.hist: List = []             # ring of (n, n) views (δ)
        self.window = 0
        self.tables = None
        self.src = None
        self.importers = None
        self.starts = None
        self.erange = None
        self.offsets: Dict[int, int] = {}
        self.degrees: Dict[int, int] = {}
        self.n = 0
        self.lo = 0
        self.hi = 0
        self.trivial = 0
        self.invalid = 0

    def attach(self, key: str, name: str, shape, dtype):
        old = self.segments.pop(key, None)
        if old is not None:
            old.close()
        seg = _shm.SharedMemory(name=name)
        self.segments[key] = seg
        return np.ndarray(shape, dtype=dtype, buffer=seg.buf)

    def close(self):
        for seg in self.segments.values():
            try:
                seg.close()
            except OSError:              # pragma: no cover - already gone
                pass
        self.segments.clear()


def _worker_load(state: _WorkerState, meta: dict) -> None:
    """Attach the base segments and install the edge-table snapshot."""
    n = meta["n"]
    state.n = n
    state.lo, state.hi = meta["block"]
    state.trivial = meta["trivial"]
    state.invalid = meta["invalid"]
    state.C = state.attach("C", meta["C"], (n, n), _DTYPE)
    state.dirty = state.attach("dirty", meta["dirty"], (n,), np.uint8)
    state.next_dirty = state.attach(
        "next_dirty", meta["next_dirty"], (n,), np.uint8)
    _worker_reload_tables(state, meta)


def _worker_reload_tables(state: _WorkerState, meta: dict) -> None:
    """(Re)install the topology snapshot after a publish/republish."""
    n_edges, size = meta["tables_shape"]
    state.tables = state.attach("tables", meta["tables"],
                                (n_edges, size), _DTYPE)
    state.src = np.asarray(meta["src"], dtype=np.intp)
    state.importers = np.asarray(meta["importers"], dtype=np.intp)
    state.starts = np.asarray(meta["starts"], dtype=np.intp)
    state.erange = np.arange(n_edges)[:, None]
    state.offsets = dict(meta["offsets"])
    state.degrees = dict(meta["degrees"])


def _worker_sigma(state: _WorkerState, full: bool) -> int:
    """One σ round over this worker's dirty columns; returns #changed.

    Reads only the owned columns of ``C`` (plus the shared tables),
    writes only the owned columns — the in-place update is sound
    because entry ``(i, j)`` of σ(X) depends on column ``j`` alone and
    column ownership is exclusive.
    """
    lo, hi = state.lo, state.hi
    if full:
        cols = np.arange(lo, hi)
    else:
        cols = lo + np.nonzero(state.dirty[lo:hi])[0]
    if cols.size == 0:
        return 0
    C = state.C
    sub = C[:, cols]                     # copy: the round's frozen input
    new = gather_min_reduce(sub, state.tables, state.src, state.erange,
                            state.importers, state.starts, state.invalid)
    new[cols, np.arange(cols.size)] = state.trivial    # Lemma 1 diagonal
    changed = (new != sub).any(axis=0)
    if not changed.any():
        return 0
    changed_cols = cols[changed]
    C[:, changed_cols] = new[:, changed]
    state.next_dirty[changed_cols] = 1
    return int(changed_cols.size)


def _worker_history(state: _WorkerState, names: Sequence[str],
                    window: int) -> None:
    """Attach the δ history ring (``window`` shared code matrices)."""
    n = state.n
    # detach any previous ring first (segment keys are positional)
    for key in [k for k in state.segments if k.startswith("hist:")]:
        state.segments.pop(key).close()
    state.hist = [state.attach(f"hist:{i}", name, (n, n), _DTYPE)
                  for i, name in enumerate(names)]
    state.window = window


def _worker_delta(state: _WorkerState,
                  steps: Sequence[Tuple[int, Sequence]]) -> List[bool]:
    """One *window* of δ steps restricted to the owned column block.

    ``steps`` is ``[(t, acts)]`` for consecutive times, each ``acts``
    being ``[(i, read_times)]`` for every active node with
    ``read_times`` aligned to node ``i``'s in-edge order in the
    snapshot.  Every step copies the previous ring slot's block into
    the new one, overwrites active rows, and records whether anything
    in the block changed; the per-step flags go back to the master in
    one reply — the whole window costs a single pipe round-trip.
    """
    W = state.window
    lo, hi = state.lo, state.hi
    block = slice(lo, hi)
    width = hi - lo
    flags: List[bool] = []
    for t, acts in steps:
        prev = state.hist[(t - 1) % W]
        nxt = state.hist[t % W]
        nxt[:, block] = prev[:, block]
        changed = False
        for i, times in acts:
            degree = state.degrees.get(i, 0)
            if degree:
                offset = state.offsets[i]
                gathered = np.empty((degree, width), dtype=_DTYPE)
                for idx in range(degree):
                    k = int(state.src[offset + idx])
                    gathered[idx] = state.hist[times[idx] % W][k, block]
                row = fold_edge_tables(state.tables[offset:offset + degree],
                                       gathered)
            else:
                row = np.full(width, state.invalid, dtype=_DTYPE)
            if lo <= i < hi:
                row[i - lo] = state.trivial
            if not changed and not np.array_equal(row, prev[i, block]):
                changed = True
            nxt[i, block] = row
        flags.append(changed)
    return flags


def _worker_main(conn) -> None:
    """Worker process entry point: a command loop over one pipe end.

    Commands (tuples, first element is the verb):

    * ``("load", meta)``     — attach C/dirty/table segments → ack ``True``
    * ``("reload", meta)``   — swap in a republished table snapshot → ack
    * ``("history", names, window)`` — attach the δ ring → ack ``True``
    * ``("sigma", full)``    — one σ round → #changed columns
    * ``("delta", steps)``   — one *window* of δ steps → per-step flags
    * ``("stop",)``          — drain and exit
    """
    state = _WorkerState()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break                    # master vanished: exit quietly
            cmd = msg[0]
            if cmd == "stop":
                break
            # relay failures instead of dying: a raised exception would
            # kill the (daemon) worker and reduce the master's error to
            # "died mid-command" with the real traceback lost to stderr
            try:
                if cmd == "sigma":
                    reply = _worker_sigma(state, msg[1])
                elif cmd == "delta":
                    reply = _worker_delta(state, msg[1])
                elif cmd == "load":
                    _worker_load(state, msg[1])
                    reply = True
                elif cmd == "reload":
                    _worker_reload_tables(state, msg[1])
                    reply = True
                elif cmd == "history":
                    _worker_history(state, msg[1], msg[2])
                    reply = True
                else:                    # pragma: no cover - protocol bug
                    reply = RuntimeError(f"unknown command {cmd!r}")
            except Exception as exc:
                reply = RuntimeError(
                    f"parallel worker failed on {cmd!r}: {exc!r}")
            conn.send(reply)
    finally:
        state.close()
        try:
            conn.close()
        except OSError:                  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------


class _PoolResources:
    """Owns every leak-prone handle, detached from the engine object.

    Kept separate so a ``weakref.finalize`` on the engine can close
    everything without keeping the engine alive; ``close`` is
    idempotent and tolerant of already-dead workers / already-unlinked
    segments, because it also runs on interpreter shutdown.
    """

    def __init__(self):
        self.segments: List["_shm.SharedMemory"] = []
        self.procs: List = []
        self.conns: List = []

    def add_segment(self, seg) -> None:
        self.segments.append(seg)

    def drop_segment(self, seg) -> None:
        """Unlink one segment early (e.g. a superseded table snapshot)."""
        if seg in self.segments:
            self.segments.remove(seg)
        _destroy_segment(seg)

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self.procs:
            proc.join(timeout=2.0)
        for proc in self.procs:
            if proc.is_alive():          # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self.conns:
            try:
                conn.close()
            except OSError:              # pragma: no cover
                pass
        for seg in self.segments:
            _destroy_segment(seg)
        self.segments = []
        self.procs = []
        self.conns = []


def _destroy_segment(seg) -> None:
    try:
        seg.close()
    except OSError:                      # pragma: no cover - already closed
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        pass                             # already unlinked (idempotent close)
    except OSError:                      # pragma: no cover
        pass


class ParallelVectorizedEngine(VectorizedEngine):
    """Column-sharded multi-process σ/δ over shared code matrices.

    Extends :class:`~repro.core.vectorized.VectorizedEngine` — the
    encoding, codecs, and the master's local edge snapshot (used for
    the rare σ-stability probes during δ convergence) are inherited;
    what this class adds is the shared-memory mirror of that snapshot
    and the worker pool that computes over it.

    The pool is started lazily on the first σ/δ entry and persists
    across calls; release it with :meth:`close` (or use the engine as a
    context manager).  A ``weakref.finalize`` backstop releases
    everything if the engine is dropped without closing.
    """

    #: advertised to the capability resolver: a finite encoding plus a
    #: shared-memory pool of >= 2 workers; auto mode declines problems
    #: below :data:`PARALLEL_MIN_N`; δ needs a bounded schedule and
    #: cannot return kept histories from its fixed shared ring.
    capabilities = register_engine(Capabilities(
        rung="parallel",
        requires_finite_algebra=True,
        requires_shared_memory=True,
        min_n=PARALLEL_MIN_N,
        min_workers=2,
        supports_unbounded_schedules=False,
        supports_kept_history=False,
    ))

    def __init__(self, network: Network, workers: Optional[int] = None):
        ctx = _mp_context()
        if ctx is None:
            raise UnsupportedAlgebraError(
                "parallel engine unavailable: multiprocessing shared "
                "memory is not supported on this platform")
        resolved = (min(int(workers), network.n) if workers is not None
                    else min(os.cpu_count() or 1, network.n))
        if resolved < 2:
            raise UnsupportedAlgebraError(
                f"parallel engine needs >= 2 workers (resolved {resolved}); "
                "use the vectorized engine instead")
        self._res = _PoolResources()
        self._finalizer = weakref.finalize(self, self._res.close)
        super().__init__(network)        # raises for non-finite algebras
        self.workers = resolved
        self._ctx = ctx
        self._published_version: Optional[int] = None
        self._seg_C = self._seg_dirty = self._seg_next = None
        self._C_view = self._dirty_view = self._next_view = None
        self._seg_tables = None
        self._hist_segs: List = []
        self._hist_views: List = []
        self._window = 0
        self._blocks = self._split_columns(network.n, resolved)
        #: IPC amortisation achieved by the most recent δ run
        self.delta_ipc_commands = 0
        self.delta_ipc_steps = 0

    # -- layout ---------------------------------------------------------

    @staticmethod
    def _split_columns(n: int, workers: int) -> List[Tuple[int, int]]:
        """Contiguous ``np.array_split``-style column blocks, one per
        worker (first ``n % workers`` blocks get the extra column)."""
        base, extra = divmod(n, workers)
        blocks = []
        lo = 0
        for w in range(workers):
            hi = lo + base + (1 if w < extra else 0)
            blocks.append((lo, hi))
            lo = hi
        return blocks

    # -- pool / shared-memory lifecycle ----------------------------------

    def close(self) -> None:
        """Stop the workers and unlink every shared segment (idempotent)."""
        self._finalizer()                # runs _res.close at most once

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "ParallelVectorizedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _alloc(self, nbytes: int):
        seg = _shm.SharedMemory(create=True, size=max(int(nbytes), 1))
        self._res.add_segment(seg)
        return seg

    def _matrix_segment(self):
        n = self._n
        seg = self._alloc(n * n * np.dtype(_DTYPE).itemsize)
        return seg, np.ndarray((n, n), dtype=_DTYPE, buffer=seg.buf)

    def _table_meta(self, seg) -> dict:
        """The picklable half of the snapshot: small index arrays travel
        over the pipe, the dense tables stay in shared memory."""
        return dict(
            tables=seg.name,
            tables_shape=tuple(self._tables.shape),
            src=self._src.tolist(),
            importers=self._importers.tolist(),
            starts=self._starts.tolist(),
            offsets=self._offsets,
            degrees=self._degrees,
        )

    def _publish_tables(self):
        """Copy the current edge-table snapshot into a fresh segment."""
        seg = self._alloc(max(self._tables.nbytes, 1))
        if self._tables.size:
            view = np.ndarray(self._tables.shape, dtype=_DTYPE,
                              buffer=seg.buf)
            view[:] = self._tables
        return seg

    def _ensure_pool(self) -> None:
        """Start the workers (first use) or republish a stale snapshot."""
        if self.closed:
            raise RuntimeError("engine is closed; build a new one")
        if not self._res.procs:
            n = self._n
            self._seg_C, self._C_view = self._matrix_segment()
            self._seg_dirty = self._alloc(n)
            self._dirty_view = np.ndarray((n,), dtype=np.uint8,
                                          buffer=self._seg_dirty.buf)
            self._seg_next = self._alloc(n)
            self._next_view = np.ndarray((n,), dtype=np.uint8,
                                         buffer=self._seg_next.buf)
            self._seg_tables = self._publish_tables()
            base = dict(
                n=n, trivial=self.trivial_code, invalid=self.invalid_code,
                C=self._seg_C.name, dirty=self._seg_dirty.name,
                next_dirty=self._seg_next.name,
                **self._table_meta(self._seg_tables))
            for block in self._blocks:
                parent, child = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main, args=(child,), daemon=True,
                    name=f"repro-sigma-delta-{block[0]}-{block[1]}")
                proc.start()
                child.close()
                self._res.conns.append(parent)
                self._res.procs.append(proc)
                parent.send(("load", dict(base, block=block)))
            self._collect()              # acks
            self._published_version = self._version
        elif self._published_version != self._version:
            old = self._seg_tables
            self._seg_tables = self._publish_tables()
            meta = self._table_meta(self._seg_tables)
            self._broadcast(("reload", meta))
            self._collect()              # all workers on the new snapshot
            if old is not None:
                self._res.drop_segment(old)
            self._published_version = self._version

    def _broadcast(self, msg) -> None:
        for conn in self._res.conns:
            conn.send(msg)

    def _collect(self) -> list:
        """One reply per worker, with a liveness guard (a worker that
        died mid-command would otherwise hang the master forever)."""
        replies = []
        for conn, proc in zip(self._res.conns, self._res.procs):
            if not conn.poll(_REPLY_TIMEOUT):
                self.close()
                raise RuntimeError(
                    f"parallel worker {proc.name} did not reply within "
                    f"{_REPLY_TIMEOUT}s (alive={proc.is_alive()})")
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                self.close()
                raise RuntimeError(
                    f"parallel worker {proc.name} died mid-command")
            if isinstance(reply, Exception):
                self.close()
                raise reply
            replies.append(reply)
        return replies

    def _ensure_history(self, window: int) -> None:
        """Grow (never shrink) the shared δ ring to ``window`` slots."""
        if window <= self._window:
            return
        while len(self._hist_segs) < window:
            seg, view = self._matrix_segment()
            self._hist_segs.append(seg)
            self._hist_views.append(view)
        self._window = window
        self._broadcast(("history",
                         [s.name for s in self._hist_segs[:window]], window))
        self._collect()

    # -- σ ---------------------------------------------------------------

    def _load(self, C: "np.ndarray") -> None:
        self._ensure_pool()
        self._C_view[:] = C

    def _round(self, full: bool) -> int:
        """One parallel σ round in place; returns changed-column count
        and leaves the next dirty bitmap installed for the round after."""
        self._next_view[:] = 0
        self._broadcast(("sigma", full))
        total = sum(self._collect())
        # next round's input bitmap is this round's output bitmap
        self._dirty_view[:] = self._next_view
        return total

    def sigma(self, state: RoutingState) -> RoutingState:
        """One full σ round, computed by the pool (lockstep oracle)."""
        self.refresh()
        self._load(self.encode_state(state))
        self._round(full=True)
        return self.decode_state(self._C_view)

    def is_stable(self, state: RoutingState) -> bool:
        """Definition 4 on the pool: a full round with no changed column."""
        self.refresh()
        self._load(self.encode_state(state))
        return self._round(full=True) == 0

    def iterate(self, start: RoutingState, max_rounds: int = 10_000,
                keep_trajectory: bool = False,
                detect_cycles: bool = False) -> SyncResult:
        """σ fixed-point iteration on the pool.

        Same trajectory / round-count / fixed-point contract as every
        other engine (the differential oracle enforces it): the first
        round is full, later rounds touch only dirty columns, and an
        empty dirty union is convergence.
        """
        self.refresh()
        self._load(self.encode_state(start))
        view = self._C_view
        trajectory: Optional[List[RoutingState]] = \
            [start] if keep_trajectory else None
        seen = {view.tobytes(): 0} if detect_cycles else None
        for k in range(max_rounds):
            changed = self._round(full=(k == 0))
            if keep_trajectory:
                trajectory.append(self.decode_state(view))
            if changed == 0:
                return SyncResult(True, k, self.decode_state(view),
                                  trajectory)
            if detect_cycles:
                key = view.tobytes()
                if key in seen:
                    return SyncResult(False, k + 1, self.decode_state(view),
                                      trajectory)
                seen[key] = k + 1
        return SyncResult(False, max_rounds, self.decode_state(view),
                          trajectory)

    # -- δ ---------------------------------------------------------------

    def delta(self, schedule: Schedule, start: RoutingState,
              max_steps: int = 2_000,
              stability_window: Optional[int] = None,
              window: Optional[int] = None) -> AsyncResult:
        """δ on the pool against the shared bounded history ring.

        Requires a schedule with a declared staleness bound (reads are
        policed against ``max_read_back + 2``, exactly the
        :class:`~repro.core.incremental.BoundedHistory` window); the
        ``delta_run`` selector routes unbounded schedules and
        ``keep_history`` requests to the vectorized engine instead.
        Identical convergence semantics: constant for a full stability
        window *and* σ-stable (the σ probe runs on the master's local
        snapshot — matrices never leave shared memory for it).

        ``window`` schedule steps travel per IPC command
        (:data:`DELTA_WINDOW` by default; 1 restores the per-step
        protocol).  The workers execute the whole window against the
        ring and reply with per-step changed flags; the master then
        replays the convergence counter over the flags and probes
        σ-stability on the retained ring slots, so a run converging at
        step ``t`` mid-window reports exactly the serial result — the
        criterion (constant for a full read-back window + σ-stable)
        guarantees the already-executed later steps changed nothing.
        ``delta_ipc_commands`` / ``delta_ipc_steps`` record the
        amortisation achieved by the last run.
        """
        max_read_back = schedule.max_read_back()
        if max_read_back is None:
            raise UnsupportedAlgebraError(
                "parallel δ needs a bounded-staleness schedule "
                "(max_read_back() returned None); use "
                "delta_run(..., engine='vectorized') or strict=True")
        if stability_window is None:
            stability_window = (max_read_back or 1) + 2
        read_window = max_read_back + 2  # the BoundedHistory window
        w = DELTA_WINDOW if window is None else max(1, int(window))
        self.refresh()
        self._ensure_pool()
        # ring sizing: the serial engines tolerate reads up to
        # ``t - read_window`` (the oldest state BoundedHistory still
        # retains while step t computes), and a windowed command writes
        # ``w`` consecutive slots before the master sees any flag — so
        # the ring holds ``w + read_window`` slots and the staleness
        # guard below raises exactly where BoundedHistory would,
        # keeping the "all engines compute exactly the same δᵗ"
        # contract even for schedules that read slightly past their
        # declaration.  The ring may be larger still (it is reused
        # across runs and never shrinks): slot arithmetic uses the
        # actual ring size, validation the schedule's declared window.
        self._ensure_history(w + read_window)
        W = self._window
        self._hist_views[0][:] = self.encode_state(start)
        beta, alpha = schedule.beta, schedule.alpha
        in_neighbours = {
            i: [int(self._src[self._offsets[i] + d])
                for d in range(self._degrees[i])]
            for i in self._degrees}
        self.delta_ipc_commands = 0
        self.delta_ipc_steps = 0
        unchanged = 0
        t0 = 1
        while t0 <= max_steps:
            w_eff = min(w, max_steps - t0 + 1)
            steps = []
            stale_error: Optional[LookupError] = None
            for t in range(t0, t0 + w_eff):
                acts = []
                for i in sorted(alpha(t)):
                    times = []
                    for k in in_neighbours.get(i, ()):
                        s = beta(t, i, k)
                        # s < 0 violates S2 outright and would wrap the
                        # ring modulo into an arbitrary slot;
                        # s < t - read_window is exactly the read
                        # BoundedHistory would refuse as evicted — fail
                        # loudly either way
                        if s < 0 or s >= t or t - s > read_window:
                            stale_error = LookupError(
                                f"δ history for time {s} is outside the "
                                f"shared ring (window={read_window}, t={t}); "
                                "the schedule reads further back than its "
                                "declared max_read_back — run "
                                "delta_run(..., strict=True) to keep the "
                                "full history")
                            break
                        times.append(s)
                    if stale_error is not None:
                        break
                    acts.append((i, times))
                if stale_error is not None:
                    # truncate the window at the offending step: the
                    # per-step protocol executes (and may converge on)
                    # every step before it without ever evaluating it,
                    # so the windowed protocol must too — raise only if
                    # the run is still going when that step is reached
                    break
                steps.append((t, acts))
            if steps:
                self._broadcast(("delta", steps))
                self.delta_ipc_commands += 1
                self.delta_ipc_steps += len(steps)
                flags = self._collect()  # per worker: one flag per step
                for off in range(len(steps)):
                    t = t0 + off
                    unchanged = 0 if any(f[off] for f in flags) \
                        else unchanged + 1
                    if unchanged >= stability_window:
                        nxt = self._hist_views[t % W]
                        if np.array_equal(self._sigma_codes(nxt), nxt):
                            return AsyncResult(
                                True, t, self.decode_state(nxt),
                                t - unchanged, None,
                                history_retained=min(t + 1, read_window))
            if stale_error is not None:
                raise stale_error
            t0 += len(steps)
        final = self._hist_views[max_steps % W]
        return AsyncResult(False, max_steps, self.decode_state(final), None,
                           None,
                           history_retained=min(max_steps + 1, read_window))


# ----------------------------------------------------------------------
# Drivers (SyncResult / AsyncResult compatible)
# ----------------------------------------------------------------------


def iterate_sigma_parallel(network: Network, start: RoutingState,
                           max_rounds: int = 10_000,
                           keep_trajectory: bool = False,
                           detect_cycles: bool = False,
                           engine: Optional[ParallelVectorizedEngine] = None,
                           workers: Optional[int] = None) -> SyncResult:
    """Parallel drop-in for :func:`repro.core.synchronous.iterate_sigma`.

    Pass ``engine`` to reuse a running pool across calls (its caches
    and published snapshots auto-refresh on topology changes); without
    one, a pool is started for the call and torn down in a ``finally``
    — exceptions included, so no run can leak workers or segments.
    """
    eng = engine if engine is not None \
        else ParallelVectorizedEngine(network, workers=workers)
    try:
        return eng.iterate(start, max_rounds=max_rounds,
                           keep_trajectory=keep_trajectory,
                           detect_cycles=detect_cycles)
    finally:
        if engine is None:
            eng.close()


def delta_run_parallel(network: Network, schedule: Schedule,
                       start: RoutingState, max_steps: int = 2_000,
                       stability_window: Optional[int] = None,
                       keep_history: bool = False,
                       engine: Optional[ParallelVectorizedEngine] = None,
                       workers: Optional[int] = None,
                       window: Optional[int] = None) -> AsyncResult:
    """Parallel drop-in for :func:`repro.core.asynchronous.delta_run`.

    ``keep_history`` and unbounded schedules delegate to the vectorized
    engine (full decoded histories cannot live in a fixed shared ring);
    everything else runs on the pool.  A caller-supplied ``engine`` is
    reused even on the delegating path — a
    :class:`ParallelVectorizedEngine` *is* a
    :class:`~repro.core.vectorized.VectorizedEngine`, so its encoding
    and table snapshot serve the serial run without re-encoding.
    Engine ownership and cleanup as in :func:`iterate_sigma_parallel`.
    ``window`` sets the number of schedule steps per worker command
    (:data:`DELTA_WINDOW` default; 1 restores the per-step protocol).
    """
    if keep_history or schedule.max_read_back() is None:
        _engine_log.info(
            "engine-skip rung=parallel code=%s op=delta requested=parallel "
            "algebra=%s n=%d detail=per-run delegation to the serial "
            "vectorized engine (pool reused for encoding)",
            "keep-history" if keep_history else "unbounded-schedule",
            network.algebra.name, network.n)
        from .vectorized import delta_run_vectorized
        return delta_run_vectorized(network, schedule, start,
                                    max_steps=max_steps,
                                    stability_window=stability_window,
                                    keep_history=keep_history,
                                    engine=engine)
    eng = engine if engine is not None \
        else ParallelVectorizedEngine(network, workers=workers)
    try:
        return eng.delta(schedule, start, max_steps=max_steps,
                         stability_window=stability_window, window=window)
    finally:
        if engine is None:
            eng.close()
