"""Vectorized σ/δ engine for finite algebras: routes as small ints.

Theorem 7 lives on *finite* strictly increasing algebras (RIP-style hop
count, finite chains, bounded stratified levels).  Finiteness is not
just a proof device — it is an implementation opportunity: encode the
``m + 1`` routes of the carrier as ints ``0..m`` ordered by preference
(:meth:`repro.algebras.base.KeyOrderedAlgebra.finite_encoding`) and

* ⊕ becomes ``min`` on codes,
* every edge function becomes a dense ``(m + 1)``-entry lookup table,
* the routing state becomes an ``(n, n)`` int matrix ``C``, and
* one σ round becomes a generalised min-plus product:

      σ(C)[i][j] = min_k  T_{ik}[ C[k][j] ]        (diag forced to 0)

  evaluated for *all* edges and destinations at once with one fancy
  gather ``T[edge, C[src]]`` and one ``np.minimum.reduceat`` over the
  per-importer edge groups — no per-route Python calls at all.

Layered on the PR 1 dirty-set idea: entry ``(i, j)`` of σ(X) depends
only on column ``j`` of ``X``, so columns are independent and a round
needs to re-multiply only the **dirty columns** (those with an entry
that changed last round).  An empty dirty-column set is exactly
σ-stability, so fixed-point detection stays free.  δ activations use
the same tables as per-activation gathers against a
:class:`~repro.core.incremental.BoundedHistory` of code matrices, so
asynchronous rounds are array ops too (`delta_run_vectorized`).

Capability & fallback
---------------------

This is the third rung of the four-engine ladder (naive → incremental
→ **vectorized** → parallel): :mod:`repro.core.parallel` shards this
engine's column-independent round over worker processes against
shared-memory code matrices, and inherits its encoding and snapshot
machinery from :class:`VectorizedEngine`.

The engine needs numpy and a :class:`~repro.algebras.base.AlgebraEncoding`
(finite carrier, injective preference keys, default route equality).
:func:`supports_vectorized` reports capability; the public selectors
(``iterate_sigma(engine="vectorized")``, ``delta_run(...)``,
``Simulator(engine=...)``) silently fall back to the incremental engine
for unsupported algebras, while constructing :class:`VectorizedEngine`
directly raises :class:`~repro.core.algebra.UnsupportedAlgebraError`
with the reason.

Cache discipline: edge tables are derived from the adjacency matrix and
rebuilt whenever ``adjacency.version`` moves (checked by
:meth:`VectorizedEngine.refresh` at the top of every public entry
point), so mid-run ``set_edge`` / ``remove_edge`` can never leave a
stale table behind — the vectorized mirror of the
:class:`~repro.core.state.NetworkTopology` invalidation contract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:
    import numpy as np
except ImportError:                      # pragma: no cover - numpy is baked in
    np = None

from .algebra import RoutingAlgebra, UnsupportedAlgebraError
from .asynchronous import AbsoluteConvergenceReport, AsyncResult
from .capabilities import Capabilities, register_engine
from .incremental import BoundedHistory
from .schedule import CompiledSchedule, Schedule
from .state import Network, RoutingState
from .synchronous import SyncResult

#: dtype for code matrices and tables; carriers are small, int32 is ample.
_DTYPE = "int32"


def gather_min_reduce(sub, tables, src, erange, importers, starts,
                      invalid_code):
    """The σ kernel: one gather/min-reduce over the columns of ``sub``.

    ``sub`` is the (column-restricted) code matrix; the remaining
    arguments are a topology snapshot in the flat layout built by
    :meth:`VectorizedEngine.refresh`.  Returns the new values with
    importer-less rows at ``invalid_code``; the Lemma-1 diagonal fix-up
    stays with the caller (it depends on which columns ``sub`` holds).
    Single source of truth for the kernel — the serial engine and every
    :mod:`repro.core.parallel` worker run exactly this code, so the
    master's σ-stability probe can never drift from the workers' rounds.
    """
    new = np.full(sub.shape, invalid_code, dtype=_DTYPE)
    if src.size:
        extended = tables[erange, sub[src]]
        new[importers] = np.minimum.reduceat(extended, starts, axis=0)
    return new


def fold_edge_tables(tables, gathered):
    """The δ kernel: apply each edge table to its gathered historic row
    slice and ⊕ (= ``min`` on codes) across the neighbours.

    ``tables`` is the ``(degree, carrier)`` slice for one importer and
    ``gathered`` the ``(degree, width)`` historic reads; shared by
    :meth:`VectorizedEngine._delta_row` and the parallel workers.
    """
    degree = gathered.shape[0]
    return tables[np.arange(degree)[:, None], gathered].min(axis=0)


def supports_vectorized(algebra: RoutingAlgebra) -> bool:
    """True when the vectorized engine can run this algebra.

    Requires numpy, a finite carrier, the FiniteEncoding protocol, and a
    successfully built encoding (injective preference keys, 0̄ first, ∞̄
    last).  Used by the engine selectors to decide between dispatch and
    fallback.
    """
    if np is None or not getattr(algebra, "is_finite", False):
        return False
    builder = getattr(algebra, "finite_encoding", None)
    if builder is None:
        return False
    try:
        builder()
    except UnsupportedAlgebraError:
        return False
    return True


class VectorizedEngine:
    """σ/δ over int-encoded routing states for one network.

    The engine snapshots the adjacency matrix into flat arrays —
    ``_src[e]`` (exporter of edge ``e``), ``_tables[e]`` (its dense
    lookup table), edges grouped by importer with group starts
    ``_starts`` aligned to ``_importers`` — and refreshes the snapshot
    whenever ``adjacency.version`` moves.  States cross the boundary via
    :meth:`encode_state` / :meth:`decode_state`.
    """

    #: advertised to the capability resolver (see
    #: :mod:`repro.core.capabilities`): needs a finite encoding, runs
    #: everything else.
    capabilities = register_engine(Capabilities(
        rung="vectorized",
        requires_finite_algebra=True,
    ))

    def __init__(self, network: Network):
        if np is None:
            raise UnsupportedAlgebraError(
                "vectorized engine unavailable: numpy is not installed")
        builder = getattr(network.algebra, "finite_encoding", None)
        if builder is None:
            raise UnsupportedAlgebraError(
                f"{network.algebra.name}: does not implement the "
                "FiniteEncoding protocol")
        self.network = network
        self.encoding = builder()        # raises for non-finite carriers
        self.trivial_code = self.encoding.trivial_code
        self.invalid_code = self.encoding.invalid_code
        self._version: Optional[int] = None
        self.refresh()

    # ------------------------------------------------------------------
    # Topology snapshot
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild edge arrays iff the adjacency matrix has mutated."""
        adjacency = self.network.adjacency
        if self._version == adjacency.version:
            return
        topo = adjacency.topology
        n = self.network.n
        size = self.encoding.size
        srcs: List[int] = []
        tables: List[List[int]] = []
        importers: List[int] = []
        counts: List[int] = []
        built = {}                       # id(fn) -> table, this snapshot only
        for i in range(n):
            edges = topo.in_edges[i]
            if not edges:
                continue
            importers.append(i)
            counts.append(len(edges))
            for (k, fn) in edges:
                srcs.append(k)
                table = built.get(id(fn))
                if table is None:
                    table = self.encoding.edge_table(fn)
                    built[id(fn)] = table
                tables.append(table)
        n_edges = len(srcs)
        self._n = n
        self._src = np.asarray(srcs, dtype=np.intp)
        self._tables = (np.asarray(tables, dtype=_DTYPE)
                        if n_edges else np.zeros((0, size), dtype=_DTYPE))
        self._erange = np.arange(n_edges)[:, None]
        self._importers = np.asarray(importers, dtype=np.intp)
        starts = np.zeros(len(importers), dtype=np.intp)
        if len(importers) > 1:
            starts[1:] = np.cumsum(counts[:-1])
        self._starts = starts
        offsets = {}
        degrees = {}
        offset = 0
        for i, count in zip(importers, counts):
            offsets[i] = offset
            degrees[i] = count
            offset += count
        self._offsets = offsets
        self._degrees = degrees
        self._version = adjacency.version

    # ------------------------------------------------------------------
    # State codecs
    # ------------------------------------------------------------------

    def encode_state(self, state: RoutingState) -> "np.ndarray":
        """``RoutingState`` → ``(n, n)`` int code matrix."""
        if self.encoding.identity:
            matrix = np.asarray(state.rows)
            # the fast path is only sound for genuinely integer routes —
            # casting would silently truncate e.g. 2.5 into the carrier;
            # anything else drops to the per-route dict path below, which
            # rejects out-of-carrier routes exactly
            if matrix.dtype.kind in "iu":
                # bounds-check BEFORE the int32 cast: a wider route like
                # 2**32 would otherwise wrap into the carrier silently
                if matrix.size and (matrix.min() < 0 or
                                    matrix.max() >= self.encoding.size):
                    raise UnsupportedAlgebraError(
                        f"{self.network.algebra.name}: state contains "
                        "routes outside the finite carrier")
                return matrix.astype(_DTYPE, copy=False)
        index = self.encoding.index
        try:
            rows = [[index[route] for route in row] for row in state.rows]
        except (KeyError, TypeError):
            raise UnsupportedAlgebraError(
                f"{self.network.algebra.name}: state contains routes "
                "outside the finite carrier") from None
        return np.asarray(rows, dtype=_DTYPE)

    def decode_state(self, matrix: "np.ndarray") -> RoutingState:
        """``(n, n)`` int code matrix → ``RoutingState``."""
        codes = self.encoding.codes
        return RoutingState.adopt(
            [[codes[c] for c in row] for row in matrix.tolist()])

    # ------------------------------------------------------------------
    # σ
    # ------------------------------------------------------------------

    def _sigma_codes(self, C: "np.ndarray",
                     cols: Optional["np.ndarray"] = None) -> "np.ndarray":
        """One σ round on codes, over all columns or just ``cols``.

        Column independence (entry (i, j) reads only column j) makes the
        restricted recompute exact, not approximate.
        """
        sub = C if cols is None else C[:, cols]
        new = gather_min_reduce(sub, self._tables, self._src, self._erange,
                                self._importers, self._starts,
                                self.invalid_code)
        if cols is None:
            np.fill_diagonal(new, self.trivial_code)  # Lemma 1
        else:
            new[cols, np.arange(len(cols))] = self.trivial_code
        return new

    def _advance(self, C: "np.ndarray", dirty: Optional["np.ndarray"]):
        """``(C, dirty columns) → (σ(C), next dirty columns)``.

        ``dirty=None`` means "unknown — full round" (seeding, or after a
        topology change).  Untouched columns are carried over by copy;
        an empty result is exactly σ-stability.
        """
        if dirty is None:
            new = self._sigma_codes(C)
            return new, np.nonzero((new != C).any(axis=0))[0]
        if dirty.size == 0:
            return C, dirty
        new_sub = self._sigma_codes(C, dirty)
        changed = dirty[(new_sub != C[:, dirty]).any(axis=0)]
        if changed.size == 0:
            return C, changed
        nxt = C.copy()
        nxt[:, dirty] = new_sub
        return nxt, changed

    def sigma(self, state: RoutingState) -> RoutingState:
        """One full σ round (decoded); the lockstep-oracle entry point."""
        self.refresh()
        C = self.encode_state(state)
        return self.decode_state(self._sigma_codes(C))

    def is_stable(self, state: RoutingState) -> bool:
        """Definition 4 check, vectorized: σ(X) = X on codes."""
        self.refresh()
        C = self.encode_state(state)
        return bool(np.array_equal(self._sigma_codes(C), C))

    # ------------------------------------------------------------------
    # δ
    # ------------------------------------------------------------------

    def _delta_row(self, history, t: int, i: int, beta) -> "np.ndarray":
        """Node ``i``'s recomputed table at time ``t``: per-activation
        table gathers against per-neighbour historical rows."""
        degree = self._degrees.get(i, 0)
        if degree == 0:
            row = np.full(self._n, self.invalid_code, dtype=_DTYPE)
        else:
            offset = self._offsets[i]
            gathered = np.empty((degree, self._n), dtype=_DTYPE)
            for idx in range(degree):
                k = int(self._src[offset + idx])
                gathered[idx] = history[beta(t, i, k)][k]
            row = fold_edge_tables(self._tables[offset:offset + degree],
                                   gathered)
        row[i] = self.trivial_code
        return row


# ----------------------------------------------------------------------
# Batched multi-trial engine
# ----------------------------------------------------------------------


def _concat_ranges(counts):
    """``concatenate([arange(c) for c in counts])`` without a Python loop."""
    total = int(counts.sum())
    ends = np.cumsum(counts)
    return np.arange(total) - np.repeat(ends - counts, counts)


class BatchedVectorizedEngine(VectorizedEngine):
    """Multi-trial σ/δ over a ``(B, n, n)`` stacked code tensor.

    The top rung of the five-engine ladder (naive → incremental →
    vectorized → parallel → **batched**).  The vectorized engine made
    one *trial* an array computation; experiments, however, run *grids*
    of trials — the absolute-convergence experiment (Definition 8)
    quantifies over (starting state × schedule) pairs — and looping
    Python over trials re-pays the per-step interpreter overhead B
    times.  This engine stacks B trials along a leading batch axis and
    runs every σ round / δ step for **all** trials per kernel
    invocation:

    * σ: one table gather + ``minimum.reduceat`` over a ``(B, E, n)``
      extension tensor (:meth:`_sigma_codes_batch`);
    * δ: the activations of *all* trials at step ``t`` are flattened
      into one ``(total edges, n)`` gather against a shared history
      ring widened by the batch axis — ``(W, B, n, n)`` — followed by a
      single ``reduceat`` fold (:meth:`_delta_step_batch`).  Schedules
      are precompiled (:class:`~repro.core.schedule.CompiledSchedule`)
      so α bitmask rows and β read-time arrays are array lookups, not
      per-(t, i, j) Python calls.

    Per-trial convergence masking: each trial keeps its own
    unchanged-step counter and stability window, finished trials drop
    out of the activation mask (their final state is snapshotted at
    completion), and the grid ends when every trial has converged or
    exhausted ``max_steps``.  Each trial's result is observationally
    identical to a solo :func:`delta_run_vectorized` — converged flag,
    convergence step and fixed point — which the differential oracle
    (``tests/core/test_engine_equivalence.py``) enforces against the
    strict literal recursion.

    Staleness discipline mirrors :class:`~repro.core.incremental.BoundedHistory`
    per trial: reads further back than the trial's declared
    ``max_read_back() + 2`` raise :class:`LookupError`; schedules that
    declare **no** bound run against their *derived* bound (exact over
    the compiled horizon), which the object engines could only serve
    with a full O(steps · n²) history.
    """

    #: batching stacks trials; single δ runs need a bounded ring
    #: (deriving a bound for an undeclared schedule only pays across a
    #: grid), and a lone σ-stability check falls one rung down.
    capabilities = register_engine(Capabilities(
        rung="batched",
        requires_finite_algebra=True,
        supports_batched_trials=True,
        supports_unbounded_schedules=False,
        supports_kept_history=False,
        supports_single_stability_check=False,
    ))

    #: set by the session to force the stacked-tensor dtype
    #: (:class:`~repro.session.EngineSpec` ``batch_dtype``); ``None``
    #: keeps the narrowest-fit default of :attr:`_batch_dtype`.
    batch_dtype_override = None

    # -- node-indexed snapshot arrays (degree/offset per node) -----------

    def _node_arrays(self):
        if getattr(self, "_node_arrays_version", None) != self._version:
            deg = np.zeros(self._n, dtype=np.intp)
            off = np.zeros(self._n, dtype=np.intp)
            for i, d in self._degrees.items():
                deg[i] = d
                off[i] = self._offsets[i]
            self._deg_arr, self._off_arr = deg, off
            self._node_arrays_version = self._version
        return self._deg_arr, self._off_arr

    @property
    def _batch_dtype(self):
        """Narrowest dtype the stacked code tensors fit in.

        Finite carriers are small (hop bounds, levels); int16 halves
        the memory traffic of every gather/fold/compare in the batched
        step, which is bandwidth-bound.  The margin (``2 · size``)
        keeps the affine fast path's ``x + w`` sum in range too.  A
        session-installed :attr:`batch_dtype_override` wins (validated
        against the carrier at install time).
        """
        if self.batch_dtype_override is not None:
            return self.batch_dtype_override
        return np.int16 if 2 * self.encoding.size < 32_000 else _DTYPE

    def _affine_tables(self):
        """``(all_affine, w, cap)`` — the clipped-shift view of the
        edge tables, when exact.

        Many finite encodings produce tables of the form
        ``T[x] = min(x + w, cap)`` (hop count and weighted chains: the
        carrier is preference-ordered, an edge adds a cost, ∞̄ absorbs).
        Verified *element-wise* against the real tables at snapshot
        time, so the fast path is exact or unused — never approximate.
        When it holds, the δ kernel's per-element table gather (a 2-D
        fancy index, the most expensive op in the batched step) becomes
        two SIMD-friendly arithmetic ops, in the batch dtype.
        """
        if getattr(self, "_affine_version", None) != self._version:
            T = self._tables
            if T.size:
                w = T[:, :1]
                cap = T[:, -1:]
                size = T.shape[1]
                ar = np.arange(size, dtype=_DTYPE)[None, :]
                ok = bool((T == np.minimum(ar + w, cap)).all())
                dtype = self._batch_dtype
                w = w.astype(dtype)
                cap = cap.astype(dtype)
            else:
                ok, w, cap = True, T, T
            self._affine = (ok, w, cap)
            self._affine_version = self._version
        return self._affine

    def _slot_segment(self, comp, t: int, deg_arr, off_arr):
        """Flat read-time array over ``comp``'s active, degree > 0
        importers at ``t``, aligned to the snapshot's edge layout.

        Cached per (schedule, step): trials replicate schedules across
        starting states, and the pair list of a batched step is exactly
        the per-trial concatenation of these segments, so the β work of
        a step is paid once per *distinct* schedule, not once per
        trial."""
        cache = self._seg_cache
        if cache.get("t") != t:
            cache.clear()
            cache["t"] = t
        seg = cache.get(id(comp))
        if seg is None:
            mask = comp.alpha_mask(t)
            nodes = np.nonzero(mask)[0]
            nodes = nodes[deg_arr[nodes] > 0]
            total = int(deg_arr[nodes].sum())
            uniform = comp.beta_uniform(t)
            if uniform is not None:
                seg = np.full(total, uniform, dtype=np.int64)
            elif total:
                src = self._src
                seg = np.concatenate(
                    [comp.beta_times_for(
                        t, int(i), src[off_arr[i]:off_arr[i] + deg_arr[i]])
                     for i in nodes.tolist()])
            else:
                seg = np.empty(0, dtype=np.int64)
            cache[id(comp)] = seg
        return seg

    # -- σ ---------------------------------------------------------------

    def _sigma_codes_batch(self, C: "np.ndarray") -> "np.ndarray":
        """One full σ round on a ``(B, n, n)`` stack of code matrices."""
        B, n = C.shape[0], self._n
        new = np.full((B, n, n), self.invalid_code, dtype=_DTYPE)
        if self._src.size:
            ext = self._tables[self._erange[None], C[:, self._src, :]]
            new[:, self._importers, :] = np.minimum.reduceat(
                ext, self._starts, axis=1)
        diag = np.arange(n)
        new[:, diag, diag] = self.trivial_code   # Lemma 1, every trial
        return new

    # -- δ ---------------------------------------------------------------

    def _delta_step_batch(self, ring, W: int, t: int, scheds, live,
                          windows, prev, nxt, copy, last_change,
                          prev_read_min, sigma_ok=None,
                          const_ok=None) -> "np.ndarray":
        """One δ step for every live trial; returns ``(B,)`` changed flags.

        ``prev``/``nxt`` are the ring slots for ``t - 1`` and ``t``;
        the trials listed in ``copy`` get their ``nxt`` slice
        initialised from ``prev`` (the caller omits trials whose state
        has been constant for a full ring — their slots already hold
        the current state) and active rows are overwritten in place.
        The whole step is one fused gather/fold: every (trial, active
        node, in-edge) triple becomes one row of a flat extension
        matrix, reduced per activation with ``minimum.reduceat``.
        Read-time blocks come from the compiled schedules —
        one constant fill for uniform-β schedules
        (:meth:`~repro.core.schedule.Schedule.beta_uniform`), a cached
        in-neighbour slice otherwise
        (:meth:`~repro.core.schedule.CompiledSchedule.beta_times_for`).

        ``last_change``/``prev_read_min`` are the batch analogue of the
        incremental engine's :class:`~repro.core.incremental.DeltaRowCache`:
        ``last_change[b, k]`` is the last step trial ``b``'s row ``k``
        changed, ``prev_read_min[b, i]`` the earliest read time of
        ``i``'s previous activation.  An activation whose every source
        row provably hasn't changed between its previous reads and its
        current ones recomputes the same row (entry-wise σ over equal
        inputs), so the pair is *skipped* — no gather, no fold, no
        compare — which is what turns high-activation-rate schedules'
        long quiet phases from O(E · n) into O(E) per step.

        ``sigma_ok``/``const_ok`` fuse the σ-stability probe into the
        step (the *σ-residual certificate*): an activation whose every
        source row's **post-step** last change is at or before the
        activation's earliest read computed its row against the
        *current* source rows, i.e. the row already equals its σ-row —
        ``sigma_ok[b, i]`` records that.  Any change in trial ``b``
        invalidates all its certificates (a source may have moved);
        rows with no in-edges always produce the same constant σ-row,
        so one activation certifies them permanently (``const_ok``).
        The candidate probe in :meth:`delta_grid` then σ-checks only
        the uncertified rows — usually none after a full quiet window —
        instead of recomputing σ over the whole ``(n, n)`` state.
        """
        n = self._n
        B = ring.shape[1]
        changed = np.zeros(B, dtype=bool)
        act = np.zeros((B, n), dtype=bool)
        for b in live:
            act[b] = scheds[b].alpha_mask(t)
        if copy.size:
            nxt[copy] = prev[copy]
        pairs_b, pairs_i = np.nonzero(act)
        if pairs_b.size == 0:
            return changed
        deg_arr, off_arr = self._node_arrays()
        d = deg_arr[pairs_i]
        has_edges = d > 0
        eb, ei, ed = pairs_b[has_edges], pairs_i[has_edges], d[has_edges]
        zb, zi = pairs_b[~has_edges], pairs_i[~has_edges]

        cert = None
        if eb.size:
            src = self._src
            starts = np.zeros(ed.size, dtype=np.intp)
            starts[1:] = np.cumsum(ed[:-1])
            # pairs are b-major / i-ascending — exactly the per-trial
            # concatenation of the cached per-(schedule, t) segments
            trial_ids = np.unique(eb)
            slot = np.concatenate(
                [self._slot_segment(scheds[b], t, deg_arr, off_arr)
                 for b in trial_ids.tolist()])
            rep_b = np.repeat(eb, ed)
            bad = (slot < 0) | (slot >= t) | ((t - slot) > windows[rep_b])
            if bad.any():
                k = int(np.nonzero(bad)[0][0])
                raise LookupError(
                    f"δ history for time {int(slot[k])} is outside trial "
                    f"{int(rep_b[k])}'s ring window "
                    f"(window={int(windows[rep_b[k]])}, t={t}); the "
                    "schedule reads further back than its declared "
                    "max_read_back — run delta_run(..., strict=True) to "
                    "keep the full history")
            edge_flat = np.repeat(off_arr[ei], ed) + _concat_ranges(ed)
            src_flat = src[edge_flat]
            # -- read-diff skip (vectorized DeltaRowCache) --------------
            # sound because entry (i, j) is a pure fold of the sources'
            # reads: if no source row changed anywhere in the span
            # between the previous activation's reads and this one's,
            # the fold recomputes the row it already produced.
            read_min = np.minimum.reduceat(slot, starts)
            lc_max = np.maximum.reduceat(last_change[rep_b, src_flat],
                                         starts)
            # pre-skip views for the σ-residual certificate, evaluated
            # at the end of the step against the post-update last_change
            cert = (eb, ei, rep_b, src_flat, starts, read_min)
            skip = lc_max <= np.minimum(read_min, prev_read_min[eb, ei])
            prev_read_min[eb, ei] = read_min
            if skip.any():
                keep = ~skip
                keep_edges = np.repeat(keep, ed)
                eb, ei, ed = eb[keep], ei[keep], ed[keep]
                edge_flat = edge_flat[keep_edges]
                src_flat = src_flat[keep_edges]
                slot = slot[keep_edges]
                rep_b = rep_b[keep_edges]
                starts = np.zeros(ed.size, dtype=np.intp)
                starts[1:] = np.cumsum(ed[:-1])
        if eb.size:
            gathered = ring[slot % W, rep_b, src_flat, :]
            affine, w, cap = self._affine_tables()
            if affine:
                ext = np.minimum(gathered + w[edge_flat], cap[edge_flat])
            else:
                ext = self._tables[edge_flat[:, None], gathered]
            folded = np.minimum.reduceat(ext, starts, axis=0)
            folded[np.arange(ei.size), ei] = self.trivial_code
            row_changed = (folded != prev[eb, ei, :]).any(axis=1)
            nxt[eb, ei, :] = folded
            hit = row_changed
            changed[eb[hit]] = True
            last_change[eb[hit], ei[hit]] = t
        if zb.size:
            rows = np.full((zb.size, n), self.invalid_code,
                           dtype=ring.dtype)
            rows[np.arange(zb.size), zi] = self.trivial_code
            row_changed = (rows != prev[zb, zi, :]).any(axis=1)
            nxt[zb, zi, :] = rows
            hit = row_changed
            changed[zb[hit]] = True
            last_change[zb[hit], zi[hit]] = t
        if sigma_ok is not None:
            # any change invalidates the trial's certificates (a source
            # may have moved under a certified row) — reset BEFORE
            # recording this step's, which already account for every
            # change up to and including t
            sigma_ok[changed] = False
            if cert is not None:
                ceb, cei, crep_b, csrc, cstarts, cread_min = cert
                lc_post = np.maximum.reduceat(last_change[crep_b, csrc],
                                              cstarts)
                ok = lc_post <= cread_min
                sigma_ok[ceb[ok], cei[ok]] = True
            if const_ok is not None and zb.size:
                const_ok[zb, zi] = True
        return changed

    def _sigma_rows(self, C: "np.ndarray", rows: "np.ndarray"
                    ) -> "np.ndarray":
        """σ(C) restricted to ``rows`` of a single ``(n, n)`` state —
        exactly the values :meth:`_sigma_codes` would put there.

        The row-restricted fallback probe for trials whose σ-residual
        certificate (see :meth:`_delta_step_batch`) doesn't yet cover
        every row at candidate time."""
        n = self._n
        deg_arr, off_arr = self._node_arrays()
        out = np.full((rows.size, n), self.invalid_code, dtype=_DTYPE)
        d = deg_arr[rows]
        has = d > 0
        er, ed = rows[has], d[has]
        if er.size:
            starts = np.zeros(ed.size, dtype=np.intp)
            starts[1:] = np.cumsum(ed[:-1])
            edge_flat = np.repeat(off_arr[er], ed) + _concat_ranges(ed)
            src_flat = self._src[edge_flat]
            ext = self._tables[edge_flat[:, None],
                               C[src_flat].astype(np.intp)]
            out[has] = np.minimum.reduceat(ext, starts, axis=0)
        out[np.arange(rows.size), rows] = self.trivial_code
        return out

    def delta_grid(self, trials, max_steps: int = 2_000,
                   stability_window: Optional[int] = None
                   ) -> List[AsyncResult]:
        """Run δ for every ``(schedule, start)`` trial as one workload.

        Returns one :class:`~repro.core.asynchronous.AsyncResult` per
        trial, in order, each identical to what a solo
        :func:`delta_run_vectorized` would have produced.
        """
        self.refresh()
        B = len(trials)
        if B == 0:
            return []
        n = self._n
        scheds: List[CompiledSchedule] = []
        windows = np.empty(B, dtype=np.int64)
        sws = np.empty(B, dtype=np.int64)
        compiled = {}   # id(schedule) -> compiled form, shared across trials
        for b, (sched, _start) in enumerate(trials):
            comp = compiled.get(id(sched))
            if comp is None:
                comp = CompiledSchedule.ensure(sched, max_steps)
                compiled[id(sched)] = comp
            scheds.append(comp)
            declared = comp.source.max_read_back()
            # declared bounds get the BoundedHistory tolerance (+2);
            # undeclared ones get the exact bound their compiled reads
            # attain — the ring substitute for "keep the full history"
            windows[b] = (declared + 2 if declared is not None
                          else comp.derived_max_read_back())
            sws[b] = (stability_window if stability_window is not None
                      else (declared or 1) + 2)
        W = int(windows.max()) + 1
        ring = np.empty((W, B, n, n), dtype=self._batch_dtype)
        ring[0] = np.stack([self.encode_state(start)
                            for (_sched, start) in trials])
        self._seg_cache: dict = {}       # per-(schedule, step) β segments

        done = np.zeros(B, dtype=bool)
        unchanged = np.zeros(B, dtype=np.int64)
        converged = np.zeros(B, dtype=bool)
        steps_res = np.full(B, max_steps, dtype=np.int64)
        conv_at: List[Optional[int]] = [None] * B
        final: List[Optional["np.ndarray"]] = [None] * B
        # read-diff skip state (see _delta_step_batch): row k of trial b
        # last changed at step last_change[b, k] (the start counts as a
        # change at 0); prev_read_min[b, i] = earliest read time of i's
        # previous activation (-1 = never activated, never skippable)
        last_change = np.zeros((B, n), dtype=np.int64)
        prev_read_min = np.full((B, n), -1, dtype=np.int64)
        # σ-residual certificates (see _delta_step_batch): rows already
        # provably equal to their σ-row, so the candidate probe below
        # only touches the (usually empty) uncertified remainder
        sigma_ok = np.zeros((B, n), dtype=bool)
        const_ok = np.zeros((B, n), dtype=bool)

        for t in range(1, max_steps + 1):
            live = np.nonzero(~done)[0]
            if live.size == 0:
                break
            prev = ring[(t - 1) % W]
            nxt = ring[t % W]
            # a trial constant for >= W steps has every ring slot equal
            # to its current state — the prev→nxt copy is a no-op; skip
            # it (long quiet tails of sparse-activation schedules
            # otherwise pay a B·n² memcpy per step for nothing)
            copy = live[unchanged[live] < W]
            changed = self._delta_step_batch(ring, W, t, scheds, live,
                                             windows, prev, nxt, copy,
                                             last_change, prev_read_min,
                                             sigma_ok, const_ok)
            unchanged[live] = np.where(changed[live], 0, unchanged[live] + 1)
            cand = live[unchanged[live] >= sws[live]]
            for b in cand.tolist():
                # certified rows are already known σ-consistent; probe
                # only the remainder — the decision is identical to the
                # full σ(C) == C check, it just skips proven rows
                uncovered = np.nonzero(~(sigma_ok[b] | const_ok[b]))[0]
                if uncovered.size:
                    sub = nxt[b]
                    if not (self._sigma_rows(sub, uncovered)
                            == sub[uncovered]).all():
                        continue
                    sigma_ok[b, uncovered] = True
                done[b] = True
                converged[b] = True
                steps_res[b] = t
                conv_at[b] = t - int(unchanged[b])
                final[b] = nxt[b].copy()
        for b in np.nonzero(~done)[0].tolist():
            final[b] = ring[max_steps % W][b].copy()

        return [AsyncResult(bool(converged[b]), int(steps_res[b]),
                            self.decode_state(final[b]), conv_at[b], None,
                            history_retained=min(int(steps_res[b]) + 1,
                                                 int(windows[b])))
                for b in range(B)]


# ----------------------------------------------------------------------
# Drivers (SyncResult / AsyncResult compatible)
# ----------------------------------------------------------------------


def iterate_sigma_vectorized(network: Network, start: RoutingState,
                             max_rounds: int = 10_000,
                             keep_trajectory: bool = False,
                             detect_cycles: bool = False,
                             engine: Optional[VectorizedEngine] = None
                             ) -> SyncResult:
    """Vectorized drop-in for :func:`repro.core.synchronous.iterate_sigma`.

    Same trajectory, fixed point and round count as the other engines —
    the differential oracle in ``tests/core/test_engine_equivalence.py``
    holds it to that.  Pass ``engine`` to reuse a prebuilt
    :class:`VectorizedEngine` (its caches auto-refresh on topology
    changes).
    """
    eng = engine if engine is not None else VectorizedEngine(network)
    eng.refresh()
    C = eng.encode_state(start)
    trajectory: Optional[List[RoutingState]] = \
        [start] if keep_trajectory else None
    seen = {C.tobytes(): 0} if detect_cycles else None
    dirty = None
    for k in range(max_rounds):
        nxt, dirty = eng._advance(C, dirty)
        if keep_trajectory:
            trajectory.append(eng.decode_state(nxt))
        if dirty.size == 0:
            return SyncResult(True, k, eng.decode_state(C), trajectory)
        if detect_cycles:
            key = nxt.tobytes()
            if key in seen:
                return SyncResult(False, k + 1, eng.decode_state(nxt),
                                  trajectory)
            seen[key] = k + 1
        C = nxt
    return SyncResult(False, max_rounds, eng.decode_state(C), trajectory)


def delta_run_vectorized(network: Network, schedule: Schedule,
                         start: RoutingState, max_steps: int = 2_000,
                         stability_window: Optional[int] = None,
                         keep_history: bool = False,
                         engine: Optional[VectorizedEngine] = None
                         ) -> AsyncResult:
    """Vectorized drop-in for :func:`repro.core.asynchronous.delta_run`.

    Identical history semantics: the code-matrix history is a
    :class:`~repro.core.incremental.BoundedHistory` ring buffer sized by
    ``schedule.max_read_back() + 2`` (full list when the schedule
    declares no bound or ``keep_history`` is set), and convergence uses
    the same constant-window + σ-stable criterion.
    """
    eng = engine if engine is not None else VectorizedEngine(network)
    eng.refresh()
    max_read_back = schedule.max_read_back()
    if stability_window is None:
        stability_window = (max_read_back or 1) + 2
    C0 = eng.encode_state(start)
    full = keep_history or max_read_back is None
    history = ([C0] if full
               else BoundedHistory(C0, window=max_read_back + 2))
    beta = schedule.beta
    unchanged = 0

    def result(converged: bool, t: int, C, converged_at):
        decoded_history = None
        if keep_history:
            decoded_history = [eng.decode_state(h) for h in history]
        return AsyncResult(converged, t, eng.decode_state(C), converged_at,
                           decoded_history, history_retained=len(history))

    for t in range(1, max_steps + 1):
        prev = history[t - 1]
        nxt = None
        for i in schedule.alpha(t):
            row = eng._delta_row(history, t, i, beta)
            if not np.array_equal(row, prev[i]):
                if nxt is None:
                    nxt = prev.copy()
                nxt[i] = row
        changed = nxt is not None
        if nxt is None:
            nxt = prev                   # share the unchanged matrix
        history.append(nxt)
        unchanged = 0 if changed else unchanged + 1
        if unchanged >= stability_window and \
                np.array_equal(eng._sigma_codes(nxt), nxt):
            return result(True, t, nxt, t - unchanged)
    return result(False, max_steps, history[max_steps], None)


def sigma_churn(network: Network, start: RoutingState,
                max_rounds: int = 10_000,
                engine: Optional[VectorizedEngine] = None):
    """``(converged, rounds, total entry changes, final state)`` of the
    σ iteration.

    The churn measurement
    (:meth:`repro.session.RoutingSession.sigma` with ``measure_churn``,
    behind :func:`repro.analysis.convergence.measure_sync`) on codes:
    instead of decoding every trajectory state and comparing
    O(rounds · n²) route pairs in Python, diff consecutive code
    matrices with numpy — sound because a finite encoding maps equal
    routes to equal codes and distinct routes to distinct codes.
    Counts exactly what the object path counts, without materialising
    the trajectory.
    """
    eng = engine if engine is not None else VectorizedEngine(network)
    eng.refresh()
    C = eng.encode_state(start)
    churn = 0
    dirty = None
    for k in range(max_rounds):
        nxt, dirty = eng._advance(C, dirty)
        if dirty.size == 0:
            return True, k, churn, eng.decode_state(C)
        churn += int((nxt[:, dirty] != C[:, dirty]).sum())
        C = nxt
    return False, max_rounds, churn, eng.decode_state(C)


def iterate_sigma_batched(network: Network,
                          starts: Sequence[RoutingState],
                          max_rounds: int = 10_000,
                          keep_trajectory: bool = False,
                          detect_cycles: bool = False,
                          engine: Optional[BatchedVectorizedEngine] = None
                          ) -> List[SyncResult]:
    """σ fixed-point iteration for many starts as one tensor workload.

    Every round applies σ to the whole live stack at once; each trial's
    :class:`~repro.core.synchronous.SyncResult` (convergence, round
    count, fixed point, optional trajectory / cycle detection) is
    identical to a solo :func:`iterate_sigma_vectorized` run, and
    finished trials drop out of the stack.
    """
    eng = engine if engine is not None else BatchedVectorizedEngine(network)
    eng.refresh()
    B = len(starts)
    results: List[Optional[SyncResult]] = [None] * B
    if B == 0:
        return []
    C = np.stack([eng.encode_state(s) for s in starts])
    live = np.ones(B, dtype=bool)
    trajs = [[s] if keep_trajectory else None for s in starts]
    seens = ([{C[b].tobytes(): 0} for b in range(B)]
             if detect_cycles else None)
    for k in range(max_rounds):
        idx = np.nonzero(live)[0]
        if idx.size == 0:
            break
        new = eng._sigma_codes_batch(C[idx])
        for pos, b in enumerate(idx.tolist()):
            nxt = new[pos]
            if keep_trajectory:
                trajs[b].append(eng.decode_state(nxt))
            if np.array_equal(nxt, C[b]):
                results[b] = SyncResult(True, k, eng.decode_state(C[b]),
                                        trajs[b])
                live[b] = False
                continue
            if detect_cycles:
                key = nxt.tobytes()
                if key in seens[b]:
                    results[b] = SyncResult(False, k + 1,
                                            eng.decode_state(nxt), trajs[b])
                    live[b] = False
                    continue
                seens[b][key] = k + 1
            C[b] = nxt
    for b in np.nonzero(live)[0].tolist():
        results[b] = SyncResult(False, max_rounds, eng.decode_state(C[b]),
                                trajs[b])
    return results


def delta_run_batched(network: Network, schedule: Schedule,
                      start: RoutingState, max_steps: int = 2_000,
                      stability_window: Optional[int] = None,
                      engine: Optional[BatchedVectorizedEngine] = None
                      ) -> AsyncResult:
    """Single-trial δ through the batched kernel (the B = 1 grid).

    Exists so ``delta_run(engine="batched")`` exercises exactly the
    code path the grid driver uses — the differential oracle runs every
    engine through the same selectors.
    """
    eng = engine if engine is not None else BatchedVectorizedEngine(network)
    return eng.delta_grid([(schedule, start)], max_steps=max_steps,
                          stability_window=stability_window)[0]


def absolute_convergence_batched(
        network: Network,
        starts: Sequence[RoutingState],
        schedules: Sequence[Schedule],
        max_steps: int = 2_000,
        engine: Optional[BatchedVectorizedEngine] = None,
        batch_size: Optional[int] = 64) -> AbsoluteConvergenceReport:
    """The absolute-convergence grid as one (chunked) tensor workload.

    Drop-in for
    :func:`repro.core.asynchronous.absolute_convergence_experiment` on
    finite algebras: same trial order (starts major), same report —
    runs, convergence flags, first-occurrence-ordered distinct fixed
    points and convergence steps.  ``batch_size`` bounds the ring's
    batch axis (``None`` stacks the whole grid at once).
    """
    eng = engine if engine is not None else BatchedVectorizedEngine(network)
    # compile each distinct schedule once up front — chunked grids
    # would otherwise re-wrap (and, for undeclared staleness bounds,
    # re-derive) per chunk; delta_grid's own ensure() is then a no-op
    compiled: dict = {}

    def _compile(sched):
        comp = compiled.get(id(sched))
        if comp is None:
            comp = CompiledSchedule.ensure(sched, max_steps)
            compiled[id(sched)] = comp
        return comp

    trials = [(_compile(sched), start)
              for start in starts for sched in schedules]
    chunk = len(trials) if not batch_size else max(1, int(batch_size))
    results: List[AsyncResult] = []
    for lo in range(0, len(trials), chunk):
        results.extend(eng.delta_grid(trials[lo:lo + chunk],
                                      max_steps=max_steps))
    alg = network.algebra
    fixed_points: List[RoutingState] = []
    steps: List[int] = []
    all_converged = True
    for res in results:
        if not res.converged:
            all_converged = False
            continue
        steps.append(res.converged_at or res.steps)
        if not any(res.state.equals(fp, alg) for fp in fixed_points):
            fixed_points.append(res.state)
    return AbsoluteConvergenceReport(len(trials), all_converged,
                                     fixed_points, steps)
