"""Vectorized σ/δ engine for finite algebras: routes as small ints.

Theorem 7 lives on *finite* strictly increasing algebras (RIP-style hop
count, finite chains, bounded stratified levels).  Finiteness is not
just a proof device — it is an implementation opportunity: encode the
``m + 1`` routes of the carrier as ints ``0..m`` ordered by preference
(:meth:`repro.algebras.base.KeyOrderedAlgebra.finite_encoding`) and

* ⊕ becomes ``min`` on codes,
* every edge function becomes a dense ``(m + 1)``-entry lookup table,
* the routing state becomes an ``(n, n)`` int matrix ``C``, and
* one σ round becomes a generalised min-plus product:

      σ(C)[i][j] = min_k  T_{ik}[ C[k][j] ]        (diag forced to 0)

  evaluated for *all* edges and destinations at once with one fancy
  gather ``T[edge, C[src]]`` and one ``np.minimum.reduceat`` over the
  per-importer edge groups — no per-route Python calls at all.

Layered on the PR 1 dirty-set idea: entry ``(i, j)`` of σ(X) depends
only on column ``j`` of ``X``, so columns are independent and a round
needs to re-multiply only the **dirty columns** (those with an entry
that changed last round).  An empty dirty-column set is exactly
σ-stability, so fixed-point detection stays free.  δ activations use
the same tables as per-activation gathers against a
:class:`~repro.core.incremental.BoundedHistory` of code matrices, so
asynchronous rounds are array ops too (`delta_run_vectorized`).

Capability & fallback
---------------------

This is the third rung of the four-engine ladder (naive → incremental
→ **vectorized** → parallel): :mod:`repro.core.parallel` shards this
engine's column-independent round over worker processes against
shared-memory code matrices, and inherits its encoding and snapshot
machinery from :class:`VectorizedEngine`.

The engine needs numpy and a :class:`~repro.algebras.base.AlgebraEncoding`
(finite carrier, injective preference keys, default route equality).
:func:`supports_vectorized` reports capability; the public selectors
(``iterate_sigma(engine="vectorized")``, ``delta_run(...)``,
``Simulator(engine=...)``) silently fall back to the incremental engine
for unsupported algebras, while constructing :class:`VectorizedEngine`
directly raises :class:`~repro.core.algebra.UnsupportedAlgebraError`
with the reason.

Cache discipline: edge tables are derived from the adjacency matrix and
rebuilt whenever ``adjacency.version`` moves (checked by
:meth:`VectorizedEngine.refresh` at the top of every public entry
point), so mid-run ``set_edge`` / ``remove_edge`` can never leave a
stale table behind — the vectorized mirror of the
:class:`~repro.core.state.NetworkTopology` invalidation contract.
"""

from __future__ import annotations

from typing import List, Optional

try:
    import numpy as np
except ImportError:                      # pragma: no cover - numpy is baked in
    np = None

from .algebra import RoutingAlgebra, UnsupportedAlgebraError
from .asynchronous import AsyncResult
from .incremental import BoundedHistory
from .schedule import Schedule
from .state import Network, RoutingState
from .synchronous import SyncResult

#: dtype for code matrices and tables; carriers are small, int32 is ample.
_DTYPE = "int32"


def gather_min_reduce(sub, tables, src, erange, importers, starts,
                      invalid_code):
    """The σ kernel: one gather/min-reduce over the columns of ``sub``.

    ``sub`` is the (column-restricted) code matrix; the remaining
    arguments are a topology snapshot in the flat layout built by
    :meth:`VectorizedEngine.refresh`.  Returns the new values with
    importer-less rows at ``invalid_code``; the Lemma-1 diagonal fix-up
    stays with the caller (it depends on which columns ``sub`` holds).
    Single source of truth for the kernel — the serial engine and every
    :mod:`repro.core.parallel` worker run exactly this code, so the
    master's σ-stability probe can never drift from the workers' rounds.
    """
    new = np.full(sub.shape, invalid_code, dtype=_DTYPE)
    if src.size:
        extended = tables[erange, sub[src]]
        new[importers] = np.minimum.reduceat(extended, starts, axis=0)
    return new


def fold_edge_tables(tables, gathered):
    """The δ kernel: apply each edge table to its gathered historic row
    slice and ⊕ (= ``min`` on codes) across the neighbours.

    ``tables`` is the ``(degree, carrier)`` slice for one importer and
    ``gathered`` the ``(degree, width)`` historic reads; shared by
    :meth:`VectorizedEngine._delta_row` and the parallel workers.
    """
    degree = gathered.shape[0]
    return tables[np.arange(degree)[:, None], gathered].min(axis=0)


def supports_vectorized(algebra: RoutingAlgebra) -> bool:
    """True when the vectorized engine can run this algebra.

    Requires numpy, a finite carrier, the FiniteEncoding protocol, and a
    successfully built encoding (injective preference keys, 0̄ first, ∞̄
    last).  Used by the engine selectors to decide between dispatch and
    fallback.
    """
    if np is None or not getattr(algebra, "is_finite", False):
        return False
    builder = getattr(algebra, "finite_encoding", None)
    if builder is None:
        return False
    try:
        builder()
    except UnsupportedAlgebraError:
        return False
    return True


class VectorizedEngine:
    """σ/δ over int-encoded routing states for one network.

    The engine snapshots the adjacency matrix into flat arrays —
    ``_src[e]`` (exporter of edge ``e``), ``_tables[e]`` (its dense
    lookup table), edges grouped by importer with group starts
    ``_starts`` aligned to ``_importers`` — and refreshes the snapshot
    whenever ``adjacency.version`` moves.  States cross the boundary via
    :meth:`encode_state` / :meth:`decode_state`.
    """

    def __init__(self, network: Network):
        if np is None:
            raise UnsupportedAlgebraError(
                "vectorized engine unavailable: numpy is not installed")
        builder = getattr(network.algebra, "finite_encoding", None)
        if builder is None:
            raise UnsupportedAlgebraError(
                f"{network.algebra.name}: does not implement the "
                "FiniteEncoding protocol")
        self.network = network
        self.encoding = builder()        # raises for non-finite carriers
        self.trivial_code = self.encoding.trivial_code
        self.invalid_code = self.encoding.invalid_code
        self._version: Optional[int] = None
        self.refresh()

    # ------------------------------------------------------------------
    # Topology snapshot
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild edge arrays iff the adjacency matrix has mutated."""
        adjacency = self.network.adjacency
        if self._version == adjacency.version:
            return
        topo = adjacency.topology
        n = self.network.n
        size = self.encoding.size
        srcs: List[int] = []
        tables: List[List[int]] = []
        importers: List[int] = []
        counts: List[int] = []
        built = {}                       # id(fn) -> table, this snapshot only
        for i in range(n):
            edges = topo.in_edges[i]
            if not edges:
                continue
            importers.append(i)
            counts.append(len(edges))
            for (k, fn) in edges:
                srcs.append(k)
                table = built.get(id(fn))
                if table is None:
                    table = self.encoding.edge_table(fn)
                    built[id(fn)] = table
                tables.append(table)
        n_edges = len(srcs)
        self._n = n
        self._src = np.asarray(srcs, dtype=np.intp)
        self._tables = (np.asarray(tables, dtype=_DTYPE)
                        if n_edges else np.zeros((0, size), dtype=_DTYPE))
        self._erange = np.arange(n_edges)[:, None]
        self._importers = np.asarray(importers, dtype=np.intp)
        starts = np.zeros(len(importers), dtype=np.intp)
        if len(importers) > 1:
            starts[1:] = np.cumsum(counts[:-1])
        self._starts = starts
        offsets = {}
        degrees = {}
        offset = 0
        for i, count in zip(importers, counts):
            offsets[i] = offset
            degrees[i] = count
            offset += count
        self._offsets = offsets
        self._degrees = degrees
        self._version = adjacency.version

    # ------------------------------------------------------------------
    # State codecs
    # ------------------------------------------------------------------

    def encode_state(self, state: RoutingState) -> "np.ndarray":
        """``RoutingState`` → ``(n, n)`` int code matrix."""
        if self.encoding.identity:
            matrix = np.asarray(state.rows)
            # the fast path is only sound for genuinely integer routes —
            # casting would silently truncate e.g. 2.5 into the carrier;
            # anything else drops to the per-route dict path below, which
            # rejects out-of-carrier routes exactly
            if matrix.dtype.kind in "iu":
                # bounds-check BEFORE the int32 cast: a wider route like
                # 2**32 would otherwise wrap into the carrier silently
                if matrix.size and (matrix.min() < 0 or
                                    matrix.max() >= self.encoding.size):
                    raise UnsupportedAlgebraError(
                        f"{self.network.algebra.name}: state contains "
                        "routes outside the finite carrier")
                return matrix.astype(_DTYPE, copy=False)
        index = self.encoding.index
        try:
            rows = [[index[route] for route in row] for row in state.rows]
        except (KeyError, TypeError):
            raise UnsupportedAlgebraError(
                f"{self.network.algebra.name}: state contains routes "
                "outside the finite carrier") from None
        return np.asarray(rows, dtype=_DTYPE)

    def decode_state(self, matrix: "np.ndarray") -> RoutingState:
        """``(n, n)`` int code matrix → ``RoutingState``."""
        codes = self.encoding.codes
        return RoutingState.adopt(
            [[codes[c] for c in row] for row in matrix.tolist()])

    # ------------------------------------------------------------------
    # σ
    # ------------------------------------------------------------------

    def _sigma_codes(self, C: "np.ndarray",
                     cols: Optional["np.ndarray"] = None) -> "np.ndarray":
        """One σ round on codes, over all columns or just ``cols``.

        Column independence (entry (i, j) reads only column j) makes the
        restricted recompute exact, not approximate.
        """
        sub = C if cols is None else C[:, cols]
        new = gather_min_reduce(sub, self._tables, self._src, self._erange,
                                self._importers, self._starts,
                                self.invalid_code)
        if cols is None:
            np.fill_diagonal(new, self.trivial_code)  # Lemma 1
        else:
            new[cols, np.arange(len(cols))] = self.trivial_code
        return new

    def _advance(self, C: "np.ndarray", dirty: Optional["np.ndarray"]):
        """``(C, dirty columns) → (σ(C), next dirty columns)``.

        ``dirty=None`` means "unknown — full round" (seeding, or after a
        topology change).  Untouched columns are carried over by copy;
        an empty result is exactly σ-stability.
        """
        if dirty is None:
            new = self._sigma_codes(C)
            return new, np.nonzero((new != C).any(axis=0))[0]
        if dirty.size == 0:
            return C, dirty
        new_sub = self._sigma_codes(C, dirty)
        changed = dirty[(new_sub != C[:, dirty]).any(axis=0)]
        if changed.size == 0:
            return C, changed
        nxt = C.copy()
        nxt[:, dirty] = new_sub
        return nxt, changed

    def sigma(self, state: RoutingState) -> RoutingState:
        """One full σ round (decoded); the lockstep-oracle entry point."""
        self.refresh()
        C = self.encode_state(state)
        return self.decode_state(self._sigma_codes(C))

    def is_stable(self, state: RoutingState) -> bool:
        """Definition 4 check, vectorized: σ(X) = X on codes."""
        self.refresh()
        C = self.encode_state(state)
        return bool(np.array_equal(self._sigma_codes(C), C))

    # ------------------------------------------------------------------
    # δ
    # ------------------------------------------------------------------

    def _delta_row(self, history, t: int, i: int, beta) -> "np.ndarray":
        """Node ``i``'s recomputed table at time ``t``: per-activation
        table gathers against per-neighbour historical rows."""
        degree = self._degrees.get(i, 0)
        if degree == 0:
            row = np.full(self._n, self.invalid_code, dtype=_DTYPE)
        else:
            offset = self._offsets[i]
            gathered = np.empty((degree, self._n), dtype=_DTYPE)
            for idx in range(degree):
                k = int(self._src[offset + idx])
                gathered[idx] = history[beta(t, i, k)][k]
            row = fold_edge_tables(self._tables[offset:offset + degree],
                                   gathered)
        row[i] = self.trivial_code
        return row


# ----------------------------------------------------------------------
# Drivers (SyncResult / AsyncResult compatible)
# ----------------------------------------------------------------------


def iterate_sigma_vectorized(network: Network, start: RoutingState,
                             max_rounds: int = 10_000,
                             keep_trajectory: bool = False,
                             detect_cycles: bool = False,
                             engine: Optional[VectorizedEngine] = None
                             ) -> SyncResult:
    """Vectorized drop-in for :func:`repro.core.synchronous.iterate_sigma`.

    Same trajectory, fixed point and round count as the other engines —
    the differential oracle in ``tests/core/test_engine_equivalence.py``
    holds it to that.  Pass ``engine`` to reuse a prebuilt
    :class:`VectorizedEngine` (its caches auto-refresh on topology
    changes).
    """
    eng = engine if engine is not None else VectorizedEngine(network)
    eng.refresh()
    C = eng.encode_state(start)
    trajectory: Optional[List[RoutingState]] = \
        [start] if keep_trajectory else None
    seen = {C.tobytes(): 0} if detect_cycles else None
    dirty = None
    for k in range(max_rounds):
        nxt, dirty = eng._advance(C, dirty)
        if keep_trajectory:
            trajectory.append(eng.decode_state(nxt))
        if dirty.size == 0:
            return SyncResult(True, k, eng.decode_state(C), trajectory)
        if detect_cycles:
            key = nxt.tobytes()
            if key in seen:
                return SyncResult(False, k + 1, eng.decode_state(nxt),
                                  trajectory)
            seen[key] = k + 1
        C = nxt
    return SyncResult(False, max_rounds, eng.decode_state(C), trajectory)


def delta_run_vectorized(network: Network, schedule: Schedule,
                         start: RoutingState, max_steps: int = 2_000,
                         stability_window: Optional[int] = None,
                         keep_history: bool = False,
                         engine: Optional[VectorizedEngine] = None
                         ) -> AsyncResult:
    """Vectorized drop-in for :func:`repro.core.asynchronous.delta_run`.

    Identical history semantics: the code-matrix history is a
    :class:`~repro.core.incremental.BoundedHistory` ring buffer sized by
    ``schedule.max_read_back() + 2`` (full list when the schedule
    declares no bound or ``keep_history`` is set), and convergence uses
    the same constant-window + σ-stable criterion.
    """
    eng = engine if engine is not None else VectorizedEngine(network)
    eng.refresh()
    max_read_back = schedule.max_read_back()
    if stability_window is None:
        stability_window = (max_read_back or 1) + 2
    C0 = eng.encode_state(start)
    full = keep_history or max_read_back is None
    history = ([C0] if full
               else BoundedHistory(C0, window=max_read_back + 2))
    beta = schedule.beta
    unchanged = 0

    def result(converged: bool, t: int, C, converged_at):
        decoded_history = None
        if keep_history:
            decoded_history = [eng.decode_state(h) for h in history]
        return AsyncResult(converged, t, eng.decode_state(C), converged_at,
                           decoded_history, history_retained=len(history))

    for t in range(1, max_steps + 1):
        prev = history[t - 1]
        nxt = None
        for i in schedule.alpha(t):
            row = eng._delta_row(history, t, i, beta)
            if not np.array_equal(row, prev[i]):
                if nxt is None:
                    nxt = prev.copy()
                nxt[i] = row
        changed = nxt is not None
        if nxt is None:
            nxt = prev                   # share the unchanged matrix
        history.append(nxt)
        unchanged = 0 if changed else unchanged + 1
        if unchanged >= stability_window and \
                np.array_equal(eng._sigma_codes(nxt), nxt):
            return result(True, t, nxt, t - unchanged)
    return result(False, max_steps, history[max_steps], None)
